"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so the package can be installed in
environments without network access to build isolation wheels
(``pip install -e . --no-use-pep517`` or ``python setup.py develop``).
"""

from setuptools import setup

setup()
