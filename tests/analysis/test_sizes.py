"""Tests for the size sweeps backing the SPACE experiment."""

import pytest

from repro.analysis.sizes import (
    churn_sweep,
    measure_trace_sizes,
    replica_count_sweep,
    reroot_growth_curve,
)
from repro.sim.workload import churn_trace, random_dynamic_trace


class TestMeasureTraceSizes:
    def test_reports_every_mechanism(self):
        sizes = measure_trace_sizes(random_dynamic_trace(40, seed=1))
        assert {
            "version-stamps",
            "version-stamps-nonreducing",
            "dynamic-version-vectors",
            "interval-tree-clocks",
            "causal-history",
        } <= set(sizes)

    def test_reducing_stamps_never_larger_than_non_reducing(self):
        trace = churn_trace(150, seed=2)
        sizes = measure_trace_sizes(trace)
        reducing = sizes["version-stamps"].overall_mean_bits
        non_reducing = sizes["version-stamps-nonreducing"].overall_mean_bits
        assert reducing <= non_reducing

    def test_causal_history_dominates_everything(self):
        # The oracle stores every event explicitly; it must be the largest.
        trace = churn_trace(100, seed=3, update_probability=0.5)
        sizes = measure_trace_sizes(trace)
        assert sizes["causal-history"].final_mean_bits >= sizes["version-stamps"].final_mean_bits


class TestSweeps:
    def test_replica_count_sweep_shape(self):
        table = replica_count_sweep([2, 4, 8], operations=30, seed=1)
        assert table.column("replicas") == [2, 4, 8]
        assert all(value > 0 for value in table.column("stamps_bits"))

    def test_dynamic_vv_grows_with_replicas(self):
        # Hold per-replica activity constant (operations scale with the
        # replica count).  At a fixed *total* operation count a two-replica
        # system accumulates more per-element history than an eight-replica
        # one, so dynamic-VV sizes shrink and the comparison is backwards
        # for most workload seeds.
        # Modest totals: the sweep's non-reducing stamps double their names
        # on every same-pair sync, so a 2-replica trace must stay short.
        small = replica_count_sweep([2], operations=30, seed=2)
        large = replica_count_sweep([8], operations=120, seed=2)
        assert (
            large.column("dynamic_vv_bits")[0] > small.column("dynamic_vv_bits")[0]
        )

    def test_churn_sweep_shape(self):
        table = churn_sweep([50, 150], seed=3)
        assert table.column("operations") == [50, 150]
        assert all(value > 0 for value in table.column("itc_bits"))

    def test_churn_hurts_identifier_based_mechanisms_most(self):
        # Moderate churn: dynamic VVs carry retired identifiers while the
        # reducing stamps stay compact.  (On much longer churn runs the
        # comparison inverts -- stamp ids that never reunite with their
        # siblings accumulate faster than VV entries, so 200 ops asserted
        # the opposite of what the mechanisms actually do.)
        table = churn_sweep([50], target_frontier=6, seed=4)
        stamps = table.column("stamps_bits")[0]
        dynamic = table.column("dynamic_vv_bits")[0]
        assert dynamic > stamps


class TestRerootGrowthCurve:
    def test_bounded_vs_censored_unbounded(self):
        table = reroot_growth_curve(
            200,
            replicas=4,
            threshold=256,
            sample_every=20,
            raw_cap_bits=1 << 16,
            seed=1,
        )
        assert table.column("step")[-1] == 200
        rerooted = table.column("rerooted_bits")
        raw = table.column("raw_bits")
        # The GC'd curve is bounded throughout; the raw curve blows past the
        # cap and is censored (None) from then on -- the "unbounded" arm.
        assert all(bits <= 256 for bits in rerooted)
        assert raw[-1] is None
        observed = [bits for bits in raw if bits is not None]
        if len(observed) >= 2:
            assert observed[-1] >= observed[0]
        # While both curves exist the raw one dominates the GC'd one by the
        # time it is censored; and reroots actually fired.
        assert table.column("reroots")[-1] > 0

    def test_renders(self):
        table = reroot_growth_curve(
            60, sample_every=30, raw_cap_bits=1 << 16, seed=2
        )
        text = table.render(title="reroot growth")
        assert "rerooted_bits" in text
        assert "raw_bits" in text
