"""Tests asserting that the figure reconstructions match the paper."""

import pytest

from repro.analysis.figures import (
    FIGURE1_EXPECTED,
    FIGURE4_EXPECTED,
    figure1_version_vectors,
    figure2_frontiers,
    figure2_trace,
    figure3_encoding,
    figure4_stamps,
)
from repro.core.frontier import Frontier
from repro.core.order import Ordering
from repro.sim.runner import LockstepRunner


class TestFigure1:
    def test_timelines_match_paper(self):
        result = figure1_version_vectors()
        assert result.matches_paper()
        assert result.timelines == FIGURE1_EXPECTED

    def test_final_orderings(self):
        result = figure1_version_vectors()
        # A ([2,0,0]) conflicts with B and C ([1,0,1]) at the end of the run.
        assert result.final_orderings[("A", "B")] is Ordering.CONCURRENT
        assert result.final_orderings[("B", "C")] is Ordering.EQUAL

    def test_replica_order(self):
        assert figure1_version_vectors().replicas == ("A", "B", "C")


class TestFigure2:
    def test_trace_is_valid_and_named(self):
        trace = figure2_trace()
        assert trace.name == "figure-2"
        assert trace.final_frontier() == {"g1"}

    def test_trace_runs_cleanly_under_lockstep(self):
        reports, _sizes = LockstepRunner().run(figure2_trace())
        for report in reports.values():
            assert report.agreement_rate == 1.0

    def test_frontiers_contain_c2(self):
        frontiers = figure2_frontiers()
        assert frontiers["single-dotted"] == ["b1", "c2"]
        assert frontiers["double-dotted"] == ["d1", "e1", "c2"]

    def test_both_frontiers_are_reachable(self):
        # Single-dotted: c updates before b forks.
        first = Frontier.initial("a1")
        first.update("a1", "a2")
        first.fork("a2", "b1", "c1")
        first.update("c1", "c2")
        assert set(first.labels()) == set(figure2_frontiers()["single-dotted"])

        # Double-dotted: b forks before c updates.
        second = Frontier.initial("a1")
        second.update("a1", "a2")
        second.fork("a2", "b1", "c1")
        second.fork("b1", "d1", "e1")
        second.update("c1", "c2")
        assert set(second.labels()) == set(figure2_frontiers()["double-dotted"])


class TestFigure3:
    def test_all_mechanisms_agree_at_every_checkpoint(self):
        result = figure3_encoding()
        assert result.all_agree()

    def test_checkpoints_cover_the_run(self):
        result = figure3_encoding()
        assert len(result.vector_orderings) == 5
        assert len(result.stamp_orderings) == 5

    def test_final_checkpoint_shows_conflict(self):
        result = figure3_encoding()
        final = result.stamp_orderings[-1]
        # After A's second isolated update, A conflicts with B and C.
        assert final[("a", "b")] is Ordering.CONCURRENT
        assert final[("b", "c")] is Ordering.EQUAL


class TestFigure4:
    def test_stamps_match_paper(self):
        result = figure4_stamps()
        assert result.matches_paper(), result.mismatches()

    def test_every_expected_value_is_produced(self):
        result = figure4_stamps()
        for key in FIGURE4_EXPECTED:
            assert key in result.stamps

    def test_simplification_chain(self):
        stamps = figure4_stamps().stamps
        assert stamps["g1_unreduced"] == "[1 | 00+01+1]"
        assert stamps["g1_one_step"] == "[1 | 0+1]"
        assert stamps["g1_normal_form"] == "[ε | ε]"

    def test_mismatches_empty_when_matching(self):
        assert figure4_stamps().mismatches() == {}
