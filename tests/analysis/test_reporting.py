"""Tests for the experiment reporting helpers."""

from repro.analysis.reporting import ExperimentReport, ExperimentRow, render_reports


class TestExperimentReport:
    def test_add_with_default_match(self):
        report = ExperimentReport("FIG1", "Figure 1")
        report.add("vectors", [1, 2], [1, 2])
        assert report.ok
        assert report.rows[0].matches

    def test_add_with_explicit_match(self):
        report = ExperimentReport("SPACE", "Space usage")
        report.add("stamps smaller than vectors", "yes", "120 < 340 bits", matches=True)
        assert report.ok

    def test_mismatch_detected(self):
        report = ExperimentReport("FIG4", "Figure 4")
        report.add("g1", "[1 | 00+01+1]", "[1 | 0+1]")
        assert not report.ok
        assert "DIFF" in report.rows[0].render()

    def test_render_includes_status_and_notes(self):
        report = ExperimentReport("FIG1", "Figure 1")
        report.add("value", 1, 1)
        report.note("run with default parameters")
        text = report.render()
        assert "REPRODUCED" in text
        assert "note: run with default parameters" in text

    def test_render_reports_joins_blocks(self):
        first = ExperimentReport("A", "first")
        second = ExperimentReport("B", "second")
        text = render_reports([first, second])
        assert "A: first" in text
        assert "B: second" in text


class TestExperimentRow:
    def test_render_ok(self):
        row = ExperimentRow("quantity", "1", "1", True)
        assert "[OK ]" in row.render()

    def test_render_diff(self):
        row = ExperimentRow("quantity", "1", "2", False)
        assert "[DIFF]" in row.render()
