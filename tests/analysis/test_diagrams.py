"""Tests for the ASCII trace diagrams."""

import pytest

from repro.analysis.diagrams import render_trace, trace_timeline
from repro.analysis.figures import figure2_trace
from repro.sim.trace import Operation, Trace
from repro.sim.workload import random_dynamic_trace


class TestTraceTimeline:
    def test_seed_lifetime(self):
        trace = Trace(seed="a", operations=(Operation.update("a", "a2"),))
        lifetimes = {label: (born, died) for label, born, died, _origin in trace_timeline(trace)}
        assert lifetimes["a"] == (0, 1)
        assert lifetimes["a2"][0] == 1

    def test_origins_recorded(self):
        trace = figure2_trace()
        origins = {label: origin for label, _born, _died, origin in trace_timeline(trace)}
        assert origins["a1"] is None
        assert origins["b1"] == "a2"
        assert origins["g1"] == "d1"

    def test_survivors_die_after_last_step(self):
        trace = figure2_trace()
        lifetimes = {label: died for label, _born, died, _origin in trace_timeline(trace)}
        assert lifetimes["g1"] == len(trace.operations) + 1


class TestRenderTrace:
    def test_contains_every_operation(self):
        text = render_trace(figure2_trace())
        assert "fork" in text
        assert "join" in text
        assert "final frontier: g1" in text

    def test_stamp_annotations_present(self):
        text = render_trace(figure2_trace(), annotate="stamps-nonreducing")
        assert "[1 | 00+01+1]" in text

    def test_reducing_annotations(self):
        text = render_trace(figure2_trace(), annotate="stamps")
        assert "g1=[ε | ε]" in text

    def test_no_annotations(self):
        text = render_trace(figure2_trace(), annotate="none")
        assert "[ε" not in text

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            render_trace(figure2_trace(), annotate="vectors")

    def test_width_limit_respected(self):
        trace = random_dynamic_trace(60, seed=3)
        text = render_trace(trace, width=80)
        assert all(len(line) <= 80 for line in text.splitlines())

    def test_handles_sync_operations(self):
        trace = Trace(
            seed="a",
            operations=(
                Operation.fork("a", "b", "c"),
                Operation.sync("b", "c", "b2", "c2"),
            ),
        )
        text = render_trace(trace)
        assert "sync" in text
