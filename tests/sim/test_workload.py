"""Unit tests for the workload generators."""

import pytest

from repro.core.errors import SimulationError
from repro.sim.trace import OpKind, validate_trace
from repro.sim.workload import (
    churn_trace,
    fixed_replica_trace,
    partitioned_trace,
    random_dynamic_trace,
    sync_chain_trace,
)


class TestRandomDynamicTrace:
    def test_produces_requested_operation_count(self):
        assert len(random_dynamic_trace(40, seed=1)) == 40

    def test_deterministic_for_same_seed(self):
        assert random_dynamic_trace(30, seed=5) == random_dynamic_trace(30, seed=5)

    def test_different_seeds_differ(self):
        assert random_dynamic_trace(30, seed=1) != random_dynamic_trace(30, seed=2)

    def test_respects_max_frontier(self):
        trace = random_dynamic_trace(200, seed=3, max_frontier=4)
        assert trace.max_frontier_width() <= 4

    def test_all_traces_are_valid(self):
        for seed in range(10):
            validate_trace(random_dynamic_trace(50, seed=seed))

    def test_pure_update_workload(self):
        trace = random_dynamic_trace(20, seed=1, fork_weight=0, join_weight=0)
        assert trace.update_count() == 20

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SimulationError):
            random_dynamic_trace(-1)
        with pytest.raises(SimulationError):
            random_dynamic_trace(10, update_weight=0, fork_weight=0, join_weight=0)
        with pytest.raises(SimulationError):
            random_dynamic_trace(10, max_frontier=0)
        with pytest.raises(SimulationError):
            random_dynamic_trace(10, update_weight=-1)

    def test_name_defaults_to_parameters(self):
        assert "seed=7" in random_dynamic_trace(5, seed=7).name


class TestFixedReplicaTrace:
    def test_builds_requested_replica_count(self):
        trace = fixed_replica_trace(5, 0, seed=1)
        assert len(trace.final_frontier()) == 5

    def test_keeps_replica_count_constant(self):
        trace = fixed_replica_trace(4, 50, seed=2)
        assert len(trace.final_frontier()) == 4
        assert trace.max_frontier_width() == 4

    def test_contains_updates_and_syncs(self):
        trace = fixed_replica_trace(3, 60, seed=3, update_probability=0.5)
        kinds = {operation.kind for operation in trace}
        assert OpKind.UPDATE in kinds
        assert OpKind.SYNC in kinds

    def test_single_replica_only_updates(self):
        trace = fixed_replica_trace(1, 10, seed=1)
        assert trace.update_count() == 10

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SimulationError):
            fixed_replica_trace(0, 10)
        with pytest.raises(SimulationError):
            fixed_replica_trace(3, 10, update_probability=2.0)

    def test_valid_trace(self):
        validate_trace(fixed_replica_trace(6, 80, seed=9))


class TestPartitionedTrace:
    def test_valid_trace(self):
        validate_trace(partitioned_trace(seed=1))

    def test_heals_to_small_final_frontier(self):
        trace = partitioned_trace(
            initial_replicas=4, partitions=2, phases=2, operations_per_phase=10, seed=4
        )
        # After healing, partitions collapse to representatives which are
        # synchronized pairwise: the final frontier has exactly 2 elements.
        assert len(trace.final_frontier()) == 2

    def test_contains_in_partition_replica_creation(self):
        trace = partitioned_trace(creation_probability=0.9, seed=5)
        assert trace.fork_count() > 3

    def test_deterministic(self):
        assert partitioned_trace(seed=6) == partitioned_trace(seed=6)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SimulationError):
            partitioned_trace(partitions=0)
        with pytest.raises(SimulationError):
            partitioned_trace(initial_replicas=1, partitions=2)


class TestChurnTrace:
    def test_valid_trace(self):
        validate_trace(churn_trace(100, seed=1))

    def test_oscillates_around_target(self):
        trace = churn_trace(200, seed=2, target_frontier=6)
        assert trace.max_frontier_width() <= 6 + 2

    def test_mixes_forks_and_joins(self):
        trace = churn_trace(100, seed=3)
        assert trace.fork_count() > 10
        assert trace.join_count() > 5

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SimulationError):
            churn_trace(10, target_frontier=0)

    def test_deterministic(self):
        assert churn_trace(50, seed=4) == churn_trace(50, seed=4)


class TestSyncChainTrace:
    def test_exact_operation_count(self):
        for operations in (10, 57, 300):
            assert len(sync_chain_trace(operations, replicas=4, seed=1)) == operations

    def test_valid_traces(self):
        for seed in range(5):
            validate_trace(sync_chain_trace(80, replicas=5, seed=seed))

    def test_deterministic(self):
        assert sync_chain_trace(60, seed=9) == sync_chain_trace(60, seed=9)

    def test_frontier_width_is_the_ring(self):
        trace = sync_chain_trace(120, replicas=6, seed=2)
        assert trace.max_frontier_width() == 6
        assert len(trace.final_frontier()) == 6

    def test_only_ring_forks_then_updates_and_syncs(self):
        trace = sync_chain_trace(100, replicas=4, seed=3)
        kinds = [operation.kind for operation in trace.operations]
        assert kinds[: 3] == [OpKind.FORK] * 3
        assert set(kinds[3:]) <= {OpKind.UPDATE, OpKind.SYNC}
        assert OpKind.SYNC in kinds[3:]

    def test_no_updates_when_probability_zero(self):
        trace = sync_chain_trace(50, replicas=4, seed=4, update_probability=0.0)
        assert trace.update_count() == 0

    def test_starves_sibling_collapse(self):
        """The pathology the generator exists to trigger: raw reducing
        stamps grow every ring round instead of collapsing."""
        from repro.core.frontier import Frontier
        from repro.sim.trace import apply_operation

        trace = sync_chain_trace(40, replicas=4, seed=5)
        frontier = Frontier.initial(trace.seed)
        growth = []
        for operation in trace.operations:
            apply_operation(frontier, operation)
            growth.append(frontier.max_stamp_bits())
        # Strictly escalating by ring rounds: each quartile *window* of the
        # trace peaks above the previous one (prefix maxima would be
        # trivially sorted), and the overall blow-up is orders of magnitude.
        quarter = len(growth) // 4
        windows = [
            max(growth[index * quarter: (index + 1) * quarter])
            for index in range(4)
        ]
        assert all(late > early for early, late in zip(windows, windows[1:]))
        assert windows[-1] > 50 * windows[0]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SimulationError):
            sync_chain_trace(10, replicas=2)
        with pytest.raises(SimulationError):
            sync_chain_trace(-1)
        with pytest.raises(SimulationError):
            sync_chain_trace(10, update_probability=1.5)
