"""Unit tests for the lockstep runner and its mechanism adapters."""

import pytest

from repro.core.order import Ordering
from repro.kernel.adapters import (
    CausalAdapter,
    DynamicVVAdapter,
    ITCAdapter,
    PlausibleAdapter,
    RefCausalAdapter,
    StampAdapter,
    default_adapters,
)
from repro.sim.runner import AgreementReport, LockstepRunner, SizeSample
from repro.sim.trace import Operation, Trace
from repro.sim.workload import fixed_replica_trace, random_dynamic_trace


FIGURE2_TRACE = Trace(
    seed="a1",
    operations=(
        Operation.update("a1", "a2"),
        Operation.fork("a2", "b1", "c1"),
        Operation.update("c1", "c2"),
        Operation.fork("b1", "d1", "e1"),
        Operation.update("c2", "c3"),
        Operation.join("e1", "c3", "f1"),
        Operation.join("d1", "f1", "g1"),
    ),
    name="figure-2",
)

ADAPTER_FACTORIES = [
    pytest.param(lambda: StampAdapter(reducing=True), id="stamps-reducing"),
    pytest.param(lambda: StampAdapter(reducing=False), id="stamps-nonreducing"),
    pytest.param(lambda: DynamicVVAdapter(), id="dynamic-vv"),
    pytest.param(lambda: ITCAdapter(), id="itc"),
    pytest.param(lambda: CausalAdapter(), id="causal"),
    pytest.param(lambda: RefCausalAdapter(), id="causal-ref"),
]


@pytest.mark.parametrize("factory", ADAPTER_FACTORIES)
class TestAdapterContract:
    def test_replays_figure2_and_tracks_frontier(self, factory):
        adapter = factory()
        adapter.start(FIGURE2_TRACE.seed)
        for operation in FIGURE2_TRACE.operations:
            adapter.apply(operation)
        assert set(adapter.labels()) == {"g1"}

    def test_compare_after_divergence(self, factory):
        adapter = factory()
        adapter.start("a")
        adapter.apply(Operation.fork("a", "b", "c"))
        adapter.apply(Operation.update("b", "b2"))
        assert adapter.compare("b2", "c") is Ordering.AFTER
        assert adapter.compare("c", "b2") is Ordering.BEFORE

    def test_size_is_non_negative(self, factory):
        adapter = factory()
        adapter.start("a")
        assert adapter.size_in_bits("a") >= 0

    def test_invariant_self_check_passes(self, factory):
        adapter = factory()
        adapter.start("a")
        adapter.apply(Operation.fork("a", "b", "c"))
        assert adapter.check_invariants()


class TestAgreementReport:
    def test_record_agreement(self):
        report = AgreementReport("m")
        report.record(Ordering.EQUAL, Ordering.EQUAL)
        assert report.agreements == 1
        assert report.agreement_rate == 1.0

    def test_record_missed_and_false_conflicts(self):
        report = AgreementReport("m")
        report.record(Ordering.CONCURRENT, Ordering.BEFORE)
        report.record(Ordering.AFTER, Ordering.CONCURRENT)
        report.record(Ordering.AFTER, Ordering.BEFORE)
        assert report.missed_conflicts == 1
        assert report.false_conflicts == 1
        assert report.other_disagreements == 1
        assert report.agreement_rate == 0.0

    def test_empty_report_rate_is_one(self):
        assert AgreementReport("m").agreement_rate == 1.0

    def test_str(self):
        report = AgreementReport("m")
        report.record(Ordering.EQUAL, Ordering.EQUAL)
        assert "m:" in str(report)


class TestSizeSample:
    def test_records_means_and_peaks(self):
        sample = SizeSample("m")
        sample.record([2, 4])
        sample.record([10, 20, 30])
        assert sample.per_step_mean_bits == [3.0, 20.0]
        assert sample.peak_bits == 30
        assert sample.final_mean_bits == 20.0
        assert sample.overall_mean_bits == pytest.approx(11.5)

    def test_empty_sample(self):
        sample = SizeSample("m")
        assert sample.final_mean_bits == 0.0
        assert sample.peak_bits == 0

    def test_ignores_empty_measurements(self):
        sample = SizeSample("m")
        sample.record([])
        assert sample.per_step_mean_bits == []


class TestLockstepRunner:
    def test_default_adapters(self):
        names = {adapter.name for adapter in default_adapters()}
        assert "version-stamps" in names
        assert "version-stamps-nonreducing" in names
        assert "dynamic-version-vectors" in names
        assert "interval-tree-clocks" in names

    def test_plausible_adapter_optional(self):
        names = {adapter.name for adapter in default_adapters(include_plausible=True)}
        assert any(name.startswith("plausible") for name in names)

    def test_figure2_full_agreement(self):
        runner = LockstepRunner()
        reports, _sizes = runner.run(FIGURE2_TRACE)
        for report in reports.values():
            assert report.agreement_rate == 1.0
            assert report.invariant_failures == 0

    def test_random_trace_full_agreement_for_exact_mechanisms(self):
        trace = random_dynamic_trace(60, seed=11, max_frontier=8)
        runner = LockstepRunner()
        reports, _sizes = runner.run(trace)
        for report in reports.values():
            assert report.agreement_rate == 1.0

    def test_plausible_clocks_miss_conflicts_on_wide_frontiers(self):
        trace = fixed_replica_trace(8, 120, seed=13)
        runner = LockstepRunner([PlausibleAdapter(entries=2)])
        reports, _sizes = runner.run(trace)
        report = next(iter(reports.values()))
        assert report.missed_conflicts > 0
        assert report.false_conflicts == 0

    def test_sizes_are_collected_for_every_mechanism(self):
        trace = random_dynamic_trace(30, seed=7)
        runner = LockstepRunner()
        _reports, sizes = runner.run(trace)
        assert "causal-history" in sizes
        for sample in sizes.values():
            assert sample.final_mean_bits > 0

    def test_compare_only_at_end(self):
        trace = random_dynamic_trace(30, seed=9)
        runner = LockstepRunner(compare_every_step=False)
        reports, sizes = runner.run(trace)
        for report in reports.values():
            assert report.agreement_rate == 1.0
        # Only one measurement point recorded.
        for sample in sizes.values():
            assert len(sample.per_step_mean_bits) == 1

    def test_empty_trace(self):
        trace = Trace(seed="a", operations=())
        reports, sizes = LockstepRunner().run(trace)
        for report in reports.values():
            assert report.comparisons == 0

    def test_ref_oracle_full_agreement(self):
        runner = LockstepRunner(oracle=RefCausalAdapter())
        reports, sizes = runner.run(FIGURE2_TRACE)
        assert "causal-history-ref" in sizes
        for report in reports.values():
            assert report.agreement_rate == 1.0

    def test_seed_strategy_matches_incremental(self):
        trace = random_dynamic_trace(60, seed=11, max_frontier=8)
        incremental, _ = LockstepRunner(incremental=True).run(trace)
        rescan, _ = LockstepRunner(incremental=False).run(trace)
        assert incremental == rescan

    def test_recycled_labels_not_served_from_stale_cache(self):
        # Syncs that reuse their operands' labels recycle "b" and "c" on
        # every step; with compare_every_step=False the caches are only
        # populated at the end, and invalidation must still have dropped
        # anything cached for the recycled labels along the way.
        operations = [Operation.fork("a", "b", "c")]
        for _ in range(6):
            operations.append(Operation.update("b", "b"))
            operations.append(Operation.sync("b", "c", "b", "c"))
        trace = Trace(seed="a", operations=tuple(operations))
        for compare_every_step in (True, False):
            runner = LockstepRunner(compare_every_step=compare_every_step)
            reports, _ = runner.run(trace)
            for report in reports.values():
                assert report.agreement_rate == 1.0

    def test_direction_inconsistent_adapter_is_caught(self):
        # The incremental strategy stores only canonical pairs, but it must
        # still measure the mechanism in both argument orders: an adapter
        # whose compare ignores argument order has to show up as a
        # disagreement, exactly as it does under the seed strategy.
        class OneDirectionAdapter(StampAdapter):
            name = "one-direction"

            def compare(self, first, second):
                first, second = sorted((first, second))
                return super().compare(first, second)

        trace = Trace(
            seed="a",
            operations=(
                Operation.fork("a", "b", "c"),
                Operation.update("b", "b2"),
            ),
        )
        for incremental in (True, False):
            adapter = OneDirectionAdapter()
            adapter.name = "one-direction"
            runner = LockstepRunner(
                [adapter], incremental=incremental, check_invariants=False
            )
            reports, _ = runner.run(trace)
            assert reports["one-direction"].agreement_rate < 1.0, incremental

    def test_reverse_index_consistent_with_matrices(self):
        trace = random_dynamic_trace(40, seed=3, max_frontier=6)
        runner = LockstepRunner()
        runner.run(trace)
        for name, matrix in runner._matrices.items():
            index = runner._pair_index[name]
            for pair in matrix:
                assert pair[0] < pair[1]  # canonical storage
                assert pair in index[pair[0]]
                assert pair in index[pair[1]]
