"""Tests for the virtual-time event loop (:mod:`repro.sim.scheduler`)."""

import asyncio
import time

import pytest

from repro.sim.scheduler import VirtualTimeLoop, run_virtual


class TestVirtualTimeLoop:
    def test_clock_starts_at_zero(self):
        loop = VirtualTimeLoop()
        try:
            assert loop.time() == 0.0
            assert loop.virtual_now == 0.0
        finally:
            loop.close()

    def test_sleep_advances_virtual_not_wall_time(self):
        async def main():
            loop = asyncio.get_running_loop()
            await asyncio.sleep(3600.0)
            return loop.time()

        wall_start = time.monotonic()
        virtual_end, elapsed = run_virtual(main())
        wall = time.monotonic() - wall_start
        assert virtual_end == pytest.approx(3600.0)
        assert elapsed == pytest.approx(3600.0)
        # An hour of simulated time must cost (far) less than a second.
        assert wall < 1.0

    def test_concurrent_sleepers_overlap(self):
        async def sleeper(seconds):
            await asyncio.sleep(seconds)

        async def main():
            await asyncio.gather(*(sleeper(10.0) for _ in range(50)))

        _, elapsed = run_virtual(main())
        # Fifty concurrent 10s sleeps take 10 virtual seconds, not 500.
        assert elapsed == pytest.approx(10.0)

    def test_timer_ordering_is_deterministic(self):
        def trace_run():
            events = []

            async def task(name, delay):
                await asyncio.sleep(delay)
                events.append((name, asyncio.get_running_loop().time()))

            async def main():
                await asyncio.gather(
                    task("c", 0.3), task("a", 0.1), task("b", 0.2), task("a2", 0.1)
                )

            run_virtual(main())
            return events

        first = trace_run()
        second = trace_run()
        assert first == second
        assert [name for name, _ in first] == ["a", "a2", "b", "c"]

    def test_nested_sleeps_accumulate(self):
        async def main():
            for _ in range(1000):
                await asyncio.sleep(0.5)
            return asyncio.get_running_loop().time()

        virtual_end, elapsed = run_virtual(main())
        assert virtual_end == pytest.approx(500.0)
        assert elapsed == pytest.approx(500.0)

    def test_result_is_returned(self):
        async def main():
            await asyncio.sleep(1.0)
            return "done"

        result, _ = run_virtual(main())
        assert result == "done"

    def test_run_virtual_restores_event_loop_policy(self):
        async def main():
            return 1

        run_virtual(main())
        # No dangling loop is left installed.
        with pytest.raises(RuntimeError):
            asyncio.get_running_loop()
