"""Unit tests for the metrics helpers used by the benchmarks."""

import pytest

from repro.core.names import Name
from repro.core.reduction import reduce_stamp_pair
from repro.sim.metrics import ReductionAccumulator, Summary, SweepTable, summarize


class TestSummarize:
    def test_basic_statistics(self):
        summary = summarize([1, 2, 3, 4])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.minimum == 1
        assert summary.maximum == 4
        assert summary.stdev > 0

    def test_single_value(self):
        summary = summarize([7])
        assert summary.stdev == 0.0
        assert summary.mean == 7

    def test_empty_sample(self):
        summary = summarize([])
        assert summary == Summary(0, 0.0, 0.0, 0.0, 0.0)

    def test_str(self):
        assert "mean=" in str(summarize([1, 2]))


class TestReductionAccumulator:
    def test_accumulates_join_statistics(self):
        accumulator = ReductionAccumulator()
        _u, _i, reduced = reduce_stamp_pair(Name.of("1"), Name.of("00", "01", "1"))
        _u, _i, not_reduced = reduce_stamp_pair(Name.of("0"), Name.of("0", "11"))
        accumulator.record(reduced)
        accumulator.record(not_reduced)
        assert accumulator.joins == 2
        assert accumulator.joins_reduced == 1
        assert accumulator.reduction_rate == 0.5
        assert accumulator.mean_steps == 1.0
        assert 0 < accumulator.bits_saved_fraction < 1

    def test_empty_accumulator(self):
        accumulator = ReductionAccumulator()
        assert accumulator.reduction_rate == 0.0
        assert accumulator.mean_steps == 0.0
        assert accumulator.bits_saved_fraction == 0.0


class TestSweepTable:
    def test_add_rows_and_render(self):
        table = SweepTable(["x", "y"])
        table.add_row(x=1, y=2.5)
        table.add_row(x=10, y=0.125)
        text = table.render(title="sweep")
        assert "sweep" in text
        assert "x" in text and "y" in text
        assert "2.500" in text
        assert "10" in text

    def test_unknown_column_rejected(self):
        table = SweepTable(["x"])
        with pytest.raises(KeyError):
            table.add_row(z=1)

    def test_column_extraction(self):
        table = SweepTable(["x", "y"])
        table.add_row(x=1, y=2)
        table.add_row(x=3)
        assert table.column("x") == [1, 3]
        assert table.column("y") == [2, None]
        with pytest.raises(KeyError):
            table.column("z")

    def test_render_empty_table(self):
        table = SweepTable(["only"])
        assert "only" in table.render()
