"""Soak test: re-rooting GC keeps unbounded sync-chain traces bounded.

The acceptance bar for the re-rooting subsystem: a 2,000-step
sibling-starved sync chain (:func:`repro.sim.workload.sync_chain_trace`)
must keep every stamp below a fixed size bound with re-rooting on -- flat
after the first re-root, cross-checked against the causal-history oracle on
every step -- while the same trace *without* re-rooting blows past the
bound within a few ring rounds (raw growth is exponential: the full raw
replay would be astronomically large, so the divergence arm stops as soon
as the bound is crossed).
"""

import pytest

from repro.core.frontier import Frontier
from repro.kernel.adapters import RerootingStampAdapter
from repro.sim.runner import LockstepRunner
from repro.sim.trace import apply_operation
from repro.sim.workload import sync_chain_trace

SOAK_STEPS = 2000
REPLICAS = 4
THRESHOLD_BITS = 256
SOAK_SEED = 7


@pytest.fixture(scope="module")
def soak_trace():
    trace = sync_chain_trace(SOAK_STEPS, replicas=REPLICAS, seed=SOAK_SEED)
    assert len(trace) == SOAK_STEPS
    return trace


class TestSoakWithRerooting:
    def test_bounded_and_oracle_exact_for_2000_steps(self, soak_trace):
        """GC'd stamps stay bounded and causally exact over the whole soak.

        The lockstep runner cross-checks the re-rooted frontier against the
        causal-history oracle after *every* step and runs the I1-I3
        invariant checker throughout, so a single ordering disturbed by any
        of the hundreds of re-roots would fail the agreement assertion.
        """
        adapter = RerootingStampAdapter(threshold=THRESHOLD_BITS)
        runner = LockstepRunner(
            [adapter], compare_every_step=True, check_invariants=True
        )
        reports, sizes = runner.run(soak_trace)
        report = reports[adapter.name]
        assert report.comparisons > 0
        assert report.agreement_rate == 1.0
        assert report.invariant_failures == 0
        # The GC had to fire many times to keep a 2,000-step chain bounded.
        assert adapter.reroots_performed > 50

        sample = sizes[adapter.name]
        assert sample.peak_bits <= THRESHOLD_BITS
        # Flat after the first re-root: the maximum over any late window
        # matches the global bound instead of creeping upward.
        per_step_max = sample.per_step_max_bits
        first_quarter = max(per_step_max[: len(per_step_max) // 4])
        last_quarter = max(per_step_max[-len(per_step_max) // 4:])
        assert last_quarter <= first_quarter + THRESHOLD_BITS // 4

    def test_every_reroot_preserves_the_ordering_matrix(self, soak_trace):
        """Before/after matrices are compared at every single re-root.

        Replays the soak trace with the automatic trigger disabled and
        fires the re-root manually at the same size threshold, snapshotting
        the full pairwise ordering matrix immediately before and after each
        collection.  (The frontier drops its comparison cache on re-root,
        so the after-matrix is honestly recomputed.)
        """
        frontier = Frontier.initial(soak_trace.seed)
        reroots = 0
        for operation in soak_trace.operations:
            apply_operation(frontier, operation)
            if frontier.max_stamp_bits() > THRESHOLD_BITS:
                before = frontier.ordering_matrix()
                frontier.reroot()
                assert frontier.ordering_matrix() == before
                reroots += 1
        assert reroots > 50


class TestSoakWithoutRerooting:
    def test_raw_stamps_blow_past_the_bound(self, soak_trace):
        """The same trace without GC exceeds the bound almost immediately.

        Raw sync-chain growth is exponential (the string count compounds
        every ring round), so the no-GC arm is replayed only until it
        crosses the bound: letting it run the full 2,000 steps would need
        astronomically more memory than exists.  Crossing within the first
        few percent of the trace is the divergence the GC removes.
        """
        frontier = Frontier.initial(soak_trace.seed)
        crossed_at = None
        for index, operation in enumerate(soak_trace.operations):
            apply_operation(frontier, operation)
            if frontier.max_stamp_bits() > THRESHOLD_BITS:
                crossed_at = index + 1
                break
        assert crossed_at is not None, "raw stamps never crossed the bound"
        assert crossed_at <= SOAK_STEPS // 20
        # ... and it keeps compounding: a few more ring rounds multiply the
        # largest stamp far beyond the bound, it does not plateau.
        for operation in soak_trace.operations[crossed_at: crossed_at + 30]:
            apply_operation(frontier, operation)
        assert frontier.max_stamp_bits() > 10 * THRESHOLD_BITS
