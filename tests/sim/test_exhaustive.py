"""Tests for the exhaustive model checker (bounded verification of Prop. 5.1)."""

import pytest

from repro.sim.exhaustive import ExhaustiveReport, explore


class TestExplore:
    def test_depth_three_universe_is_clean(self):
        report = explore(3, max_frontier=3, check_subsets=True)
        assert report.ok
        assert report.invariant_violations == 0
        assert report.pairwise_disagreements == 0
        assert report.subset_disagreements == 0
        assert report.configurations_checked > 10

    def test_depth_four_pairwise_only(self):
        report = explore(4, max_frontier=3, check_subsets=False)
        assert report.ok
        assert report.executions_completed > 0

    def test_report_str(self):
        report = explore(2, max_frontier=2)
        assert "OK" in str(report)
        assert "configurations" in str(report)

    def test_zero_depth(self):
        report = explore(0)
        assert report.configurations_checked == 1
        assert report.ok

    def test_configuration_count_grows_with_depth(self):
        shallow = explore(2, max_frontier=3, check_subsets=False)
        deep = explore(3, max_frontier=3, check_subsets=False)
        assert deep.configurations_checked > shallow.configurations_checked

    def test_frontier_cap_limits_growth(self):
        wide = explore(3, max_frontier=4, check_subsets=False)
        narrow = explore(3, max_frontier=2, check_subsets=False)
        assert narrow.configurations_checked < wide.configurations_checked


class TestReport:
    def test_ok_requires_all_zero(self):
        report = ExhaustiveReport()
        assert report.ok
        report.pairwise_disagreements = 1
        assert not report.ok

    def test_violations_reported_in_str(self):
        report = ExhaustiveReport(max_operations=2)
        report.invariant_violations = 3
        assert "VIOLATIONS" in str(report)
