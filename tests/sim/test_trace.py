"""Unit tests for the trace language."""

import pytest

from repro.core.errors import SimulationError
from repro.sim.trace import OpKind, Operation, Trace, validate_trace


class TestOperation:
    def test_update_constructor(self):
        operation = Operation.update("a", "a2")
        assert operation.kind == OpKind.UPDATE
        assert operation.consumed() == ("a",)
        assert operation.results == ("a2",)

    def test_fork_constructor(self):
        operation = Operation.fork("a", "b", "c")
        assert operation.kind == OpKind.FORK
        assert operation.results == ("b", "c")

    def test_join_constructor(self):
        operation = Operation.join("a", "b", "ab")
        assert operation.consumed() == ("a", "b")

    def test_sync_constructor(self):
        operation = Operation.sync("a", "b", "a2", "b2")
        assert operation.kind == OpKind.SYNC
        assert operation.results == ("a2", "b2")

    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError):
            Operation("teleport", "a", None, ("b",))

    def test_wrong_result_count_rejected(self):
        with pytest.raises(SimulationError):
            Operation(OpKind.FORK, "a", None, ("b",))
        with pytest.raises(SimulationError):
            Operation(OpKind.UPDATE, "a", None, ("b", "c"))

    def test_join_requires_second_element(self):
        with pytest.raises(SimulationError):
            Operation(OpKind.JOIN, "a", None, ("b",))

    def test_update_rejects_second_element(self):
        with pytest.raises(SimulationError):
            Operation(OpKind.UPDATE, "a", "b", ("c",))

    def test_str(self):
        assert str(Operation.join("a", "b", "c")) == "join(a, b) -> c"
        assert str(Operation.update("a", "a2")) == "update(a) -> a2"


class TestTrace:
    def _simple_trace(self):
        return Trace(
            seed="a",
            operations=(
                Operation.update("a", "a2"),
                Operation.fork("a2", "b", "c"),
                Operation.update("b", "b2"),
                Operation.join("b2", "c", "d"),
            ),
            name="simple",
        )

    def test_counts(self):
        trace = self._simple_trace()
        assert len(trace) == 4
        assert trace.update_count() == 2
        assert trace.fork_count() == 1
        assert trace.join_count() == 1

    def test_sync_counts_as_fork_and_join(self):
        trace = Trace(
            seed="a",
            operations=(
                Operation.fork("a", "b", "c"),
                Operation.sync("b", "c", "b2", "c2"),
            ),
        )
        assert trace.fork_count() == 2
        assert trace.join_count() == 1

    def test_final_frontier(self):
        assert self._simple_trace().final_frontier() == {"d"}

    def test_max_frontier_width(self):
        assert self._simple_trace().max_frontier_width() == 2

    def test_iteration(self):
        assert [op.kind for op in self._simple_trace()] == [
            OpKind.UPDATE,
            OpKind.FORK,
            OpKind.UPDATE,
            OpKind.JOIN,
        ]

    def test_describe_mentions_operations(self):
        description = self._simple_trace().describe()
        assert "simple" in description
        assert "fork(a2)" in description


class TestValidation:
    def test_dead_element_rejected(self):
        with pytest.raises(SimulationError):
            Trace(
                seed="a",
                operations=(
                    Operation.update("a", "a2"),
                    Operation.update("a", "a3"),  # 'a' no longer alive
                ),
            )

    def test_unknown_element_rejected(self):
        with pytest.raises(SimulationError):
            Trace(seed="a", operations=(Operation.update("ghost", "g2"),))

    def test_reused_label_rejected(self):
        with pytest.raises(SimulationError):
            Trace(
                seed="a",
                operations=(
                    Operation.fork("a", "b", "c"),
                    Operation.update("b", "c"),  # 'c' already alive
                ),
            )

    def test_label_can_be_recycled_by_its_own_operation(self):
        trace = Trace(
            seed="a",
            operations=(
                Operation.fork("a", "b", "c"),
                Operation.sync("b", "c", "b", "c"),
                Operation.update("b", "b"),
            ),
        )
        assert trace.final_frontier() == {"b", "c"}

    def test_empty_trace_is_valid(self):
        trace = Trace(seed="a", operations=())
        validate_trace(trace)
        assert trace.final_frontier() == {"a"}
