"""Unit tests for plausible clocks (the constant-size baseline)."""

import pytest

from repro.core.errors import ReplicationError
from repro.core.order import Ordering
from repro.vv.plausible import PlausibleClock


class TestConstruction:
    def test_defaults_to_zero_counters(self):
        clock = PlausibleClock(4, "a")
        assert clock.counters == (0, 0, 0, 0)

    def test_rejects_zero_entries(self):
        with pytest.raises(ReplicationError):
            PlausibleClock(0, "a")

    def test_rejects_wrong_counter_length(self):
        with pytest.raises(ReplicationError):
            PlausibleClock(2, "a", (1,))

    def test_slot_is_deterministic(self):
        assert PlausibleClock(4, "a").slot == PlausibleClock(4, "a").slot

    def test_immutable(self):
        clock = PlausibleClock(2, "a")
        with pytest.raises(AttributeError):
            clock.counters = (1, 1)


class TestSemantics:
    def test_update_increments_own_slot(self):
        clock = PlausibleClock(4, "a")
        updated = clock.update()
        assert sum(updated.counters) == 1
        assert updated.counters[clock.slot] == 1

    def test_merge_is_slotwise_max(self):
        left = PlausibleClock(2, "a", (2, 0))
        right = PlausibleClock(2, "b", (1, 3))
        assert left.merge(right).counters == (2, 3)

    def test_merge_requires_same_width(self):
        with pytest.raises(ReplicationError):
            PlausibleClock(2, "a").merge(PlausibleClock(3, "b"))

    def test_never_contradicts_causality(self):
        # If a happened before b (b saw a's updates), the clocks agree.
        a = PlausibleClock(4, "a").update()
        b = a.for_replica("b").update()
        assert a.compare(b) is Ordering.BEFORE

    def test_can_miss_conflicts(self):
        # Two distinct replicas hashing to the same slot look ordered even
        # though they are concurrent: the documented plausible-clock error.
        width = 1  # every replica shares the single slot
        a = PlausibleClock(width, "a").update().update()
        b = PlausibleClock(width, "b").update()
        assert a.compare(b) is not Ordering.CONCURRENT

    def test_for_replica_keeps_knowledge(self):
        clock = PlausibleClock(4, "a").update()
        other = clock.for_replica("b")
        assert other.counters == clock.counters
        assert other.replica_id == "b"

    def test_size_is_constant(self):
        small = PlausibleClock(4, "a")
        grown = small.update().update().update()
        assert small.size_in_bits() == grown.size_in_bits()
        assert small.size_in_bits(counter_bits=16) == 64
