"""Unit tests for the dynamic version-vector baseline."""

import pytest

from repro.core.errors import ReplicationError
from repro.core.order import Ordering
from repro.vv.dynamic_vv import DynamicVVElement, DynamicVVSystem
from repro.vv.id_source import CentralIdSource, IdAllocationError, PreassignedIdSource
from repro.vv.version_vector import VersionVector


class TestDynamicVVElement:
    def test_update_increments_own_entry(self):
        element = DynamicVVElement("r0", VersionVector())
        assert element.update().vector.get("r0") == 1

    def test_merge_from(self):
        left = DynamicVVElement("r0", VersionVector({"r0": 1}))
        right = DynamicVVElement("r1", VersionVector({"r1": 2}))
        merged = left.merge_from(right)
        assert merged.replica_id == "r0"
        assert merged.vector.counters == {"r0": 1, "r1": 2}

    def test_compare(self):
        left = DynamicVVElement("r0", VersionVector({"r0": 1}))
        right = DynamicVVElement("r1", VersionVector({"r1": 1}))
        assert left.compare(right) is Ordering.CONCURRENT

    def test_size_model_includes_own_id(self):
        element = DynamicVVElement("r0", VersionVector({"r0": 1}))
        assert element.size_in_bits(id_bits=10, counter_bits=10) == 10 + 20


class TestDynamicVVSystem:
    def test_initial_system(self):
        system = DynamicVVSystem.initial("a")
        assert system.labels() == ["a"]
        assert "a" in system

    def test_update_and_compare(self):
        system = DynamicVVSystem.initial("a")
        system.fork("a", "a", "b")
        system.update("a", "a")
        assert system.compare("a", "b") is Ordering.AFTER

    def test_fork_allocates_new_identifier(self):
        system = DynamicVVSystem.initial("a")
        system.fork("a", "a", "b")
        assert system.element("a").replica_id != system.element("b").replica_id

    def test_fork_fails_when_partitioned(self):
        system = DynamicVVSystem.initial("a")
        with pytest.raises(IdAllocationError):
            system.fork("a", "a", "b", connected=False)
        assert system.failed_forks == 1
        # The original element is untouched by the failed fork.
        assert system.labels() == ["a"]

    def test_join_retires_one_identifier(self):
        system = DynamicVVSystem.initial("a")
        system.fork("a", "a", "b")
        retired_id = system.element("b").replica_id
        system.join("a", "b", "ab")
        assert retired_id in system.retired_ids
        assert system.labels() == ["ab"]

    def test_join_merges_knowledge(self):
        system = DynamicVVSystem.initial("a")
        system.fork("a", "a", "b")
        system.update("a", "a")
        system.update("b", "b")
        system.join("a", "b", "ab")
        assert system.element("ab").vector.total_updates() == 2

    def test_sync_keeps_both_identities(self):
        system = DynamicVVSystem.initial("a")
        system.fork("a", "a", "b")
        system.update("a", "a")
        system.sync("a", "b")
        assert system.compare("a", "b") is Ordering.EQUAL
        assert len(system.labels()) == 2

    def test_self_join_rejected(self):
        system = DynamicVVSystem.initial("a")
        with pytest.raises(ReplicationError):
            system.join("a", "a")

    def test_unknown_element_rejected(self):
        system = DynamicVVSystem.initial("a")
        with pytest.raises(ReplicationError):
            system.update("zzz")

    def test_identifier_count_grows_with_forks(self):
        system = DynamicVVSystem.initial("a")
        system.fork("a", "a", "b")
        system.update("b", "b")
        system.fork("b", "b", "c")
        system.update("c", "c")
        assert system.identifier_count() >= 3

    def test_identifiers_linger_after_retirement_without_pruning(self):
        system = DynamicVVSystem.initial("a")
        system.fork("a", "a", "b")
        system.update("b", "b")
        system.join("a", "b", "ab")
        # The retired replica's counter stays in the vector.
        assert len(system.element("ab").vector.counters) == 1

    def test_pruning_removes_settled_retired_entries(self):
        system = DynamicVVSystem.initial("a", prune_on_join=True)
        system.fork("a", "a", "b")
        system.update("b", "b")
        system.join("a", "b", "ab")
        # Only one live replica, so the retired entry can be dropped.
        assert system.element("ab").vector.counters == {}

    def test_preassigned_pool_limits_replica_creation(self):
        system = DynamicVVSystem.initial("a", id_source=PreassignedIdSource(["r0", "r1"]))
        system.fork("a", "a", "b")
        with pytest.raises(IdAllocationError):
            system.fork("b", "b", "c")

    def test_ordering_matrix(self):
        system = DynamicVVSystem.initial("a")
        system.fork("a", "a", "b")
        system.update("a", "a")
        matrix = system.ordering_matrix()
        assert matrix[("a", "b")] is Ordering.AFTER

    def test_total_size_grows_with_replicas(self):
        system = DynamicVVSystem.initial("a")
        before = system.total_size_in_bits()
        system.fork("a", "a", "b")
        system.update("b", "b")
        assert system.total_size_in_bits() > before
