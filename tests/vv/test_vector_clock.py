"""Unit tests for Fidge/Mattern vector clocks."""

import pytest

from repro.core.errors import ReplicationError
from repro.core.order import Ordering
from repro.vv.vector_clock import ClockedProcess, VectorClock


class TestVectorClock:
    def test_tick_advances_own_entry(self):
        clock = VectorClock().tick("p")
        assert clock.get("p") == 1

    def test_send_behaves_like_tick(self):
        assert VectorClock().send("p") == VectorClock().tick("p")

    def test_receive_merges_then_ticks(self):
        sender = VectorClock().tick("p")
        receiver = VectorClock().receive("q", sender)
        assert receiver.get("p") == 1
        assert receiver.get("q") == 1

    def test_happened_before(self):
        first = VectorClock().tick("p")
        second = first.tick("p")
        assert first.happened_before(second)
        assert not second.happened_before(first)
        assert not first.happened_before(first)

    def test_concurrent_events(self):
        left = VectorClock().tick("p")
        right = VectorClock().tick("q")
        assert left.concurrent_with(right)

    def test_message_ordering_scenario(self):
        # p does a local event, sends to q; q's receive is causally after
        # p's send, while an independent event at r stays concurrent.
        p = VectorClock().tick("p")
        send = p.send("p")
        q = VectorClock().receive("q", send)
        r = VectorClock().tick("r")
        assert send.happened_before(q)
        assert q.compare(r) is Ordering.CONCURRENT


class TestClockedProcess:
    def test_requires_identifier(self):
        with pytest.raises(ReplicationError):
            ClockedProcess("")

    def test_local_event_advances_clock(self):
        process = ClockedProcess("p")
        process.local_event()
        assert process.clock.get("p") == 1

    def test_send_receive_round_trip(self):
        sender = ClockedProcess("p")
        receiver = ClockedProcess("q")
        message = sender.send_event()
        receiver.receive_event(message)
        assert message.happened_before(receiver.clock)

    def test_repr(self):
        assert "p" in repr(ClockedProcess("p"))
