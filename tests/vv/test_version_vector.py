"""Unit tests for classic version vectors."""

import pytest

from repro.core.errors import ReplicationError
from repro.core.order import Ordering
from repro.vv.version_vector import VersionVector


class TestConstruction:
    def test_empty_vector(self):
        vector = VersionVector()
        assert vector.get("a") == 0
        assert len(vector) == 0

    def test_zero_with_replica_set(self):
        vector = VersionVector.zero(["a", "b"])
        assert vector.as_list(["a", "b"]) == (0, 0)

    def test_zero_entries_are_dropped(self):
        vector = VersionVector({"a": 0, "b": 2})
        assert "a" not in vector.counters
        assert vector.get("b") == 2

    def test_negative_counter_rejected(self):
        with pytest.raises(ReplicationError):
            VersionVector({"a": -1})

    def test_non_integer_counter_rejected(self):
        with pytest.raises(ReplicationError):
            VersionVector({"a": 1.5})

    def test_immutable(self):
        vector = VersionVector({"a": 1})
        with pytest.raises(AttributeError):
            vector.counters = {}

    def test_equality_and_hash(self):
        assert VersionVector({"a": 1}) == VersionVector({"a": 1, "b": 0})
        assert hash(VersionVector({"a": 1})) == hash(VersionVector({"a": 1}))

    def test_as_list_renders_fixed_order(self):
        vector = VersionVector({"a": 2, "c": 1})
        assert vector.as_list(["a", "b", "c"]) == (2, 0, 1)


class TestEvolution:
    def test_increment(self):
        vector = VersionVector().increment("a").increment("a").increment("b")
        assert vector.get("a") == 2
        assert vector.get("b") == 1

    def test_increment_is_pure(self):
        vector = VersionVector()
        vector.increment("a")
        assert vector.get("a") == 0

    def test_merge_takes_entrywise_max(self):
        left = VersionVector({"a": 2, "b": 1})
        right = VersionVector({"a": 1, "c": 3})
        merged = left | right
        assert merged.counters == {"a": 2, "b": 1, "c": 3}

    def test_merge_commutative_idempotent(self):
        left = VersionVector({"a": 2})
        right = VersionVector({"b": 1})
        assert left.merge(right) == right.merge(left)
        assert left.merge(left) == left

    def test_without_drops_entry(self):
        vector = VersionVector({"a": 2, "b": 1}).without("a")
        assert vector.counters == {"b": 1}


class TestComparison:
    def test_equal(self):
        assert VersionVector({"a": 1}).compare(VersionVector({"a": 1})) is Ordering.EQUAL

    def test_dominance(self):
        old = VersionVector({"a": 1})
        new = VersionVector({"a": 1, "b": 1})
        assert old.compare(new) is Ordering.BEFORE
        assert new.compare(old) is Ordering.AFTER
        assert new.dominates(old)

    def test_concurrency(self):
        left = VersionVector({"a": 1})
        right = VersionVector({"b": 1})
        assert left.compare(right) is Ordering.CONCURRENT
        assert left.concurrent(right)

    def test_missing_entries_treated_as_zero(self):
        assert VersionVector({}).leq(VersionVector({"a": 5}))

    def test_lt_operator(self):
        assert VersionVector({"a": 1}) < VersionVector({"a": 2})
        assert not VersionVector({"a": 1}) < VersionVector({"a": 1})


class TestFigure1Semantics:
    """The comparison semantics exercised by Figure 1 of the paper."""

    def test_synchronized_replicas_are_equivalent(self):
        a = VersionVector().increment("A")
        b = VersionVector().merge(a)
        assert a.compare(b) is Ordering.EQUAL

    def test_concurrent_updates_are_inconsistent(self):
        a = VersionVector().increment("A")
        c = VersionVector().increment("C")
        assert a.compare(c) is Ordering.CONCURRENT

    def test_final_states_of_figure1(self):
        a = VersionVector({"A": 2})
        b = VersionVector({"A": 1, "C": 1})
        assert a.compare(b) is Ordering.CONCURRENT


class TestSizes:
    def test_total_updates(self):
        assert VersionVector({"a": 2, "b": 3}).total_updates() == 5

    def test_size_model(self):
        vector = VersionVector({"a": 1, "b": 1})
        assert vector.size_in_bits() == 2 * (64 + 32)
        assert vector.size_in_bits(id_bits=16, counter_bits=16) == 2 * 32
