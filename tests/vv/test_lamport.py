"""Unit tests for scalar Lamport clocks (the simplest baseline)."""

import pytest

from repro.core.errors import ReplicationError
from repro.core.order import Ordering
from repro.vv.lamport import LamportClock, LamportProcess


class TestLamportClock:
    def test_tick_increments(self):
        assert LamportClock(0, "p").tick().counter == 1

    def test_merge_takes_max_then_ticks(self):
        mine = LamportClock(3, "p")
        theirs = LamportClock(7, "q")
        assert mine.merge(theirs).counter == 8
        assert mine.merge(theirs).process == "p"

    def test_consistent_with_causality(self):
        sender = LamportClock(0, "p").tick()
        receiver = LamportClock(0, "q").merge(sender)
        assert sender.happened_before_or_equal(receiver)
        assert sender.counter < receiver.counter

    def test_compare_never_reports_concurrency(self):
        left = LamportClock(5, "p")
        right = LamportClock(5, "q")
        assert left.compare(right) in (Ordering.BEFORE, Ordering.AFTER)

    def test_compare_equal_only_for_same_process_and_counter(self):
        assert LamportClock(5, "p").compare(LamportClock(5, "p")) is Ordering.EQUAL

    def test_total_order_key(self):
        assert LamportClock(2, "a").total_order_key() < LamportClock(2, "b").total_order_key()
        assert LamportClock(1, "z").total_order_key() < LamportClock(2, "a").total_order_key()

    def test_size_is_constant(self):
        assert LamportClock(1, "p").size_in_bits() == LamportClock(999, "p").size_in_bits()


class TestLamportProcess:
    def test_requires_identifier(self):
        with pytest.raises(ReplicationError):
            LamportProcess("")

    def test_local_and_send_events(self):
        process = LamportProcess("p")
        process.local_event()
        stamp = process.send_event()
        assert stamp.counter == 2

    def test_receive_event(self):
        sender = LamportProcess("p")
        receiver = LamportProcess("q")
        message = sender.send_event()
        receiver.receive_event(message)
        assert receiver.clock.counter > message.counter

    def test_repr(self):
        assert "p" in repr(LamportProcess("p"))
