"""Unit tests for replica identifier allocation strategies."""

import random

import pytest

from repro.vv.id_source import (
    CentralIdSource,
    IdAllocationError,
    PreassignedIdSource,
    RandomIdSource,
)


class TestCentralIdSource:
    def test_allocates_sequential_ids(self):
        source = CentralIdSource()
        assert source.allocate() == "r0"
        assert source.allocate() == "r1"

    def test_refuses_when_disconnected(self):
        source = CentralIdSource()
        with pytest.raises(IdAllocationError):
            source.allocate(connected=False)
        assert source.refused == 1

    def test_requires_connectivity_flag(self):
        assert CentralIdSource().requires_connectivity

    def test_release_is_noop(self):
        source = CentralIdSource()
        identifier = source.allocate()
        source.release(identifier)
        assert source.allocate() != identifier


class TestRandomIdSource:
    def test_allocates_fixed_width_ids(self):
        source = RandomIdSource(bits=16, rng=random.Random(1))
        identifier = source.allocate()
        assert identifier.startswith("x")
        assert len(identifier) == 1 + 4  # 16 bits = 4 hex digits

    def test_does_not_require_connectivity(self):
        source = RandomIdSource(bits=16)
        assert not source.requires_connectivity
        assert source.allocate(connected=False)

    def test_collisions_are_counted(self):
        # A 1-bit identifier space collides almost immediately.
        source = RandomIdSource(bits=1, rng=random.Random(0))
        for _ in range(10):
            source.allocate()
        assert source.collisions > 0

    def test_rejects_non_positive_width(self):
        with pytest.raises(ValueError):
            RandomIdSource(bits=0)

    def test_bits_property(self):
        assert RandomIdSource(bits=8).bits == 8

    def test_default_is_deterministic(self):
        # Regression: the default used to be an unseeded random.Random(),
        # which made replica-id allocation unreproducible run to run.
        first = [RandomIdSource(bits=32).allocate() for _ in range(8)]
        second = [RandomIdSource(bits=32).allocate() for _ in range(8)]
        assert first == second

    def test_seed_replays_identically(self):
        for seed in (0, 1, 0xBEEF):
            first = RandomIdSource(bits=24, seed=seed)
            second = RandomIdSource(bits=24, seed=seed)
            assert [first.allocate() for _ in range(16)] == [
                second.allocate() for _ in range(16)
            ]

    def test_distinct_seeds_diverge(self):
        assert RandomIdSource(bits=32, seed=1).allocate() != RandomIdSource(
            bits=32, seed=2
        ).allocate()

    def test_rng_and_seed_are_mutually_exclusive(self):
        with pytest.raises(ValueError):
            RandomIdSource(bits=8, rng=random.Random(1), seed=2)


class TestPreassignedIdSource:
    def test_hands_out_pool_in_order(self):
        source = PreassignedIdSource(["a", "b"])
        assert source.allocate() == "a"
        assert source.allocate() == "b"

    def test_exhaustion_fails(self):
        source = PreassignedIdSource(["a"])
        source.allocate()
        with pytest.raises(IdAllocationError):
            source.allocate()

    def test_release_returns_to_pool(self):
        source = PreassignedIdSource(["a"])
        identifier = source.allocate()
        source.release(identifier)
        assert source.remaining == 1
        assert source.allocate() == "a"

    def test_duplicate_pool_rejected(self):
        with pytest.raises(ValueError):
            PreassignedIdSource(["a", "a"])
