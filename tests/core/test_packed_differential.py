"""Differential tests: packed-integer core vs the text-based reference.

The packed representation (:mod:`repro.core.bitstring`,
:mod:`repro.core.names`, the bottom-up :func:`repro.core.reduction.normalize`)
must be observationally identical to the retained seed implementation
(:mod:`repro.core.refimpl`): same normal forms, same orders, same sizes, same
reduction step counts.  These tests replay identical randomized
``update``/``fork``/``join``/``sync`` sequences through both and compare
everything observable.
"""

import random

import pytest

from repro.core.bitstring import BitString
from repro.core.names import Name, maximal_strings
from repro.core.reduction import normalize
from repro.core.refimpl import RefName, RefStamp, ref_maximal, ref_normalize
from repro.core.stamp import VersionStamp


def _random_texts(rng, count, max_length):
    return [
        "".join(rng.choice("01") for _ in range(rng.randint(0, max_length)))
        for _ in range(count)
    ]


class TestNameAlgebraEquivalence:
    @pytest.mark.parametrize("seed", range(20))
    def test_maximal_strings_match(self, seed):
        rng = random.Random(seed)
        texts = _random_texts(rng, rng.randint(0, 12), 8)
        packed = maximal_strings(BitString(t) for t in texts)
        reference = ref_maximal(texts)
        assert {s.text for s in packed} == set(reference)

    @pytest.mark.parametrize("seed", range(20))
    def test_order_and_join_match(self, seed):
        rng = random.Random(1000 + seed)
        left_texts = _random_texts(rng, rng.randint(0, 8), 6)
        right_texts = _random_texts(rng, rng.randint(0, 8), 6)
        packed_left = Name.from_down_set(BitString(t) for t in left_texts)
        packed_right = Name.from_down_set(BitString(t) for t in right_texts)
        ref_left = RefName(ref_maximal(left_texts))
        ref_right = RefName(ref_maximal(right_texts))

        assert packed_left.dominated_by(packed_right) == ref_left.dominated_by(
            ref_right
        )
        assert packed_right.dominated_by(packed_left) == ref_right.dominated_by(
            ref_left
        )
        joined = packed_left.join(packed_right)
        ref_joined = ref_left.join(ref_right)
        assert {s.text for s in joined.strings} == set(ref_joined.strings)
        assert joined.size_in_bits() == ref_joined.size_in_bits()

    @pytest.mark.parametrize("seed", range(20))
    def test_normalize_matches_step_at_a_time(self, seed):
        rng = random.Random(2000 + seed)
        id_texts = set(ref_maximal(_random_texts(rng, rng.randint(1, 10), 6)))
        update_texts = {t[: rng.randint(0, len(t))] for t in id_texts if rng.random() < 0.7}
        update_texts = set(ref_maximal(update_texts))

        packed_update = Name.from_down_set(BitString(t) for t in update_texts)
        packed_identity = Name.from_down_set(BitString(t) for t in id_texts)
        new_update, new_identity, steps = normalize(packed_update, packed_identity)

        ref_update, ref_identity, ref_steps = ref_normalize(
            RefName(update_texts), RefName(id_texts)
        )
        assert steps == ref_steps
        assert {s.text for s in new_identity.strings} == set(ref_identity.strings)
        assert {s.text for s in new_update.strings} == set(ref_update.strings)


def _replay(seed, operations=40, max_frontier=8, reducing=True):
    """Drive identical random op sequences through both implementations.

    Returns the final (packed, reference) stamp lists, checking observable
    equality after every operation.
    """
    rng = random.Random(seed)
    packed = [VersionStamp.seed(reducing=reducing)]
    reference = [RefStamp.seed(reducing=reducing)]

    for _ in range(operations):
        kinds = ["update"]
        if len(packed) < max_frontier:
            kinds.append("fork")
        if len(packed) >= 2:
            kinds.extend(["join", "sync"])
        kind = rng.choice(kinds)
        if kind == "update":
            index = rng.randrange(len(packed))
            packed[index] = packed[index].update()
            reference[index] = reference[index].update()
        elif kind == "fork":
            index = rng.randrange(len(packed))
            left, right = packed.pop(index).fork()
            packed.extend((left, right))
            ref_left, ref_right = reference.pop(index).fork()
            reference.extend((ref_left, ref_right))
        elif kind == "join":
            i, j = rng.sample(range(len(packed)), 2)
            first, second = packed[i], packed[j]
            ref_first, ref_second = reference[i], reference[j]
            for index in sorted((i, j), reverse=True):
                del packed[index]
                del reference[index]
            packed.append(first.join(second))
            reference.append(ref_first.join(ref_second))
        else:
            i, j = rng.sample(range(len(packed)), 2)
            first, second = packed[i], packed[j]
            ref_first, ref_second = reference[i], reference[j]
            for index in sorted((i, j), reverse=True):
                del packed[index]
                del reference[index]
            left, right = first.sync(second)
            packed.extend((left, right))
            ref_left, ref_right = ref_first.sync(ref_second)
            reference.extend((ref_left, ref_right))

        for stamp, ref in zip(packed, reference):
            assert str(stamp) == ref.to_text()
            assert stamp.size_in_bits() == ref.size_in_bits()
    return packed, reference


class TestStampTrajectoryEquivalence:
    @pytest.mark.parametrize("seed", range(15))
    def test_reducing_trajectories_are_identical(self, seed):
        packed, reference = _replay(seed, reducing=True)
        self._assert_order_isomorphic(packed, reference)

    @pytest.mark.parametrize("seed", range(10))
    def test_non_reducing_trajectories_are_identical(self, seed):
        # Non-reducing names grow without bound and the reference's O(k²)
        # joins choke on long histories (the very cost the packed core
        # removes), so keep the reference's share of the work bounded.
        packed, reference = _replay(
            500 + seed, operations=16, max_frontier=5, reducing=False
        )
        self._assert_order_isomorphic(packed, reference)

    @staticmethod
    def _assert_order_isomorphic(packed, reference):
        """The full pairwise comparison matrices must coincide."""
        for i, (a, ref_a) in enumerate(zip(packed, reference)):
            for j, (b, ref_b) in enumerate(zip(packed, reference)):
                if i == j:
                    continue
                assert a.compare(b) is ref_a.compare(ref_b), (
                    f"divergence comparing element {i} with {j}: "
                    f"{a} vs {ref_a.to_text()}"
                )
