"""Unit tests for names (antichains of binary strings) and their semilattice."""

import pytest

from repro.core.bitstring import BitString
from repro.core.errors import NameError_
from repro.core.names import Name, is_antichain, maximal_strings


class TestAntichainHelpers:
    def test_is_antichain_accepts_incomparable(self):
        assert is_antichain([BitString("00"), BitString("01"), BitString("1")])

    def test_is_antichain_rejects_prefix_pairs(self):
        assert not is_antichain([BitString("0"), BitString("01")])

    def test_is_antichain_trivial_cases(self):
        assert is_antichain([])
        assert is_antichain([BitString("0")])

    def test_maximal_strings_drops_prefixes(self):
        result = maximal_strings([BitString("0"), BitString("01"), BitString("1")])
        assert result == frozenset({BitString("01"), BitString("1")})

    def test_maximal_strings_keeps_incomparable(self):
        strings = [BitString("00"), BitString("11")]
        assert maximal_strings(strings) == frozenset(strings)


class TestConstruction:
    def test_paper_invalid_example_rejected(self):
        # The paper: {0, 01} is not a valid element of N.
        with pytest.raises(NameError_):
            Name([BitString("0"), BitString("01")])

    def test_of_builds_from_text(self):
        assert Name.of("0", "11").strings == frozenset({BitString("0"), BitString("11")})

    def test_from_down_set_normalizes(self):
        name = Name.from_down_set([BitString("0"), BitString("01")])
        assert name == Name.of("01")

    def test_parse_plus_notation(self):
        assert Name.parse("00+01+1") == Name.of("00", "01", "1")

    def test_parse_epsilon_and_empty(self):
        assert Name.parse("ε") == Name.seed()
        assert Name.parse("") == Name.seed()
        assert Name.parse("{}") == Name.empty()

    def test_seed_contains_only_epsilon(self):
        assert Name.seed().strings == frozenset({BitString.empty()})

    def test_immutable(self):
        name = Name.of("0")
        with pytest.raises(AttributeError):
            name.strings = frozenset()


class TestProtocol:
    def test_len_iter_contains(self):
        name = Name.of("00", "1")
        assert len(name) == 2
        assert list(name) == [BitString("00"), BitString("1")]
        assert BitString("00") in name
        assert "1" in name
        assert "01" not in name

    def test_bool(self):
        assert not Name.empty()
        assert Name.seed()

    def test_to_text(self):
        assert Name.of("1", "00", "01").to_text() == "00+01+1"
        assert Name.empty().to_text() == "{}"
        assert Name.seed().to_text() == "ε"

    def test_equality_and_hash(self):
        assert Name.of("0", "1") == Name.of("1", "0")
        assert hash(Name.of("0", "1")) == hash(Name.of("1", "0"))

    def test_repr_mentions_text(self):
        assert "00+1" in repr(Name.of("00", "1"))


class TestOrder:
    def test_paper_example_dominated(self):
        # {00, 011} ⊑ {000, 011, 1}
        assert Name.parse("00+011") <= Name.parse("000+011+1")

    def test_paper_example_not_dominated(self):
        # {00, 10} ⋢ {000, 011, 1}
        assert not Name.parse("00+10") <= Name.parse("000+011+1")

    def test_empty_name_below_everything(self):
        assert Name.empty() <= Name.seed()
        assert Name.empty() <= Name.of("01")

    def test_seed_below_any_nonempty_name(self):
        assert Name.seed() <= Name.of("0", "1")
        assert Name.seed() <= Name.of("0110")

    def test_reflexive_and_antisymmetric(self):
        name = Name.of("00", "1")
        other = Name.of("00", "1")
        assert name <= other and other <= name
        assert name == other

    def test_strict_order(self):
        assert Name.of("0") < Name.of("00", "01")
        assert not Name.of("0") < Name.of("0")

    def test_incomparable(self):
        left = Name.of("00")
        right = Name.of("01")
        assert left.incomparable(right)
        assert not left.comparable(right)

    def test_covers_string(self):
        name = Name.of("011", "1")
        assert name.covers_string(BitString("01"))
        assert name.covers_string(BitString("1"))
        assert not name.covers_string(BitString("00"))

    def test_disjoint_ids(self):
        assert Name.of("00").disjoint_ids(Name.of("01", "1"))
        assert not Name.of("0").disjoint_ids(Name.of("01"))

    def test_order_is_down_set_inclusion(self):
        left = Name.parse("00+011")
        right = Name.parse("000+011+1")
        assert left <= right
        assert left.down_set() <= right.down_set()


class TestJoin:
    def test_paper_join_example(self):
        # {00, 011} ⊔ {000, 01, 1} = {000, 011, 1}
        joined = Name.parse("00+011") | Name.parse("000+01+1")
        assert joined == Name.parse("000+011+1")

    def test_join_is_least_upper_bound(self):
        left = Name.of("00")
        right = Name.of("01", "1")
        joined = left | right
        assert left <= joined and right <= joined

    def test_join_idempotent_commutative_associative(self):
        a, b, c = Name.of("00"), Name.of("01"), Name.of("1")
        assert a | a == a
        assert a | b == b | a
        assert (a | b) | c == a | (b | c)

    def test_join_with_empty_is_identity(self):
        name = Name.of("01", "1")
        assert name | Name.empty() == name

    def test_join_is_down_set_union(self):
        left = Name.of("00", "1")
        right = Name.of("01")
        joined = left | right
        assert joined.down_set() == left.down_set() | right.down_set()

    def test_join_all(self):
        names = [Name.of("00"), Name.of("01"), Name.of("1")]
        assert Name.join_all(names) == Name.of("00", "01", "1")

    def test_join_all_empty_collection(self):
        assert Name.join_all([]) == Name.empty()


class TestForkSupport:
    def test_concat_appends_to_every_string(self):
        assert Name.of("0", "10").concat(1) == Name.of("01", "101")

    def test_concat_on_seed(self):
        assert Name.seed().concat(0) == Name.of("0")

    def test_fork_produces_disjoint_children(self):
        zero, one = Name.of("0", "11").fork()
        assert zero == Name.of("00", "110")
        assert one == Name.of("01", "111")
        assert zero.disjoint_ids(one)

    def test_fork_children_rejoin_to_parent_downset(self):
        parent = Name.of("0", "11")
        zero, one = parent.fork()
        joined = zero | one
        # The join of the children denotes the strict extensions of the
        # parent's strings; collapsing siblings (the Section 6 rule) would
        # recover the parent exactly.  Here we check domination.
        assert parent.down_set() <= joined.down_set() | parent.down_set()
        assert zero <= joined and one <= joined


class TestSizes:
    def test_total_bits(self):
        assert Name.of("00", "1").total_bits() == 3
        assert Name.seed().total_bits() == 0

    def test_size_in_bits(self):
        # Each string costs len+1 bits, plus one terminator for the name.
        assert Name.of("00", "1").size_in_bits() == (3 + 2) + 1
        assert Name.empty().size_in_bits() == 1

    def test_max_depth(self):
        assert Name.of("00", "1").max_depth() == 2
        assert Name.seed().max_depth() == 0
        assert Name.empty().max_depth() == 0
