"""Unit tests for the executable invariant checks (I1, I2, I3)."""

import pytest

from repro.core.errors import InvariantViolation
from repro.core.frontier import Frontier
from repro.core.invariants import (
    assert_invariants,
    check_all,
    check_i1,
    check_i2,
    check_i3,
    check_wellformed,
)
from repro.core.names import Name
from repro.core.stamp import VersionStamp


def _raw_stamp(update: str, identity: str) -> VersionStamp:
    """Build a stamp bypassing the constructor's I1 validation (for failure
    injection tests)."""
    return VersionStamp(
        Name.parse(update), Name.parse(identity), reducing=False, _validate=False
    )


class TestHealthyConfigurations:
    def test_seed_configuration(self):
        report = check_all({"a": VersionStamp.seed()})
        assert report.ok
        assert report.checked_stamps == 1
        assert report.checked_pairs == 0

    def test_figure2_configuration(self, figure2_frontier):
        report = check_all(figure2_frontier.stamps())
        assert report.ok

    def test_accepts_sequences_of_stamps(self):
        left, right = VersionStamp.seed().fork()
        assert check_all([left, right]).ok

    def test_report_str_mentions_counts(self):
        report = check_all({"a": VersionStamp.seed()})
        assert "1 stamps" in str(report)

    def test_assert_invariants_passes_silently(self, figure2_frontier):
        assert_invariants(figure2_frontier.stamps())

    def test_long_run_keeps_invariants(self):
        frontier = Frontier.initial("a")
        frontier.fork("a", "a", "b")
        frontier.fork("b", "b", "c")
        for round_number in range(10):
            frontier.update("a", "a")
            frontier.sync("a", "b", "a", "b")
            frontier.update("c", "c")
            frontier.sync("b", "c", "b", "c")
            assert check_all(frontier.stamps()).ok


class TestSeededViolations:
    def test_i1_violation_detected(self):
        bad = _raw_stamp("1", "0")
        violations = check_i1({"x": bad})
        assert violations and violations[0].invariant == "I1"

    def test_i2_violation_detected(self):
        # Two frontier elements with comparable id strings.
        stamps = {"x": _raw_stamp("ε", "0"), "y": _raw_stamp("ε", "01")}
        violations = check_i2(stamps)
        assert violations and violations[0].invariant == "I2"

    def test_i3_violation_detected(self):
        # y's id covers x's update string 0, but y's update does not.
        stamps = {"x": _raw_stamp("0", "10"), "y": _raw_stamp("ε", "0+11")}
        violations = check_i3(stamps)
        assert violations and violations[0].invariant == "I3"

    def test_wellformedness_violation_detected(self):
        broken_name = Name((), _trusted=True)
        # Build a "name" whose strings are comparable by going through the
        # trusted constructor.
        from repro.core.bitstring import BitString

        comparable = Name([BitString("0"), BitString("01")], _trusted=True)
        bad = VersionStamp(broken_name, comparable, reducing=False, _validate=False)
        violations = check_wellformed({"x": bad})
        assert violations and violations[0].invariant == "wellformedness"

    def test_check_all_aggregates_violations(self):
        stamps = {"x": _raw_stamp("1", "0"), "y": _raw_stamp("ε", "01")}
        report = check_all(stamps)
        assert not report.ok
        assert len(report.violations) >= 2
        assert "violation" in str(report)

    def test_raise_if_violated(self):
        report = check_all({"x": _raw_stamp("1", "0")})
        with pytest.raises(InvariantViolation):
            report.raise_if_violated()

    def test_assert_invariants_raises(self):
        with pytest.raises(InvariantViolation):
            assert_invariants({"x": _raw_stamp("1", "0")})

    def test_violation_str_names_elements(self):
        report = check_all({"x": _raw_stamp("1", "0")})
        assert "x" in str(report.violations[0])
