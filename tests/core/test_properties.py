"""Property-based tests (hypothesis) for the core data structures.

These check the algebraic laws the paper relies on: the name order is a
partial order, the join is a least upper bound, fork produces disjoint
identities, the Section 6 rewriting preserves order and normal forms are
unique, and the codecs are faithful.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitstring import BitString
from repro.core.encoding import (
    name_from_bitstream,
    name_to_bitstream,
    stamp_from_bytes,
    stamp_from_json,
    stamp_to_bytes,
    stamp_to_json,
)
from repro.core.names import Name, is_antichain
from repro.core.reduction import normalize, rewrite_once
from repro.core.stamp import VersionStamp

from repro.testing import bitstrings, names


# ---------------------------------------------------------------------------
# Bit strings
# ---------------------------------------------------------------------------


class TestBitStringProperties:
    @given(bitstrings(), bitstrings())
    def test_prefix_order_antisymmetric(self, a, b):
        if a.is_prefix_of(b) and b.is_prefix_of(a):
            assert a == b

    @given(bitstrings(), bitstrings(), bitstrings())
    def test_prefix_order_transitive(self, a, b, c):
        if a.is_prefix_of(b) and b.is_prefix_of(c):
            assert a.is_prefix_of(c)

    @given(bitstrings(), st.integers(min_value=0, max_value=1))
    def test_append_extends(self, a, bit):
        extended = a.append(bit)
        assert a.is_proper_prefix_of(extended)
        assert extended.parent() == a

    @given(bitstrings())
    def test_sibling_is_involutive(self, a):
        if len(a):
            assert a.sibling().sibling() == a
            assert a.is_sibling_of(a.sibling())

    @given(bitstrings(), bitstrings())
    def test_common_prefix_is_lower_bound(self, a, b):
        common = a.common_prefix(b)
        assert common.is_prefix_of(a)
        assert common.is_prefix_of(b)


# ---------------------------------------------------------------------------
# Names
# ---------------------------------------------------------------------------


class TestNameProperties:
    @given(names())
    def test_members_form_an_antichain(self, name):
        assert is_antichain(name.strings)

    @given(names(), names())
    def test_join_is_least_upper_bound(self, a, b):
        joined = a | b
        assert a <= joined
        assert b <= joined
        # Least: the join's down-set is exactly the union of the down-sets.
        assert joined.down_set() == a.down_set() | b.down_set()

    @given(names(), names())
    def test_join_commutative(self, a, b):
        assert a | b == b | a

    @given(names(), names(), names())
    def test_join_associative(self, a, b, c):
        assert (a | b) | c == a | (b | c)

    @given(names())
    def test_join_idempotent(self, a):
        assert a | a == a

    @given(names(), names())
    def test_order_equals_down_set_inclusion(self, a, b):
        assert (a <= b) == (a.down_set() <= b.down_set())

    @given(names(), names())
    def test_order_antisymmetric(self, a, b):
        if a <= b and b <= a:
            assert a == b

    @given(names())
    def test_fork_children_are_disjoint_and_cover_parent(self, a):
        zero, one = a.fork()
        assert zero.disjoint_ids(one)
        # Collapsing the children's sibling strings recovers the parent (up
        # to the parent's own normal form, in case it already contained
        # collapsible siblings).
        _update, identity, _steps = normalize(Name.empty(), zero | one)
        _update, expected, _steps = normalize(Name.empty(), a)
        assert identity == expected

    @given(names())
    def test_bitstream_round_trip(self, a):
        assert name_from_bitstream(name_to_bitstream(a)) == a


# ---------------------------------------------------------------------------
# Stamps and the rewriting rule
# ---------------------------------------------------------------------------


@st.composite
def stamp_pairs(draw):
    """A well-formed (update, id) pair: update ⊑ id with id an antichain."""
    identity = draw(names(max_strings=4, max_length=5))
    if not identity:
        identity = Name.seed()
    subset = draw(
        st.lists(st.sampled_from(sorted(identity.strings)), unique=True, max_size=len(identity))
        if len(identity)
        else st.just([])
    )
    # Any subset of an antichain is an antichain and is dominated by it;
    # optionally truncate some strings, which preserves domination.
    update_strings = []
    for string in subset:
        cut = draw(st.integers(min_value=0, max_value=len(string)))
        update_strings.append(BitString(string.text[:cut]))
    update = Name.from_down_set(update_strings)
    return update, identity


class TestStampProperties:
    @given(stamp_pairs())
    def test_constructed_stamps_satisfy_i1(self, pair):
        update, identity = pair
        stamp = VersionStamp(update, identity, reducing=False)
        assert stamp.update_component.dominated_by(stamp.identity)

    @given(stamp_pairs())
    def test_update_is_idempotent(self, pair):
        update, identity = pair
        stamp = VersionStamp(update, identity, reducing=False)
        assert stamp.update().update() == stamp.update()

    @given(stamp_pairs())
    def test_fork_then_join_restores_stamp(self, pair):
        update, identity = pair
        stamp = VersionStamp(update, identity)  # reducing
        left, right = stamp.fork()
        # The reducing join collapses the forked siblings, recovering the
        # stamp's own normal form (equal to the stamp itself whenever the
        # original id had no collapsible siblings, e.g. any id produced by
        # the mechanism's operations).
        assert left.join(right) == stamp.normalized()

    @given(stamp_pairs(), stamp_pairs())
    def test_join_commutative(self, first, second):
        a = VersionStamp(*first, reducing=False)
        b = VersionStamp(*second, reducing=False)
        assert a.join(b) == b.join(a)

    @given(stamp_pairs())
    def test_comparison_consistent_with_flip(self, pair):
        update, identity = pair
        stamp = VersionStamp(update, identity, reducing=False)
        other = stamp.update()
        assert stamp.compare(other) is other.compare(stamp).flipped()

    @given(stamp_pairs())
    def test_json_and_bytes_round_trips(self, pair):
        update, identity = pair
        stamp = VersionStamp(update, identity, reducing=False)
        assert stamp_from_json(stamp_to_json(stamp)) == stamp
        assert stamp_from_bytes(stamp_to_bytes(stamp), reducing=False) == stamp


class TestRewritingProperties:
    @given(stamp_pairs())
    def test_rewriting_never_increases_components(self, pair):
        update, identity = pair
        rewritten = rewrite_once(update, identity)
        if rewritten is not None:
            new_update, new_identity = rewritten
            assert new_update <= update
            assert new_identity <= identity

    @given(stamp_pairs())
    def test_normal_form_is_unique_regardless_of_strategy(self, pair):
        update, identity = pair
        # Normalize once via the library and once by a different (reversed)
        # pair-selection strategy; confluence says the results must agree.
        expected_update, expected_identity, _ = normalize(update, identity)

        current_update, current_identity = update, identity
        while True:
            strings = sorted(current_identity.strings, reverse=True)
            pair_found = None
            seen = set(strings)
            for string in strings:
                if len(string) and string.sibling() in seen:
                    pair_found = tuple(sorted((string, string.sibling())))
                    break
            if pair_found is None:
                break
            zero, one = pair_found
            parent = zero.parent()
            id_strings = (current_identity.strings - {zero, one}) | {parent}
            current_identity = Name.from_down_set(id_strings)
            if zero in current_update.strings or one in current_update.strings:
                current_update = Name.from_down_set(
                    (current_update.strings - {zero, one}) | {parent}
                )
        assert current_identity == expected_identity
        assert current_update == expected_update

    @given(stamp_pairs())
    def test_normalization_preserves_i1(self, pair):
        update, identity = pair
        new_update, new_identity, _ = normalize(update, identity)
        assert new_update <= new_identity
