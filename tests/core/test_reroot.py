"""Unit and property tests for the Section 7 re-rooting garbage collector.

The correctness contract of :mod:`repro.core.reroot` is sharp: a re-root
must preserve the *entire* pairwise ordering matrix and dominance relation
among live stamps, keep invariants I1-I3, and stay correct for any
continuation of the run.  The hypothesis tests here check all three against
random frontiers (built by replaying random traces), cross-checking the
matrices against the retained text-based reference implementation
(:mod:`repro.core.refimpl`) and the causal-history oracle.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.causal.configuration import CausalConfiguration
from repro.core.bitstring import BitString
from repro.core.errors import StampError
from repro.core.frontier import Frontier
from repro.core.invariants import check_all
from repro.core.names import Name
from repro.core.refimpl import RefStamp
from repro.core.reroot import (
    common_past,
    complete_tiling,
    reroot_names,
    reroot_stamps,
    signature_partition,
)
from repro.core.stamp import VersionStamp
from repro.sim.trace import OpKind
from repro.testing import trace_operations


def _matrix(stamps):
    """Full pairwise ordering matrix of a label -> stamp mapping."""
    return {
        (x, y): stamps[x].compare(stamps[y])
        for x in stamps
        for y in stamps
        if x != y
    }


def _dominance(stamps):
    """The leq (dominated-by) relation of a label -> stamp mapping."""
    return {
        (x, y): stamps[x].leq(stamps[y])
        for x in stamps
        for y in stamps
        if x != y
    }


def _replay(trace, make_seed, apply_sync_as_pair=False):
    """Replay a trace over a dict of stamp-like objects with the 3 ops."""
    stamps = {trace.seed: make_seed()}
    for op in trace.operations:
        if op.kind == OpKind.UPDATE:
            stamps[op.results[0]] = stamps.pop(op.source).update()
        elif op.kind == OpKind.FORK:
            left, right = stamps.pop(op.source).fork()
            stamps[op.results[0]] = left
            stamps[op.results[1]] = right
        elif op.kind == OpKind.JOIN:
            joined = stamps.pop(op.source).join(stamps.pop(op.other))
            stamps[op.results[0]] = joined
        else:
            joined = stamps.pop(op.source).join(stamps.pop(op.other))
            left, right = joined.fork()
            stamps[op.results[0]] = left
            stamps[op.results[1]] = right
    return stamps


class TestCommonPast:
    def test_seed_knows_only_epsilon(self):
        assert common_past([Name.seed(), Name.seed()]) == Name.seed()

    def test_empty_collection(self):
        assert common_past([]) == Name.empty()

    def test_shared_prefix_is_found(self):
        first = Name.parse("001+01")
        second = Name.parse("0010+1")
        past = common_past([first, second])
        assert past == Name.parse("001")

    def test_disjoint_knowledge_meets_at_epsilon(self):
        past = common_past([Name.parse("0"), Name.parse("1")])
        assert past == Name.seed()

    def test_single_name_is_its_own_past(self):
        name = Name.parse("00+01+1")
        assert common_past([name]) == name

    def test_past_is_dominated_by_every_input(self):
        names = [Name.parse("0010+010"), Name.parse("001+0101"), Name.parse("0+1")]
        past = common_past(names)
        assert all(past.dominated_by(name) for name in names)


class TestCompleteTiling:
    @pytest.mark.parametrize("count", list(range(1, 18)))
    def test_tiles_partition_the_tree(self, count):
        tiles = complete_tiling(count)
        assert len(tiles) == count
        # Pairwise incomparable and Kraft-complete: they tile the whole
        # space exactly (sum of 2^-depth over a complete tiling is 1).
        for i, a in enumerate(tiles):
            for b in tiles[i + 1:]:
                assert a.incomparable(b)
        assert sum(2.0 ** -len(tile) for tile in tiles) == pytest.approx(1.0)

    def test_balanced_depths(self):
        tiles = complete_tiling(11)
        depths = sorted(len(tile) for tile in tiles)
        assert depths[-1] - depths[0] <= 1

    def test_single_tile_is_epsilon(self):
        assert complete_tiling(1) == [BitString.empty()]

    def test_rejects_zero(self):
        with pytest.raises(StampError):
            complete_tiling(0)


class TestSignaturePartition:
    def test_uniform_knowledge_is_one_signature(self):
        updates = {"a": Name.parse("0+1"), "b": Name.parse("0+1")}
        partition = signature_partition(updates)
        assert set(partition) == {("a", "b")}

    def test_private_knowledge_splits(self):
        updates = {"a": Name.parse("00"), "b": Name.parse("0")}
        partition = signature_partition(updates)
        # "00" is a's alone; "0" and "ε" are shared.
        assert set(partition) == {("a",), ("a", "b")}
        assert partition[("a",)] == [BitString("00")]


class TestRerootStamps:
    def test_lone_element_collapses_to_seed(self):
        frontier = Frontier.initial("a")
        frontier.update("a", "a2")
        frontier.fork("a2", "b", "c")
        frontier.update("b", "b2")
        frontier.join("b2", "c", "d")
        result = reroot_stamps({"d": frontier.stamp_of("d")})
        assert result.stamps["d"] == VersionStamp.seed()
        assert result.signature_count == 1

    def test_uniform_frontier_collapses_to_fresh_fork(self):
        frontier = Frontier.initial("a")
        frontier.fork("a", "b", "c")
        result = reroot_stamps(frontier.stamps())
        for stamp in result.stamps.values():
            assert stamp.update_component == Name.seed()
        assert result.signature_count == 1

    def test_rejects_empty_frontier(self):
        with pytest.raises(StampError):
            reroot_stamps({})

    def test_rejects_empty_update_name(self):
        with pytest.raises(StampError):
            reroot_names({"a": Name.empty()})

    def test_reroot_is_idempotent_on_sizes(self):
        frontier = Frontier.initial("a")
        frontier.fork("a", "b", "c")
        frontier.update("b", "b2")
        frontier.sync("b2", "c", "b3", "c2")
        frontier.update("c2", "c3")
        once = reroot_stamps(frontier.stamps())
        twice = reroot_stamps(once.stamps)
        assert twice.bits_after == once.bits_after
        assert _matrix(twice.stamps) == _matrix(once.stamps)

    def test_non_reducing_stamps_keep_flavour(self):
        frontier = Frontier.initial("a", reducing=False)
        frontier.fork("a", "b", "c")
        frontier.update("b", "b2")
        frontier.sync("b2", "c", "b3", "c2")
        frontier.update("c2", "c3")
        before = _matrix(frontier.stamps())
        result = reroot_stamps(frontier.stamps())
        assert _matrix(result.stamps) == before
        assert all(not stamp.reducing for stamp in result.stamps.values())
        assert check_all(result.stamps).ok

    def test_result_reports_sizes(self):
        frontier = Frontier.initial("a")
        frontier.fork("a", "b", "c")
        frontier.update("b", "b2")
        result = reroot_stamps(frontier.stamps())
        assert result.bits_before == sum(
            s.size_in_bits() for s in frontier.stamps().values()
        )
        assert result.bits_after == sum(
            s.size_in_bits() for s in result.stamps.values()
        )
        assert result.bits_saved == result.bits_before - result.bits_after
        assert "signatures" in str(result)


class TestRerootProperties:
    """The contract, hammered with random frontiers from random traces."""

    @given(trace=trace_operations(max_operations=30, max_frontier=6))
    def test_matrix_and_dominance_preserved(self, trace):
        stamps = _replay(trace, VersionStamp.seed)
        before_matrix = _matrix(stamps)
        before_dominance = _dominance(stamps)
        result = reroot_stamps(stamps)
        assert _matrix(result.stamps) == before_matrix
        assert _dominance(result.stamps) == before_dominance

    @given(trace=trace_operations(max_operations=30, max_frontier=6))
    def test_matches_refimpl_oracle_before_and_after(self, trace):
        stamps = _replay(trace, VersionStamp.seed)
        reference = _replay(trace, RefStamp.seed)
        ref_matrix = {
            (x, y): reference[x].compare(reference[y])
            for x in reference
            for y in reference
            if x != y
        }
        assert _matrix(stamps) == ref_matrix
        assert _matrix(reroot_stamps(stamps).stamps) == ref_matrix

    @given(trace=trace_operations(max_operations=30, max_frontier=6))
    def test_invariants_hold_after_reroot(self, trace):
        stamps = _replay(trace, VersionStamp.seed)
        report = check_all(reroot_stamps(stamps).stamps)
        assert report.ok, str(report)

    @given(trace=trace_operations(max_operations=30, max_frontier=6))
    def test_discarded_past_was_common_knowledge(self, trace):
        stamps = _replay(trace, VersionStamp.seed)
        result = reroot_stamps(stamps)
        for stamp in stamps.values():
            assert result.discarded_past.dominated_by(stamp.update_component)
        # The partition-derived past equals the explicit name-order meet.
        assert result.discarded_past == common_past(
            stamp.update_component for stamp in stamps.values()
        )

    @given(
        trace=trace_operations(max_operations=36, max_frontier=5),
        cut=st.integers(min_value=0, max_value=36),
    )
    @settings(max_examples=40)
    def test_future_operations_stay_correct(self, trace, cut):
        """Re-rooting mid-run must not disturb any later comparison.

        The same trace replays twice -- once untouched, once with a forced
        frontier-wide re-root after operation ``cut`` -- and both final
        matrices must agree with each other and with the causal-history
        ground truth.
        """
        cut = min(cut, len(trace.operations))
        plain = _replay(trace, VersionStamp.seed)

        rerooted = {trace.seed: VersionStamp.seed()}
        oracle = CausalConfiguration.initial(trace.seed)
        if cut == 0:
            rerooted = reroot_stamps(rerooted).stamps
        for index, op in enumerate(trace.operations):
            if op.kind == OpKind.UPDATE:
                rerooted[op.results[0]] = rerooted.pop(op.source).update()
                oracle.update(op.source, op.results[0])
            elif op.kind == OpKind.FORK:
                left, right = rerooted.pop(op.source).fork()
                rerooted[op.results[0]] = left
                rerooted[op.results[1]] = right
                oracle.fork(op.source, *op.results)
            elif op.kind == OpKind.JOIN:
                joined = rerooted.pop(op.source).join(rerooted.pop(op.other))
                rerooted[op.results[0]] = joined
                oracle.join(op.source, op.other, op.results[0])
            else:
                joined = rerooted.pop(op.source).join(rerooted.pop(op.other))
                left, right = joined.fork()
                rerooted[op.results[0]] = left
                rerooted[op.results[1]] = right
                oracle.sync(op.source, op.other, *op.results)
            if index + 1 == cut:
                rerooted = reroot_stamps(rerooted).stamps

        assert _matrix(rerooted) == _matrix(plain)
        assert _matrix(rerooted) == oracle.ordering_matrix()


class TestFrontierReroot:
    def test_manual_reroot_preserves_matrix_and_logs(self):
        frontier = Frontier.initial("a")
        frontier.fork("a", "b", "c")
        frontier.update("b", "b2")
        frontier.sync("b2", "c", "b3", "c2")
        frontier.update("b3", "b4")
        before = frontier.ordering_matrix()
        result = frontier.reroot()
        assert frontier.ordering_matrix() == before
        assert frontier.reroots_performed == 1
        assert frontier.last_reroot is result
        assert frontier.operation_log()[-1][0] == "reroot"

    def test_auto_reroot_fires_on_size(self):
        frontier = Frontier.initial("a", reroot_threshold=64)
        frontier.fork("a", "b", "c")
        frontier.fork("c", "d", "e")
        labels = ["b", "d", "e"]
        for round_index in range(20):
            for index in range(3):
                x, y = labels[index], labels[(index + 1) % 3]
                renamed = frontier.update(x)
                frontier.sync(renamed, y, x, y)
        assert frontier.reroots_performed > 0
        assert frontier.max_stamp_bits() <= 64 + 32  # bounded, not exploding

    def test_unattainable_threshold_backs_off_instead_of_thrashing(self):
        """A threshold below the frontier's achievable floor must not
        re-collect after every single operation; the trigger backs off to
        twice the attained floor, so collections fire only after a
        doubling (each one then costs O(floor), not O(accumulated trace))
        and stamp sizes stay bounded by a small multiple of the floor."""
        frontier = Frontier.initial("seed", reroot_threshold=2)
        frontier.fork("seed", "a", "t")
        frontier.fork("t", "b", "c")
        labels = ["a", "b", "c"]
        operations = 0
        peak = 0
        for _ in range(30):
            for index in range(3):
                x, y = labels[index], labels[(index + 1) % 3]
                renamed = frontier.update(x)
                frontier.sync(renamed, y, x, y)
                operations += 2
                peak = max(peak, frontier.max_stamp_bits())
        assert frontier.reroots_performed < operations // 2
        floor = max(
            stamp.size_in_bits()
            for stamp in frontier.last_reroot.stamps.values()
        )
        assert peak <= 6 * floor

    def test_copy_does_not_recollect(self):
        frontier = Frontier.initial("a", reroot_threshold=2)
        frontier.fork("a", "b", "c")
        performed = frontier.reroots_performed
        clone = frontier.copy()
        assert clone.reroots_performed == performed
        assert clone.stamps() == frontier.stamps()
        assert clone.operation_log() == frontier.operation_log()

    def test_threshold_validation(self):
        from repro.core.errors import FrontierError

        with pytest.raises(FrontierError):
            Frontier(reroot_threshold=0)

    def test_copy_carries_reroot_state(self):
        frontier = Frontier.initial("a", reroot_threshold=512)
        frontier.fork("a", "b", "c")
        frontier.reroot()
        clone = frontier.copy()
        assert clone.reroot_threshold == 512
        assert clone.reroots_performed == 1
        assert clone.last_reroot is frontier.last_reroot
