"""Unit tests for version stamps (Definition 4.3 plus the reducing flavour)."""

import pytest

from repro.core.errors import StampError
from repro.core.names import Name
from repro.core.order import Ordering
from repro.core.stamp import VersionStamp


class TestConstruction:
    def test_seed_is_epsilon_pair(self):
        seed = VersionStamp.seed()
        assert seed.update_component == Name.seed()
        assert seed.identity == Name.seed()

    def test_parse_round_trip(self):
        stamp = VersionStamp.parse("[1 | 01+1]")
        assert str(stamp) == "[1 | 01+1]"

    def test_parse_accepts_text_components(self):
        stamp = VersionStamp("0", "0+1")
        assert stamp.update_component == Name.of("0")
        assert stamp.identity == Name.of("0", "1")

    def test_parse_rejects_missing_brackets(self):
        with pytest.raises(StampError):
            VersionStamp.parse("1 | 1")

    def test_parse_rejects_missing_separator(self):
        with pytest.raises(StampError):
            VersionStamp.parse("[1, 1]")

    def test_construction_enforces_i1(self):
        with pytest.raises(StampError):
            VersionStamp(Name.of("1"), Name.of("0"))

    def test_construction_rejects_non_names(self):
        with pytest.raises(StampError):
            VersionStamp(42, Name.seed())

    def test_immutable(self):
        seed = VersionStamp.seed()
        with pytest.raises(AttributeError):
            seed.identity = Name.empty()

    def test_structural_equality(self):
        assert VersionStamp.parse("[0 | 0]") == VersionStamp.parse("[0 | 0]")
        assert VersionStamp.parse("[0 | 0]") != VersionStamp.parse("[ε | 0]")

    def test_components_accessor(self):
        stamp = VersionStamp.parse("[0 | 0+1]")
        update, identity = stamp.components()
        assert update == Name.of("0")
        assert identity == Name.of("0", "1")


class TestUpdate:
    def test_update_copies_id_into_update(self):
        stamp = VersionStamp.parse("[ε | 01]")
        assert str(stamp.update()) == "[01 | 01]"

    def test_update_is_idempotent_on_stamp_value(self):
        # After an update, subsequent updates do not change the stamp
        # (Section 3: irrelevant information is discarded).
        stamp = VersionStamp.parse("[ε | 01]").update()
        assert stamp.update() == stamp

    def test_update_on_seed_is_invisible(self):
        # With a single-element frontier the update has no expression.
        assert VersionStamp.seed().update() == VersionStamp.seed()


class TestFork:
    def test_fork_appends_zero_and_one(self):
        left, right = VersionStamp.parse("[ε | 1]").fork()
        assert str(left) == "[ε | 10]"
        assert str(right) == "[ε | 11]"

    def test_fork_preserves_update_component(self):
        left, right = VersionStamp.parse("[0 | 0]").fork()
        assert left.update_component == Name.of("0")
        assert right.update_component == Name.of("0")

    def test_fork_children_have_disjoint_ids(self):
        left, right = VersionStamp.seed().fork()
        assert left.identity.disjoint_ids(right.identity)

    def test_fork_on_multi_string_id(self):
        left, right = VersionStamp.parse("[ε | 0+1]").fork()
        assert left.identity == Name.of("00", "10")
        assert right.identity == Name.of("01", "11")


class TestJoin:
    def test_join_joins_both_components(self):
        left = VersionStamp.parse("[ε | 01]", reducing=False)
        right = VersionStamp.parse("[1 | 1]", reducing=False)
        assert str(left.join(right)) == "[1 | 01+1]"

    def test_join_is_commutative(self):
        left = VersionStamp.parse("[ε | 01]", reducing=False)
        right = VersionStamp.parse("[1 | 1]", reducing=False)
        assert left.join(right) == right.join(left)

    def test_reducing_join_collapses_siblings(self):
        left, right = VersionStamp.seed().fork()
        assert left.join(right) == VersionStamp.seed()

    def test_non_reducing_join_keeps_siblings(self):
        left, right = VersionStamp.seed(reducing=False).fork()
        joined = left.join(right)
        assert joined.identity == Name.of("0", "1")

    def test_join_with_non_stamp_fails(self):
        with pytest.raises(StampError):
            VersionStamp.seed().join("not a stamp")

    def test_join_with_stats_reports_reduction(self):
        left, right = VersionStamp.seed(reducing=False).fork()
        joined, stats = left.join_with_stats(right)
        assert joined == VersionStamp.seed()
        assert stats.reduced
        assert stats.steps == 1
        assert stats.bits_saved > 0

    def test_fork_then_join_recovers_original_id(self):
        # "A fork followed by a join of the resulting elements should result
        # in an element with the original id." (Section 3)
        original = VersionStamp.parse("[ε | 01]")
        left, right = original.fork()
        assert left.join(right).identity == original.identity


class TestSyncAndFlavours:
    def test_sync_is_join_then_fork(self):
        left, right = VersionStamp.seed().fork()
        left = left.update()
        new_left, new_right = left.sync(right)
        assert new_left.equivalent(new_right)
        assert new_left.identity.disjoint_ids(new_right.identity)

    def test_normalized_and_is_normalized(self):
        stamp = VersionStamp(Name.of("0"), Name.of("00", "01"), reducing=False)
        assert not stamp.is_normalized()
        assert stamp.normalized().identity == Name.of("0")
        assert stamp.normalized().is_normalized()

    def test_flavour_switchers(self):
        stamp = VersionStamp.seed()
        assert stamp.reducing
        assert not stamp.non_reducing().reducing
        assert stamp.non_reducing().as_reducing().reducing

    def test_reducing_flag_is_sticky_across_operations(self):
        stamp = VersionStamp.seed(reducing=False)
        left, right = stamp.fork()
        assert not left.reducing
        assert not left.update().reducing
        assert not left.join(right).reducing


class TestComparison:
    def test_fresh_forks_are_equivalent(self):
        left, right = VersionStamp.seed().fork()
        assert left.compare(right) is Ordering.EQUAL
        assert left.equivalent(right)

    def test_update_dominates_sibling(self):
        left, right = VersionStamp.seed().fork()
        updated = left.update()
        assert updated.compare(right) is Ordering.AFTER
        assert right.compare(updated) is Ordering.BEFORE
        assert updated.dominates(right)
        assert right.obsolete_relative_to(updated)

    def test_concurrent_updates_conflict(self):
        left, right = VersionStamp.seed().fork()
        assert left.update().compare(right.update()) is Ordering.CONCURRENT
        assert left.update().concurrent(right.update())

    def test_join_dominates_both_inputs(self):
        # Use the non-reducing flavour: the inputs no longer coexist with the
        # join result, and the Section 6 rewriting only preserves the order
        # among coexisting (frontier) elements -- the reducing normal form
        # [ε | ε] is deliberately incomparable with the consumed [0 | 0].
        left, right = VersionStamp.seed(reducing=False).fork()
        left = left.update()
        right = right.update()
        joined = left.join(right)
        assert joined.dominates(left)
        assert joined.dominates(right)
        assert joined.strictly_dominates(left)

    def test_leq_matches_compare(self):
        left, right = VersionStamp.seed().fork()
        updated = left.update()
        assert right.leq(updated)
        assert not updated.leq(right)


class TestSizes:
    def test_size_in_bits_counts_both_components(self):
        stamp = VersionStamp.parse("[0 | 0+1]")
        assert stamp.size_in_bits() == stamp.update_component.size_in_bits() + stamp.identity.size_in_bits()

    def test_id_depth(self):
        assert VersionStamp.parse("[ε | 0+11]").id_depth() == 2
        assert VersionStamp.seed().id_depth() == 0

    def test_repr_is_informative(self):
        assert "[ε | ε]" in repr(VersionStamp.seed())
