"""Unit tests for frontier configurations (Definition 4.3 as a calculus)."""

import pytest

from repro.core.errors import FrontierError
from repro.core.frontier import Frontier
from repro.core.order import Ordering
from repro.core.stamp import VersionStamp


class TestConstruction:
    def test_initial_has_seed_stamp(self):
        frontier = Frontier.initial("a")
        assert frontier.labels() == ["a"]
        assert frontier["a"] == VersionStamp.seed()

    def test_len_iter_contains(self):
        frontier = Frontier.initial("a")
        frontier.fork("a", "b", "c")
        assert len(frontier) == 2
        assert set(frontier) == {"b", "c"}
        assert "b" in frontier and "a" not in frontier

    def test_unknown_label_raises(self):
        frontier = Frontier.initial("a")
        with pytest.raises(FrontierError):
            frontier.stamp_of("zzz")

    def test_copy_is_independent(self):
        frontier = Frontier.initial("a")
        clone = frontier.copy()
        frontier.update("a", "a2")
        assert "a" in clone
        assert "a2" not in clone


class TestUpdate:
    def test_update_renames_with_prime_by_default(self):
        frontier = Frontier.initial("a")
        new_label = frontier.update("a")
        assert new_label == "a'"
        assert frontier.labels() == ["a'"]

    def test_update_with_explicit_label(self):
        frontier = Frontier.initial("a")
        assert frontier.update("a", "a2") == "a2"

    def test_update_can_keep_same_label(self):
        frontier = Frontier.initial("a")
        frontier.fork("a", "x", "y")
        frontier.update("x", "x")
        assert "x" in frontier

    def test_update_rejects_existing_label(self):
        frontier = Frontier.initial("a")
        frontier.fork("a", "x", "y")
        with pytest.raises(FrontierError):
            frontier.update("x", "y")


class TestFork:
    def test_fork_produces_two_elements(self):
        frontier = Frontier.initial("a")
        left, right = frontier.fork("a")
        assert set(frontier.labels()) == {left, right}

    def test_fork_with_explicit_labels(self):
        frontier = Frontier.initial("a")
        assert frontier.fork("a", "b", "c") == ("b", "c")

    def test_fork_rejects_duplicate_child_labels(self):
        frontier = Frontier.initial("a")
        with pytest.raises(FrontierError):
            frontier.fork("a", "b", "b")

    def test_fork_rejects_existing_label(self):
        frontier = Frontier.initial("a")
        frontier.fork("a", "b", "c")
        with pytest.raises(FrontierError):
            frontier.fork("b", "c", "d")

    def test_fork_child_can_reuse_parent_label(self):
        frontier = Frontier.initial("a")
        frontier.fork("a", "a", "b")
        assert set(frontier.labels()) == {"a", "b"}


class TestJoinAndSync:
    def test_join_removes_inputs(self):
        frontier = Frontier.initial("a")
        frontier.fork("a", "b", "c")
        joined = frontier.join("b", "c", "d")
        assert joined == "d"
        assert frontier.labels() == ["d"]

    def test_join_rejects_self_join(self):
        frontier = Frontier.initial("a")
        with pytest.raises(FrontierError):
            frontier.join("a", "a")

    def test_join_default_label(self):
        frontier = Frontier.initial("a")
        frontier.fork("a", "b", "c")
        assert frontier.join("b", "c") == "bc"

    def test_sync_keeps_both_labels_by_default(self):
        frontier = Frontier.initial("a")
        frontier.fork("a", "b", "c")
        frontier.update("b", "b")
        frontier.sync("b", "c")
        assert set(frontier.labels()) == {"b", "c"}
        assert frontier.compare("b", "c") is Ordering.EQUAL

    def test_operation_log_records_everything(self):
        frontier = Frontier.initial("a")
        frontier.update("a", "a2")
        frontier.fork("a2", "b", "c")
        frontier.join("b", "c", "d")
        kinds = [entry[0] for entry in frontier.operation_log()]
        assert kinds == ["seed", "update", "fork", "join"]


class TestQueries:
    def test_compare_matches_paper_semantics(self, figure2_frontier):
        # d1 has seen no updates, c3 has seen the update on c; d1 is obsolete.
        assert figure2_frontier.compare("d1", "c3") is Ordering.BEFORE
        assert figure2_frontier.obsolete("d1", "c3")
        assert figure2_frontier.compare("c3", "d1") is Ordering.AFTER

    def test_equivalent_elements(self, figure2_frontier):
        assert figure2_frontier.equivalent("d1", "e1")

    def test_inconsistent_detection(self):
        frontier = Frontier.initial("a")
        frontier.fork("a", "b", "c")
        frontier.update("b", "b")
        frontier.update("c", "c")
        assert frontier.inconsistent("b", "c")

    def test_ordering_matrix_covers_all_pairs(self, figure2_frontier):
        matrix = figure2_frontier.ordering_matrix()
        labels = figure2_frontier.labels()
        assert len(matrix) == len(labels) * (len(labels) - 1)
        assert matrix[("d1", "c3")] is Ordering.BEFORE

    def test_dominating_elements(self, figure2_frontier):
        # c3 saw the only update; d1 and e1 are both dominated by it.
        assert figure2_frontier.dominating_elements() == ["c3"]

    def test_total_size_in_bits_positive(self, figure2_frontier):
        assert figure2_frontier.total_size_in_bits() > 0
