"""Unit tests for the shared Ordering vocabulary."""

import pytest

from repro.core.order import Ordering, ordering_from_leq, ordering_from_sets


class TestOrdering:
    def test_flipped(self):
        assert Ordering.BEFORE.flipped() is Ordering.AFTER
        assert Ordering.AFTER.flipped() is Ordering.BEFORE
        assert Ordering.EQUAL.flipped() is Ordering.EQUAL
        assert Ordering.CONCURRENT.flipped() is Ordering.CONCURRENT

    def test_is_ordered(self):
        assert Ordering.EQUAL.is_ordered
        assert Ordering.BEFORE.is_ordered
        assert Ordering.AFTER.is_ordered
        assert not Ordering.CONCURRENT.is_ordered

    def test_dominates_and_dominated(self):
        assert Ordering.AFTER.dominates
        assert Ordering.EQUAL.dominates
        assert not Ordering.BEFORE.dominates
        assert Ordering.BEFORE.dominated
        assert Ordering.EQUAL.dominated
        assert not Ordering.CONCURRENT.dominated

    def test_str_value(self):
        assert str(Ordering.CONCURRENT) == "concurrent"


class TestOrderingFromLeq:
    def test_all_four_outcomes(self):
        leq = lambda a, b: a <= b  # noqa: E731 - tiny test lambda
        assert ordering_from_leq(1, 1, leq) is Ordering.EQUAL
        assert ordering_from_leq(1, 2, leq) is Ordering.BEFORE
        assert ordering_from_leq(2, 1, leq) is Ordering.AFTER

    def test_concurrent_with_set_inclusion(self):
        leq = lambda a, b: a <= b  # noqa: E731
        assert ordering_from_leq({1}, {2}, leq) is Ordering.CONCURRENT


class TestOrderingFromSets:
    def test_equal(self):
        assert ordering_from_sets(frozenset({1}), frozenset({1})) is Ordering.EQUAL

    def test_before_and_after(self):
        small = frozenset({1})
        large = frozenset({1, 2})
        assert ordering_from_sets(small, large) is Ordering.BEFORE
        assert ordering_from_sets(large, small) is Ordering.AFTER

    def test_concurrent(self):
        assert (
            ordering_from_sets(frozenset({1}), frozenset({2})) is Ordering.CONCURRENT
        )
