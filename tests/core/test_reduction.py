"""Unit tests for the Section 6 join-simplification rewriting rule."""

import pytest

from repro.core.bitstring import BitString
from repro.core.names import Name
from repro.core.reduction import (
    ReductionStats,
    find_sibling_pair,
    is_normal_form,
    normalize,
    reduce_stamp_pair,
    rewrite_once,
)


class TestFindSiblingPair:
    def test_finds_pair(self):
        pair = find_sibling_pair(Name.of("00", "01", "1"))
        assert pair == (BitString("00"), BitString("01"))

    def test_no_pair_in_normal_form(self):
        assert find_sibling_pair(Name.of("00", "1")) is None

    def test_no_pair_in_seed(self):
        assert find_sibling_pair(Name.seed()) is None

    def test_no_pair_in_empty(self):
        assert find_sibling_pair(Name.empty()) is None

    def test_returns_sorted_pair(self):
        zero, one = find_sibling_pair(Name.of("11", "10"))
        assert zero == BitString("10")
        assert one == BitString("11")


class TestRewriteOnce:
    def test_paper_rule_id_only(self):
        # (u, {i, s0, s1}) -> (u, {i, s}) when neither s0 nor s1 is in u.
        update, identity = rewrite_once(Name.of("1"), Name.of("00", "01", "1"))
        assert identity == Name.of("0", "1")
        assert update == Name.of("1")

    def test_paper_rule_updates_update_component(self):
        # When s0 or s1 is in u, they are replaced by s.
        update, identity = rewrite_once(Name.of("00", "1"), Name.of("00", "01", "1"))
        assert identity == Name.of("0", "1")
        assert update == Name.of("0", "1")

    def test_returns_none_when_not_applicable(self):
        assert rewrite_once(Name.seed(), Name.of("00", "1")) is None

    def test_result_components_are_wellformed(self):
        update, identity = rewrite_once(Name.of("010"), Name.of("010", "011", "1"))
        # Both results must remain antichains (checked by Name construction).
        assert isinstance(update, Name)
        assert isinstance(identity, Name)

    def test_rewrite_decreases_both_components(self):
        before_update, before_id = Name.of("00"), Name.of("00", "01")
        after_update, after_id = rewrite_once(before_update, before_id)
        assert after_id <= before_id
        assert after_update <= before_update


class TestNormalize:
    def test_normalizes_to_fixpoint(self):
        update, identity, steps = normalize(Name.of("1"), Name.of("00", "01", "1"))
        assert identity == Name.seed()
        assert update == Name.seed()
        assert steps == 2

    def test_already_normal(self):
        update, identity, steps = normalize(Name.of("0"), Name.of("0", "11"))
        assert steps == 0
        assert identity == Name.of("0", "11")

    def test_figure4_chain(self):
        # [1 | 00+01+1] -> [1 | 0+1] -> [ε | ε]
        first = rewrite_once(Name.of("1"), Name.of("00", "01", "1"))
        assert first is not None
        assert first[0] == Name.of("1")
        assert first[1] == Name.of("0", "1")
        second = rewrite_once(*first)
        assert second is not None
        assert second[0] == Name.seed()
        assert second[1] == Name.seed()

    def test_confluence_on_multiple_pairs(self):
        # Two disjoint sibling pairs: collapsing in any order gives the same
        # normal form.
        update = Name.empty()
        identity = Name.of("00", "01", "10", "11")
        _update, normal, steps = normalize(update, identity)
        assert normal == Name.seed()
        assert steps == 3

    def test_normalize_terminates_on_deep_ids(self):
        identity = Name.seed()
        for _ in range(12):
            identity = identity.concat(0) | identity.concat(1)
        _update, normal, _steps = normalize(Name.empty(), identity)
        assert normal == Name.seed()

    def test_is_normal_form(self):
        assert is_normal_form(Name.of("00", "1"))
        assert not is_normal_form(Name.of("00", "01"))


class TestReduceStampPair:
    def test_stats_account_bits(self):
        update, identity, stats = reduce_stamp_pair(
            Name.of("1"), Name.of("00", "01", "1")
        )
        assert isinstance(stats, ReductionStats)
        assert stats.steps == 2
        assert stats.id_bits_before > stats.id_bits_after
        assert stats.update_bits_before > stats.update_bits_after
        assert stats.bits_saved == (
            stats.id_bits_before
            + stats.update_bits_before
            - stats.id_bits_after
            - stats.update_bits_after
        )
        assert stats.reduced

    def test_noop_reduction_has_zero_savings(self):
        _update, _identity, stats = reduce_stamp_pair(Name.of("0"), Name.of("0", "11"))
        assert not stats.reduced
        assert stats.bits_saved == 0
