"""Unit tests for binary strings and the prefix order."""

import pytest

from repro.core.bitstring import EMPTY, BitString
from repro.core.errors import BitStringError


class TestConstruction:
    def test_from_text(self):
        assert BitString("0110").text == "0110"

    def test_from_bits(self):
        assert BitString.from_bits([0, 1, 1]).text == "011"

    def test_from_bitstring_copies_value(self):
        original = BitString("10")
        assert BitString(original) == original

    def test_empty_singleton(self):
        assert BitString.empty() == BitString("")
        assert EMPTY == BitString("")

    def test_parse_epsilon(self):
        assert BitString.parse("ε") == BitString.empty()
        assert BitString.parse("") == BitString.empty()

    def test_rejects_non_binary_text(self):
        with pytest.raises(BitStringError):
            BitString("012")

    def test_rejects_non_binary_bits(self):
        with pytest.raises(BitStringError):
            BitString([0, 2])

    def test_immutable(self):
        string = BitString("01")
        with pytest.raises(AttributeError):
            string.text = "11"
        with pytest.raises(AttributeError):
            del string._bits


class TestProtocol:
    def test_length(self):
        assert len(BitString("0101")) == 4
        assert len(BitString.empty()) == 0

    def test_iteration_yields_ints(self):
        assert list(BitString("011")) == [0, 1, 1]

    def test_indexing(self):
        string = BitString("011")
        assert string[0] == 0
        assert string[2] == 1

    def test_slicing_returns_bitstring(self):
        assert BitString("0110")[1:3] == BitString("11")

    def test_bool(self):
        assert not BitString.empty()
        assert BitString("0")

    def test_equality_and_hash(self):
        assert BitString("01") == BitString("01")
        assert BitString("01") != BitString("10")
        assert hash(BitString("01")) == hash(BitString("01"))

    def test_str_of_empty_is_epsilon(self):
        assert str(BitString.empty()) == "ε"
        assert str(BitString("10")) == "10"

    def test_repr_round_trips(self):
        string = BitString("101")
        assert eval(repr(string)) == string

    def test_sort_order_is_lexicographic(self):
        strings = [BitString("1"), BitString("01"), BitString("00"), BitString("")]
        assert [str(s) for s in sorted(strings)] == ["ε", "00", "01", "1"]


class TestConcatenation:
    def test_add_bitstring(self):
        assert BitString("0") + BitString("1") == BitString("01")

    def test_add_text(self):
        assert BitString("0") + "11" == BitString("011")

    def test_add_single_bit(self):
        assert BitString("0") + 1 == BitString("01")

    def test_append(self):
        assert BitString("0").append(1) == BitString("01")

    def test_append_rejects_bad_bit(self):
        with pytest.raises(BitStringError):
            BitString("0").append(2)

    def test_zero_and_one_shorthands(self):
        assert BitString("1").zero() == BitString("10")
        assert BitString("1").one() == BitString("11")


class TestPrefixOrder:
    def test_prefix_reflexive(self):
        assert BitString("01").is_prefix_of(BitString("01"))

    def test_prefix_of_longer(self):
        assert BitString("01").is_prefix_of(BitString("011"))
        assert not BitString("01").is_prefix_of(BitString("001"))

    def test_empty_is_bottom(self):
        assert BitString.empty().is_prefix_of(BitString("10"))
        assert BitString.empty().is_prefix_of(BitString.empty())

    def test_proper_prefix(self):
        assert BitString("0").is_proper_prefix_of(BitString("01"))
        assert not BitString("01").is_proper_prefix_of(BitString("01"))

    def test_extension(self):
        assert BitString("011").is_extension_of(BitString("01"))
        assert not BitString("011").is_extension_of(BitString("1"))

    def test_comparable_examples_from_paper(self):
        # The paper's examples: 01 ⊑ 011 and 01 ∥ 00.
        assert BitString("01").comparable(BitString("011"))
        assert BitString("01").incomparable(BitString("00"))

    def test_comparable_is_symmetric(self):
        a, b = BitString("0"), BitString("01")
        assert a.comparable(b) == b.comparable(a)


class TestStructuralHelpers:
    def test_bits_property(self):
        assert BitString("011").bits == (0, 1, 1)

    def test_parent(self):
        assert BitString("011").parent() == BitString("01")

    def test_parent_of_empty_fails(self):
        with pytest.raises(BitStringError):
            BitString.empty().parent()

    def test_last_bit(self):
        assert BitString("010").last_bit() == 0
        assert BitString("011").last_bit() == 1

    def test_last_bit_of_empty_fails(self):
        with pytest.raises(BitStringError):
            BitString.empty().last_bit()

    def test_sibling(self):
        assert BitString("010").sibling() == BitString("011")
        assert BitString("011").sibling() == BitString("010")

    def test_sibling_of_empty_fails(self):
        with pytest.raises(BitStringError):
            BitString.empty().sibling()

    def test_is_sibling_of(self):
        assert BitString("010").is_sibling_of(BitString("011"))
        assert not BitString("010").is_sibling_of(BitString("010"))
        assert not BitString("010").is_sibling_of(BitString("01"))
        assert not BitString("0").is_sibling_of(BitString.empty())

    def test_common_prefix(self):
        assert BitString("0110").common_prefix(BitString("0101")) == BitString("01")
        assert BitString("00").common_prefix(BitString("11")) == BitString.empty()

    def test_size_in_bits(self):
        assert BitString.empty().size_in_bits() == 1
        assert BitString("0101").size_in_bits() == 5
