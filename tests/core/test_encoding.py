"""Unit tests for the text/JSON/binary codecs."""

import json

import pytest

from repro.core.encoding import (
    encoded_size_bits,
    encoded_size_bytes,
    name_from_bitstream,
    name_from_json,
    name_to_bitstream,
    name_to_json,
    stamp_from_bitstream,
    stamp_from_bytes,
    stamp_from_json,
    stamp_from_text,
    stamp_to_bitstream,
    stamp_to_bytes,
    stamp_to_json,
    stamp_to_text,
)
from repro.core.errors import EncodingError
from repro.core.names import Name
from repro.core.stamp import VersionStamp


SAMPLE_STAMPS = [
    "[ε | ε]",
    "[ε | 0]",
    "[1 | 1]",
    "[1 | 01+1]",
    "[1 | 00+01+1]",
    "[0+10 | 0+10+11]",
]


class TestJsonCodec:
    @pytest.mark.parametrize("text", SAMPLE_STAMPS)
    def test_stamp_round_trip(self, text):
        stamp = VersionStamp.parse(text, reducing=False)
        assert stamp_from_json(stamp_to_json(stamp)) == stamp

    def test_stamp_round_trip_through_json_text(self):
        stamp = VersionStamp.parse("[1 | 01+1]")
        payload = json.dumps(stamp_to_json(stamp))
        assert stamp_from_json(payload) == stamp

    def test_name_round_trip(self):
        name = Name.parse("00+01+1")
        assert name_from_json(name_to_json(name)) == name

    def test_reducing_flag_preserved(self):
        stamp = VersionStamp.seed(reducing=False)
        decoded = stamp_from_json(stamp_to_json(stamp))
        assert decoded.reducing is False

    def test_rejects_malformed_payloads(self):
        with pytest.raises(EncodingError):
            stamp_from_json({"update": ["0"]})
        with pytest.raises(EncodingError):
            stamp_from_json("not json {")
        with pytest.raises(EncodingError):
            name_from_json("not-a-list")
        with pytest.raises(EncodingError):
            name_from_json(["0", "01"])  # not an antichain


class TestTextCodec:
    @pytest.mark.parametrize("text", SAMPLE_STAMPS)
    def test_round_trip(self, text):
        stamp = VersionStamp.parse(text, reducing=False)
        assert stamp_from_text(stamp_to_text(stamp), reducing=False) == stamp

    def test_rejects_garbage(self):
        with pytest.raises(EncodingError):
            stamp_from_text("garbage")


class TestBinaryCodec:
    @pytest.mark.parametrize("text", SAMPLE_STAMPS)
    def test_bitstream_round_trip(self, text):
        stamp = VersionStamp.parse(text, reducing=False)
        assert stamp_from_bitstream(stamp_to_bitstream(stamp), reducing=False) == stamp

    @pytest.mark.parametrize("text", SAMPLE_STAMPS)
    def test_bytes_round_trip(self, text):
        stamp = VersionStamp.parse(text, reducing=False)
        assert stamp_from_bytes(stamp_to_bytes(stamp), reducing=False) == stamp

    def test_name_bitstream_round_trip(self):
        name = Name.parse("000+001+01+1")
        assert name_from_bitstream(name_to_bitstream(name)) == name

    def test_empty_name_round_trip(self):
        assert name_from_bitstream(name_to_bitstream(Name.empty())) == Name.empty()

    def test_truncated_stream_rejected(self):
        bits = stamp_to_bitstream(VersionStamp.parse("[1 | 01+1]"))
        with pytest.raises(EncodingError):
            stamp_from_bitstream(bits[:-2])

    def test_trailing_bits_rejected(self):
        bits = stamp_to_bitstream(VersionStamp.seed())
        with pytest.raises(EncodingError):
            stamp_from_bitstream(bits + [0, 1])

    def test_invalid_bit_values_rejected(self):
        with pytest.raises(EncodingError):
            name_from_bitstream([2])

    def test_truncated_bytes_rejected(self):
        with pytest.raises(EncodingError):
            stamp_from_bytes(b"\x00")
        payload = stamp_to_bytes(VersionStamp.parse("[1 | 01+1]"))
        with pytest.raises(EncodingError):
            stamp_from_bytes(payload[:3])

    def test_seed_stamp_is_tiny(self):
        # [ε | ε] encodes to two single-bit tries: 2 bits total.
        assert encoded_size_bits(VersionStamp.seed()) == 2
        assert encoded_size_bytes(VersionStamp.seed()) == 3  # 2-byte length + 1

    def test_binary_encoding_grows_with_id_complexity(self):
        small = VersionStamp.parse("[ε | 0]")
        large = VersionStamp.parse("[ε | 000+001+01+1]", reducing=False)
        assert encoded_size_bits(large) > encoded_size_bits(small)
