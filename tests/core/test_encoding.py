"""Unit tests for the text/JSON/binary codecs."""

import json

import pytest

from repro.core.encoding import (
    encoded_size_bits,
    encoded_size_bytes,
    name_from_bitstream,
    name_from_json,
    name_to_bitstream,
    name_to_json,
    stamp_from_bitstream,
    stamp_from_bytes,
    stamp_from_json,
    stamp_from_text,
    stamp_to_bitstream,
    stamp_to_bytes,
    stamp_to_json,
    stamp_to_text,
)
from repro.core.errors import EncodingError
from repro.core.names import Name
from repro.core.stamp import VersionStamp


SAMPLE_STAMPS = [
    "[ε | ε]",
    "[ε | 0]",
    "[1 | 1]",
    "[1 | 01+1]",
    "[1 | 00+01+1]",
    "[0+10 | 0+10+11]",
]


class TestJsonCodec:
    @pytest.mark.parametrize("text", SAMPLE_STAMPS)
    def test_stamp_round_trip(self, text):
        stamp = VersionStamp.parse(text, reducing=False)
        assert stamp_from_json(stamp_to_json(stamp)) == stamp

    def test_stamp_round_trip_through_json_text(self):
        stamp = VersionStamp.parse("[1 | 01+1]")
        payload = json.dumps(stamp_to_json(stamp))
        assert stamp_from_json(payload) == stamp

    def test_name_round_trip(self):
        name = Name.parse("00+01+1")
        assert name_from_json(name_to_json(name)) == name

    def test_reducing_flag_preserved(self):
        stamp = VersionStamp.seed(reducing=False)
        decoded = stamp_from_json(stamp_to_json(stamp))
        assert decoded.reducing is False

    def test_rejects_malformed_payloads(self):
        with pytest.raises(EncodingError):
            stamp_from_json({"update": ["0"]})
        with pytest.raises(EncodingError):
            stamp_from_json("not json {")
        with pytest.raises(EncodingError):
            name_from_json("not-a-list")
        with pytest.raises(EncodingError):
            name_from_json(["0", "01"])  # not an antichain


class TestTextCodec:
    @pytest.mark.parametrize("text", SAMPLE_STAMPS)
    def test_round_trip(self, text):
        stamp = VersionStamp.parse(text, reducing=False)
        assert stamp_from_text(stamp_to_text(stamp), reducing=False) == stamp

    def test_rejects_garbage(self):
        with pytest.raises(EncodingError):
            stamp_from_text("garbage")


class TestBinaryCodec:
    @pytest.mark.parametrize("text", SAMPLE_STAMPS)
    def test_bitstream_round_trip(self, text):
        stamp = VersionStamp.parse(text, reducing=False)
        assert stamp_from_bitstream(stamp_to_bitstream(stamp), reducing=False) == stamp

    @pytest.mark.parametrize("text", SAMPLE_STAMPS)
    def test_bytes_round_trip(self, text):
        stamp = VersionStamp.parse(text, reducing=False)
        assert stamp_from_bytes(stamp_to_bytes(stamp), reducing=False) == stamp

    def test_name_bitstream_round_trip(self):
        name = Name.parse("000+001+01+1")
        assert name_from_bitstream(name_to_bitstream(name)) == name

    def test_empty_name_round_trip(self):
        assert name_from_bitstream(name_to_bitstream(Name.empty())) == Name.empty()

    def test_truncated_stream_rejected(self):
        bits = stamp_to_bitstream(VersionStamp.parse("[1 | 01+1]"))
        with pytest.raises(EncodingError):
            stamp_from_bitstream(bits[:-2])

    def test_trailing_bits_rejected(self):
        bits = stamp_to_bitstream(VersionStamp.seed())
        with pytest.raises(EncodingError):
            stamp_from_bitstream(bits + [0, 1])

    def test_invalid_bit_values_rejected(self):
        with pytest.raises(EncodingError):
            name_from_bitstream([2])

    def test_truncated_bytes_rejected(self):
        with pytest.raises(EncodingError):
            stamp_from_bytes(b"\x00")
        payload = stamp_to_bytes(VersionStamp.parse("[1 | 01+1]"))
        with pytest.raises(EncodingError):
            stamp_from_bytes(payload[:3])

    def test_seed_stamp_is_tiny(self):
        # [ε | ε] encodes to two single-bit tries: 2 bits total.
        assert encoded_size_bits(VersionStamp.seed()) == 2
        assert encoded_size_bytes(VersionStamp.seed()) == 3  # 2-byte length + 1

    def test_binary_encoding_grows_with_id_complexity(self):
        small = VersionStamp.parse("[ε | 0]")
        large = VersionStamp.parse("[ε | 000+001+01+1]", reducing=False)
        assert encoded_size_bits(large) > encoded_size_bits(small)


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.testing import kernel_clocks


@st.composite
def stamps(draw):
    """Arbitrary version stamps reached by real fork/update/join walks."""
    return draw(kernel_clocks("version-stamp", max_operations=14, max_epoch=0)).stamp


class TestPackedFastPath:
    """The packed int codec is pinned to the list-based reference.

    ``stamp_to_bytes``/``stamp_from_bytes`` run the bulk int fast path;
    the list-of-bits functions are the retained readable reference.  The
    two must agree bit-for-bit on every stamp, and the fast decoder must
    accept buffers without copying and intern repeated payloads.
    """

    @settings(max_examples=60, deadline=None)
    @given(stamp=stamps())
    def test_packed_encode_matches_list_reference(self, stamp):
        from repro.core.encoding import name_to_packed, stamp_to_packed
        from repro.kernel.wire import bits_to_length_prefixed

        reference = bits_to_length_prefixed(
            stamp_to_bitstream(stamp), count_bytes=2
        )
        assert stamp_to_bytes(stamp) == reference
        value, count = stamp_to_packed(stamp)
        assert count == len(stamp_to_bitstream(stamp))
        assert encoded_size_bits(stamp) == count
        update_value, update_count = name_to_packed(stamp.update_component)
        assert update_count == len(name_to_bitstream(stamp.update_component))

    @settings(max_examples=60, deadline=None)
    @given(stamp=stamps())
    def test_packed_decode_matches_list_reference(self, stamp):
        from repro.kernel.wire import bits_from_length_prefixed

        payload = stamp_to_bytes(stamp)
        fast = stamp_from_bytes(payload)
        reference = stamp_from_bitstream(
            bits_from_length_prefixed(payload, count_bytes=2)
        )
        assert fast == reference == stamp

    @settings(max_examples=40, deadline=None)
    @given(stamp=stamps(), data=st.data())
    def test_mutations_agree_with_list_reference(self, stamp, data):
        from repro.kernel.wire import bits_from_length_prefixed

        payload = bytearray(stamp_to_bytes(stamp))
        for _ in range(data.draw(st.integers(1, 3))):
            index = data.draw(st.integers(0, len(payload) - 1))
            payload[index] ^= 1 << data.draw(st.integers(0, 7))
        payload = bytes(payload)
        try:
            fast = stamp_from_bytes(payload)
        except EncodingError:
            fast = "rejected"
        try:
            reference = stamp_from_bitstream(
                bits_from_length_prefixed(payload, count_bytes=2)
            )
        except EncodingError:
            reference = "rejected"
        assert fast == reference

    def test_decode_accepts_memoryview(self):
        stamp = VersionStamp.parse("[00+01 | 00+01+1]")
        payload = stamp_to_bytes(stamp)
        assert stamp_from_bytes(memoryview(payload)) == stamp
        assert stamp_from_bytes(bytearray(payload)) == stamp

    def test_decode_intern_is_pointer_equal(self):
        stamp = VersionStamp.parse("[00+01 | 00+01+1]")
        payload = stamp_to_bytes(stamp)
        assert stamp_from_bytes(payload) is stamp_from_bytes(payload)
        # The reducing flag partitions the intern keyspace.
        assert stamp_from_bytes(payload) is not stamp_from_bytes(
            payload, reducing=False
        )
