"""Differential tests: bitset causal oracle vs the retained frozenset oracle.

Mirrors ``tests/core/test_packed_differential.py`` for the causal layer: the
same traces replay through the packed-bitset implementation
(:mod:`repro.causal.history` / :mod:`repro.causal.configuration`) and through
the seed frozenset implementation kept in :mod:`repro.causal.refhistory`,
and every observable — orderings, matrices, dominance, event sets, sizes,
lockstep agreement reports — must be identical.  Any divergence is a bug in
the bitset representation (or in the incremental comparison-cache strategy,
which is cross-checked against the seed full-rescan strategy here too).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.causal.configuration import CausalConfiguration
from repro.causal.refhistory import RefCausalConfiguration
from repro.kernel.adapters import (
    CausalAdapter,
    ITCAdapter,
    RefCausalAdapter,
    StampAdapter,
)
from repro.sim.runner import LockstepRunner
from repro.sim.trace import OpKind, Trace
from repro.sim.workload import churn_trace, partitioned_trace, random_dynamic_trace
from repro.testing import trace_operations


def _apply(configuration, operation):
    if operation.kind == OpKind.UPDATE:
        configuration.update(operation.source, operation.results[0])
    elif operation.kind == OpKind.FORK:
        configuration.fork(operation.source, *operation.results)
    elif operation.kind == OpKind.JOIN:
        configuration.join(operation.source, operation.other, operation.results[0])
    else:
        configuration.sync(operation.source, operation.other, *operation.results)


def _event_sequences(history):
    return sorted(event.sequence for event in history.events)


def _assert_configurations_agree(packed, reference, rng):
    labels = packed.labels()
    assert labels == reference.labels()
    for label in labels:
        assert _event_sequences(packed.history_of(label)) == _event_sequences(
            reference.history_of(label)
        )
        assert len(packed.history_of(label)) == len(reference.history_of(label))
    assert packed.ordering_matrix() == reference.ordering_matrix()
    assert sorted(e.sequence for e in packed.all_events()) == sorted(
        e.sequence for e in reference.all_events()
    )
    if len(labels) >= 2:
        label = rng.choice(labels)
        subset = rng.sample(labels, rng.randint(1, len(labels)))
        assert packed.dominated_by_set(label, subset) == reference.dominated_by_set(
            label, subset
        )


def _replay_both(trace):
    packed = CausalConfiguration.initial(trace.seed)
    reference = RefCausalConfiguration.initial(trace.seed)
    rng = random.Random(20260730)
    for operation in trace.operations:
        _apply(packed, operation)
        _apply(reference, operation)
        _assert_configurations_agree(packed, reference, rng)


class TestConfigurationDifferential:
    @pytest.mark.parametrize("seed", [0, 3, 11, 42, 97])
    def test_long_traces_agree_step_by_step(self, seed):
        trace = random_dynamic_trace(
            220, seed=seed, update_weight=0.5, fork_weight=0.3, join_weight=0.2,
            max_frontier=10,
        )
        assert len(trace) >= 200
        _replay_both(trace)

    @settings(max_examples=40, deadline=None)
    @given(trace=trace_operations(max_operations=30, max_frontier=5))
    def test_random_traces_agree(self, trace):
        _replay_both(trace)


def _run_lockstep(trace, oracle, incremental):
    runner = LockstepRunner(
        [StampAdapter(reducing=True), ITCAdapter()],
        oracle=oracle,
        incremental=incremental,
    )
    return runner.run(trace)


class TestLockstepDifferential:
    """Bitset+incremental and refhistory+seed runner stacks agree exactly."""

    @pytest.mark.parametrize("seed", [5, 23])
    def test_agreement_reports_identical_on_long_traces(self, seed):
        trace = random_dynamic_trace(
            210, seed=seed, update_weight=0.5, fork_weight=0.3, join_weight=0.2,
            max_frontier=8,
        )
        assert len(trace) >= 200
        packed_reports, packed_sizes = _run_lockstep(trace, CausalAdapter(), True)
        ref_reports, ref_sizes = _run_lockstep(trace, RefCausalAdapter(), False)
        assert packed_reports == ref_reports
        for report in packed_reports.values():
            assert report.comparisons > 0
            assert report.agreement_rate == 1.0
        # Oracle size samples agree too (64 bits per event on both sides).
        packed_oracle = packed_sizes["causal-history"]
        ref_oracle = ref_sizes["causal-history-ref"]
        assert packed_oracle.per_step_mean_bits == ref_oracle.per_step_mean_bits
        assert packed_oracle.per_step_max_bits == ref_oracle.per_step_max_bits

    @settings(max_examples=20, deadline=None)
    @given(
        trace=trace_operations(max_operations=25, max_frontier=5),
        compare_every_step=st.booleans(),
    )
    def test_strategies_identical_on_random_traces(self, trace, compare_every_step):
        results = {}
        for key, (oracle, incremental) in {
            "packed-incremental": (CausalAdapter(), True),
            "packed-seed": (CausalAdapter(), False),
            "ref-incremental": (RefCausalAdapter(), True),
            "ref-seed": (RefCausalAdapter(), False),
        }.items():
            runner = LockstepRunner(
                [StampAdapter(reducing=True)],
                oracle=oracle,
                incremental=incremental,
                compare_every_step=compare_every_step,
            )
            reports, _ = runner.run(trace)
            results[key] = reports
        baseline = results.pop("ref-seed")
        for key, reports in results.items():
            assert reports == baseline, key


def _structured_traces():
    """The two structured generators previously untested end to end.

    ``random_dynamic_trace`` and ``fixed_replica_trace`` shapes are covered
    above and in ``tests/sim``; these two stress different lockstep paths:
    partition phases re-shuffle membership (long-lived concurrent clusters,
    then a multi-join heal), and churn retires labels aggressively (the
    invalidation-heavy regime for the incremental comparison caches).
    """
    return [
        partitioned_trace(
            initial_replicas=5,
            partitions=2,
            phases=3,
            operations_per_phase=18,
            seed=31,
        ),
        churn_trace(140, target_frontier=7, seed=17),
    ]


class TestStructuredTraceDifferential:
    """partitioned/churn generators through every oracle/strategy combo."""

    @pytest.mark.parametrize(
        "trace", _structured_traces(), ids=["partitioned", "churn"]
    )
    def test_configurations_agree_step_by_step(self, trace):
        _replay_both(trace)

    @pytest.mark.parametrize(
        "trace", _structured_traces(), ids=["partitioned", "churn"]
    )
    @pytest.mark.parametrize("incremental", [True, False], ids=["incr", "seed"])
    @pytest.mark.parametrize(
        "oracle_factory", [CausalAdapter, RefCausalAdapter], ids=["bitset", "ref"]
    )
    def test_all_combos_agree_and_match_baseline(
        self, trace, oracle_factory, incremental
    ):
        reports, sizes = _run_lockstep(trace, oracle_factory(), incremental)
        baseline_reports, baseline_sizes = _run_lockstep(
            trace, RefCausalAdapter(), False
        )
        assert reports == baseline_reports
        for report in reports.values():
            assert report.comparisons > 0
            assert report.agreement_rate == 1.0
            assert report.invariant_failures == 0
        for name, sample in sizes.items():
            if name in baseline_sizes:
                assert (
                    sample.per_step_max_bits
                    == baseline_sizes[name].per_step_max_bits
                )
