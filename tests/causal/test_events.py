"""Unit tests for globally unique update events."""

from repro.causal.events import EventSource, UpdateEvent, label_of, materialize


class TestUpdateEvent:
    def test_equality_ignores_label(self):
        assert UpdateEvent(3, "a") == UpdateEvent(3, "b")
        assert UpdateEvent(3) != UpdateEvent(4)

    def test_ordering_by_sequence(self):
        assert UpdateEvent(1) < UpdateEvent(2)

    def test_str_includes_label(self):
        assert str(UpdateEvent(2, "a")) == "e2(a)"
        assert str(UpdateEvent(2)) == "e2"

    def test_hashable(self):
        assert len({UpdateEvent(1), UpdateEvent(1, "x"), UpdateEvent(2)}) == 2


class TestEventSource:
    def test_fresh_events_are_unique(self):
        source = EventSource()
        events = [source.fresh() for _ in range(100)]
        assert len(set(events)) == 100

    def test_issued_counter(self):
        source = EventSource()
        source.fresh()
        source.fresh()
        assert source.issued == 2

    def test_custom_start(self):
        source = EventSource(start=10)
        assert source.fresh().sequence == 10

    def test_iteration_yields_fresh_events(self):
        source = EventSource()
        iterator = iter(source)
        assert next(iterator) != next(iterator)

    def test_labels_are_attached(self):
        source = EventSource()
        assert source.fresh("replica-a").label == "replica-a"


class TestArena:
    def test_fresh_index_is_dense(self):
        source = EventSource()
        assert [source.fresh_index() for _ in range(3)] == [0, 1, 2]
        assert source.issued == 3

    def test_fresh_index_respects_start(self):
        source = EventSource(start=5)
        assert source.fresh_index() == 5

    def test_materialize_recovers_label(self):
        source = EventSource()
        index = source.fresh_index("replica-b")
        assert label_of(index) == "replica-b"
        view = materialize(index)
        assert view == UpdateEvent(index)
        assert view.label == "replica-b"

    def test_materialize_unlabelled_index(self):
        # A start beyond other tests' ranges: the label table is global, so
        # an index reused by another source could carry a stale display tag.
        source = EventSource(start=10**9)
        index = source.fresh_index()
        assert materialize(index).label == ""
