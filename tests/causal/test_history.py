"""Unit tests for causal histories (sets of update events)."""

import pytest

from repro.causal.events import EventSource, UpdateEvent
from repro.causal.history import CausalHistory
from repro.core.order import Ordering


@pytest.fixture
def events():
    source = EventSource()
    return [source.fresh() for _ in range(4)]


class TestBasics:
    def test_empty_history(self):
        history = CausalHistory.empty()
        assert len(history) == 0
        assert not history

    def test_with_event(self, events):
        history = CausalHistory.empty().with_event(events[0])
        assert events[0] in history
        assert len(history) == 1

    def test_union(self, events):
        left = CausalHistory([events[0]])
        right = CausalHistory([events[1]])
        assert set((left | right).events) == {events[0], events[1]}

    def test_immutable(self, events):
        history = CausalHistory([events[0]])
        with pytest.raises(AttributeError):
            history.events = frozenset()

    def test_equality_and_hash(self, events):
        assert CausalHistory([events[0]]) == CausalHistory([events[0]])
        assert hash(CausalHistory([events[0]])) == hash(CausalHistory([events[0]]))

    def test_iteration_is_sorted(self, events):
        history = CausalHistory([events[2], events[0]])
        assert list(history) == [events[0], events[2]]

    def test_repr(self, events):
        assert "e0" in repr(CausalHistory([events[0]]))


class TestComparison:
    def test_equivalence(self, events):
        left = CausalHistory([events[0]])
        right = CausalHistory([events[0]])
        assert left.compare(right) is Ordering.EQUAL
        assert left.equivalent(right)

    def test_obsolescence(self, events):
        old = CausalHistory([events[0]])
        new = CausalHistory([events[0], events[1]])
        assert old.compare(new) is Ordering.BEFORE
        assert old.obsolete_relative_to(new)
        assert old <= new
        assert old < new

    def test_mutual_inconsistency(self, events):
        left = CausalHistory([events[0], events[1]])
        right = CausalHistory([events[0], events[2]])
        assert left.compare(right) is Ordering.CONCURRENT
        assert left.inconsistent_with(right)

    def test_leq(self, events):
        left = CausalHistory([events[0]])
        right = CausalHistory([events[0], events[1]])
        assert left.leq(right)
        assert not right.leq(left)
