"""Unit tests for causal histories (sets of update events)."""

import pytest

from repro.causal.events import EventSource, UpdateEvent
from repro.causal.history import CausalHistory
from repro.core.order import Ordering


@pytest.fixture
def events():
    source = EventSource()
    return [source.fresh() for _ in range(4)]


class TestBasics:
    def test_empty_history(self):
        history = CausalHistory.empty()
        assert len(history) == 0
        assert not history

    def test_with_event(self, events):
        history = CausalHistory.empty().with_event(events[0])
        assert events[0] in history
        assert len(history) == 1

    def test_union(self, events):
        left = CausalHistory([events[0]])
        right = CausalHistory([events[1]])
        assert set((left | right).events) == {events[0], events[1]}

    def test_immutable(self, events):
        history = CausalHistory([events[0]])
        with pytest.raises(AttributeError):
            history.events = frozenset()

    def test_equality_and_hash(self, events):
        assert CausalHistory([events[0]]) == CausalHistory([events[0]])
        assert hash(CausalHistory([events[0]])) == hash(CausalHistory([events[0]]))

    def test_iteration_is_sorted(self, events):
        history = CausalHistory([events[2], events[0]])
        assert list(history) == [events[0], events[2]]

    def test_repr(self, events):
        assert "e0" in repr(CausalHistory([events[0]]))


class TestPackedRepresentation:
    def test_interning_makes_equal_histories_pointer_equal(self, events):
        assert CausalHistory([events[0], events[2]]) is CausalHistory(
            [events[2], events[0]]
        )
        assert CausalHistory.empty() is CausalHistory()

    def test_bits_pack_event_sequences(self, events):
        history = CausalHistory([events[0], events[2]])
        assert history.bits == (1 << events[0].sequence) | (1 << events[2].sequence)

    def test_from_bits_roundtrip(self, events):
        history = CausalHistory([events[1], events[3]])
        assert CausalHistory.from_bits(history.bits) is history

    def test_from_bits_rejects_negative(self):
        with pytest.raises(ValueError):
            CausalHistory.from_bits(-1)

    def test_event_count_matches_len(self, events):
        history = CausalHistory(events[:3])
        assert history.event_count == len(history) == 3

    def test_with_event_accepts_bare_index(self, events):
        via_event = CausalHistory.empty().with_event(events[0])
        via_index = CausalHistory.empty().with_event(events[0].sequence)
        assert via_event is via_index

    def test_union_identity_fast_path(self, events):
        history = CausalHistory(events[:2])
        assert history.union(history) is history

    def test_sorted_view_is_cached(self, events):
        history = CausalHistory([events[2], events[0]])
        assert history._view is None
        first = list(history)
        assert history._view is not None
        assert list(history) == first == [events[0], events[2]]

    def test_hash_is_cached(self, events):
        history = CausalHistory([events[1]])
        assert history._hash is None
        value = hash(history)
        assert history._hash == value
        assert hash(history) == value

    def test_materialized_views_carry_labels(self):
        source = EventSource()
        history = CausalHistory.empty().with_event(source.fresh("replica-a"))
        assert [event.label for event in history] == ["replica-a"]
        assert "replica-a" in repr(history)


class TestComparison:
    def test_equivalence(self, events):
        left = CausalHistory([events[0]])
        right = CausalHistory([events[0]])
        assert left.compare(right) is Ordering.EQUAL
        assert left.equivalent(right)

    def test_obsolescence(self, events):
        old = CausalHistory([events[0]])
        new = CausalHistory([events[0], events[1]])
        assert old.compare(new) is Ordering.BEFORE
        assert old.obsolete_relative_to(new)
        assert old <= new
        assert old < new

    def test_mutual_inconsistency(self, events):
        left = CausalHistory([events[0], events[1]])
        right = CausalHistory([events[0], events[2]])
        assert left.compare(right) is Ordering.CONCURRENT
        assert left.inconsistent_with(right)

    def test_leq(self, events):
        left = CausalHistory([events[0]])
        right = CausalHistory([events[0], events[1]])
        assert left.leq(right)
        assert not right.leq(left)
