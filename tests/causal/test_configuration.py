"""Unit tests for causal-history configurations (Definition 2.1)."""

import pytest

from repro.causal.configuration import CausalConfiguration
from repro.core.errors import FrontierError
from repro.core.order import Ordering


class TestLifecycle:
    def test_initial_configuration(self):
        configuration = CausalConfiguration.initial("a")
        assert configuration.labels() == ["a"]
        assert len(configuration.history_of("a")) == 0

    def test_update_adds_fresh_event(self):
        configuration = CausalConfiguration.initial("a")
        configuration.update("a", "a2")
        assert len(configuration.history_of("a2")) == 1

    def test_update_default_label_gets_prime(self):
        configuration = CausalConfiguration.initial("a")
        assert configuration.update("a") == "a'"

    def test_fork_copies_history(self):
        configuration = CausalConfiguration.initial("a")
        configuration.update("a", "a2")
        configuration.fork("a2", "b", "c")
        assert configuration.history_of("b") == configuration.history_of("c")

    def test_join_unions_histories(self):
        configuration = CausalConfiguration.initial("a")
        configuration.fork("a", "b", "c")
        configuration.update("b", "b2")
        configuration.update("c", "c2")
        configuration.join("b2", "c2", "d")
        assert len(configuration.history_of("d")) == 2

    def test_sync_is_join_then_fork(self):
        configuration = CausalConfiguration.initial("a")
        configuration.fork("a", "b", "c")
        configuration.update("b", "b")
        configuration.sync("b", "c")
        assert configuration.compare("b", "c") is Ordering.EQUAL

    def test_all_events_union(self):
        configuration = CausalConfiguration.initial("a")
        configuration.fork("a", "b", "c")
        configuration.update("b", "b")
        configuration.update("c", "c")
        assert len(configuration.all_events()) == 2

    def test_unknown_label_raises(self):
        configuration = CausalConfiguration.initial("a")
        with pytest.raises(FrontierError):
            configuration.history_of("nope")

    def test_self_join_rejected(self):
        configuration = CausalConfiguration.initial("a")
        with pytest.raises(FrontierError):
            configuration.join("a", "a")

    def test_duplicate_labels_rejected(self):
        configuration = CausalConfiguration.initial("a")
        configuration.fork("a", "b", "c")
        with pytest.raises(FrontierError):
            configuration.update("b", "c")

    def test_copy_shares_event_source(self):
        configuration = CausalConfiguration.initial("a")
        clone = configuration.copy()
        configuration.update("a", "a2")
        clone.update("a", "a3")
        # Distinct events even across copies: the global view is shared.
        assert configuration.history_of("a2") != clone.history_of("a3")


class TestQueries:
    @pytest.fixture
    def diverged(self):
        configuration = CausalConfiguration.initial("a")
        configuration.fork("a", "b", "c")
        configuration.update("b", "b")
        configuration.update("c", "c")
        return configuration

    def test_equivalence(self):
        configuration = CausalConfiguration.initial("a")
        configuration.fork("a", "b", "c")
        assert configuration.equivalent("b", "c")

    def test_obsolescence(self):
        configuration = CausalConfiguration.initial("a")
        configuration.fork("a", "b", "c")
        configuration.update("b", "b")
        assert configuration.obsolete("c", "b")

    def test_inconsistency(self, diverged):
        assert diverged.inconsistent("b", "c")

    def test_ordering_matrix(self, diverged):
        matrix = diverged.ordering_matrix()
        assert matrix[("b", "c")] is Ordering.CONCURRENT
        assert matrix[("c", "b")] is Ordering.CONCURRENT

    def test_dominated_by_set(self, diverged):
        # b's history is not inside c's, but it is inside {b, c}'s union.
        assert not diverged.dominated_by_set("b", ["c"])
        assert diverged.dominated_by_set("b", ["b", "c"])
