"""Property-based tests for Interval Tree Clocks (the extension mechanism)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.order import Ordering
from repro.itc.event_tree import event_leq, join_events, normalize_event
from repro.itc.id_tree import normalize_id, split_id, sum_ids
from repro.itc.stamp import ITCStamp


@st.composite
def event_trees(draw, depth: int = 3):
    """Random (normalized) event trees."""
    if depth == 0 or draw(st.booleans()):
        return draw(st.integers(min_value=0, max_value=5))
    base = draw(st.integers(min_value=0, max_value=3))
    left = draw(event_trees(depth=depth - 1))
    right = draw(event_trees(depth=depth - 1))
    return normalize_event((base, left, right))


@st.composite
def id_trees(draw, depth: int = 3):
    """Random (normalized) identity trees."""
    if depth == 0 or draw(st.booleans()):
        return draw(st.sampled_from([0, 1]))
    left = draw(id_trees(depth=depth - 1))
    right = draw(id_trees(depth=depth - 1))
    return normalize_id((left, right))


class TestEventTreeProperties:
    @given(event_trees())
    def test_normalization_is_idempotent(self, event):
        assert normalize_event(event) == event

    @given(event_trees(), event_trees())
    def test_join_is_upper_bound(self, a, b):
        joined = join_events(a, b)
        assert event_leq(a, joined)
        assert event_leq(b, joined)

    @given(event_trees(), event_trees())
    def test_join_commutative(self, a, b):
        assert join_events(a, b) == join_events(b, a)

    @given(event_trees())
    def test_join_idempotent(self, a):
        assert join_events(a, a) == a

    @given(event_trees(), event_trees(), event_trees())
    def test_join_associative(self, a, b, c):
        assert join_events(join_events(a, b), c) == join_events(a, join_events(b, c))

    @given(event_trees(), event_trees())
    def test_leq_antisymmetric_on_normal_forms(self, a, b):
        if event_leq(a, b) and event_leq(b, a):
            assert a == b


class TestIdTreeProperties:
    @given(id_trees())
    def test_split_parts_rejoin(self, identity):
        left, right = split_id(identity)
        assert sum_ids(left, right) == identity

    @given(id_trees())
    def test_split_parts_cover_nothing_twice(self, identity):
        # Summing must never raise for the two halves of a split: they are
        # disjoint by construction.
        left, right = split_id(identity)
        sum_ids(left, right)


class TestStampSimulation:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_random_runs_agree_with_version_stamps(self, seed):
        """Drive ITC and version stamps through the same random run and
        check they give identical pairwise orderings of the frontier."""
        from repro.core.stamp import VersionStamp

        rng = random.Random(seed)
        itc = [ITCStamp.seed()]
        stamps = [VersionStamp.seed()]
        for _ in range(25):
            action = rng.choice(["event", "fork", "join"])
            index = rng.randrange(len(itc))
            if action == "event":
                itc[index] = itc[index].event()
                stamps[index] = stamps[index].update()
            elif action == "fork" and len(itc) < 6:
                left, right = itc[index].fork()
                itc[index] = left
                itc.append(right)
                stamp_left, stamp_right = stamps[index].fork()
                stamps[index] = stamp_left
                stamps.append(stamp_right)
            elif action == "join" and len(itc) >= 2:
                other = rng.randrange(len(itc))
                if other == index:
                    continue
                first, second = sorted((index, other))
                itc[first] = itc[first].join(itc[second])
                stamps[first] = stamps[first].join(stamps[second])
                del itc[second]
                del stamps[second]
        for x in range(len(itc)):
            for y in range(len(itc)):
                if x != y:
                    assert itc[x].compare(itc[y]) is stamps[x].compare(stamps[y])
