"""Unit tests for Interval Tree Clock stamps."""

import pytest

from repro.core.errors import StampError
from repro.core.order import Ordering
from repro.itc.stamp import ITCStamp


class TestLifecycle:
    def test_seed(self):
        seed = ITCStamp.seed()
        assert seed.identity == 1
        assert seed.events == 0

    def test_fork_splits_identity(self):
        left, right = ITCStamp.seed().fork()
        assert left.identity == (1, 0)
        assert right.identity == (0, 1)
        assert left.events == right.events == 0

    def test_event_records_update(self):
        stamp = ITCStamp.seed().event()
        assert stamp.events == 1

    def test_event_on_anonymous_fails(self):
        anonymous = ITCStamp.seed().peek()
        with pytest.raises(StampError):
            anonymous.event()

    def test_peek_is_anonymous(self):
        stamp = ITCStamp.seed().event()
        peeked = stamp.peek()
        assert peeked.is_anonymous
        assert peeked.events == stamp.events

    def test_join_restores_seed_identity(self):
        left, right = ITCStamp.seed().fork()
        assert left.join(right).identity == 1

    def test_join_with_wrong_type_fails(self):
        with pytest.raises(StampError):
            ITCStamp.seed().join("nope")

    def test_sync(self):
        left, right = ITCStamp.seed().fork()
        left = left.event()
        new_left, new_right = left.sync(right)
        assert new_left.compare(new_right) is Ordering.EQUAL

    def test_normalization_at_construction(self):
        stamp = ITCStamp((1, 1), (1, 1, 1))
        assert stamp.identity == 1
        assert stamp.events == 2

    def test_equality_and_hash(self):
        assert ITCStamp.seed() == ITCStamp(1, 0)
        assert hash(ITCStamp.seed()) == hash(ITCStamp(1, 0))

    def test_repr(self):
        assert "identity" in repr(ITCStamp.seed())


class TestComparison:
    def test_fresh_forks_equal(self):
        left, right = ITCStamp.seed().fork()
        assert left.compare(right) is Ordering.EQUAL

    def test_event_dominates_sibling(self):
        left, right = ITCStamp.seed().fork()
        updated = left.event()
        assert updated.compare(right) is Ordering.AFTER
        assert right.compare(updated) is Ordering.BEFORE

    def test_concurrent_events_conflict(self):
        left, right = ITCStamp.seed().fork()
        assert left.event().compare(right.event()) is Ordering.CONCURRENT
        assert left.event().concurrent(right.event())

    def test_join_dominates_both(self):
        left, right = ITCStamp.seed().fork()
        left, right = left.event(), right.event()
        joined = left.join(right)
        assert joined.compare(left) is Ordering.AFTER
        assert joined.compare(right) is Ordering.AFTER

    def test_deep_fork_chain_still_compares_correctly(self):
        stamp = ITCStamp.seed()
        others = []
        for _ in range(5):
            stamp, other = stamp.fork()
            others.append(other)
        stamp = stamp.event()
        for other in others:
            assert stamp.compare(other) is Ordering.AFTER

    def test_repeated_sync_keeps_stamps_small(self):
        left, right = ITCStamp.seed().fork()
        for _ in range(50):
            left = left.event()
            left, right = left.sync(right)
            right = right.event()
            left, right = right.sync(left)
        assert left.size_in_nodes() < 40


class TestSizes:
    def test_size_in_nodes(self):
        assert ITCStamp.seed().size_in_nodes() == 2

    def test_size_in_bits_grows_with_structure(self):
        seed = ITCStamp.seed()
        left, _right = seed.fork()
        left = left.event()
        assert left.size_in_bits() > seed.size_in_bits()
