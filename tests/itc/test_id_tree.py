"""Unit tests for ITC identity trees."""

import pytest

from repro.core.errors import StampError
from repro.itc.id_tree import (
    id_size_in_nodes,
    is_leaf_id,
    normalize_id,
    split_id,
    sum_ids,
    validate_id,
)


class TestValidation:
    def test_accepts_leaves_and_pairs(self):
        validate_id(0)
        validate_id(1)
        validate_id((1, 0))
        validate_id(((1, 0), (0, 1)))

    def test_rejects_other_shapes(self):
        with pytest.raises(StampError):
            validate_id(2)
        with pytest.raises(StampError):
            validate_id((1, 0, 1))
        with pytest.raises(StampError):
            validate_id("x")

    def test_is_leaf(self):
        assert is_leaf_id(0) and is_leaf_id(1)
        assert not is_leaf_id((1, 0))


class TestNormalization:
    def test_collapses_uniform_pairs(self):
        assert normalize_id((0, 0)) == 0
        assert normalize_id((1, 1)) == 1

    def test_recursive_collapse(self):
        assert normalize_id(((1, 1), 1)) == 1
        assert normalize_id(((0, 0), (0, 0))) == 0

    def test_leaves_mixed_pairs_alone(self):
        assert normalize_id((1, 0)) == (1, 0)


class TestSplit:
    def test_split_of_one(self):
        assert split_id(1) == ((1, 0), (0, 1))

    def test_split_of_zero(self):
        assert split_id(0) == (0, 0)

    def test_split_of_half(self):
        left, right = split_id((1, 0))
        assert left == ((1, 0), 0)
        assert right == ((0, 1), 0)

    def test_split_of_two_sided_id(self):
        left, right = split_id(((1, 0), (0, 1)))
        assert left == ((1, 0), 0)
        assert right == (0, (0, 1))

    def test_split_parts_rejoin_to_original(self):
        for identity in (1, (1, 0), (0, 1), ((1, 0), (0, 1))):
            left, right = split_id(identity)
            assert sum_ids(left, right) == normalize_id(identity)


class TestSum:
    def test_zero_is_identity(self):
        assert sum_ids(0, (1, 0)) == (1, 0)
        assert sum_ids((0, 1), 0) == (0, 1)

    def test_disjoint_halves_sum_to_whole(self):
        assert sum_ids((1, 0), (0, 1)) == 1

    def test_overlapping_ids_rejected(self):
        with pytest.raises(StampError):
            sum_ids(1, 1)
        with pytest.raises(StampError):
            sum_ids((1, 0), (1, 0))

    def test_size_in_nodes(self):
        assert id_size_in_nodes(1) == 1
        assert id_size_in_nodes((1, 0)) == 3
        assert id_size_in_nodes(((1, 0), 1)) == 5
