"""Unit tests for ITC event trees."""

import pytest

from repro.core.errors import StampError
from repro.itc.event_tree import (
    event_leq,
    event_max,
    event_min,
    event_size_in_nodes,
    fill,
    grow,
    join_events,
    normalize_event,
    validate_event,
)


class TestValidation:
    def test_accepts_ints_and_triples(self):
        validate_event(0)
        validate_event(5)
        validate_event((1, 0, 2))
        validate_event((0, (1, 0, 1), 0))

    def test_rejects_negative_and_malformed(self):
        with pytest.raises(StampError):
            validate_event(-1)
        with pytest.raises(StampError):
            validate_event((1, 0))
        with pytest.raises(StampError):
            validate_event((1, -2, 0))
        with pytest.raises(StampError):
            validate_event("x")


class TestNormalization:
    def test_equal_leaves_merge(self):
        assert normalize_event((2, 1, 1)) == 3

    def test_minimum_sinks_to_root(self):
        assert normalize_event((1, 2, 3)) == (3, 0, 1)

    def test_nested_normalization(self):
        assert normalize_event((0, (1, 1, 1), 2)) == 2

    def test_min_and_max(self):
        assert event_min((1, 0, 2)) == 1
        assert event_max((1, 0, 2)) == 3
        assert event_min(4) == event_max(4) == 4


class TestOrder:
    def test_leaf_comparison(self):
        assert event_leq(1, 2)
        assert not event_leq(2, 1)

    def test_leaf_versus_tree(self):
        assert event_leq(1, (1, 0, 2))
        assert not event_leq((1, 0, 2), 1)
        assert event_leq((1, 0, 2), 3)

    def test_tree_versus_tree(self):
        assert event_leq((1, 0, 1), (1, 1, 1))
        assert not event_leq((1, 1, 0), (1, 0, 1))

    def test_join_is_least_upper_bound(self):
        left = (1, 1, 0)
        right = (1, 0, 1)
        joined = join_events(left, right)
        assert event_leq(left, joined)
        assert event_leq(right, joined)
        assert joined == 2

    def test_join_with_leaf(self):
        assert join_events(3, (1, 0, 1)) == 3
        assert join_events((1, 0, 1), 0) == (1, 0, 1)

    def test_join_commutative(self):
        left = (2, 1, 0)
        right = (1, 0, (1, 2, 0))
        assert join_events(left, right) == join_events(right, left)


class TestFillAndGrow:
    def test_fill_with_full_ownership_flattens(self):
        assert fill(1, (1, 0, 2)) == 3

    def test_fill_with_no_ownership_is_identity(self):
        assert fill(0, (1, 0, 2)) == (1, 0, 2)

    def test_fill_with_left_ownership_raises_left(self):
        filled = fill((1, 0), (0, 0, 2))
        assert event_leq((0, 0, 2), filled)
        assert event_min(filled) >= 0

    def test_grow_full_owner_increments_leaf(self):
        grown, cost = grow(1, 3)
        assert grown == 4
        assert cost == 0

    def test_grow_partial_owner_deepens_tree(self):
        grown, _cost = grow((1, 0), 0)
        assert normalize_event(grown) != 0
        assert event_leq(0, grown)

    def test_grow_anonymous_fails(self):
        with pytest.raises(StampError):
            grow(0, 0)

    def test_size_in_nodes(self):
        assert event_size_in_nodes(3) == 1
        assert event_size_in_nodes((1, 0, (1, 0, 0))) == 5
