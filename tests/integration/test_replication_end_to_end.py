"""End-to-end replication scenarios exercising the whole stack.

These are the paper's motivating situations run against the library: mobile
nodes operating under partitions, replicas created inside partitions without
any identifier authority, conflicts detected exactly where the causal-history
oracle says they should be, and convergence after partitions heal.
"""

import random

import pytest

from repro.core.order import Ordering
from repro.replication.conflict import MergeWith
from repro.replication.network import (
    PartitionSchedule,
    PartitionedNetwork,
    ProximityNetwork,
    ScheduledNetwork,
)
from repro.replication.node import MobileNode
from repro.replication.replica import Replica
from repro.replication.synchronizer import AntiEntropy
from repro.replication.tracker import DynamicVVTracker, StampTracker
from repro.vv.id_source import CentralIdSource, IdAllocationError


class TestPartitionedOperation:
    """Replica creation and conflict tracking under partitions (Section 1)."""

    def test_replica_creation_inside_partition_with_stamps(self):
        # Two field teams go offline; each creates more replicas locally and
        # edits its copies.  Stamps never need an identifier authority.
        network = PartitionedNetwork([["hq", "field1"], ["field2", "field2b"]])
        hq = MobileNode.first("hq", network)
        hq.write("doc", "v0")
        field1 = hq.spawn_peer("field1")
        field2 = hq.spawn_peer("field2")

        # field2 is partitioned away and forks yet another replica locally.
        field2b = field2.spawn_peer("field2b")
        field2.write("doc", "field2 edit")
        field2.sync_with(field2b)

        hq.write("doc", "hq edit")
        hq.sync_with(field1)

        # Heal the partition and reconcile everything.
        network.heal()
        gossip = AntiEntropy([hq, field1, field2, field2b], rng=random.Random(0))
        gossip.rounds_to_convergence(max_rounds=30)

        # The two edits were concurrent: every node must see both siblings.
        for node in (hq, field1, field2, field2b):
            assert sorted(node.read("doc")) == ["field2 edit", "hq edit"]

    def test_replica_creation_fails_for_dynamic_vv_under_partition(self):
        # The identifier-based baseline cannot create replicas while the
        # authority is unreachable -- the limitation stamps remove.
        origin = Replica("origin", value=0, tracker=DynamicVVTracker(id_source=CentralIdSource()))
        with pytest.raises(IdAllocationError):
            origin.fork("offline-copy", connected=False)

    def test_same_scenario_succeeds_with_stamps(self):
        origin = Replica("origin", value=0, tracker=StampTracker())
        clone = origin.fork("offline-copy", connected=False)
        clone.write(1)
        outcome = origin.sync_with(clone)
        assert outcome.relation is Ordering.BEFORE
        assert origin.value == 1


class TestConflictAccuracy:
    """Conflicts reported by stamps match what actually happened."""

    def test_no_false_conflicts_on_sequential_edits(self):
        network = PartitionedNetwork()
        a = MobileNode.first("a", network)
        a.write("k", 1)
        b = a.spawn_peer("b")
        gossip = AntiEntropy([a, b], rng=random.Random(1))
        for value in range(2, 8):
            a.write("k", value)
            gossip.run_round()
        assert gossip.total_conflicts() == 0
        assert b.read("k") == [7]

    def test_exactly_one_conflict_for_one_concurrent_pair(self):
        network = PartitionedNetwork([["a"], ["b"]])
        a = MobileNode.first("a", network)
        a.write("k", "base")
        b = a.spawn_peer("b")
        a.write("k", "a-edit")
        b.write("k", "b-edit")
        network.heal()
        report = a.sync_with(b)
        assert report.conflicts_detected == 1
        # A later write resolves the conflict everywhere.
        a.write("k", "resolved")
        a.sync_with(b)
        assert b.read("k") == ["resolved"]

    def test_merge_policy_collapses_conflicts(self):
        network = PartitionedNetwork()
        a = MobileNode.first("a", network, policy=MergeWith(lambda values: max(values)))
        a.write("counter", 1)
        b = a.spawn_peer("b")
        a.write("counter", 10)
        b.write("counter", 7)
        a.sync_with(b)
        assert a.read("counter") == [10]
        assert b.read("counter") == [10]


class TestScheduledAndProximityNetworks:
    def test_scheduled_partition_then_heal(self):
        schedule = PartitionSchedule(
            phases=[
                (3, [["a", "b"], ["c", "d"]]),
                (100, [["a", "b", "c", "d"]]),
            ]
        )
        network = ScheduledNetwork(schedule)
        a = MobileNode.first("a", network)
        a.write("shared", 0)
        b = a.spawn_peer("b")
        c = a.spawn_peer("c")
        d = a.spawn_peer("d")
        a.write("left", 1)
        c.write("right", 2)
        gossip = AntiEntropy([a, b, c, d], rng=random.Random(2))
        gossip.run(3)
        # While partitioned, the other side's key is absent.
        assert a.read("right") == []
        rounds = gossip.rounds_to_convergence(max_rounds=40)
        assert rounds is not None
        assert a.read("right") == [2]
        assert c.read("left") == [1]

    def test_proximity_clusters_eventually_mix(self):
        network = ProximityNetwork(arena=60, radio_range=25, rng=random.Random(3))
        first = MobileNode.first("m0", network)
        network.add_node("m0")
        first.write("note", "hello")
        nodes = [first]
        for index in range(1, 5):
            node = nodes[-1].spawn_peer(f"m{index}")
            network.add_node(f"m{index}")
            nodes.append(node)
        gossip = AntiEntropy(nodes, rng=random.Random(4))
        # Ten rounds mix the clusters thoroughly; longer runs are infeasible
        # for the mechanism itself -- five-party gossip never reunites
        # sibling ids, so stamp metadata grows ~3x per round (billions of
        # bits by round 16) regardless of implementation.
        gossip.run(10)
        holders = sum(1 for node in nodes if node.read("note") == ["hello"])
        assert holders >= 3


class TestMetadataFootprint:
    def test_stamp_metadata_stays_bounded_under_repeated_sync(self):
        network = PartitionedNetwork()
        a = MobileNode.first("a", network)
        a.write("k", 0)
        b = a.spawn_peer("b")
        gossip = AntiEntropy([a, b], rng=random.Random(5))
        sizes = []
        for round_number in range(30):
            a.write("k", round_number)
            gossip.run_round()
            sizes.append(gossip.total_metadata_bits())
        # The footprint must not grow linearly with the number of rounds:
        # the last measurements stay within a small factor of the early ones.
        assert max(sizes[-5:]) <= max(sizes[:5]) * 3
