"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestStampCommands:
    def test_seed(self, capsys):
        assert main(["stamp", "seed"]) == 0
        assert "[ε | ε]" in capsys.readouterr().out

    def test_parse_reports_components_and_size(self, capsys):
        assert main(["stamp", "parse", "[1 | 01+1]"]) == 0
        output = capsys.readouterr().out
        assert "update:     1" in output
        assert "id:         01+1" in output
        assert "bits" in output

    def test_update(self, capsys):
        assert main(["stamp", "update", "[ε | 01]"]) == 0
        assert "[01 | 01]" in capsys.readouterr().out

    def test_fork(self, capsys):
        assert main(["stamp", "fork", "[ε | 1]"]) == 0
        output = capsys.readouterr().out
        assert "[ε | 10]" in output
        assert "[ε | 11]" in output

    def test_join_reducing_and_not(self, capsys):
        assert main(["stamp", "join", "[ε | 0]", "[ε | 1]"]) == 0
        assert "[ε | ε]" in capsys.readouterr().out
        assert main(["stamp", "join", "--no-reduce", "[ε | 0]", "[ε | 1]"]) == 0
        assert "[ε | 0+1]" in capsys.readouterr().out

    def test_normalize(self, capsys):
        assert main(["stamp", "normalize", "[1 | 00+01+1]"]) == 0
        assert "[ε | ε]" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["stamp", "compare", "[ε | 0]", "[1 | 1]"]) == 0
        assert "before" in capsys.readouterr().out

    def test_invalid_stamp_reports_error(self, capsys):
        assert main(["stamp", "parse", "garbage"]) == 1
        assert "error" in capsys.readouterr().err


class TestAnalysisCommands:
    def test_figures_reproduce(self, capsys):
        assert main(["figures"]) == 0
        output = capsys.readouterr().out
        assert "FIG1" in output and "FIG4" in output
        assert "MISMATCH" not in output

    def test_check(self, capsys):
        assert main(["check", "--operations", "3", "--max-frontier", "3"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_simulate(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--workload",
                    "churn",
                    "--operations",
                    "40",
                    "--seed",
                    "2",
                    "--fast",
                    "--diagram",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "version-stamps" in output
        assert "final frontier" in output

    @pytest.mark.parametrize(
        "family", ["version-stamp", "itc", "vv-dynamic", "causal-history"]
    )
    def test_simulate_single_clock_family(self, family, capsys):
        # The same trace, any registered family, all through the kernel's
        # CausalityClock protocol -- and every family must fully agree with
        # the causal-history oracle (exit code 0).
        args = ["simulate", "--operations", "50", "--seed", "11", "--clock", family]
        assert main(args) == 0
        output = capsys.readouterr().out
        assert ("causal-history (oracle)") in output

    def test_simulate_rejects_unknown_clock(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--clock", "sundial"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestKernelCommands:
    def test_families_lists_the_registry(self, capsys):
        assert main(["kernel", "families"]) == 0
        output = capsys.readouterr().out
        for family in ("version-stamp", "itc", "vv-dynamic", "causal-history"):
            assert family in output

    def test_families_prints_the_frozen_wire_tag_table(self, capsys):
        # The one-byte wire tags are a compatibility contract: decoders in
        # the wild dispatch on them, so the table is pinned here exactly.
        assert main(["kernel", "families"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[0].split() == ["tag", "family", "description"]
        table = {
            int(line.split()[0]): line.split()[1] for line in lines[1:]
        }
        assert table == {
            1: "version-stamp",
            2: "itc",
            3: "vv-dynamic",
            4: "causal-history",
        }

    @pytest.mark.parametrize("family", ["version-stamp", "itc", "vv-dynamic"])
    def test_roundtrip(self, family, capsys):
        assert main(["kernel", "roundtrip", "--clock", family, "--epoch", "5"]) == 0
        output = capsys.readouterr().out
        assert "epoch:    5" in output
        assert "restored == original: True" in output


class TestContractsCommands:
    def test_demo_violation_exits_2_with_provenance(self, capsys):
        assert main(["contracts", "demo"]) == 2
        output = capsys.readouterr().out
        assert "contract 'train-sees-latest-export' violated" in output
        assert "is stale on key 'dataset'" in output
        # The provenance trace names the sync paths that should have
        # carried the export, with the fault counters that destroyed them.
        assert "sync paths that should have carried it" in output
        assert "pipeline-a <-> " in output
        assert "dropped=" in output and "gave_up=" in output

    def test_demo_propagated_exits_0(self, capsys):
        assert main(["contracts", "demo", "--rounds", "12"]) == 0
        assert "contract holds" in capsys.readouterr().out

    @pytest.mark.parametrize("family", ["itc", "causal-history"])
    def test_demo_is_family_generic(self, family, capsys):
        assert main(["contracts", "demo", "--clock", family]) == 2
        assert "violated" in capsys.readouterr().out


class TestPanasyncCommands:
    def test_full_workflow(self, tmp_path, capsys):
        repo = tmp_path / "desktop"
        other = tmp_path / "laptop"
        source = tmp_path / "draft.txt"
        source.write_text("v1", encoding="utf-8")

        assert main(["panasync", "--repository", str(repo), "create", "draft.txt", "--source", str(source)]) == 0
        assert main(["panasync", "--repository", str(repo), "copy", "draft.txt", str(other)]) == 0

        source.write_text("v2", encoding="utf-8")
        assert main(["panasync", "--repository", str(repo), "edit", "draft.txt", str(source)]) == 0

        # The laptop copy is now outdated but not diverged -> exit code 0.
        assert main(["panasync", "--repository", str(other), "compare", "draft.txt", str(repo)]) == 0
        assert main(["panasync", "--repository", str(other), "merge", "draft.txt", str(repo)]) == 0
        assert main(["panasync", "--repository", str(other), "status"]) == 0
        output = capsys.readouterr().out
        assert "draft.txt" in output

    def test_compare_exit_code_signals_divergence(self, tmp_path, capsys):
        repo = tmp_path / "a"
        other = tmp_path / "b"
        source = tmp_path / "f.txt"
        source.write_text("base", encoding="utf-8")
        main(["panasync", "--repository", str(repo), "create", "f.txt", "--source", str(source)])
        main(["panasync", "--repository", str(repo), "copy", "f.txt", str(other)])
        source.write_text("left", encoding="utf-8")
        main(["panasync", "--repository", str(repo), "edit", "f.txt", str(source)])
        source.write_text("right", encoding="utf-8")
        main(["panasync", "--repository", str(other), "edit", "f.txt", str(source)])
        assert main(["panasync", "--repository", str(repo), "compare", "f.txt", str(other)]) == 2


class TestSyncBenchCommand:
    def test_reports_min_over_repeats(self, capsys):
        assert (
            main(
                [
                    "sync-bench", "--clock", "itc", "--replicas", "4", "--keys", "4",
                    "--rounds", "3", "--warmup", "1", "--repeats", "2",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "best of 2 interleaved repeats" in output

    def test_min_speedup_gate_cannot_be_beaten_by_one_lucky_shot(self, capsys):
        # An absurd threshold must fail deterministically.
        assert (
            main(
                [
                    "sync-bench", "--clock", "itc", "--replicas", "4", "--keys", "4",
                    "--rounds", "3", "--warmup", "1", "--repeats", "2",
                    "--min-speedup", "1e9",
                ]
            )
            == 1
        )
        assert "FAIL" in capsys.readouterr().out


class TestServeSimCommand:
    def test_small_cluster_converges(self, capsys):
        assert (
            main(
                [
                    "serve-sim", "--replicas", "64", "--keys", "3",
                    "--shards", "2", "--max-rounds", "32",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "converged after round" in output
        assert "virtual seconds" in output

    def test_lossy_lockstep_run(self, capsys):
        assert (
            main(
                [
                    "serve-sim", "--replicas", "32", "--keys", "2", "--loss", "0.2",
                    "--lockstep", "--shards", "1", "--max-rounds", "40",
                ]
            )
            == 0
        )
        assert "lockstep mode" in capsys.readouterr().out

    def test_round_budget_exhaustion_fails(self, capsys):
        assert (
            main(
                [
                    "serve-sim", "--replicas", "32", "--keys", "3",
                    "--max-rounds", "1",
                ]
            )
            == 1
        )
        assert "FAIL" in capsys.readouterr().out


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])
