"""Integration + property tests for the paper's central result.

Corollary 5.2: for any execution and any two frontier elements, the version
stamp order equals the causal-history order.  We check it on random traces
(hypothesis-generated and workload-generated) for both stamp flavours, and we
also check the baselines and extension mechanisms so the lockstep harness
itself stays honest.
"""

from hypothesis import HealthCheck, given, settings

from repro.core.invariants import check_all
from repro.sim.exhaustive import explore
from repro.kernel.adapters import StampAdapter, default_adapters
from repro.sim.runner import LockstepRunner
from repro.sim.workload import (
    churn_trace,
    fixed_replica_trace,
    partitioned_trace,
    random_dynamic_trace,
)

from repro.testing import trace_operations


class TestEquivalenceOnRandomTraces:
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(trace_operations())
    def test_stamp_order_matches_causal_history_order(self, trace):
        runner = LockstepRunner(
            [StampAdapter(reducing=True), StampAdapter(reducing=False)],
            compare_every_step=True,
            check_invariants=True,
        )
        reports, _sizes = runner.run(trace)
        for report in reports.values():
            assert report.agreement_rate == 1.0
            assert report.invariant_failures == 0

    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(trace_operations(max_operations=20, max_frontier=5))
    def test_all_exact_mechanisms_agree(self, trace):
        runner = LockstepRunner(default_adapters(), compare_every_step=False)
        reports, _sizes = runner.run(trace)
        for report in reports.values():
            assert report.agreement_rate == 1.0


def _bounded_adapters():
    """Adapters whose metadata stays polynomial on long sync-heavy traces.

    Stamp names that never meet their collapse siblings grow
    multiplicatively with sync count -- for the *non-reducing* flavour the
    300-op workloads below reach tens of millions of strings per element,
    which no implementation can replay.  Long traces therefore run the
    bounded mechanisms, and the non-reducing flavour is exercised on
    shorter prefixes of the same workloads.
    """
    from repro.kernel.adapters import DynamicVVAdapter, ITCAdapter

    return [StampAdapter(reducing=True), DynamicVVAdapter(), ITCAdapter()]


class TestEquivalenceOnWorkloads:
    def test_large_random_dynamic_workload(self):
        trace = random_dynamic_trace(300, seed=17, max_frontier=8)
        runner = LockstepRunner(_bounded_adapters(), compare_every_step=False)
        reports, _sizes = runner.run(trace)
        for report in reports.values():
            assert report.agreement_rate == 1.0
            assert report.invariant_failures == 0

    def test_random_dynamic_workload_all_flavours(self):
        trace = random_dynamic_trace(60, seed=17, max_frontier=8)
        reports, _sizes = LockstepRunner(compare_every_step=False).run(trace)
        for report in reports.values():
            assert report.agreement_rate == 1.0
            assert report.invariant_failures == 0

    def test_fixed_replica_workload(self):
        trace = fixed_replica_trace(6, 80, seed=23)
        runner = LockstepRunner(_bounded_adapters(), compare_every_step=False)
        reports, _sizes = runner.run(trace)
        for report in reports.values():
            assert report.agreement_rate == 1.0

    def test_fixed_replica_workload_all_flavours(self):
        trace = fixed_replica_trace(6, 50, seed=23)
        reports, _sizes = LockstepRunner(compare_every_step=False).run(trace)
        for report in reports.values():
            assert report.agreement_rate == 1.0

    def test_partitioned_workload(self):
        trace = partitioned_trace(
            initial_replicas=6, partitions=3, phases=3, operations_per_phase=25, seed=29
        )
        reports, _sizes = LockstepRunner(compare_every_step=False).run(trace)
        for report in reports.values():
            assert report.agreement_rate == 1.0

    def test_churn_workload(self):
        trace = churn_trace(150, seed=31)
        runner = LockstepRunner(_bounded_adapters(), compare_every_step=False)
        reports, _sizes = runner.run(trace)
        for report in reports.values():
            assert report.agreement_rate == 1.0

    def test_churn_workload_all_flavours(self):
        trace = churn_trace(80, seed=31)
        reports, _sizes = LockstepRunner(compare_every_step=False).run(trace)
        for report in reports.values():
            assert report.agreement_rate == 1.0


class TestExhaustiveVerification:
    def test_every_execution_up_to_five_operations(self):
        report = explore(5, max_frontier=3, check_subsets=False)
        assert report.ok, report.counterexamples[:3]
        assert report.configurations_checked > 100

    def test_subset_form_of_proposition_51(self):
        report = explore(4, max_frontier=3, check_subsets=True)
        assert report.ok, report.counterexamples[:3]
        assert report.subset_disagreements == 0


class TestInvariantsAtScale:
    def test_invariants_hold_on_every_prefix_of_a_long_run(self):
        trace = random_dynamic_trace(150, seed=37, max_frontier=8)
        adapter = StampAdapter(reducing=True)
        adapter.start(trace.seed)
        for operation in trace.operations:
            adapter.apply(operation)
            assert check_all(adapter.frontier.stamps()).ok

    def test_non_reducing_invariants_hold_too(self):
        trace = churn_trace(80, seed=41)
        adapter = StampAdapter(reducing=False)
        adapter.start(trace.seed)
        for operation in trace.operations:
            adapter.apply(operation)
            assert check_all(adapter.frontier.stamps()).ok
