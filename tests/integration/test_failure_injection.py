"""Failure-injection tests: corrupted inputs are detected, not absorbed.

A production causality library must reject malformed metadata rather than
silently producing wrong orderings.  These tests corrupt stamps, encodings
and configurations in targeted ways and check that validators and invariant
checkers catch every seeded fault.
"""

import json

import pytest

from repro.core.encoding import (
    stamp_from_bytes,
    stamp_from_json,
    stamp_to_bytes,
    stamp_to_json,
)
from repro.core.errors import (
    EncodingError,
    InvariantViolation,
    NameError_,
    StampError,
)
from repro.core.frontier import Frontier
from repro.core.invariants import assert_invariants, check_all
from repro.core.names import Name
from repro.core.stamp import VersionStamp


class TestCorruptedStamps:
    def test_constructor_rejects_i1_violation(self):
        with pytest.raises(StampError):
            VersionStamp(Name.of("11"), Name.of("0"))

    def test_constructor_rejects_non_antichain_components(self):
        with pytest.raises(NameError_):
            Name.of("0", "01")

    def test_parse_rejects_non_antichain_text(self):
        with pytest.raises((StampError, NameError_)):
            VersionStamp.parse("[ε | 0+01]")

    def test_invariant_checker_catches_forged_duplicate_identity(self):
        # An attacker (or a buggy restore-from-backup) duplicates a replica's
        # stamp instead of forking it: two frontier elements with identical,
        # comparable ids.  I2 must flag it.
        frontier = Frontier.initial("a")
        frontier.fork("a", "a", "b")
        stamps = frontier.stamps()
        stamps["forged"] = stamps["a"]
        report = check_all(stamps)
        assert not report.ok
        assert any(violation.invariant == "I2" for violation in report.violations)

    def test_invariant_checker_catches_forged_update_knowledge(self):
        # A stamp claims knowledge of updates that never reached it: its
        # update strings fall under another element's id without being below
        # that element's update -- an I3 violation.
        liar = VersionStamp(Name.of("10"), Name.of("0"), reducing=False, _validate=False)
        honest = VersionStamp(Name.parse("ε"), Name.of("1"), reducing=False, _validate=False)
        report = check_all({"liar": liar, "honest": honest})
        assert any(violation.invariant in ("I1", "I3") for violation in report.violations)

    def test_assert_invariants_raises_on_first_violation(self):
        bad = VersionStamp(Name.of("1"), Name.of("0"), reducing=False, _validate=False)
        with pytest.raises(InvariantViolation):
            assert_invariants({"bad": bad})


class TestCorruptedEncodings:
    def test_bit_flip_in_bytes_is_rejected_or_changes_stamp(self):
        stamp = VersionStamp.parse("[1 | 01+1]")
        payload = bytearray(stamp_to_bytes(stamp))
        payload[-1] ^= 0xFF
        try:
            decoded = stamp_from_bytes(bytes(payload))
        except EncodingError:
            return  # rejected: good
        # If it decodes, it must not silently equal the original.
        assert decoded != stamp

    def test_truncated_bytes_rejected(self):
        stamp = VersionStamp.parse("[1 | 01+1]")
        payload = stamp_to_bytes(stamp)
        with pytest.raises(EncodingError):
            stamp_from_bytes(payload[: len(payload) // 2])

    def test_json_with_non_antichain_strings_rejected(self):
        payload = stamp_to_json(VersionStamp.seed())
        payload["id"] = ["0", "01"]
        with pytest.raises(EncodingError):
            stamp_from_json(payload)

    def test_json_with_i1_violation_rejected(self):
        payload = {"update": ["11"], "id": ["0"], "reducing": True}
        with pytest.raises(EncodingError):
            stamp_from_json(payload)

    def test_json_missing_fields_rejected(self):
        with pytest.raises(EncodingError):
            stamp_from_json({"update": ["0"]})

    def test_json_garbage_text_rejected(self):
        with pytest.raises(EncodingError):
            stamp_from_json("{not json")


class TestSidecarTampering:
    def test_tampered_repository_sidecar_rejected(self, tmp_path):
        from repro.panasync.repository import CopyRepository

        repository = CopyRepository(tmp_path)
        repository.create("a.txt", "data")
        sidecar = tmp_path / "a.txt.stamp.json"
        payload = json.loads(sidecar.read_text())
        payload["stamp"]["id"] = ["0", "01"]  # not an antichain
        sidecar.write_text(json.dumps(payload))
        with pytest.raises(EncodingError):
            repository.load("a.txt")
