"""Contract enforcement across every kind and every clock family.

Each scenario is driven through real :class:`StoreReplica` populations
syncing over the wire engine, parametrized over all four registered
kernel families -- the checker only ever talks to the family-generic
tracker interface, and these tests pin that the verdicts agree.
"""

import random

import pytest

from repro.contracts import (
    ContractChecker,
    ContractSpec,
    ContractViolation,
)
from repro.core.errors import ContractError
from repro.replication import (
    AntiEntropy,
    KernelTracker,
    MobileNode,
    SyncHistory,
    WireSyncEngine,
)
from repro.replication.network import FullyConnectedNetwork

FAMILIES = ["version-stamp", "itc", "vv-dynamic", "causal-history"]


def _population(family, count=2, *, history=None):
    network = FullyConnectedNetwork()
    first = MobileNode.first(
        "n0", network, tracker_factory=KernelTracker.factory(family)
    )
    nodes = [first] + [first.spawn_peer(f"n{i}") for i in range(1, count)]
    engine = WireSyncEngine(history=history)
    gossip = AntiEntropy(nodes, rng=random.Random(0), engine=engine)
    return nodes, gossip


def _sync_all(gossip, rounds=3):
    for _ in range(rounds):
        gossip.run_round()


@pytest.mark.parametrize("family", FAMILIES)
class TestObserves:
    def _checker(self, history=None):
        return ContractChecker(
            [
                ContractSpec(
                    name="c",
                    kind="observes",
                    source="export",
                    target="train",
                    key="k",
                )
            ],
            history=history,
        )

    def test_vacuous_before_any_recording(self, family):
        nodes, _ = _population(family)
        checker = self._checker()
        assert checker.check("train", nodes[1].store, raise_on_violation=False) == []

    def test_missing_key_violates_once_recorded(self, family):
        nodes, _ = _population(family)
        checker = self._checker()
        nodes[0].write("k", 1)
        checker.record("export", nodes[0].store)
        (report,) = checker.check(
            "train", nodes[1].store, raise_on_violation=False
        )
        assert report.mode == "missing"
        assert report.source_replica == "n0"
        assert report.target_replica == "n1"

    def test_synced_target_passes(self, family):
        nodes, gossip = _population(family)
        checker = self._checker()
        nodes[0].write("k", 1)
        checker.record("export", nodes[0].store)
        _sync_all(gossip)
        assert checker.check("train", nodes[1].store, raise_on_violation=False) == []

    def test_stale_target_raises_typed_violation(self, family):
        nodes, gossip = _population(family)
        checker = self._checker()
        checker.watch_writes(nodes[0].store, "export")
        nodes[0].write("k", 1)
        _sync_all(gossip)
        nodes[0].write("k", 2)
        with pytest.raises(ContractViolation) as excinfo:
            checker.check("train", nodes[1].store)
        report = excinfo.value.report
        assert report.mode == "stale"
        assert report.ordering == "before"
        assert report.contract == "c"
        assert report.kind == "observes"
        assert isinstance(excinfo.value, ContractError)
        assert "train" in report.describe() and "'k'" in report.describe()

    def test_latest_recording_wins(self, family):
        # The obligation tracks the *latest* export: observing only an
        # older one is a violation even though some export was observed.
        nodes, gossip = _population(family)
        checker = self._checker()
        checker.watch_writes(nodes[0].store, "export")
        nodes[0].write("k", 1)
        _sync_all(gossip)
        nodes[0].write("k", 2)
        nodes[0].write("k", 3)
        (report,) = checker.check(
            "train", nodes[1].store, raise_on_violation=False
        )
        assert report.mode == "stale"
        assert report.record_index == 3


@pytest.mark.parametrize("family", FAMILIES)
class TestHappenedBefore:
    def _checker(self):
        return ContractChecker(
            [
                ContractSpec(
                    name="hb",
                    kind="happened-before",
                    source="migrate",
                    target="serve",
                    key="schema",
                )
            ]
        )

    def test_source_never_ran_is_a_violation(self, family):
        nodes, _ = _population(family)
        checker = self._checker()
        (report,) = checker.check(
            "serve", nodes[1].store, raise_on_violation=False
        )
        assert report.mode == "missing"
        assert report.source_replica is None

    def test_following_first_completion_suffices(self, family):
        # Unlike observes, later un-observed completions do not violate:
        # the obligation is "a migrate happened before", pinned to the
        # first recorded completion.
        nodes, gossip = _population(family)
        checker = self._checker()
        checker.watch_writes(nodes[0].store, "migrate")
        nodes[0].write("schema", "v1")
        _sync_all(gossip)
        nodes[0].write("schema", "v2")
        assert checker.check("serve", nodes[1].store, raise_on_violation=False) == []

    def test_target_behind_first_completion_violates(self, family):
        nodes, _ = _population(family)
        checker = self._checker()
        checker.watch_writes(nodes[0].store, "migrate")
        nodes[0].write("schema", "v1")
        (report,) = checker.check(
            "serve", nodes[1].store, raise_on_violation=False
        )
        assert report.mode == "missing"
        assert report.source_replica == "n0"


@pytest.mark.parametrize("family", FAMILIES)
class TestMutualExclusion:
    def _checker(self):
        return ContractChecker(
            [
                ContractSpec(
                    name="mx",
                    kind="mutual-exclusion",
                    source="compact",
                    target="rebalance",
                    key="shard-map",
                )
            ]
        )

    def test_ordered_states_pass(self, family):
        nodes, gossip = _population(family)
        checker = self._checker()
        checker.watch_writes(nodes[0].store, "compact")
        nodes[0].write("shard-map", "a")
        _sync_all(gossip)
        # Target strictly ahead of the recording is fine too.
        nodes[1].write("shard-map", "b")
        assert (
            checker.check("rebalance", nodes[1].store, raise_on_violation=False)
            == []
        )

    def test_concurrent_actors_violate(self, family):
        nodes, gossip = _population(family)
        checker = self._checker()
        checker.watch_writes(nodes[0].store, "compact")
        nodes[0].write("shard-map", "seed")
        _sync_all(gossip)
        # Both sides now race on the key without syncing.
        nodes[0].write("shard-map", "a")
        nodes[1].write("shard-map", "b")
        (report,) = checker.check(
            "rebalance", nodes[1].store, raise_on_violation=False
        )
        assert report.mode == "concurrent"
        assert report.ordering == "concurrent"

    def test_no_recording_or_no_key_passes(self, family):
        nodes, _ = _population(family)
        checker = self._checker()
        assert (
            checker.check("rebalance", nodes[1].store, raise_on_violation=False)
            == []
        )
        checker.watch_writes(nodes[0].store, "compact")
        nodes[0].write("shard-map", "a")
        assert (
            checker.check("rebalance", nodes[1].store, raise_on_violation=False)
            == []
        )


@pytest.mark.parametrize("family", FAMILIES)
class TestFreshness:
    def _checker(self, max_lag=2):
        return ContractChecker(
            [
                ContractSpec(
                    name="lagged",
                    kind="freshness-within-k-events",
                    source="export",
                    target="train",
                    key="k",
                    max_lag=max_lag,
                )
            ]
        )

    def test_within_bound_passes(self, family):
        nodes, gossip = _population(family)
        checker = self._checker(max_lag=2)
        checker.watch_writes(nodes[0].store, "export")
        nodes[0].write("k", 0)
        _sync_all(gossip)
        nodes[0].write("k", 1)
        nodes[0].write("k", 2)
        # Target saw export 0 and is 2 behind: exactly at the bound.
        assert checker.check("train", nodes[1].store, raise_on_violation=False) == []

    def test_beyond_bound_violates_with_lag(self, family):
        nodes, gossip = _population(family)
        checker = self._checker(max_lag=2)
        checker.watch_writes(nodes[0].store, "export")
        nodes[0].write("k", 0)
        _sync_all(gossip)
        for value in (1, 2, 3):
            nodes[0].write("k", value)
        (report,) = checker.check(
            "train", nodes[1].store, raise_on_violation=False
        )
        assert report.mode == "stale"
        # Retention keeps exactly max_lag + 1 recordings, so on a
        # violation no retained recording is dominated: the lag is only
        # reported as "beyond everything retained".
        assert report.lag is None
        assert "allowed: 2" in report.describe()

    def test_actual_lag_reported_when_retention_allows(self, family):
        # A sibling contract with a larger bound deepens retention for
        # the shared (source, key) pair, so the tighter contract can
        # report the target's actual lag.
        nodes, gossip = _population(family)
        checker = ContractChecker(
            [
                ContractSpec(
                    name="tight",
                    kind="freshness-within-k-events",
                    source="export",
                    target="train",
                    key="k",
                    max_lag=1,
                ),
                ContractSpec(
                    name="loose",
                    kind="freshness-within-k-events",
                    source="export",
                    target="train",
                    key="k",
                    max_lag=5,
                ),
            ]
        )
        checker.watch_writes(nodes[0].store, "export")
        nodes[0].write("k", 0)
        _sync_all(gossip)
        for value in (1, 2, 3):
            nodes[0].write("k", value)
        (report,) = checker.check(
            "train", nodes[1].store, raise_on_violation=False
        )
        assert report.contract == "tight"
        assert report.mode == "stale"
        assert report.lag == 3
        assert "lag: 3" in report.describe()

    def test_fewer_recordings_than_bound_passes(self, family):
        nodes, _ = _population(family)
        checker = self._checker(max_lag=2)
        checker.watch_writes(nodes[0].store, "export")
        nodes[0].write("k", 0)
        nodes[0].write("k", 1)
        # Two exports exist; a target holding neither is at most 2 behind.
        assert checker.check("train", nodes[1].store, raise_on_violation=False) == []


@pytest.mark.parametrize("family", FAMILIES)
class TestEpochResolution:
    """Cross-epoch checks resolve by the compaction invariant, not compare."""

    def _checker(self):
        return ContractChecker(
            [
                ContractSpec(
                    name="c",
                    kind="observes",
                    source="export",
                    target="train",
                    key="k",
                )
            ]
        )

    def test_target_past_an_epoch_bump_passes(self, family):
        nodes, gossip = _population(family, count=3)
        checker = self._checker()
        checker.watch_writes(nodes[0].store, "export")
        nodes[0].write("k", 1)
        _sync_all(gossip)
        # The bump happens at common knowledge, so the post-bump target
        # dominates the pre-bump recording -- and no EpochMismatch leaks.
        assert gossip.compact_key("k")
        assert checker.check("train", nodes[2].store, raise_on_violation=False) == []

    def test_straggler_target_violates(self, family):
        nodes, gossip = _population(family, count=3)
        checker = self._checker()
        checker.watch_writes(nodes[0].store, "export")
        nodes[0].write("k", 1)
        _sync_all(gossip)
        gossip.crash(nodes[2])
        assert gossip.compact_key("k")
        nodes[0].write("k", 2)
        # Revive the node with its pre-bump state intact: a genuine epoch
        # straggler whose last sync predates the bump and the export.
        nodes[2].alive = True
        (report,) = checker.check(
            "train", nodes[2].store, raise_on_violation=False
        )
        assert report.mode == "straggler"
        assert report.ordering is None


class TestCheckerApi:
    def _spec(self, name="c", **overrides):
        fields = dict(
            name=name, kind="observes", source="export", target="train", key="k"
        )
        fields.update(overrides)
        return ContractSpec(**fields)

    def test_rejects_empty_and_duplicate_specs(self):
        with pytest.raises(ContractError):
            ContractChecker([])
        with pytest.raises(ContractError) as excinfo:
            ContractChecker([self._spec(), self._spec(key="other")])
        assert "duplicate" in str(excinfo.value)

    def test_record_unknown_operation(self):
        checker = ContractChecker([self._spec()])
        nodes, _ = _population("version-stamp")
        with pytest.raises(ContractError) as excinfo:
            checker.record("deploy", nodes[0].store)
        assert "export" in str(excinfo.value)

    def test_record_missing_key(self):
        checker = ContractChecker([self._spec()])
        nodes, _ = _population("version-stamp")
        with pytest.raises(ContractError):
            checker.record("export", nodes[0].store)

    def test_check_unknown_operation(self):
        checker = ContractChecker([self._spec()])
        nodes, _ = _population("version-stamp")
        with pytest.raises(ContractError):
            checker.check("deploy", nodes[0].store)

    def test_check_unbound_without_store(self):
        checker = ContractChecker([self._spec()])
        with pytest.raises(ContractError) as excinfo:
            checker.check("train")
        assert "bind" in str(excinfo.value)

    def test_bind_unknown_operation(self):
        checker = ContractChecker([self._spec()])
        nodes, _ = _population("version-stamp")
        with pytest.raises(ContractError):
            checker.bind("deploy", nodes[0].store)

    def test_watch_writes_only_records_contract_keys(self):
        checker = ContractChecker([self._spec()])
        nodes, _ = _population("version-stamp")
        checker.watch_writes(nodes[0].store, "export")
        nodes[0].write("unrelated", 1)
        # No recording happened, so the contract is still vacuous.
        assert checker.check("train", nodes[1].store, raise_on_violation=False) == []
        nodes[0].write("k", 1)
        (report,) = checker.check(
            "train", nodes[1].store, raise_on_violation=False
        )
        assert report.mode == "missing"

    def test_scan_collects_without_raising(self):
        nodes, gossip = _population("version-stamp")
        history = SyncHistory()
        checker = ContractChecker([self._spec()], history=history)
        checker.watch_writes(nodes[0].store, "export")
        checker.bind("train", nodes[1].store)
        nodes[0].write("k", 1)
        fresh = checker.scan()
        assert [r.mode for r in fresh] == ["missing"]
        assert checker.violations == fresh
        _sync_all(gossip)
        assert checker.scan() == []
        assert len(checker.violations) == 1

    def test_anti_entropy_scans_checker_each_round(self):
        from repro.replication.network import PartitionedNetwork

        network = PartitionedNetwork()
        first = MobileNode.first(
            "n0", network, tracker_factory=KernelTracker.factory("version-stamp")
        )
        nodes = [first, first.spawn_peer("n1")]
        history = SyncHistory()
        engine = WireSyncEngine(history=history)
        checker = ContractChecker([self._spec()], history=history)
        checker.watch_writes(nodes[0].store, "export")
        checker.bind("train", nodes[1].store)
        gossip = AntiEntropy(
            nodes, rng=random.Random(0), engine=engine, checker=checker
        )
        nodes[0].write("k", 1)
        gossip.run_round()
        # The round itself cured the gap before the inline scan fired.
        assert checker.violations == []
        network.set_partitions([["n0"], ["n1"]])
        nodes[0].write("k", 2)
        gossip.run_round()
        # Partitioned round could not cure it: the scan caught the gap.
        assert [v.mode for v in checker.violations] == ["stale"]
        network.heal()
        gossip.run_round()
        assert len(checker.violations) == 1
