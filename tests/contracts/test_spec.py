"""Validation semantics of the declarative contract specs."""

import pytest

from repro.contracts import ContractKind, ContractSpec
from repro.core.errors import ContractError, ReproError


class TestContractKind:
    def test_parse_accepts_enum_and_value_strings(self):
        assert ContractKind.parse(ContractKind.OBSERVES) is ContractKind.OBSERVES
        assert ContractKind.parse("observes") is ContractKind.OBSERVES
        assert ContractKind.parse("happened-before") is ContractKind.HAPPENED_BEFORE
        assert ContractKind.parse("mutual-exclusion") is ContractKind.MUTUAL_EXCLUSION
        assert (
            ContractKind.parse("freshness-within-k-events") is ContractKind.FRESHNESS
        )

    def test_parse_rejects_unknown_kind(self):
        with pytest.raises(ContractError) as excinfo:
            ContractKind.parse("eventually-consistent-ish")
        assert "known kinds" in str(excinfo.value)

    def test_contract_error_is_typed(self):
        with pytest.raises(ReproError):
            ContractKind.parse("nope")
        with pytest.raises(ValueError):
            ContractKind.parse("nope")


class TestContractSpec:
    def _spec(self, **overrides):
        fields = dict(
            name="c", kind="observes", source="export", target="train", key="k"
        )
        fields.update(overrides)
        return ContractSpec(**fields)

    def test_kind_string_is_coerced(self):
        assert self._spec().kind is ContractKind.OBSERVES

    @pytest.mark.parametrize("field", ["name", "source", "target", "key"])
    def test_rejects_empty_strings(self, field):
        with pytest.raises(ContractError):
            self._spec(**{field: ""})

    def test_rejects_source_equal_target(self):
        with pytest.raises(ContractError) as excinfo:
            self._spec(target="export")
        assert "distinct operations" in str(excinfo.value)

    def test_freshness_requires_max_lag(self):
        with pytest.raises(ContractError):
            self._spec(kind="freshness-within-k-events")

    @pytest.mark.parametrize("bad", [0, -1, 2.5, True, "3"])
    def test_freshness_rejects_bad_max_lag(self, bad):
        with pytest.raises(ContractError):
            self._spec(kind="freshness-within-k-events", max_lag=bad)

    def test_freshness_accepts_valid_bound(self):
        spec = self._spec(kind="freshness-within-k-events", max_lag=3)
        assert spec.max_lag == 3

    @pytest.mark.parametrize(
        "kind", ["observes", "happened-before", "mutual-exclusion"]
    )
    def test_other_kinds_reject_max_lag(self, kind):
        with pytest.raises(ContractError):
            self._spec(kind=kind, max_lag=2)

    def test_describe_mentions_operations_and_key(self):
        line = self._spec().describe()
        assert "train" in line and "export" in line and "'k'" in line
        bounded = self._spec(
            kind="freshness-within-k-events", max_lag=2
        ).describe()
        assert "at most 2" in bounded
