"""Provenance reconstruction over scripted sync histories.

These tests drive :func:`repro.contracts.provenance.reconstruct` over
hand-written :class:`ExchangeRecord` sequences, so every replay rule --
knowledge spread, lost legs, irrelevant exchanges, truncation -- is
pinned against an exactly known story.
"""

from repro.contracts import reconstruct
from repro.replication import SyncHistory


def _exchange(history, first, second, *, synced=(), lost=(), **counters):
    fields = dict(
        messages=2,
        bytes_sent=64,
        dropped=0,
        duplicated=0,
        retried=0,
        corrupted=0,
        deliveries_failed=0,
    )
    fields.update(counters)
    return history.append(
        first=first,
        second=second,
        keys_synced=tuple(synced),
        keys_lost=tuple(lost),
        **fields,
    )


class TestReplay:
    def test_knowledge_spreads_through_completed_exchanges(self):
        history = SyncHistory(maxlen=16)
        start = history.next_seq
        _exchange(history, "a", "b", synced=["k"])  # a -> b
        _exchange(history, "b", "c", synced=["k"])  # b -> c
        trace = reconstruct(
            history,
            key="k",
            source_replica="a",
            target_replica="d",
            since_seq=start,
        )
        assert trace.holders == ("a", "b", "c")
        assert trace.last_holder == "c"
        assert trace.last_spread_seq == 1
        assert trace.lost_legs == ()
        assert trace.attempts == 2
        assert not trace.truncated

    def test_lost_leg_between_holder_and_nonholder_is_reported(self):
        history = SyncHistory(maxlen=16)
        start = history.next_seq
        history.mark_round(4)
        _exchange(
            history,
            "a",
            "b",
            lost=[("k", "request-lost")],
            dropped=4,
            retried=3,
            deliveries_failed=1,
        )
        trace = reconstruct(
            history,
            key="k",
            source_replica="a",
            target_replica="b",
            since_seq=start,
        )
        assert trace.holders == ("a",)
        assert trace.last_spread_seq is None
        (leg,) = trace.lost_legs
        assert (leg.holder, leg.other) == ("a", "b")
        assert leg.round_number == 4
        assert leg.reason == "request-lost"
        assert (leg.dropped, leg.retried, leg.deliveries_failed) == (4, 3, 1)
        assert trace.target_was_reachable
        described = trace.describe()
        assert "request-lost" in described
        assert "dropped=4" in described

    def test_exchanges_between_nonholders_are_ignored(self):
        history = SyncHistory(maxlen=16)
        start = history.next_seq
        # c and d trade (older state of) k between themselves: neither
        # holds the recorded knowledge, so nothing spreads and nothing is
        # blamed.
        _exchange(history, "c", "d", synced=["k"])
        _exchange(history, "c", "d", lost=[("k", "request-lost")], dropped=2)
        trace = reconstruct(
            history,
            key="k",
            source_replica="a",
            target_replica="d",
            since_seq=start,
        )
        assert trace.holders == ("a",)
        assert trace.lost_legs == ()
        assert trace.attempts == 2
        assert not trace.target_was_reachable

    def test_lost_exchange_between_two_holders_is_not_blamed(self):
        history = SyncHistory(maxlen=16)
        start = history.next_seq
        _exchange(history, "a", "b", synced=["k"])
        _exchange(history, "a", "b", lost=[("k", "response-lost")], dropped=1)
        trace = reconstruct(
            history,
            key="k",
            source_replica="a",
            target_replica="c",
            since_seq=start,
        )
        assert trace.holders == ("a", "b")
        assert trace.lost_legs == ()

    def test_exchanges_not_involving_the_key_are_skipped(self):
        history = SyncHistory(maxlen=16)
        start = history.next_seq
        _exchange(history, "a", "b", synced=["other"])
        trace = reconstruct(
            history,
            key="k",
            source_replica="a",
            target_replica="b",
            since_seq=start,
        )
        assert trace.attempts == 0
        assert "never offered" in trace.describe()

    def test_until_seq_bounds_the_window(self):
        history = SyncHistory(maxlen=16)
        start = history.next_seq
        _exchange(history, "a", "b", synced=["k"])
        boundary = history.next_seq
        _exchange(history, "b", "c", synced=["k"])
        trace = reconstruct(
            history,
            key="k",
            source_replica="a",
            target_replica="c",
            since_seq=start,
            until_seq=boundary,
        )
        assert trace.holders == ("a", "b")
        assert trace.until_seq == boundary

    def test_truncation_is_reported_when_ring_rotated(self):
        history = SyncHistory(maxlen=2)
        start = history.next_seq
        _exchange(history, "a", "b", synced=["k"])
        _exchange(history, "b", "c", synced=["k"])
        _exchange(history, "c", "d", synced=["k"])  # evicts seq 0
        trace = reconstruct(
            history,
            key="k",
            source_replica="a",
            target_replica="e",
            since_seq=start,
        )
        assert trace.truncated
        assert "rotated out" in trace.describe()
        # The a->b spread was evicted, so the replay must not invent it:
        # with only the retained records, nobody but the source provably
        # holds the knowledge.
        assert trace.holders == ("a",)

    def test_empty_history_is_truncated_and_attemptless(self):
        history = SyncHistory(maxlen=4)
        trace = reconstruct(
            history,
            key="k",
            source_replica="a",
            target_replica="b",
            since_seq=0,
        )
        assert trace.truncated
        assert trace.attempts == 0
        assert trace.holders == ("a",)
