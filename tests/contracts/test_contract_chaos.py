"""Seeded chaos soaks: contract verdicts vs. a causal ground-truth oracle.

The scripting gives the soak an exact oracle: one designated writer owns
the contract key, every export writes a strictly increasing generation
number, and nobody else ever writes it.  Single-writer means each
replica's copy of the key is always some causal prefix of the writer's
history, so *value generations are the causal ground truth* -- replica
``r`` has observed export ``g`` if and only if its stored generation is
``>= g``.  That stays true across re-rooting epoch bumps (compaction
syncs every live holder first), which is exactly the window where the
checker resolves relations by the epoch invariant instead of comparing.

Every round, the consumer "runs" its operation and the checker's verdict
is compared against the oracle:

* a violation with no oracle gap would be a **false positive** -- the
  checker inventing staleness;
* an oracle gap with no violation would be a **false negative** -- the
  checker blessing a stale read.

The soaks assert zero of both (100% agreement), for the observes and
bounded-freshness contracts, across all four clock families at 10% and
30% loss under the full chaos fault matrix.  Full runs are
``pytest -m chaos``; an unmarked smoke keeps the machinery covered in
the default tier.
"""

import random

import pytest

from repro.contracts import ContractChecker, ContractSpec
from repro.replication import (
    AntiEntropy,
    FaultPlan,
    FaultyTransport,
    KernelTracker,
    MobileNode,
    RetryPolicy,
    SyncHistory,
    WireSyncEngine,
)
from repro.replication.network import FullyConnectedNetwork

FAMILIES = ["version-stamp", "itc", "vv-dynamic", "causal-history"]

MAX_LAG = 3


def _held_generation(store, key):
    """The generation a replica has observed (-1: never received the key)."""
    values = store.get(key)
    if not values:
        return -1
    # Single writer: siblings cannot form, so there is exactly one value.
    assert len(values) == 1, values
    return values[0]


def _run_soak(family, loss, rounds, seed):
    network = FullyConnectedNetwork()
    transport = FaultyTransport(network, plan=FaultPlan.chaos(loss=loss), seed=seed)
    history = SyncHistory(maxlen=512)
    engine = WireSyncEngine(
        history=history, transport=transport, retry=RetryPolicy(attempts=4)
    )
    writer = MobileNode.first(
        "writer", network, tracker_factory=KernelTracker.factory(family)
    )
    nodes = [writer] + [writer.spawn_peer(f"r{i}") for i in range(3)]
    consumer = nodes[-1].store
    checker = ContractChecker(
        [
            ContractSpec(
                name="observes",
                kind="observes",
                source="export",
                target="consume",
                key="k",
            ),
            ContractSpec(
                name="freshness",
                kind="freshness-within-k-events",
                source="export",
                target="consume",
                key="k",
                max_lag=MAX_LAG,
            ),
        ],
        history=history,
    )
    checker.watch_writes(writer.store, "export")
    gossip = AntiEntropy(
        nodes,
        rng=random.Random(seed + 1),
        engine=engine,
        compact_threshold_bits=384,
    )
    rng = random.Random(seed + 2)
    generation = 0
    checks = violations = 0
    for _step in range(rounds):
        if rng.random() < 0.4:
            generation += 1
            writer.write("k", generation)
        gossip.run_round()

        held = _held_generation(consumer, "k")
        assert held <= generation  # the oracle's sanity: no time travel
        reports = checker.check("consume", consumer, raise_on_violation=False)
        violated = {report.contract for report in reports}

        observes_gap = generation > 0 and held < generation
        freshness_gap = generation > MAX_LAG and held < generation - MAX_LAG
        assert ("observes" in violated) == observes_gap, (
            f"step {_step}: checker={'observes' in violated} "
            f"oracle={observes_gap} (held={held}, latest={generation})"
        )
        assert ("freshness" in violated) == freshness_gap, (
            f"step {_step}: checker={'freshness' in violated} "
            f"oracle={freshness_gap} (held={held}, latest={generation})"
        )
        for report in reports:
            # Machine-readable and provenance-traced, every time.
            assert report.target_replica == consumer.name
            assert report.source_replica == "writer"
            assert report.mode in ("stale", "concurrent", "missing", "straggler")
            assert report.provenance is not None
            assert report.provenance.key == "k"
        checks += 1
        violations += len(reports)
    # The soak must have exercised both verdicts to mean anything.
    assert checks == rounds
    return violations


@pytest.mark.chaos
@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("loss", [0.1, 0.3])
def test_contract_verdicts_match_oracle_under_chaos(family, loss):
    violations = _run_soak(family, loss, rounds=300, seed=11)
    assert violations > 0  # chaos at these rates must trip contracts sometimes


@pytest.mark.parametrize("family", FAMILIES)
def test_contract_verdicts_match_oracle_smoke(family):
    _run_soak(family, 0.3, rounds=40, seed=5)
