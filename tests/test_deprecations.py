"""The old adapter import paths keep working and warn, exactly once per use.

The mechanism adapter stack moved from :mod:`repro.sim.runner` to
:mod:`repro.kernel.adapters` in the kernel redesign; ``repro.sim.runner``
keeps resolving the old names through a module ``__getattr__`` shim that
emits one :class:`DeprecationWarning` per access.  The silent re-exports on
:mod:`repro.sim` are the supported compatibility path and must *not* warn.
"""

import warnings

import pytest

import repro.kernel.adapters as kernel_adapters_module
import repro.sim
import repro.sim.runner as runner

MOVED_NAMES = [
    "MechanismAdapter",
    "CausalAdapter",
    "RefCausalAdapter",
    "StampAdapter",
    "RerootingStampAdapter",
    "DynamicVVAdapter",
    "ITCAdapter",
    "PlausibleAdapter",
    "LamportAdapter",
    "default_adapters",
]


def _deprecations(caught):
    return [w for w in caught if issubclass(w.category, DeprecationWarning)]


@pytest.mark.parametrize("name", MOVED_NAMES)
def test_old_path_resolves_to_the_moved_object_and_warns_once(name):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        via_old_path = getattr(runner, name)
    emitted = _deprecations(caught)
    assert len(emitted) == 1, f"expected exactly one warning, got {len(emitted)}"
    assert name in str(emitted[0].message)
    assert "repro.kernel.adapters" in str(emitted[0].message)
    # The shim returns the *same* object, so isinstance/subclass
    # relationships written against the old path keep holding.
    assert via_old_path is getattr(kernel_adapters_module, name)


def test_old_constructors_still_work():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        adapter = runner.StampAdapter(reducing=False)
    assert len(_deprecations(caught)) == 1
    adapter.start("a")
    assert adapter.labels() == ["a"]
    assert adapter.name == "version-stamps-nonreducing"
    adapters = runner.default_adapters(include_plausible=True)
    assert any(a.name.startswith("plausible") for a in adapters)


def test_from_import_still_works_and_warns():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        from repro.sim.runner import CausalAdapter  # noqa: F401

    assert len(_deprecations(caught)) == 1


def test_modern_paths_do_not_warn():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        _ = repro.sim.StampAdapter
        _ = kernel_adapters_module.StampAdapter
        _ = runner.LockstepRunner
        _ = runner.AgreementReport
        _ = runner.SizeSample
    assert _deprecations(caught) == []


def test_unknown_attribute_still_raises():
    with pytest.raises(AttributeError):
        runner.definitely_not_a_thing
