"""The wire sync engine: batched streams vs per-envelope, proven equivalent.

The contract under test:

* **Lockstep**: for every clock family, a scripted anti-entropy scenario
  (writes interleaved with gossip rounds, including genuine write
  conflicts) produces *identical* store configurations whether the engine
  batches (streams + intern table + EQUAL fast paths) or ships one
  envelope per stamp -- and both match the configuration the
  causal-history oracle family produces for the same scenario, so the
  batching layer cannot change what replication converges to.
* Wire sync converges to the same values as the in-memory sync path.
* Every stamp a sync moves really crosses the codec (meter accounting:
  batched rounds send one stream per peer pair and direction, per-envelope
  rounds one message per stamp).
* Only kernel-tracked stores can sync over the wire; anything else is a
  typed :class:`~repro.core.errors.ReplicationError`.
"""

import random

import pytest

from repro.core.errors import ReplicationError
from repro.replication import (
    AntiEntropy,
    FullyConnectedNetwork,
    KernelTracker,
    MobileNode,
    NetworkMeter,
    StoreReplica,
    WireSyncEngine,
)
from repro import kernel

FAMILIES = kernel.families()


def _population(family, replicas, network=None):
    network = network if network is not None else FullyConnectedNetwork()
    nodes = [
        MobileNode.first(
            "n0", network, tracker_factory=KernelTracker.factory(family)
        )
    ]
    for index in range(1, replicas):
        nodes.append(nodes[-1].spawn_peer(f"n{index}"))
    return nodes


def _holders(nodes, key):
    return [node for node in nodes if key in node.store.keys()]


def _drive(nodes, gossip, *, seed, keys, rounds, settle):
    """A deterministic write/gossip interleaving over an existing population.

    Later writes always happen at nodes that already hold the key: a key
    is *created* once and spreads by synchronization, which is the store's
    (and ITC's) ownership model -- independently re-creating a key at a
    second replica is a modeling error the engine tests separately.
    """
    rng = random.Random(seed + 1)
    for key in range(keys):
        rng.choice(nodes).write(f"key{key}", f"initial{key}")
    for round_number in range(rounds):
        gossip.run_round()
        if round_number % 3 == 0:
            # Concurrent writes to one key at two holders: a real conflict.
            key = f"key{rng.randrange(keys)}"
            holders = _holders(nodes, key)
            if len(holders) >= 2:
                first, second = rng.sample(holders, 2)
                first.write(key, f"a{round_number}")
                second.write(key, f"b{round_number}")
        elif round_number % 3 == 1:
            key = f"key{rng.randrange(keys)}"
            holders = _holders(nodes, key)
            if holders:
                rng.choice(holders).write(key, f"w{round_number}")
    for _ in range(settle):
        gossip.run_round()
    return tuple(
        (node.node_id, key, tuple(sorted(map(repr, node.store.get(key)))))
        for node in nodes
        for key in node.store.keys()
    )


def _run_scenario(
    family, *, batched, seed, replicas=5, keys=6, rounds=15, settle=None
):
    """Run :func:`_drive` over the wire engine; returns the final state."""
    nodes = _population(family, replicas)
    engine = WireSyncEngine(batched=batched)
    gossip = AntiEntropy(nodes, rng=random.Random(seed), engine=engine)
    snapshot = _drive(
        nodes,
        gossip,
        seed=seed,
        keys=keys,
        rounds=rounds,
        settle=replicas + 4 if settle is None else settle,
    )
    conflicts = sum(report.conflicts_detected for report in gossip.reports)
    return snapshot, conflicts, engine, gossip


class TestLockstep:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_batched_equals_per_envelope(self, family, seed):
        batched, b_conflicts, _, _ = _run_scenario(family, batched=True, seed=seed)
        enveloped, e_conflicts, _, _ = _run_scenario(family, batched=False, seed=seed)
        assert batched == enveloped
        assert b_conflicts == e_conflicts

    @pytest.mark.parametrize("family", [f for f in FAMILIES if f != "causal-history"])
    def test_every_family_matches_the_causal_oracle(self, family):
        # The causal-history family *is* the oracle: exact causal order by
        # construction.  Every exact mechanism must converge to the same
        # sibling sets on the same scenario, through the batched wire.
        ours, our_conflicts, _, _ = _run_scenario(family, batched=True, seed=77)
        oracle, oracle_conflicts, _, _ = _run_scenario(
            "causal-history", batched=True, seed=77
        )
        assert ours == oracle
        assert our_conflicts == oracle_conflicts

    @pytest.mark.parametrize("family", FAMILIES)
    def test_wire_sync_converges_to_in_memory_values(self, family):
        # Kept deliberately tiny: the in-memory arm re-forks trackers on
        # every EQUAL exchange, so version stamps compound in size ~5x per
        # gossip round (the PR 3 growth pathology) -- the wire arm's EQUAL
        # stability is precisely what avoids that, and is why the engine
        # can run populations the in-memory path cannot.
        shape = dict(seed=3, keys=3, rounds=3, settle=2)
        wired, _, _, wired_gossip = _run_scenario(
            family, batched=True, replicas=3, **shape
        )
        nodes = _population(family, 3)
        gossip = AntiEntropy(nodes, rng=random.Random(3))
        in_memory = _drive(nodes, gossip, **shape)
        assert wired == in_memory
        assert wired_gossip.converged()


class TestWireAccounting:
    def test_batched_sends_streams_per_envelope_sends_stamps(self):
        for batched in (True, False):
            nodes = _population("version-stamp", 2)
            for key in range(5):
                nodes[0].write(f"key{key}", key)
            engine = WireSyncEngine(batched=batched)
            engine.sync(nodes[0].store, nodes[1].store)
            if batched:
                # The peer holds nothing (no request metadata to ship);
                # the response is one stream carrying all five trackers.
                assert engine.meter.messages == 1
            else:
                # ... while per-envelope ships one message per stamp.
                assert engine.meter.messages == 5
            assert engine.meter.bytes_sent > 0
            assert engine.stamps_shipped == 5
            # A second sync is two-sided: request + response.
            shipped = engine.stamps_shipped
            nodes[0].write("key0", "fresh")
            engine.sync(nodes[0].store, nodes[1].store)
            if batched:
                assert engine.meter.messages == 1 + 2
            else:
                # Request: 5 held stamps; response: only key0 changed.
                assert engine.meter.messages == 5 + 5 + 1
            assert engine.stamps_shipped == shipped + 5 + 1

    def test_round_report_carries_traffic(self):
        nodes = _population("itc", 3)
        nodes[0].write("k", 1)
        engine = WireSyncEngine()
        gossip = AntiEntropy(nodes, rng=random.Random(0), engine=engine)
        report = gossip.run_round()
        assert report.messages_sent > 0
        assert report.bytes_sent > 0
        assert (report.messages_sent, report.bytes_sent) <= engine.meter.snapshot()

    def test_meter_is_shared_and_per_pair(self):
        meter = NetworkMeter()
        nodes = _population("version-stamp", 2)
        nodes[0].write("k", 1)
        engine = WireSyncEngine(meter=meter)
        engine.sync(nodes[0].store, nodes[1].store)
        assert meter.messages == engine.meter.messages
        assert ("n0", "n1") in meter.per_pair
        meter.reset()
        assert meter.snapshot() == (0, 0)

    def test_steady_state_reuses_interned_frames(self):
        nodes = _population("version-stamp", 4)
        for key in range(6):
            nodes[0].write(f"key{key}", key)
        engine = WireSyncEngine()
        gossip = AntiEntropy(nodes, rng=random.Random(1), engine=engine)
        for _ in range(12):
            gossip.run_round()
        hits_before = engine.intern.hits
        verdicts_before = engine.equal_cache_hits
        for _ in range(4):
            gossip.run_round()
        # Converged population, no writes: the rounds are pure metadata
        # re-shipping, which the intern + verdict caches absorb.
        assert engine.intern.hits > hits_before
        assert engine.equal_cache_hits > verdicts_before


class TestEngineContract:
    def test_non_kernel_trackers_are_rejected(self):
        first = StoreReplica("a")  # default StampTracker: no byte form
        second = StoreReplica("b")
        first.put("k", 1)
        with pytest.raises(ReplicationError):
            WireSyncEngine().sync(first, second)

    def test_self_sync_is_rejected(self):
        store = StoreReplica("a", tracker_factory=KernelTracker.factory("itc"))
        with pytest.raises(ReplicationError):
            WireSyncEngine().sync(store, store)

    def test_independent_creation_conflict_survives_the_wire(self):
        # Two replicas independently create the same key: the wire path
        # must flag the independent origins exactly like the in-memory
        # path, even when the tracker bytes happen to be identical.
        for batched in (True, False):
            first = StoreReplica(
                "a", tracker_factory=KernelTracker.factory("version-stamp")
            )
            second = StoreReplica(
                "b", tracker_factory=KernelTracker.factory("version-stamp")
            )
            first.put("k", "mine")
            second.put("k", "theirs")
            report = WireSyncEngine(batched=batched).sync(first, second)
            assert report.conflicts_detected == 1
            assert sorted(map(repr, first.get("k"))) == sorted(
                map(repr, second.get("k"))
            )
            assert len(first.get("k")) == 2

    def test_mixed_epoch_stores_still_sync_batched(self):
        # Keys can sit at different epochs (per-key compaction); the
        # engine groups frames by (family, epoch) rather than rejecting.
        first = StoreReplica(
            "a", tracker_factory=KernelTracker.factory("version-stamp")
        )
        second = StoreReplica(
            "b", tracker_factory=KernelTracker.factory("version-stamp")
        )
        first.put("k0", 1)
        first._keys["k0"].tracker = KernelTracker(
            first._keys["k0"].tracker.clock.with_epoch(2)
        )
        first.put("k1", 2)
        engine = WireSyncEngine()
        engine.sync(first, second)
        assert second.get("k0") == [1] and second.get("k1") == [2]
        assert second.tracker_of("k0").epoch == 2
