"""Unit tests for single-item replicas."""

import pytest

from repro.core.order import Ordering
from repro.replication.replica import Replica
from repro.replication.tracker import DynamicVVTracker, ITCTracker, StampTracker
from repro.vv.id_source import CentralIdSource, IdAllocationError


class TestLocalOperation:
    def test_initial_value(self):
        replica = Replica("origin", value=0)
        assert replica.value == 0
        assert replica.writes == 0

    def test_write_updates_value_and_metadata(self):
        replica = Replica("origin", value=0)
        replica.write(1)
        assert replica.value == 1
        assert replica.writes == 1

    def test_auto_generated_names_are_unique(self):
        assert Replica().name != Replica().name

    def test_repr_mentions_name(self):
        assert "origin" in repr(Replica("origin"))


class TestForkAndCompare:
    def test_fork_copies_value(self):
        origin = Replica("origin", value={"k": 1})
        clone = origin.fork("clone")
        assert clone.value == {"k": 1}
        assert clone.name == "clone"

    def test_fresh_fork_is_equivalent(self):
        origin = Replica("origin", value=0)
        clone = origin.fork("clone")
        assert origin.compare(clone) is Ordering.EQUAL

    def test_local_write_dominates_clone(self):
        origin = Replica("origin", value=0)
        clone = origin.fork("clone")
        origin.write(1)
        assert origin.compare(clone) is Ordering.AFTER
        assert not origin.conflicts_with(clone)

    def test_divergent_writes_conflict(self):
        origin = Replica("origin", value=0)
        clone = origin.fork("clone")
        origin.write(1)
        clone.write(2)
        assert origin.conflicts_with(clone)

    def test_fork_with_dynamic_vv_fails_under_partition(self):
        origin = Replica("origin", value=0, tracker=DynamicVVTracker(id_source=CentralIdSource()))
        with pytest.raises(IdAllocationError):
            origin.fork("clone", connected=False)

    def test_fork_with_stamps_succeeds_under_partition(self):
        origin = Replica("origin", value=0, tracker=StampTracker())
        clone = origin.fork("clone", connected=False)
        assert clone.compare(origin) is Ordering.EQUAL


class TestSynchronization:
    def test_sync_propagates_newer_value(self):
        origin = Replica("origin", value=0)
        clone = origin.fork("clone")
        origin.write(7)
        outcome = clone.sync_with(origin)
        assert outcome.relation is Ordering.BEFORE
        assert not outcome.conflict
        assert clone.value == 7
        assert origin.value == 7

    def test_sync_of_equal_replicas_is_a_noop_on_values(self):
        origin = Replica("origin", value=3)
        clone = origin.fork("clone")
        outcome = origin.sync_with(clone)
        assert outcome.relation is Ordering.EQUAL
        assert origin.value == clone.value == 3

    def test_conflicting_sync_without_resolver_keeps_local(self):
        origin = Replica("origin", value=0)
        clone = origin.fork("clone")
        origin.write(1)
        clone.write(2)
        outcome = origin.sync_with(clone)
        assert outcome.conflict
        assert origin.value == 1
        assert clone.value == 1
        assert origin.conflicts_seen == 1

    def test_conflicting_sync_with_resolver(self):
        origin = Replica("origin", value=1)
        clone = origin.fork("clone")
        origin.write(2)
        clone.write(3)
        outcome = origin.sync_with(clone, resolve=lambda mine, theirs: mine + theirs)
        assert outcome.conflict
        assert origin.value == 5
        assert clone.value == 5

    def test_after_sync_replicas_are_equivalent(self):
        origin = Replica("origin", value=0)
        clone = origin.fork("clone")
        origin.write(1)
        origin.sync_with(clone)
        assert origin.compare(clone) is Ordering.EQUAL

    def test_resolved_conflict_dominates_later_comparisons(self):
        origin = Replica("origin", value=1)
        clone = origin.fork("clone")
        other = origin.fork("other")
        origin.write(2)
        clone.write(3)
        origin.sync_with(clone, resolve=lambda mine, theirs: mine + theirs)
        # The merged version must dominate a third replica that saw nothing.
        assert origin.compare(other) is Ordering.AFTER

    def test_sync_counts(self):
        origin = Replica("origin", value=0)
        clone = origin.fork("clone")
        origin.sync_with(clone)
        assert origin.syncs == 1
        assert clone.syncs == 1

    def test_absorb_retires_the_other_replica(self):
        origin = Replica("origin", value=0)
        bystander = origin.fork("bystander")
        clone = origin.fork("clone")
        clone.write(9)
        origin.absorb(clone)
        # The absorbed replica is retired; the surviving replica holds its
        # value and dominates replicas that saw nothing.
        assert origin.value == 9
        assert origin.compare(bystander) is Ordering.AFTER

    def test_metadata_size_positive(self):
        assert Replica("origin").metadata_size_in_bits() > 0

    @pytest.mark.parametrize(
        "tracker_factory",
        [StampTracker, ITCTracker],
        ids=["stamps", "itc"],
    )
    def test_sync_works_with_every_tracker(self, tracker_factory):
        origin = Replica("origin", value=0, tracker=tracker_factory())
        clone = origin.fork("clone")
        origin.write(1)
        outcome = clone.sync_with(origin)
        assert outcome.value == 1
        assert origin.compare(clone) is Ordering.EQUAL


class TestCompact:
    def _sync_ring(self, replicas, rounds):
        count = len(replicas)
        for _ in range(rounds):
            for index in range(count):
                first = replicas[index]
                second = replicas[(index + 1) % count]
                first.write(f"{first.name}-write")
                first.sync_with(second)

    def test_compact_shrinks_and_preserves_comparisons(self):
        root = Replica("r0", value=0)
        replicas = [root, root.fork("r1"), root.fork("r2"), root.fork("r3")]
        self._sync_ring(replicas, rounds=6)
        replicas[0].write("private")
        before_bits = sum(r.metadata_size_in_bits() for r in replicas)
        before = {
            (x.name, y.name): x.compare(y)
            for x in replicas
            for y in replicas
            if x is not y
        }
        result = Replica.compact(replicas)
        after = {
            (x.name, y.name): x.compare(y)
            for x in replicas
            for y in replicas
            if x is not y
        }
        assert after == before
        assert result.bits_before == before_bits
        assert result.bits_after < before_bits
        assert sum(r.metadata_size_in_bits() for r in replicas) == result.bits_after

    def test_compact_keeps_values_and_counters(self):
        root = Replica("r0", value="v")
        other = root.fork("r1")
        root.write("w")
        root.sync_with(other)
        writes, syncs = root.writes, root.syncs
        Replica.compact([root, other])
        assert root.value == "w"
        assert other.value == "w"
        assert (root.writes, root.syncs) == (writes, syncs)

    def test_later_syncs_still_work_after_compact(self):
        root = Replica("r0", value=0)
        replicas = [root, root.fork("r1"), root.fork("r2")]
        self._sync_ring(replicas, rounds=4)
        Replica.compact(replicas)
        replicas[0].write("fresh")
        outcome = replicas[0].sync_with(replicas[1])
        assert outcome.relation is Ordering.AFTER
        assert not outcome.conflict
        assert replicas[1].value == "fresh"
        # Concurrent writes still conflict after a compact.
        replicas[1].write("left")
        replicas[2].write("right")
        assert replicas[1].conflicts_with(replicas[2])

    def test_compact_rejects_bad_groups(self):
        from repro.core.errors import ReplicationError

        with pytest.raises(ReplicationError):
            Replica.compact([])
        replica = Replica("r0")
        with pytest.raises(ReplicationError):
            Replica.compact([replica, replica])
        with pytest.raises(ReplicationError):
            Replica.compact([Replica("itc", tracker=ITCTracker())])
