"""The opt-in per-exchange sync history recorder.

Unit coverage of the ring-buffer semantics, plus a 2,000-step chaos soak
asserting the memory bound holds and every record stays well-formed while
the fault matrix is doing its worst.
"""

import random

import pytest

from repro.core.errors import ReplicationError
from repro.replication import (
    AntiEntropy,
    FaultPlan,
    FaultyTransport,
    KernelTracker,
    MobileNode,
    RetryPolicy,
    SyncHistory,
    WireSyncEngine,
)
from repro.replication.network import FullyConnectedNetwork


def _two_nodes(family="version-stamp"):
    network = FullyConnectedNetwork()
    first = MobileNode.first(
        "a", network, tracker_factory=KernelTracker.factory(family)
    )
    return first, first.spawn_peer("b")


class TestSyncHistoryUnit:
    def test_rejects_nonpositive_maxlen(self):
        with pytest.raises(ReplicationError):
            SyncHistory(maxlen=0)

    def test_engine_without_history_records_nothing(self):
        a, b = _two_nodes()
        engine = WireSyncEngine()
        a.write("k", 1)
        engine.sync(a.store, b.store)
        assert engine.history is None

    def test_session_appends_one_record(self):
        a, b = _two_nodes()
        history = SyncHistory(maxlen=8)
        engine = WireSyncEngine(history=history)
        a.write("k", 1)
        engine.sync(a.store, b.store)
        assert len(history) == 1
        (record,) = history.records()
        assert record.seq == 0
        assert record.round_number is None
        assert (record.first, record.second) == ("a", "b")
        assert record.carried("k")
        assert record.keys_lost == ()
        assert record.messages > 0 and record.bytes_sent > 0

    def test_round_marking_via_anti_entropy(self):
        a, b = _two_nodes()
        history = SyncHistory(maxlen=8)
        engine = WireSyncEngine(history=history)
        gossip = AntiEntropy([a, b], rng=random.Random(0), engine=engine)
        a.write("k", 1)
        gossip.run_round()
        gossip.run_round()
        rounds = {record.round_number for record in history}
        assert rounds == {1, 2}

    def test_eviction_keeps_bound_and_counts(self):
        a, b = _two_nodes()
        history = SyncHistory(maxlen=3)
        engine = WireSyncEngine(history=history)
        for step in range(5):
            a.write("k", step)
            engine.sync(a.store, b.store)
        assert len(history) == 3
        assert history.evicted == 2
        assert history.oldest_seq == 2
        assert history.next_seq == 5

    def test_since_window(self):
        a, b = _two_nodes()
        history = SyncHistory(maxlen=16)
        engine = WireSyncEngine(history=history)
        for step in range(4):
            a.write("k", step)
            engine.sync(a.store, b.store)
        assert [r.seq for r in history.since(1)] == [1, 2, 3]
        assert [r.seq for r in history.since(1, until=3)] == [1, 2]

    def test_lost_keys_record_reason_and_fault_counters(self):
        a, b = _two_nodes()
        network = a.network
        # Total loss: every transfer dies, so the key is request-lost.
        transport = FaultyTransport(network, plan=FaultPlan(loss=1.0), seed=0)
        history = SyncHistory(maxlen=8)
        engine = WireSyncEngine(
            history=history, transport=transport, retry=RetryPolicy(attempts=2)
        )
        a.write("k", 1)
        engine.sync(a.store, b.store)
        (record,) = history.records()
        assert record.keys_synced == ()
        assert record.lost_reason("k") in ("request-lost", "response-lost")
        assert record.involves("k") and not record.carried("k")
        assert record.dropped >= 2
        assert record.deliveries_failed == 1


@pytest.mark.parametrize("family", ["version-stamp", "causal-history"])
def test_history_bound_holds_over_2000_step_soak(family):
    """O(maxlen) memory, monotone seq, well-formed records, for 2,000 steps."""
    maxlen = 64
    network = FullyConnectedNetwork()
    transport = FaultyTransport(
        network, plan=FaultPlan.chaos(loss=0.15), seed=7
    )
    history = SyncHistory(maxlen=maxlen)
    engine = WireSyncEngine(
        history=history, transport=transport, retry=RetryPolicy(attempts=3)
    )
    first = MobileNode.first(
        "n0", network, tracker_factory=KernelTracker.factory(family)
    )
    nodes = [first] + [first.spawn_peer(f"n{i}") for i in range(1, 4)]
    # Auto-compaction keeps version-stamp metadata wire-encodable over a
    # soak this long (and exercises history recording across epoch bumps).
    gossip = AntiEntropy(
        nodes,
        rng=random.Random(7),
        engine=engine,
        compact_threshold_bits=384,
    )
    rng = random.Random(7)
    names = {node.node_id for node in nodes}
    last_seq = -1
    for step in range(2000):
        if step % 3 == 0:
            nodes[rng.randrange(len(nodes))].write(f"key-{rng.randrange(4)}", step)
        gossip.run_round()
        assert len(history) <= maxlen
        for record in history:
            assert {record.first, record.second} <= names
            assert record.first != record.second
            lost_keys = {key for key, _ in record.keys_lost}
            assert not (set(record.keys_synced) & lost_keys)
            assert record.messages >= 0 and record.bytes_sent >= 0
    for record in history.records():
        assert record.seq > last_seq
        last_seq = record.seq
    assert len(history) == maxlen
    assert history.next_seq == len(history) + history.evicted
    # The soak really did rotate the ring many times over.
    assert history.evicted > maxlen
