"""Unit tests for the replicated multi-value key-value store."""

import pytest

from repro.core.errors import ReplicationError
from repro.core.order import Ordering
from repro.replication.conflict import KeepBoth, MergeWith, PreferNewest
from repro.replication.store import StoreReplica
from repro.replication.tracker import ITCTracker


class TestLocalOperation:
    def test_put_and_get(self):
        store = StoreReplica("origin")
        store.put("k", "v1")
        assert store.get("k") == ["v1"]
        assert store.get_one("k") == "v1"

    def test_get_missing_key_is_empty(self):
        assert StoreReplica("origin").get("missing") == []

    def test_get_one_missing_key_raises(self):
        with pytest.raises(ReplicationError):
            StoreReplica("origin").get_one("missing")

    def test_tracker_of_missing_key_raises(self):
        with pytest.raises(ReplicationError):
            StoreReplica("origin").tracker_of("missing")

    def test_local_overwrite_supersedes(self):
        store = StoreReplica("origin")
        store.put("k", "v1")
        store.put("k", "v2")
        assert store.get("k") == ["v2"]

    def test_delete_writes_tombstone(self):
        store = StoreReplica("origin")
        store.put("k", "v1")
        store.delete("k")
        assert store.get("k") == [None]

    def test_keys_sorted(self):
        store = StoreReplica("origin")
        store.put("b", 1)
        store.put("a", 2)
        assert store.keys() == ["a", "b"]

    def test_fork_copies_data(self):
        store = StoreReplica("origin")
        store.put("k", "v")
        clone = store.fork("clone")
        assert clone.get("k") == ["v"]
        assert clone.name == "clone"

    def test_forked_key_trackers_are_equivalent_but_distinct(self):
        store = StoreReplica("origin")
        store.put("k", "v")
        clone = store.fork("clone")
        assert store.tracker_of("k").compare(clone.tracker_of("k")) is Ordering.EQUAL
        assert store.tracker_of("k") is not clone.tracker_of("k")

    def test_metadata_size_positive(self):
        store = StoreReplica("origin")
        store.put("k", "v")
        assert store.metadata_size_in_bits() > 0

    def test_repr(self):
        store = StoreReplica("origin")
        store.put("k", "v")
        assert "origin" in repr(store)

    def test_self_sync_rejected(self):
        store = StoreReplica("origin")
        with pytest.raises(ReplicationError):
            store.sync_with(store)


class TestReconciliation:
    def test_key_replicates_to_new_holder(self):
        origin = StoreReplica("origin")
        origin.put("k", "v1")
        other = StoreReplica("other")
        report = origin.sync_with(other)
        assert other.get("k") == ["v1"]
        assert report.keys_replicated == 1

    def test_newer_value_propagates(self):
        origin = StoreReplica("origin")
        origin.put("k", "v1")
        clone = origin.fork("clone")
        origin.put("k", "v2")
        report = clone.sync_with(origin)
        assert clone.get("k") == ["v2"]
        assert report.values_taken >= 1
        assert report.conflicts_detected == 0

    def test_stale_side_receives_nothing_new_after_equal_sync(self):
        origin = StoreReplica("origin")
        origin.put("k", "v1")
        clone = origin.fork("clone")
        report = origin.sync_with(clone)
        assert report.conflicts_detected == 0
        assert origin.get("k") == clone.get("k") == ["v1"]

    def test_concurrent_writes_become_siblings_on_both_sides(self):
        origin = StoreReplica("origin")
        origin.put("k", "base")
        clone = origin.fork("clone")
        origin.put("k", "left")
        clone.put("k", "right")
        report = origin.sync_with(clone)
        assert sorted(origin.get("k")) == ["left", "right"]
        assert sorted(clone.get("k")) == ["left", "right"]
        assert report.conflicts_detected == 1
        assert origin.has_conflict("k")
        assert origin.conflicted_keys() == ["k"]

    def test_sibling_resolved_by_later_write(self):
        origin = StoreReplica("origin")
        origin.put("k", "base")
        clone = origin.fork("clone")
        origin.put("k", "left")
        clone.put("k", "right")
        origin.sync_with(clone)
        origin.put("k", "resolved")
        origin.sync_with(clone)
        assert origin.get("k") == ["resolved"]
        assert clone.get("k") == ["resolved"]

    def test_resolution_propagates_through_third_replica(self):
        origin = StoreReplica("origin")
        origin.put("k", "base")
        clone = origin.fork("clone")
        third = origin.fork("third")
        origin.put("k", "left")
        clone.put("k", "right")
        origin.sync_with(clone)
        origin.put("k", "resolved")
        # The resolution travels via the third replica to the clone.
        origin.sync_with(third)
        third.sync_with(clone)
        assert clone.get("k") == ["resolved"]

    def test_sync_converges_disjoint_keys(self):
        origin = StoreReplica("origin")
        origin.put("x", 1)
        clone = origin.fork("clone")
        clone.put("y", 2)
        origin.sync_with(clone)
        assert origin.get("y") == [2]
        assert clone.get("x") == [1]

    def test_independent_creation_of_same_key_is_a_conflict(self):
        left = StoreReplica("left")
        right = StoreReplica("right")
        left.put("k", "mine")
        right.put("k", "theirs")
        report = left.sync_with(right)
        assert report.conflicts_detected == 1
        assert sorted(left.get("k")) == ["mine", "theirs"]

    def test_merge_report_accumulates(self):
        origin = StoreReplica("origin")
        origin.put("a", 1)
        origin.put("b", 2)
        clone = origin.fork("clone")
        origin.put("a", 3)
        origin.put("c", 4)
        report = clone.sync_with(origin)
        assert report.keys_examined == 3
        assert report.keys_replicated == 1
        assert report.values_taken >= 2

    def test_works_with_itc_trackers(self):
        origin = StoreReplica("origin", tracker_factory=ITCTracker)
        origin.put("k", "v1")
        clone = origin.fork("clone")
        origin.put("k", "v2")
        clone.sync_with(origin)
        assert clone.get("k") == ["v2"]


class TestConflictPolicies:
    def _diverged_pair(self, policy):
        origin = StoreReplica("origin", policy=policy)
        origin.put("k", 1)
        clone = origin.fork("clone")
        origin.put("k", 10)
        clone.put("k", 20)
        return origin, clone

    def test_keep_both_keeps_siblings(self):
        origin, clone = self._diverged_pair(KeepBoth())
        origin.sync_with(clone)
        assert sorted(origin.get("k")) == [10, 20]

    def test_merge_with_combines_values(self):
        origin, clone = self._diverged_pair(MergeWith(lambda values: sum(values)))
        origin.sync_with(clone)
        assert origin.get("k") == [30]
        assert clone.get("k") == [30]
        assert not origin.has_conflict("k")

    def test_merged_value_dominates_later(self):
        origin, clone = self._diverged_pair(MergeWith(lambda values: max(values)))
        third = origin.fork("third")
        origin.sync_with(clone)
        # The merged value must win over the stale third replica.
        report = origin.sync_with(third)
        assert report.conflicts_detected == 0
        assert third.get("k") == [20]

    def test_prefer_newest_picks_largest_key(self):
        origin, clone = self._diverged_pair(PreferNewest())
        origin.sync_with(clone)
        assert origin.get("k") == [20]

    def test_prefer_newest_with_custom_key(self):
        policy = PreferNewest(key=lambda value: value["ts"])
        origin = StoreReplica("origin", policy=policy)
        origin.put("k", {"ts": 1, "value": "old"})
        clone = origin.fork("clone")
        origin.put("k", {"ts": 5, "value": "mine"})
        clone.put("k", {"ts": 9, "value": "theirs"})
        origin.sync_with(clone)
        assert origin.get_one("k")["value"] == "theirs"

    def test_policy_resolution_counted_in_report(self):
        origin, clone = self._diverged_pair(PreferNewest())
        report = origin.sync_with(clone)
        assert report.conflicts_detected == 1
        assert report.conflicts_resolved == 1
