"""Fault-injected anti-entropy: transport faults, retries, and upgrades.

Unit and integration coverage for :mod:`repro.replication.faults` and the
wire sync engine's graceful degradation: seeded loss/duplication/
reordering/corruption, bounded retry with backoff, idempotent re-delivery,
typed skip-and-report on damaged frames, per-key rollback when a response
leg dies, crash/restart recovery, and the epoch-gossip rule that upgrades
a stale-epoch straggler instead of raising ``EpochMismatch``.
"""

import random

import pytest

from repro.core.errors import FaultInjectionError
from repro.core.order import Ordering
from repro.replication import (
    AntiEntropy,
    FaultPlan,
    FaultyTransport,
    KernelTracker,
    MobileNode,
    RetryPolicy,
    WireSyncEngine,
)
from repro.replication.network import (
    FullyConnectedNetwork,
    NetworkMeter,
    PartitionedNetwork,
)

FAMILIES = ["version-stamp", "itc", "vv-dynamic", "causal-history"]


def _population(family, count, network, *, seed=0):
    first = MobileNode.first(
        "n0", network, tracker_factory=KernelTracker.factory(family)
    )
    nodes = [first]
    for index in range(1, count):
        nodes.append(first.spawn_peer(f"n{index}"))
    return nodes


class TestFaultPlan:
    def test_rates_outside_unit_interval_are_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(loss=1.5)
        with pytest.raises(FaultInjectionError):
            FaultPlan(duplicate=-0.1)
        with pytest.raises(FaultInjectionError):
            FaultPlan(corrupt_bits=0)
        with pytest.raises(FaultInjectionError):
            FaultPlan(outages=((5, 5),))

    def test_retry_policy_validation_and_backoff_bounds(self):
        with pytest.raises(FaultInjectionError):
            RetryPolicy(attempts=0)
        with pytest.raises(FaultInjectionError):
            RetryPolicy(factor=0.5)
        policy = RetryPolicy(attempts=5, base=0.1, factor=2.0, max_delay=0.3, jitter=0.5)
        rng = random.Random(0)
        for retry in range(1, 10):
            delay = policy.delay(retry, rng)
            # Bounded: never beyond max_delay * (1 + jitter), never negative.
            assert 0.0 <= delay <= 0.3 * 1.5

    def test_seeded_transport_replays_the_same_fault_schedule(self):
        blobs = [bytes([i]) * 20 for i in range(10)]
        plan = FaultPlan(loss=0.3, duplicate=0.2, reorder=0.5, corrupt=0.2)
        runs = []
        for _ in range(2):
            transport = FaultyTransport(FullyConnectedNetwork(), plan=plan, seed=99)
            runs.append(transport.transfer_batch("a", "b", blobs))
        assert runs[0] == runs[1]


class TestFaultyTransport:
    def test_loss_drops_messages_and_meters_them(self):
        meter = NetworkMeter()
        transport = FaultyTransport(
            FullyConnectedNetwork(),
            plan=FaultPlan(loss=1.0),
            seed=1,
            meter=meter,
        )
        assert transport.transfer_batch("a", "b", [b"x"] * 5) == []
        assert meter.dropped == 5

    def test_duplication_delivers_extra_copies(self):
        meter = NetworkMeter()
        transport = FaultyTransport(
            FullyConnectedNetwork(),
            plan=FaultPlan(duplicate=1.0, max_duplicates=1),
            seed=2,
            meter=meter,
        )
        deliveries = transport.transfer_batch("a", "b", [b"payload"])
        assert [payload for _, payload in deliveries] == [b"payload", b"payload"]
        assert meter.duplicated == 1

    def test_corruption_flips_exactly_the_configured_bits(self):
        transport = FaultyTransport(
            FullyConnectedNetwork(),
            plan=FaultPlan(corrupt=1.0, corrupt_bits=1),
            seed=3,
        )
        original = bytes(range(32))
        [(_, payload)] = transport.transfer_batch("a", "b", [original])
        flipped = sum(
            bin(a ^ b).count("1") for a, b in zip(original, payload)
        )
        assert flipped == 1

    def test_outage_windows_drop_everything_inside_the_window(self):
        transport = FaultyTransport(
            FullyConnectedNetwork(),
            plan=FaultPlan(outages=((0, 3),)),
            seed=4,
        )
        assert transport.transfer_batch("a", "b", [b"x"]) == []
        assert transport.transfer_batch("a", "b", [b"y"]) == []
        # Window passed (3 transfer attempts counted): traffic flows again.
        assert transport.transfer_batch("a", "b", [b"w"]) == [(0, b"w")]

    def test_crashed_endpoints_are_unreachable_until_restart(self):
        transport = FaultyTransport(FullyConnectedNetwork(), seed=5)
        assert transport.can_communicate("a", "b")
        transport.crash("b")
        assert not transport.can_communicate("a", "b")
        assert transport.reachable_from("a", ["b", "c"]) == {"c"}
        assert transport.transfer_batch("a", "b", [b"x"]) == []
        transport.restart("b")
        assert transport.can_communicate("a", "b")

    def test_partitioned_network_verdicts_are_honoured(self):
        network = PartitionedNetwork([["a"], ["b"]])
        transport = FaultyTransport(network, seed=6)
        assert transport.transfer_batch("a", "b", [b"x"]) == []
        network.heal()
        assert transport.transfer_batch("a", "b", [b"x"]) == [(0, b"x")]


class TestRetryAndGoodput:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_lossy_transport_converges_and_meters_the_fault_economy(self, family):
        transport = FaultyTransport(
            FullyConnectedNetwork(),
            plan=FaultPlan(loss=0.3, duplicate=0.15, reorder=0.5),
            seed=11,
        )
        engine = WireSyncEngine(transport=transport, retry=RetryPolicy(attempts=6))
        nodes = _population(family, 3, transport)
        for index, node in enumerate(nodes):
            node.write(f"key-{index}", f"value-{index}")
        gossip = AntiEntropy(nodes, rng=random.Random(7), engine=engine)
        reports = gossip.run(10)
        assert gossip.converged()
        meter = engine.meter
        assert meter.dropped > 0
        assert meter.retried > 0
        assert meter.retry_latency > 0.0
        assert 0.0 < meter.goodput() < 1.0
        # The fault economy is surfaced per round, not only in aggregate.
        assert sum(report.retried for report in reports) == meter.retried
        assert sum(report.dropped for report in reports) == meter.dropped
        assert any(0.0 < report.goodput <= 1.0 for report in reports)

    def test_perfect_transport_has_unit_goodput_and_no_faults(self):
        transport = FaultyTransport(FullyConnectedNetwork(), seed=12)
        engine = WireSyncEngine(transport=transport)
        nodes = _population("version-stamp", 2, transport)
        nodes[0].write("k", "v")
        gossip = AntiEntropy(nodes, rng=random.Random(1), engine=engine)
        gossip.run(3)
        assert gossip.converged()
        assert engine.meter.fault_snapshot() == (0, 0, 0, 0, 0.0)
        assert engine.meter.goodput() == 1.0

    def test_exhausted_retry_budget_degrades_without_error(self):
        transport = FaultyTransport(
            FullyConnectedNetwork(), plan=FaultPlan(loss=1.0), seed=13
        )
        engine = WireSyncEngine(transport=transport, retry=RetryPolicy(attempts=2))
        nodes = _population("itc", 2, transport)
        nodes[0].write("k", "v")
        engine.sync(nodes[0].store, nodes[1].store)
        # Nothing got through: no replication survived (the attempted
        # transfer was rolled back), nothing was lost locally, and no
        # exception escaped.
        assert nodes[1].store.get("k") == []
        assert nodes[0].store.get("k") == ["v"]
        assert engine.deliveries_failed > 0


def _store_fingerprint(node):
    """Values plus canonical tracker bytes per key (epoch included)."""
    result = {}
    for key in node.store.keys():
        tracker = node.store.tracker_of(key)
        result[key] = (
            sorted(repr(value) for value in node.store.get(key)),
            tracker.epoch,
        )
    return result


class TestIdempotentRedelivery:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_duplicated_delivery_leaves_configurations_identical(self, family):
        """Satellite: duplicate delivery of any sync message is a no-op.

        The same seeded scenario runs twice -- once on a perfect transport
        and once with every message duplicated -- and must end with
        identical store configurations and epoch state.
        """
        outcomes = []
        for plan in (FaultPlan(), FaultPlan(duplicate=1.0, max_duplicates=2)):
            transport = FaultyTransport(FullyConnectedNetwork(), plan=plan, seed=21)
            engine = WireSyncEngine(transport=transport)
            nodes = _population(family, 3, transport)
            nodes[0].write("a", 1)
            nodes[1].write("b", 2)
            gossip = AntiEntropy(nodes, rng=random.Random(5), engine=engine)
            gossip.run(3)
            # Concurrent updates on a replicated key: a real conflict the
            # duplicated arm must resolve identically.
            nodes[0].write("a", "left")
            nodes[2].write("a", "right")
            gossip.run(6)
            assert gossip.converged()
            outcomes.append([_store_fingerprint(node) for node in nodes])
        assert outcomes[0] == outcomes[1]

    @pytest.mark.parametrize("family", FAMILIES)
    def test_whole_sync_replay_is_idempotent(self, family):
        """Replaying an entire pairwise sync changes nothing.

        After one clean sync both replicas are causally EQUAL per key, so
        a replayed session settles every key through the canonical-bytes
        fast path: values, trackers and epochs are untouched.
        """
        transport = FaultyTransport(FullyConnectedNetwork(), seed=22)
        engine = WireSyncEngine(transport=transport)
        nodes = _population(family, 2, transport)
        nodes[0].write("k", "v")
        nodes[1].write("q", "w")
        engine.sync(nodes[0].store, nodes[1].store)
        before = [_store_fingerprint(node) for node in nodes]
        trackers_before = [
            {key: node.store.tracker_of(key) for key in node.store.keys()}
            for node in nodes
        ]
        replay = engine.sync(nodes[0].store, nodes[1].store)
        assert [_store_fingerprint(node) for node in nodes] == before
        assert replay.values_taken == 0
        assert replay.conflicts_detected == 0
        for node, snapshot in zip(nodes, trackers_before):
            for key, tracker in snapshot.items():
                live = node.store.tracker_of(key)
                assert live.compare(tracker) is Ordering.EQUAL
                assert live.to_bytes() == tracker.to_bytes()


class _RequestFrameCorruptor(FaultyTransport):
    """Deterministically damages the first frame of the first request leg."""

    def __init__(self, network, **kwargs):
        super().__init__(network, **kwargs)
        self.armed = True
        self.calls = 0

    def transfer_batch(self, source, destination, blobs):
        self.calls += 1
        deliveries = super().transfer_batch(source, destination, blobs)
        if not self.armed or self.calls != 1:
            return deliveries
        damaged = []
        for index, payload in deliveries:
            if payload[:2] == b"CS" and len(payload) > 16:
                # Byte 16 is the first frame's first payload byte: for the
                # version-stamp family that is the flags byte, and 0xFF is
                # not a valid flag -- a guaranteed lazy decode rejection
                # that sails through the eager header validation.
                body = bytearray(payload)
                body[16] = 0xFF
                payload = bytes(body)
            damaged.append((index, payload))
        return damaged


class _ResponseLegKiller(FaultyTransport):
    """Passes the request leg, drops every later leg of the session."""

    def __init__(self, network, **kwargs):
        super().__init__(network, **kwargs)
        self.legs_seen = 0
        self.armed = True

    def transfer_batch(self, source, destination, blobs):
        self.legs_seen += 1
        if self.armed and self.legs_seen > 1:
            if self.meter is not None:
                self.meter.record_drop(len(blobs))
            return []
        return super().transfer_batch(source, destination, blobs)


class TestSkipAndReport:
    def test_one_bad_frame_skips_one_key_not_the_sync(self):
        """Satellite: a single undecodable frame is skipped and reported.

        The damaged frame produces a typed ``FrameRejected`` entry; the
        group's other frames and the sync's other keys merge normally,
        the local state of the rejected key survives, the intern table is
        not poisoned, and the next clean sync heals the key.
        """
        transport = _RequestFrameCorruptor(FullyConnectedNetwork(), seed=31)
        engine = WireSyncEngine(
            transport=transport,
            retry=RetryPolicy(attempts=2),
            verify_checksums=False,
        )
        nodes = _population("version-stamp", 2, transport)
        nodes[1].write("aa-damaged", "remote")
        nodes[1].write("bb-clean", "also-remote")
        report = engine.sync(nodes[0].store, nodes[1].store)
        assert len(report.frames_rejected) == 1
        rejection = report.frames_rejected[0]
        assert rejection.key == "aa-damaged"
        assert rejection.family == "version-stamp"
        assert rejection.stage == "request"
        assert "flags" in rejection.reason
        # The sibling key in the same stream group still replicated.
        assert nodes[0].store.get("bb-clean") == ["also-remote"]
        assert nodes[0].store.get("aa-damaged") == []
        assert nodes[1].store.get("aa-damaged") == ["remote"]
        assert engine.frames_rejected == 1
        # Healed by the next clean session.
        transport.armed = False
        healed = engine.sync(nodes[0].store, nodes[1].store)
        assert healed.frames_rejected == []
        assert nodes[0].store.get("aa-damaged") == ["remote"]

    def test_rejections_surface_in_round_reports(self):
        transport = _RequestFrameCorruptor(FullyConnectedNetwork(), seed=32)
        engine = WireSyncEngine(
            transport=transport,
            retry=RetryPolicy(attempts=2),
            verify_checksums=False,
        )
        nodes = _population("version-stamp", 2, transport)
        nodes[1].write("k", "v")
        gossip = AntiEntropy(nodes, rng=random.Random(1), engine=engine)
        report = gossip.run_round()
        assert report.frames_rejected >= 1


class TestResponseLegRollback:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_lost_response_rolls_both_sides_back(self, family):
        """A sync whose response leg dies leaves no half-finished fork.

        Both sides must come back byte-identical to their pre-sync state:
        a one-sided join/fork would strand half of freshly split
        identifier space, which later manufactures false orderings.
        """
        transport = _ResponseLegKiller(FullyConnectedNetwork(), seed=41)
        engine = WireSyncEngine(transport=transport, retry=RetryPolicy(attempts=2))
        nodes = _population(family, 2, transport)
        nodes[0].write("mine", "a")
        nodes[1].write("theirs", "b")
        before = [_store_fingerprint(node) for node in nodes]
        bytes_before = [
            {key: node.store.tracker_of(key).to_bytes() for key in node.store.keys()}
            for node in nodes
        ]
        engine.sync(nodes[0].store, nodes[1].store)
        assert [_store_fingerprint(node) for node in nodes] == before
        for node, snapshot in zip(nodes, bytes_before):
            for key, payload in snapshot.items():
                assert node.store.tracker_of(key).to_bytes() == payload
        # Once the transport heals, the same pair reconciles cleanly.
        transport.armed = False
        transport.legs_seen = 0
        engine.sync(nodes[0].store, nodes[1].store)
        assert sorted(nodes[0].store.keys()) == ["mine", "theirs"]
        assert sorted(nodes[1].store.keys()) == ["mine", "theirs"]


class TestCrashRestart:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_crashed_node_rejoins_empty_and_rereplicates(self, family):
        transport = FaultyTransport(FullyConnectedNetwork(), seed=51)
        engine = WireSyncEngine(transport=transport)
        nodes = _population(family, 3, transport)
        nodes[0].write("k", "v")
        gossip = AntiEntropy(nodes, rng=random.Random(9), engine=engine)
        gossip.run(4)
        assert gossip.converged()
        victim = nodes[2]
        gossip.crash(victim)
        assert not victim.alive
        assert not transport.can_communicate("n0", "n2")
        nodes[0].write("k", "v2")
        gossip.run(3)
        # The dead node kept stale state but took no part in gossip.
        assert victim.store.get("k") == ["v"]
        gossip.restart(victim)
        assert victim.alive
        assert victim.store.keys() == []  # rejoined empty
        gossip.run(5)
        assert gossip.converged()
        assert victim.store.get("k") == ["v2"]


class TestEpochGossipUpgrade:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_straggler_is_upgraded_not_rejected(self, family):
        """The epoch-gossip rule: reroots piggyback on sync rounds.

        A quiescent holder partitions away; the reachable holders compact
        the key (sync-to-EQUAL, verify, bump).  When the partition heals,
        the straggler's stale-epoch metadata meets the new epoch in an
        ordinary sync round and is upgraded in place -- zero
        ``EpochMismatch`` raised anywhere.
        """
        network = PartitionedNetwork()
        transport = FaultyTransport(network, seed=61)
        engine = WireSyncEngine(transport=transport, retry=RetryPolicy(attempts=5))
        nodes = _population(family, 3, transport)
        hub, peer, straggler = nodes
        hub.write("k", "v0")
        gossip = AntiEntropy(nodes, rng=random.Random(3), engine=engine)
        gossip.run(6)
        assert gossip.converged()
        # The straggler leaves, quiescent on the key; the others keep
        # writing, then compact it among themselves.
        network.set_partitions([["n0", "n1"], ["n2"]])
        for step in range(5):
            hub.write("k", f"v{step + 1}")
            gossip.run_round()
        assert gossip.compact_key("k", participants=[hub, peer])
        assert hub.store.tracker_of("k").epoch == 1
        assert peer.store.tracker_of("k").epoch == 1
        assert straggler.store.tracker_of("k").epoch == 0
        network.heal()
        reports = gossip.run(8)
        assert gossip.converged()
        assert straggler.store.tracker_of("k").epoch == 1
        assert straggler.store.get("k") == ["v5"]
        assert engine.epoch_upgrades > 0
        assert sum(report.epoch_upgrades for report in reports) > 0

    def test_compaction_requires_verified_common_knowledge(self):
        """A compaction that cannot verify EQUAL aborts without bumping."""
        network = PartitionedNetwork()
        transport = FaultyTransport(network, seed=62)
        engine = WireSyncEngine(transport=transport)
        nodes = _population("version-stamp", 3, transport)
        nodes[0].write("k", "v")
        gossip = AntiEntropy(nodes, rng=random.Random(2), engine=engine)
        gossip.run(4)
        # An unreachable holder blocks the default (all-holders) protocol.
        network.set_partitions([["n0", "n1"], ["n2"]])
        assert not gossip.compact_key("k")
        assert nodes[0].store.tracker_of("k").epoch == 0
        network.heal()
        assert gossip.compact_key("k")
        for node in nodes:
            assert node.store.tracker_of("k").epoch == 1

    @pytest.mark.parametrize("family", FAMILIES)
    def test_compaction_shrinks_metadata_and_preserves_behaviour(self, family):
        transport = FaultyTransport(FullyConnectedNetwork(), seed=63)
        engine = WireSyncEngine(transport=transport)
        nodes = _population(family, 4, transport)
        gossip = AntiEntropy(nodes, rng=random.Random(8), engine=engine)
        # Grow metadata with a write/sync churn, then compact.  The churn
        # is kept short: uncompacted version stamps grow fast under
        # fork/join cycles, which is the very thing compaction exists for.
        for step in range(6):
            nodes[step % 4].write("k", f"v{step}")
            gossip.run_round()
        gossip.run(4)
        assert gossip.converged()
        bits_before = sum(
            node.store.tracker_of("k").size_in_bits() for node in nodes
        )
        assert gossip.compact_key("k")
        bits_after = sum(
            node.store.tracker_of("k").size_in_bits() for node in nodes
        )
        if family != "itc":
            # ITC stays naturally compact; the other families shed the
            # accumulated common past.
            assert bits_after <= bits_before
        # Post-compaction writes still dominate and propagate normally.
        nodes[1].write("k", "after-compaction")
        gossip.run(4)
        assert gossip.converged()
        for node in nodes:
            assert node.store.get("k") == ["after-compaction"]
