"""Unit tests for the simulated network models."""

import random

import pytest

from repro.core.errors import ReplicationError
from repro.replication.network import (
    FullyConnectedNetwork,
    LatencyPercentiles,
    NetworkMeter,
    NodePosition,
    PartitionSchedule,
    PartitionedNetwork,
    ProximityNetwork,
    ScheduledNetwork,
)


class TestFullyConnected:
    def test_everyone_talks_to_everyone(self):
        network = FullyConnectedNetwork()
        assert network.can_communicate("a", "b")
        assert network.partitions(["a", "b", "c"]) == [{"a", "b", "c"}]


class TestPartitionedNetwork:
    def test_same_partition_communicates(self):
        network = PartitionedNetwork([["a", "b"], ["c"]])
        assert network.can_communicate("a", "b")
        assert not network.can_communicate("a", "c")

    def test_unlisted_nodes_share_default_partition(self):
        network = PartitionedNetwork([["a", "b"]])
        assert network.can_communicate("x", "y")
        assert not network.can_communicate("a", "x")

    def test_self_communication_always_allowed(self):
        network = PartitionedNetwork([["a"], ["b"]])
        assert network.can_communicate("a", "a")

    def test_overlapping_partitions_rejected(self):
        with pytest.raises(ReplicationError):
            PartitionedNetwork([["a", "b"], ["b", "c"]])

    def test_heal_restores_connectivity(self):
        network = PartitionedNetwork([["a"], ["b"]])
        network.heal()
        assert network.can_communicate("a", "b")

    def test_set_partitions_replaces(self):
        network = PartitionedNetwork([["a"], ["b"]])
        network.set_partitions([["a", "b"]])
        assert network.can_communicate("a", "b")

    def test_partitions_grouping(self):
        network = PartitionedNetwork([["a", "b"], ["c", "d"]])
        groups = network.partitions(["a", "b", "c", "d"])
        assert {frozenset(group) for group in groups} == {
            frozenset({"a", "b"}),
            frozenset({"c", "d"}),
        }

    def test_partition_of(self):
        network = PartitionedNetwork([["a", "b"]])
        assert network.partition_of("a") == frozenset({"a", "b"})
        assert network.partition_of("z") is None

    def test_reachable_from(self):
        network = PartitionedNetwork([["a", "b"], ["c"]])
        assert network.reachable_from("a", ["b", "c"]) == {"b"}


class TestScheduledNetwork:
    def test_schedule_progression(self):
        schedule = PartitionSchedule(
            phases=[
                (2, [["a"], ["b"]]),
                (2, [["a", "b"]]),
            ]
        )
        network = ScheduledNetwork(schedule)
        assert not network.can_communicate("a", "b")
        network.advance(2)
        assert network.can_communicate("a", "b")

    def test_schedule_stays_in_last_phase(self):
        schedule = PartitionSchedule(phases=[(1, [["a"], ["b"]])])
        network = ScheduledNetwork(schedule)
        network.advance(10)
        assert not network.can_communicate("a", "b")
        assert network.time == 10

    def test_partitions_at(self):
        schedule = PartitionSchedule(phases=[(3, [["a"]]), (1, [["a", "b"]])])
        assert schedule.partitions_at(0) == [["a"]]
        assert schedule.partitions_at(3) == [["a", "b"]]
        assert schedule.partitions_at(99) == [["a", "b"]]


class TestProximityNetwork:
    def test_nodes_in_range_communicate(self):
        network = ProximityNetwork(arena=100, radio_range=10)
        network.add_node("a", NodePosition(0, 0))
        network.add_node("b", NodePosition(5, 0))
        network.add_node("c", NodePosition(50, 50))
        assert network.can_communicate("a", "b")
        assert not network.can_communicate("a", "c")

    def test_unknown_node_cannot_communicate(self):
        network = ProximityNetwork()
        network.add_node("a", NodePosition(0, 0))
        assert not network.can_communicate("a", "ghost")

    def test_position_of_unknown_node_raises(self):
        with pytest.raises(ReplicationError):
            ProximityNetwork().position_of("ghost")

    def test_mobility_changes_connectivity(self):
        network = ProximityNetwork(arena=100, radio_range=10)
        network.add_node("a", NodePosition(0, 0, dx=0, dy=0))
        network.add_node("b", NodePosition(30, 0, dx=-1, dy=0))
        assert not network.can_communicate("a", "b")
        network.advance(25)
        assert network.can_communicate("a", "b")

    def test_bounce_keeps_nodes_in_arena(self):
        position = NodePosition(1, 1, dx=-5, dy=-5)
        position.step(bounds=10)
        assert 0 <= position.x <= 10
        assert 0 <= position.y <= 10

    def test_random_positions_seeded(self):
        network = ProximityNetwork(rng=random.Random(7))
        network.add_node("a")
        assert 0 <= network.position_of("a").x <= 100

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ReplicationError):
            ProximityNetwork(arena=-1)
        with pytest.raises(ReplicationError):
            ProximityNetwork(radio_range=0)


class TestLatencyPercentiles:
    """Nearest-rank tail percentiles and the typed empty result."""

    def test_empty_meter_returns_typed_empty_result(self):
        result = NetworkMeter().latency_percentiles()
        assert isinstance(result, LatencyPercentiles)
        assert result.empty
        assert result.samples == 0
        assert result == {0.5: 0.0, 0.9: 0.0, 0.99: 0.0}

    def test_single_sample_answers_every_quantile(self):
        meter = NetworkMeter()
        meter.record_transfer_latency(0.25)
        result = meter.latency_percentiles((0.01, 0.5, 0.99, 1.0))
        assert not result.empty
        assert result.samples == 1
        assert all(value == 0.25 for value in result.values())

    def test_p99_of_two_samples_is_the_larger(self):
        meter = NetworkMeter()
        meter.record_transfer_latency(0.1)
        meter.record_transfer_latency(0.9)
        result = meter.latency_percentiles((0.5, 0.99))
        assert result.samples == 2
        assert result[0.5] == 0.1  # ceil(0.5 * 2) - 1 == 0
        assert result[0.99] == 0.9  # ceil(0.99 * 2) - 1 == 1

    def test_nearest_rank_on_a_known_population(self):
        meter = NetworkMeter()
        for value in (5.0, 1.0, 3.0, 2.0, 4.0):
            meter.record_transfer_latency(value)
        result = meter.latency_percentiles((0.5, 0.9, 0.99))
        assert result[0.5] == 3.0
        assert result[0.9] == 5.0
        assert result[0.99] == 5.0
        assert result.samples == 5

    def test_subscripting_stays_dict_compatible(self):
        meter = NetworkMeter()
        meter.record_transfer_latency(1.5)
        result = meter.latency_percentiles()
        assert result[0.5] == 1.5
        assert sorted(result) == [0.5, 0.9, 0.99]
