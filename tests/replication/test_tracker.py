"""Unit tests for the pluggable causality trackers."""

import pytest

from repro.core.order import Ordering
from repro.replication.tracker import (
    DynamicVVTracker,
    ITCTracker,
    StampTracker,
)
from repro.vv.id_source import CentralIdSource, IdAllocationError


TRACKER_FACTORIES = [
    pytest.param(lambda: StampTracker(), id="stamps"),
    pytest.param(lambda: ITCTracker(), id="itc"),
    pytest.param(lambda: DynamicVVTracker(), id="dynamic-vv"),
]


@pytest.mark.parametrize("factory", TRACKER_FACTORIES)
class TestTrackerContract:
    """Every tracker must honour the same causal semantics."""

    def test_fresh_forks_are_equal(self, factory):
        left, right = factory().forked()
        assert left.compare(right) is Ordering.EQUAL

    def test_update_dominates_fork_sibling(self, factory):
        left, right = factory().forked()
        updated = left.updated()
        assert updated.compare(right) is Ordering.AFTER
        assert right.compare(updated) is Ordering.BEFORE

    def test_concurrent_updates_conflict(self, factory):
        left, right = factory().forked()
        assert left.updated().compare(right.updated()) is Ordering.CONCURRENT

    def test_join_dominates_other_live_replicas(self, factory):
        # Causality mechanisms order *coexisting* replicas, so the joined
        # result is compared against a replica that is still live (the join's
        # inputs are retired by the operation), as in the paper's model.
        left, right = factory().forked()
        left, bystander = left.forked()
        left, right = left.updated(), right.updated()
        joined = left.joined(right)
        assert joined.compare(bystander) is Ordering.AFTER
        assert bystander.compare(joined) is Ordering.BEFORE

    def test_size_is_positive(self, factory):
        assert factory().size_in_bits() >= 0

    def test_cross_kind_operations_rejected(self, factory):
        tracker = factory()
        other = StampTracker() if isinstance(tracker, ITCTracker) else ITCTracker()
        with pytest.raises(TypeError):
            tracker.joined(other)
        with pytest.raises(TypeError):
            tracker.compare(other)


class TestStampTracker:
    def test_does_not_require_identifier_authority(self):
        assert not StampTracker().requires_identifier_authority

    def test_fork_under_partition_succeeds(self):
        left, right = StampTracker().forked(connected=False)
        assert left.compare(right) is Ordering.EQUAL

    def test_repr(self):
        assert "[ε | ε]" in repr(StampTracker())


class TestDynamicVVTracker:
    def test_requires_identifier_authority_with_central_source(self):
        tracker = DynamicVVTracker(id_source=CentralIdSource())
        assert tracker.requires_identifier_authority

    def test_fork_under_partition_fails(self):
        tracker = DynamicVVTracker(id_source=CentralIdSource())
        with pytest.raises(IdAllocationError):
            tracker.forked(connected=False)

    def test_repr(self):
        assert "DynamicVVTracker" in repr(DynamicVVTracker())


class TestITCTracker:
    def test_repr(self):
        assert "ITCTracker" in repr(ITCTracker())

    def test_does_not_require_identifier_authority(self):
        assert not ITCTracker().requires_identifier_authority
