"""Unit tests for conflict resolution policies."""

import pytest

from repro.replication.conflict import ConflictPolicy, KeepBoth, MergeWith, PreferNewest


class TestKeepBoth:
    def test_keeps_every_distinct_value(self):
        assert KeepBoth().resolve(["left", "right"]) == ["left", "right"]

    def test_deduplicates_equal_values(self):
        assert KeepBoth().resolve(["same", "same", "other"]) == ["same", "other"]

    def test_single_value_unchanged(self):
        assert KeepBoth().resolve(["only"]) == ["only"]

    def test_does_not_collapse(self):
        assert not KeepBoth().collapses


class TestMergeWith:
    def test_merges_values(self):
        policy = MergeWith(lambda values: "+".join(values))
        assert policy.resolve(["left", "right"]) == ["left+right"]

    def test_single_value_passthrough(self):
        policy = MergeWith(lambda values: values[0])
        assert policy.resolve(["only"]) == ["only"]

    def test_collapses(self):
        assert MergeWith(lambda values: values[0]).collapses

    def test_merge_function_receives_all_values(self):
        seen = []
        policy = MergeWith(lambda values: seen.extend(values) or "merged")
        policy.resolve([1, 2, 3])
        assert seen == [1, 2, 3]


class TestPreferNewest:
    def test_picks_largest_value_by_default(self):
        assert PreferNewest().resolve([3, 7, 5]) == [7]

    def test_custom_key(self):
        policy = PreferNewest(key=lambda value: value["ts"])
        assert policy.resolve([{"ts": 9}, {"ts": 2}]) == [{"ts": 9}]

    def test_tie_keeps_first(self):
        assert PreferNewest(key=lambda value: 0).resolve(["a", "b"]) == ["a"]

    def test_single_value_passthrough(self):
        assert PreferNewest().resolve([4]) == [4]

    def test_collapses(self):
        assert PreferNewest().collapses


class TestPolicyContract:
    def test_base_policy_is_abstract(self):
        with pytest.raises(NotImplementedError):
            ConflictPolicy().resolve([1])

    @pytest.mark.parametrize(
        "policy",
        [KeepBoth(), MergeWith(lambda values: values[0]), PreferNewest()],
        ids=["keep-both", "merge-with", "prefer-newest"],
    )
    def test_never_returns_empty_for_nonempty_input(self, policy):
        assert policy.resolve(["value"])
        assert policy.resolve(["a", "b"])
