"""Replay determinism of the fault machinery.

Property: a ``(FaultPlan, seed)`` pair fully determines the fault
schedule.  Two runs of the same seeded scenario must produce the exact
same transport deliveries -- byte for byte, in the same order -- and the
same meter counters, on the synchronous engine path *and* on both async
service paths (lockstep and overlap).  Any hidden nondeterminism (an
unseeded RNG, hash-order iteration, wall-clock coupling) breaks this.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.replication import FaultPlan, FaultyTransport, WireSyncEngine
from repro.service import (
    AntiEntropyService,
    AsyncWireSyncEngine,
    build_cluster,
    gossip_schedule,
    replay_schedule_sync,
)

REPLICAS = 5
KEYS = 3
ROUNDS = 3


class RecordingTransport(FaultyTransport):
    """A fault transport that journals every delivery it produces."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.deliveries = []

    def transfer_batch(self, source, destination, blobs):
        delivered = super().transfer_batch(source, destination, blobs)
        self.deliveries.append(
            (source, destination, tuple((i, bytes(p)) for i, p in delivered))
        )
        return delivered


def fault_plans():
    return st.builds(
        FaultPlan,
        loss=st.floats(min_value=0.0, max_value=0.3),
        duplicate=st.floats(min_value=0.0, max_value=0.2),
        reorder=st.floats(min_value=0.0, max_value=0.5),
        corrupt=st.floats(min_value=0.0, max_value=0.1),
    )


def _digest(nodes):
    return [
        (node.node_id, key, sorted(repr(value) for value in node.store.get(key)))
        for node in nodes
        for key in sorted(node.store.keys())
    ]


def _run_sync(plan, seed):
    nodes, _ = build_cluster(REPLICAS, keys=KEYS, seed=seed)
    transport = RecordingTransport(nodes[0].network, plan=plan, seed=seed)
    engine = WireSyncEngine(transport=transport)
    schedule = gossip_schedule(REPLICAS, ROUNDS, seed=seed)
    replay_schedule_sync(nodes, schedule, engine, shards=2)
    return (
        transport.deliveries,
        engine.meter.snapshot() + engine.meter.fault_snapshot(),
        _digest(nodes),
    )


def _run_async(plan, seed, *, lockstep):
    nodes, _ = build_cluster(REPLICAS, keys=KEYS, seed=seed)
    transport = RecordingTransport(nodes[0].network, plan=plan, seed=seed)
    engine = AsyncWireSyncEngine(transport=transport)
    service = AntiEntropyService(
        nodes, engine=engine, shards=2, seed=seed, lockstep=lockstep
    )
    service.run(
        schedule=gossip_schedule(REPLICAS, ROUNDS, seed=seed), until_converged=False
    )
    return (
        transport.deliveries,
        engine.meter.snapshot() + engine.meter.fault_snapshot(),
        _digest(nodes),
    )


@settings(max_examples=15, deadline=None)
@given(plan=fault_plans(), seed=st.integers(min_value=0, max_value=2**16))
def test_sync_fault_schedule_replays_byte_identically(plan, seed):
    assert _run_sync(plan, seed) == _run_sync(plan, seed)


@settings(max_examples=10, deadline=None)
@given(plan=fault_plans(), seed=st.integers(min_value=0, max_value=2**16))
def test_async_lockstep_replays_byte_identically(plan, seed):
    assert _run_async(plan, seed, lockstep=True) == _run_async(
        plan, seed, lockstep=True
    )


@settings(max_examples=10, deadline=None)
@given(plan=fault_plans(), seed=st.integers(min_value=0, max_value=2**16))
def test_async_overlap_replays_byte_identically(plan, seed):
    assert _run_async(plan, seed, lockstep=False) == _run_async(
        plan, seed, lockstep=False
    )


@settings(max_examples=10, deadline=None)
@given(plan=fault_plans(), seed=st.integers(min_value=0, max_value=2**16))
def test_lockstep_async_equals_sync_reference(plan, seed):
    """The cross-path half: same plan, same seed, same everything."""
    assert _run_async(plan, seed, lockstep=True) == _run_sync(plan, seed)
