"""Replay determinism of the fault machinery.

Property: a ``(FaultPlan, seed)`` pair fully determines the fault
schedule.  Two runs of the same seeded scenario must produce the exact
same transport deliveries -- byte for byte, in the same order -- and the
same meter counters, on the synchronous engine path *and* on both async
service paths (lockstep and overlap).  Any hidden nondeterminism (an
unseeded RNG, hash-order iteration, wall-clock coupling) breaks this.
"""

import dataclasses
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.replication import (
    DegradationPlan,
    FaultPlan,
    FaultyTransport,
    WireSyncEngine,
)
from repro.service import (
    AntiEntropyService,
    AsyncWireSyncEngine,
    HealthConfig,
    build_cluster,
    gossip_schedule,
    replay_schedule_sync,
)
from repro.service.health import HEALTH_SEED_SALT

REPLICAS = 5
KEYS = 3
ROUNDS = 3


class RecordingTransport(FaultyTransport):
    """A fault transport that journals every delivery it produces."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.deliveries = []

    def transfer_batch(self, source, destination, blobs):
        delivered = super().transfer_batch(source, destination, blobs)
        self.deliveries.append(
            (source, destination, tuple((i, bytes(p)) for i, p in delivered))
        )
        return delivered


def fault_plans():
    return st.builds(
        FaultPlan,
        loss=st.floats(min_value=0.0, max_value=0.3),
        duplicate=st.floats(min_value=0.0, max_value=0.2),
        reorder=st.floats(min_value=0.0, max_value=0.5),
        corrupt=st.floats(min_value=0.0, max_value=0.1),
    )


def _digest(nodes):
    return [
        (node.node_id, key, sorted(repr(value) for value in node.store.get(key)))
        for node in nodes
        for key in sorted(node.store.keys())
    ]


def _run_sync(plan, seed):
    nodes, _ = build_cluster(REPLICAS, keys=KEYS, seed=seed)
    transport = RecordingTransport(nodes[0].network, plan=plan, seed=seed)
    engine = WireSyncEngine(transport=transport)
    schedule = gossip_schedule(REPLICAS, ROUNDS, seed=seed)
    replay_schedule_sync(nodes, schedule, engine, shards=2)
    return (
        transport.deliveries,
        engine.meter.snapshot() + engine.meter.fault_snapshot(),
        _digest(nodes),
    )


def _run_async(plan, seed, *, lockstep, health=None, internal_schedule=False):
    nodes, _ = build_cluster(REPLICAS, keys=KEYS, seed=seed)
    transport = RecordingTransport(nodes[0].network, plan=plan, seed=seed)
    engine = AsyncWireSyncEngine(transport=transport)
    service = AntiEntropyService(
        nodes,
        engine=engine,
        shards=2,
        seed=seed,
        lockstep=lockstep,
        health=health,
    )
    if internal_schedule:
        service.run(max_rounds=ROUNDS, until_converged=False)
    else:
        service.run(
            schedule=gossip_schedule(REPLICAS, ROUNDS, seed=seed),
            until_converged=False,
        )
    return (
        transport.deliveries,
        engine.meter.snapshot() + engine.meter.fault_snapshot(),
        _digest(nodes),
    )


@settings(max_examples=15, deadline=None)
@given(plan=fault_plans(), seed=st.integers(min_value=0, max_value=2**16))
def test_sync_fault_schedule_replays_byte_identically(plan, seed):
    assert _run_sync(plan, seed) == _run_sync(plan, seed)


@settings(max_examples=10, deadline=None)
@given(plan=fault_plans(), seed=st.integers(min_value=0, max_value=2**16))
def test_async_lockstep_replays_byte_identically(plan, seed):
    assert _run_async(plan, seed, lockstep=True) == _run_async(
        plan, seed, lockstep=True
    )


@settings(max_examples=10, deadline=None)
@given(plan=fault_plans(), seed=st.integers(min_value=0, max_value=2**16))
def test_async_overlap_replays_byte_identically(plan, seed):
    assert _run_async(plan, seed, lockstep=False) == _run_async(
        plan, seed, lockstep=False
    )


@settings(max_examples=10, deadline=None)
@given(plan=fault_plans(), seed=st.integers(min_value=0, max_value=2**16))
def test_lockstep_async_equals_sync_reference(plan, seed):
    """The cross-path half: same plan, same seed, same everything."""
    assert _run_async(plan, seed, lockstep=True) == _run_sync(plan, seed)


# -- RNG-stream isolation: health, grey, fault and link RNGs never mix ------

#: An observation-only health config: deadlines pinned absurdly high so
#: no session can ever time out -- the detector watches, never acts.
OBSERVER = HealthConfig(min_deadline=1e9, max_deadline=1e9)


@settings(max_examples=10, deadline=None)
@given(plan=fault_plans(), seed=st.integers(min_value=0, max_value=2**16))
def test_detector_on_vs_off_fault_schedules_identical(plan, seed):
    """Enabling the accrual detector must not shift the fault schedule.

    The monitor owns its own seeded RNG stream; with deadlines that never
    fire, a run with the detector on performs exactly the same transport
    calls, fault-RNG draws and merges as one with it off -- byte for byte.
    """
    for lockstep in (True, False):
        assert _run_async(plan, seed, lockstep=lockstep, health=OBSERVER) == _run_async(
            plan, seed, lockstep=lockstep
        )


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_healthy_cluster_weighted_draw_consumes_no_health_rng(seed):
    """On a healthy cluster the internal gossip schedule is untouched.

    Every peer sits on the weight-1.0 fast path, so the health-weighted
    draw accepts the schedule RNG's uniform pick without consuming any
    health RNG at all -- detector on vs. off is byte-identical even when
    the service draws its own schedule.
    """
    plan = FaultPlan.perfect()
    assert _run_async(
        plan, seed, lockstep=True, health=OBSERVER, internal_schedule=True
    ) == _run_async(plan, seed, lockstep=True, internal_schedule=True)


def test_health_rng_untouched_on_quiet_run():
    """The monitor's dedicated RNG is never drawn from while quiet."""
    nodes, _ = build_cluster(REPLICAS, keys=KEYS, seed=5)
    transport = RecordingTransport(nodes[0].network, plan=FaultPlan.perfect(), seed=5)
    service = AntiEntropyService(
        nodes, engine=AsyncWireSyncEngine(transport=transport), seed=5, health=True
    )
    service.run(max_rounds=ROUNDS, until_converged=False)
    assert service.health.rng.getstate() == random.Random(5 ^ HEALTH_SEED_SALT).getstate()
    assert service.health.redraws == 0


@settings(max_examples=10, deadline=None)
@given(plan=fault_plans(), seed=st.integers(min_value=0, max_value=2**16))
def test_timing_only_degradation_is_delivery_identical(plan, seed):
    """Grey modes with no stuck rate shape time, never state.

    Slowdown factors, flapping links and throttle windows only stretch
    virtual time; in lockstep order the transport sees the same calls and
    the fault RNG the same draws, so deliveries, fault counters and final
    state are byte-identical with the grey modes on or off.
    """
    grey = dataclasses.replace(
        plan,
        degradation=DegradationPlan(
            slow_fraction=0.5,
            slow_factor=(5.0, 20.0),
            stuck_rate=0.0,
            flap_fraction=0.5,
            flap_period=2.0,
            flap_duty=0.5,
            throttle_windows=((0.0, 1e6, 3.0),),
        ),
    )
    assert _run_async(grey, seed, lockstep=True) == _run_async(
        plan, seed, lockstep=True
    )


def test_resolving_degradation_leaves_the_fault_rng_alone():
    """The grey RNG is a stream of its own, split off the fault RNG."""
    plan = dataclasses.replace(FaultPlan.chaos(loss=0.2), degradation=DegradationPlan.grey())
    nodes, _ = build_cluster(3, keys=1, seed=9)
    transport = FaultyTransport(nodes[0].network, plan=plan, seed=9)
    before = transport._rng.getstate()
    state = transport.ensure_degradation([node.node_id for node in nodes])
    assert state is not None and state.degraded_nodes()
    assert transport._rng.getstate() == before
    # Stuck draws come from the grey stream too, never the fault stream.
    degraded = state.degraded_nodes()[0]
    for _ in range(32):
        state.stuck_hang(degraded, "elsewhere")
    assert transport._rng.getstate() == before
