"""Seeded chaos soaks under the crash-*recover* model.

The companion of :mod:`test_chaos_soak` (crash-stop / rejoin-empty):
here the churn nodes are **durable** -- each journals to its own
on-disk log (mixed file and SQLite backends) -- and the fault plan sets
``crash_restart="recover"``, so every scripted crash is followed by a
restart that rebuilds the replica from snapshot + log tail instead of
rejoining empty.

What that changes, and what must *not* change:

* A recovered node resumes the identifier space it owned before the
  crash (nothing was shared while it was down -- see the recovery
  soundness record in ``ROADMAP.md``), so recovery never violates the
  paper's I2 disjointness invariant, for ITC included.
* A node that crashed across an epoch bump recovers as an epoch
  straggler; the existing in-band epoch gossip must upgrade it, never
  refuse it -- the soak asserts upgrades actually happened and any
  ``EpochMismatch`` anywhere fails the arm outright.
* The oracle is unchanged: after healing, the final scripted write per
  key must win on **every** node in **every** family arm (100%
  predicted-oracle agreement).

Run the full soaks with ``pytest -m chaos``; the unmarked smoke variant
keeps the recovery machinery covered in the default tier.
"""

import random

import pytest

from repro.durability.store import StoreJournal, open_log
from repro.replication import (
    AntiEntropy,
    FaultPlan,
    FaultyTransport,
    KernelTracker,
    MobileNode,
    RetryPolicy,
    WireSyncEngine,
)
from repro.replication.network import PartitionedNetwork

FAMILIES = ["version-stamp", "itc", "vv-dynamic", "causal-history"]

CORE = ("n0", "n1")  # never crash, take every write
CHURN = ("n2", "n3", "n4")  # durable: crash, recover, straggle

#: Backend per durable churn node -- both backends ride every soak.
BACKEND = {"n2": "file", "n3": "sqlite", "n4": "file"}

KEYS = [f"key-{index}" for index in range(6)]

COMPACT_THRESHOLD_BITS = 384
SNAPSHOT_EVERY = 192  # bound journal growth across a 2,000-step trace
SETTLE_ROUNDS = 40


def _build(family, loss, seed, tmp_path):
    network = PartitionedNetwork()
    plan = FaultPlan.chaos(loss=loss, crash_restart="recover")
    transport = FaultyTransport(network, plan=plan, seed=seed)
    engine = WireSyncEngine(transport=transport, retry=RetryPolicy(attempts=6))
    first = MobileNode.first(
        CORE[0], transport, tracker_factory=KernelTracker.factory(family)
    )
    nodes = [first] + [first.spawn_peer(name) for name in CORE[1:] + CHURN]
    for node in nodes:
        if node.node_id in CHURN:
            log = open_log(
                tmp_path / f"{family}-{node.node_id}",
                backend=BACKEND[node.node_id],
            )
            node.store.journal = StoreJournal(log, snapshot_every=SNAPSHOT_EVERY)
            for key in node.store.keys():
                node.store._record(key)
            node.store._flush_journal()
    gossip = AntiEntropy(
        nodes,
        rng=random.Random(seed + 1),
        engine=engine,
        compact_threshold_bits=COMPACT_THRESHOLD_BITS,
    )
    return network, transport, engine, nodes, gossip


def _settle(gossip, network, transport):
    """Heal everything, recover the crashed, run fault-free to convergence."""
    network.heal()
    for node in gossip.nodes:
        if not node.alive:
            gossip.restart(node)  # plan says "recover"
    previous_plan = transport.plan
    transport.plan = FaultPlan.perfect()
    for _ in range(SETTLE_ROUNDS):
        gossip.run_round()
        if gossip.converged():
            break
    transport.plan = previous_plan
    assert gossip.converged(), "population failed to converge after healing"


def _run_soak(family, *, steps, loss, seed, tmp_path):
    """Drive one family arm through the scripted crash-recover schedule."""
    network, transport, engine, nodes, gossip = _build(
        family, loss, seed, tmp_path
    )
    by_name = {node.node_id: node for node in nodes}
    core = [by_name[name] for name in CORE]
    churn = [by_name[name] for name in CHURN]
    ops = random.Random(seed + 2)

    transport.plan = FaultPlan.perfect()
    for key in KEYS:
        core[0].write(key, f"seed-{key}")
    for _ in range(8):
        gossip.run_round()
    assert gossip.converged()
    transport.plan = FaultPlan.chaos(loss=loss, crash_restart="recover")

    recoveries = 0
    isolated = None
    crashed = []  # (node, restart_step) pairs
    for step in range(steps):
        # Scripted crash/recover churn.  Unlike the rejoin-empty soak the
        # tail need not be crash-free -- a recovered node brings its
        # state back itself -- but the final window stays quiet so the
        # very last recoveries still settle through the faulty transport.
        if step % 131 == 17 and step < steps - 150:
            victim = churn[(step // 131) % len(churn)]
            if victim.alive and victim is not isolated:
                gossip.crash(victim)
                crashed.append((victim, step + 53))
        for victim, due in list(crashed):
            if step >= due:
                gossip.restart(victim)  # mode comes from the plan
                assert victim.last_recovery is not None
                assert victim.last_recovery.clean
                recoveries += 1
                crashed.remove((victim, due))

        # Scripted partition windows (same schedule as the base soak).
        if isolated is None and step % 97 == 41:
            split = [CHURN[step % len(CHURN)], CHURN[(step + 1) % len(CHURN)]]
            network.set_partitions(
                [[name for name in CORE + CHURN if name not in split], split]
            )
        elif isolated is None and step % 97 == 57:
            network.heal()

        # Straggler episodes: with recover-restarts these compose with
        # crashes -- an isolated node that crashes and recovers behind an
        # epoch bump is exactly the disk-born straggler the ISSUE wants.
        if isolated is None and step % 151 == 31:
            candidate = churn[(step // 151) % len(churn)]
            if candidate.alive and candidate.store.keys():
                isolated = candidate
                network.set_partitions(
                    [[n for n in CORE + CHURN if n != isolated.node_id],
                     [isolated.node_id]]
                )
        elif isolated is not None and step % 151 == 47:
            held = isolated.store.keys()
            target = ops.choice(held)
            participants = [
                node for node in nodes if node.alive and node is not isolated
            ]
            gossip.compact_key(target, participants=participants)
            network.heal()
            isolated = None

        majority = [
            node
            for node in nodes
            if node.alive and (node is core[0] or core[0].can_reach(node))
        ]
        for key in KEYS:
            if any(
                key in node.store.keys()
                and node.store.tracker_of(key).size_in_bits()
                > COMPACT_THRESHOLD_BITS
                for node in majority
            ):
                gossip.compact_key(key, participants=majority)

        writer = core[step % len(core)]
        writer.write(ops.choice(KEYS), f"s{step}")
        gossip.run_round()

    # Deterministic disk-born straggler: crash a durable node, bump a
    # key's epoch while it is down, then recover it from disk.  It comes
    # back at the stale epoch and the settle phase must upgrade it
    # in-band -- the exact composition of crash-recover and re-rooting
    # the scripted schedule cannot guarantee on every seed.
    network.heal()
    victim = next(node for node in churn if node.alive)
    gossip.crash(victim)
    gossip.compact_key(
        KEYS[0], participants=[node for node in nodes if node.alive]
    )
    gossip.restart(victim)
    assert victim.last_recovery is not None and victim.last_recovery.clean
    recoveries += 1

    _settle(gossip, network, transport)
    for key in KEYS:
        core[0].write(key, f"final-{key}")
    _settle(gossip, network, transport)
    return transport, engine, nodes, gossip, recoveries


def _assert_oracle_agreement(nodes):
    for node in nodes:
        for key in KEYS:
            assert node.store.get(key) == [f"final-{key}"], (
                f"{node.node_id} disagrees with the causal oracle on {key}"
            )


def _assert_recovery_exercised(engine, gossip, nodes, recoveries):
    assert recoveries > 0, "no crash ever recovered from disk"
    meter = engine.meter
    assert meter.dropped > 0, "loss never fired"
    assert meter.retried > 0, "the retry policy never fired"
    assert gossip.compactions > 0, "auto re-rooting never fired"
    assert engine.epoch_upgrades > 0, "no straggler was ever upgraded"
    for node in nodes:
        if node.node_id in CHURN and node.crashes > 0:
            assert node.last_recovery is not None
            # Compaction kept the journals bounded across the soak.
            assert node.store.journal.records_since_snapshot <= 2 * SNAPSHOT_EVERY


@pytest.mark.parametrize("family", FAMILIES)
def test_recovery_smoke(family, tmp_path):
    """A short crash-recover arm runs in the default tier for every family."""
    transport, engine, nodes, gossip, recoveries = _run_soak(
        family, steps=300, loss=0.1, seed=5000, tmp_path=tmp_path
    )
    _assert_oracle_agreement(nodes)
    _assert_recovery_exercised(engine, gossip, nodes, recoveries)


@pytest.mark.chaos
@pytest.mark.parametrize("family", FAMILIES)
def test_recovery_soak_10pct_loss(family, tmp_path):
    """2,000 steps at 10% loss with crash-recover churn (acceptance)."""
    transport, engine, nodes, gossip, recoveries = _run_soak(
        family, steps=2000, loss=0.1, seed=6000, tmp_path=tmp_path
    )
    _assert_oracle_agreement(nodes)
    _assert_recovery_exercised(engine, gossip, nodes, recoveries)
    assert all(node.crashes > 0 for node in nodes if node.node_id in CHURN)


@pytest.mark.chaos
@pytest.mark.parametrize("family", FAMILIES)
def test_recovery_soak_30pct_loss(family, tmp_path):
    """The heavy arm: 30% loss, recovery racing the retry budget."""
    transport, engine, nodes, gossip, recoveries = _run_soak(
        family, steps=2000, loss=0.3, seed=7000, tmp_path=tmp_path
    )
    _assert_oracle_agreement(nodes)
    _assert_recovery_exercised(engine, gossip, nodes, recoveries)
    assert engine.deliveries_failed > 0, "30% loss should exhaust some budgets"
