"""The ``dominates`` / ``stale_or_concurrent`` tracker helpers.

These are the primitives the contracts layer builds on, so they are
pinned across every kernel family *and* the in-memory baselines: the
contracts checker must behave identically no matter which clock tracks a
key.
"""

import pytest

from repro.replication.tracker import (
    DynamicVVTracker,
    ITCTracker,
    KernelTracker,
    StampTracker,
)

KERNEL_FAMILIES = ["version-stamp", "itc", "vv-dynamic", "causal-history"]

TRACKER_FACTORIES = [
    pytest.param(KernelTracker.factory(family), id=f"kernel-{family}")
    for family in KERNEL_FAMILIES
] + [
    pytest.param(lambda: StampTracker(), id="baseline-stamps"),
    pytest.param(lambda: ITCTracker(), id="baseline-itc"),
    pytest.param(lambda: DynamicVVTracker(), id="baseline-dynamic-vv"),
]


@pytest.mark.parametrize("factory", TRACKER_FACTORIES)
class TestDominance:
    def test_equal_trackers_dominate_each_other(self, factory):
        left, right = factory().forked()
        assert left.dominates(right)
        assert right.dominates(left)
        assert left.stale_or_concurrent(right) is None
        assert right.stale_or_concurrent(left) is None

    def test_update_dominates_sibling_one_way(self, factory):
        left, right = factory().forked()
        updated = left.updated()
        assert updated.dominates(right)
        assert not right.dominates(updated)
        assert updated.stale_or_concurrent(right) is None

    def test_dominated_side_reports_stale(self, factory):
        left, right = factory().forked()
        updated = left.updated()
        assert right.stale_or_concurrent(updated) == "stale"

    def test_concurrent_updates_report_concurrent(self, factory):
        left, right = factory().forked()
        left, right = left.updated(), right.updated()
        assert not left.dominates(right)
        assert not right.dominates(left)
        assert left.stale_or_concurrent(right) == "concurrent"
        assert right.stale_or_concurrent(left) == "concurrent"

    def test_join_restores_dominance(self, factory):
        left, right = factory().forked()
        left, right = left.updated(), right.updated()
        # Keep a live witness of the pre-join right-hand state.
        right, witness = right.forked()
        joined = left.joined(right)
        assert joined.dominates(witness)
        assert witness.stale_or_concurrent(joined) == "stale"
