"""Seeded chaos soaks: anti-entropy under the full fault matrix.

Each soak drives a five-node population through thousands of steps of
message loss, duplication, reordering, bit corruption, scripted partition
windows, crash/restart churn and decentralized re-rooting
(``compact_threshold_bits`` auto-compaction plus scripted straggler
episodes), then heals everything and checks that the system converged to
the *predicted* configuration.

The oracle: the final write to every key is scripted to happen on a
stable core node after a full settle, so the causally-correct outcome is
known in advance and identical for every clock family.  Every family arm
running the same seeded schedule must end in exactly that configuration
-- the causal-history arm is the exact-causality oracle, and because all
four arms are asserted against the same prediction, cross-family
agreement is 100% by transitivity.  Any ``EpochMismatch`` (or any other
exception) anywhere in the 2,000 steps fails the soak outright.

The crash model is crash-stop with rejoin-empty (see
``MobileNode.restart``), so only core nodes -- which never crash -- take
writes: a write on a node that later crashes before spreading would be
lost non-deterministically, and a write on a freshly-restarted empty node
would re-create the key with a fresh full identity, which the ITC family
cannot merge with the live forked identities (identity spaces must stay
disjoint).  Churn nodes exist to crash, partition, re-replicate and
straggle -- the roles the fault matrix is aimed at.

Run the full soaks with ``pytest -m chaos``; an unmarked smoke variant
keeps the machinery covered in the default test tier.
"""

import random

import pytest

from repro.replication import (
    AntiEntropy,
    FaultPlan,
    FaultyTransport,
    KernelTracker,
    MobileNode,
    RetryPolicy,
    WireSyncEngine,
)
from repro.replication.network import PartitionedNetwork

FAMILIES = ["version-stamp", "itc", "vv-dynamic", "causal-history"]

CORE = ("n0", "n1")  # never crash, take every write
CHURN = ("n2", "n3", "n4")  # crash, partition, straggle

KEYS = [f"key-{index}" for index in range(6)]

COMPACT_THRESHOLD_BITS = 384
SETTLE_ROUNDS = 40


def _build(family, loss, seed):
    network = PartitionedNetwork()
    plan = FaultPlan.chaos(loss=loss)
    transport = FaultyTransport(network, plan=plan, seed=seed)
    engine = WireSyncEngine(transport=transport, retry=RetryPolicy(attempts=6))
    first = MobileNode.first(
        CORE[0], transport, tracker_factory=KernelTracker.factory(family)
    )
    nodes = [first] + [
        first.spawn_peer(name) for name in CORE[1:] + CHURN
    ]
    gossip = AntiEntropy(
        nodes,
        rng=random.Random(seed + 1),
        engine=engine,
        compact_threshold_bits=COMPACT_THRESHOLD_BITS,
    )
    return network, transport, engine, nodes, gossip


def _settle(gossip, network, transport):
    """Heal everything and run fault-free rounds until convergence."""
    network.heal()
    for node in gossip.nodes:
        if not node.alive:
            gossip.restart(node)
    previous_plan = transport.plan
    transport.plan = FaultPlan.perfect()
    for _ in range(SETTLE_ROUNDS):
        gossip.run_round()
        if gossip.converged():
            break
    transport.plan = previous_plan
    assert gossip.converged(), "population failed to converge after healing"


def _run_soak(family, *, steps, loss, seed):
    """Drive one family arm through the scripted chaos schedule."""
    network, transport, engine, nodes, gossip = _build(family, loss, seed)
    by_name = {node.node_id: node for node in nodes}
    core = [by_name[name] for name in CORE]
    churn = [by_name[name] for name in CHURN]
    ops = random.Random(seed + 2)

    # Clean pre-phase: one creator writes every key and replicates it
    # everywhere, so every later write is an update on a held key.
    transport.plan = FaultPlan.perfect()
    for key in KEYS:
        core[0].write(key, f"seed-{key}")
    for _ in range(8):
        gossip.run_round()
    assert gossip.converged()
    transport.plan = FaultPlan.chaos(loss=loss)

    isolated = None  # the current straggler, if an episode is running
    crashed = []  # (node, restart_step) pairs
    for step in range(steps):
        # Scripted crash/restart churn (chaos window only: the tail of
        # the trace stays crash-free so re-replication can complete).
        if step % 131 == 17 and step < steps - 300:
            victim = churn[(step // 131) % len(churn)]
            if victim.alive and victim is not isolated:
                gossip.crash(victim)
                crashed.append((victim, step + 53))
        for victim, due in list(crashed):
            if step >= due:
                gossip.restart(victim)
                crashed.remove((victim, due))

        # Scripted partition windows: two churn nodes split away.  A
        # running straggler episode owns the partition state, so windows
        # pause while one is active.
        if isolated is None and step % 97 == 41:
            split = [CHURN[step % len(CHURN)], CHURN[(step + 1) % len(CHURN)]]
            network.set_partitions(
                [[name for name in CORE + CHURN if name not in split], split]
            )
        elif isolated is None and step % 97 == 57:
            # Windows stay short on purpose: auto re-rooting pauses for
            # keys held by an unreachable holder, and uncompacted version
            # stamps grow exponentially under sync churn (the paper's
            # core motivation) -- a window much past ~20 rounds overflows
            # the 16-bit wire length field before compaction can resume.
            network.heal()

        # Scripted straggler episodes: isolate one churn node, let the
        # rest advance and compact, then heal -- the straggler comes back
        # at a stale epoch and must be upgraded by gossip, never refused.
        if isolated is None and step % 151 == 31:
            candidate = churn[(step // 151) % len(churn)]
            if candidate.alive and candidate.store.keys():
                isolated = candidate
                network.set_partitions(
                    [[n for n in CORE + CHURN if n != isolated.node_id],
                     [isolated.node_id]]
                )
        elif isolated is not None and step % 151 == 47:
            # Compact a key the straggler actually holds, so healing has
            # a stale epoch to upgrade.
            held = isolated.store.keys()
            target = ops.choice(held)
            participants = [
                node for node in nodes if node.alive and node is not isolated
            ]
            gossip.compact_key(target, participants=participants)
            network.heal()
            isolated = None

        # Maintenance re-rooting among the reachable majority: the
        # automatic sweep stands down while any live holder is
        # unreachable, but churn nodes are quiescent by construction, so
        # excluding the split-away ones is sound (the ``participants``
        # assertion) -- and without it, version stamps grow exponentially
        # through a blocked window and overflow the wire format.  Each
        # such compaction also leaves the split holders one epoch behind,
        # feeding the straggler-upgrade path on heal.
        majority = [
            node
            for node in nodes
            if node.alive and (node is core[0] or core[0].can_reach(node))
        ]
        for key in KEYS:
            if any(
                key in node.store.keys()
                and node.store.tracker_of(key).size_in_bits()
                > COMPACT_THRESHOLD_BITS
                for node in majority
            ):
                gossip.compact_key(key, participants=majority)

        # One write per step, always on a core node.
        writer = core[step % len(core)]
        writer.write(ops.choice(KEYS), f"s{step}")
        gossip.run_round()

    # Heal, restart, settle -- then the oracle phase: one final write per
    # key on the creator, which after convergence strictly dominates
    # every surviving sibling in every arm.
    _settle(gossip, network, transport)
    for key in KEYS:
        core[0].write(key, f"final-{key}")
    _settle(gossip, network, transport)
    return transport, engine, nodes, gossip


def _assert_oracle_agreement(nodes):
    for node in nodes:
        for key in KEYS:
            assert node.store.get(key) == [f"final-{key}"], (
                f"{node.node_id} disagrees with the causal oracle on {key}"
            )


def _assert_fault_matrix_exercised(engine, gossip, *, expect_upgrades):
    meter = engine.meter
    assert meter.dropped > 0, "loss never fired"
    assert meter.duplicated > 0, "duplication never fired"
    assert meter.corrupted > 0, "corruption never fired"
    assert meter.retried > 0, "the retry policy never fired"
    assert meter.retry_latency > 0.0
    assert 0.0 < meter.goodput() < 1.0
    assert gossip.compactions > 0, "auto re-rooting never fired"
    if expect_upgrades:
        assert engine.epoch_upgrades > 0, "no straggler was ever upgraded"


@pytest.mark.parametrize("family", FAMILIES)
def test_chaos_smoke(family):
    """A short arm of the soak runs in the default tier for every family."""
    transport, engine, nodes, gossip = _run_soak(
        family, steps=300, loss=0.1, seed=1000
    )
    _assert_oracle_agreement(nodes)
    _assert_fault_matrix_exercised(engine, gossip, expect_upgrades=True)


@pytest.mark.chaos
@pytest.mark.parametrize("family", FAMILIES)
def test_chaos_soak_10pct_loss(family):
    """2,000 steps at 10% loss plus the full fault matrix (acceptance)."""
    transport, engine, nodes, gossip = _run_soak(
        family, steps=2000, loss=0.1, seed=2000
    )
    _assert_oracle_agreement(nodes)
    _assert_fault_matrix_exercised(engine, gossip, expect_upgrades=True)
    # The churn actually happened: every churn node crashed at least once.
    assert all(node.crashes > 0 for node in nodes if node.node_id in CHURN)


@pytest.mark.chaos
@pytest.mark.parametrize("family", FAMILIES)
def test_chaos_soak_30pct_loss(family):
    """The heavy arm: 30% loss stresses the retry budget and rollback."""
    transport, engine, nodes, gossip = _run_soak(
        family, steps=2000, loss=0.3, seed=3000
    )
    _assert_oracle_agreement(nodes)
    _assert_fault_matrix_exercised(engine, gossip, expect_upgrades=True)
    assert engine.deliveries_failed > 0, "30% loss should exhaust some budgets"
