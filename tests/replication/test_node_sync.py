"""Unit tests for mobile nodes and anti-entropy synchronization."""

import random

import pytest

from repro.core.errors import ReplicationError
from repro.replication.network import FullyConnectedNetwork, PartitionedNetwork
from repro.replication.node import MobileNode
from repro.replication.synchronizer import AntiEntropy


def _population(network, count=4):
    """Build ``count`` nodes forked from a single seed node."""
    first = MobileNode.first("n0", network)
    nodes = [first]
    for index in range(1, count):
        nodes.append(nodes[-1].spawn_peer(f"n{index}"))
    return nodes


class TestMobileNode:
    def test_first_node_and_spawn(self):
        network = FullyConnectedNetwork()
        first = MobileNode.first("n0", network)
        peer = first.spawn_peer("n1")
        assert peer.node_id == "n1"
        assert peer.store.keys() == first.store.keys()

    def test_write_and_read(self):
        node = MobileNode.first("n0", FullyConnectedNetwork())
        node.write("k", "v")
        assert node.read("k") == ["v"]

    def test_sync_requires_connectivity(self):
        network = PartitionedNetwork([["n0"], ["n1"]])
        first = MobileNode.first("n0", network)
        second = first.spawn_peer("n1")
        with pytest.raises(ReplicationError):
            first.sync_with(second)
        assert first.sync_failures == 1

    def test_try_sync_returns_none_when_partitioned(self):
        network = PartitionedNetwork([["n0"], ["n1"]])
        first = MobileNode.first("n0", network)
        second = first.spawn_peer("n1")
        assert first.try_sync_with(second) is None

    def test_sync_propagates_writes(self):
        network = FullyConnectedNetwork()
        first = MobileNode.first("n0", network)
        second = first.spawn_peer("n1")
        first.write("k", "v")
        first.sync_with(second)
        assert second.read("k") == ["v"]

    def test_can_reach(self):
        network = PartitionedNetwork([["n0", "n1"], ["n2"]])
        nodes = _population(network, 3)
        assert nodes[0].can_reach(nodes[1])
        assert not nodes[0].can_reach(nodes[2])

    def test_repr(self):
        assert "n0" in repr(MobileNode.first("n0", FullyConnectedNetwork()))


class TestAntiEntropy:
    def test_convergence_on_connected_network(self):
        network = FullyConnectedNetwork()
        nodes = _population(network, 5)
        for index, node in enumerate(nodes):
            node.write(f"key-{index}", index)
        gossip = AntiEntropy(nodes, rng=random.Random(1))
        rounds = gossip.rounds_to_convergence(max_rounds=20)
        assert rounds is not None
        assert gossip.converged()
        for node in nodes:
            assert len(node.store.keys()) == len(nodes)

    def test_no_convergence_across_standing_partition(self):
        network = PartitionedNetwork([["n0", "n1"], ["n2", "n3"]])
        nodes = _population(network, 4)
        nodes[0].write("left", 1)
        nodes[2].write("right", 2)
        gossip = AntiEntropy(nodes, rng=random.Random(1))
        assert gossip.rounds_to_convergence(max_rounds=5) is None
        # But each side converges internally.
        assert nodes[1].read("left") == [1]
        assert nodes[3].read("right") == [2]
        assert nodes[0].read("right") == []

    def test_convergence_after_partition_heals(self):
        network = PartitionedNetwork([["n0", "n1"], ["n2", "n3"]])
        nodes = _population(network, 4)
        nodes[0].write("left", 1)
        nodes[2].write("right", 2)
        gossip = AntiEntropy(nodes, rng=random.Random(1))
        gossip.run(5)
        network.heal()
        assert gossip.rounds_to_convergence(max_rounds=20) is not None
        assert nodes[0].read("right") == [2]

    def test_conflicts_detected_and_preserved(self):
        network = PartitionedNetwork([["n0"], ["n1"]])
        first = MobileNode.first("n0", network)
        second = first.spawn_peer("n1")
        first.write("k", "from-n0")
        second.write("k", "from-n1")
        network.heal()
        gossip = AntiEntropy([first, second], rng=random.Random(1))
        gossip.run(3)
        assert gossip.total_conflicts() >= 1
        assert sorted(first.read("k")) == ["from-n0", "from-n1"]

    def test_round_reports_track_partition_skips(self):
        network = PartitionedNetwork([["n0"], ["n1"]])
        nodes = _population(network, 2)
        gossip = AntiEntropy(nodes, rng=random.Random(1))
        report = gossip.run_round()
        assert report.skipped_partitioned == 2
        assert report.exchanges == 0

    def test_add_node_joins_gossip(self):
        network = FullyConnectedNetwork()
        nodes = _population(network, 2)
        gossip = AntiEntropy(nodes, rng=random.Random(1))
        newcomer = nodes[0].spawn_peer("n9")
        gossip.add_node(newcomer)
        nodes[0].write("k", 1)
        gossip.run(5, advance_network=False)
        assert newcomer.read("k") == [1]

    def test_total_metadata_bits_positive(self):
        nodes = _population(FullyConnectedNetwork(), 3)
        gossip = AntiEntropy(nodes)
        nodes[0].write("k", 1)
        assert gossip.total_metadata_bits() > 0

    def test_single_node_population_is_trivially_converged(self):
        nodes = _population(FullyConnectedNetwork(), 1)
        gossip = AntiEntropy(nodes)
        gossip.run_round()
        assert gossip.converged()
