"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random
from typing import List, Tuple

import pytest
from hypothesis import settings
from hypothesis import strategies as st

# A stable profile for this suite: property tests exercise real data-structure
# operations whose duration varies with the drawn example, so per-example
# deadlines only produce flaky failures; 60 examples keeps the whole suite
# fast while still exploring the space well.
settings.register_profile("repro", deadline=None, max_examples=60)
settings.load_profile("repro")

from repro.core.bitstring import BitString
from repro.core.frontier import Frontier
from repro.core.names import Name, maximal_strings
from repro.core.stamp import VersionStamp
from repro.sim.trace import Operation, Trace


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------


@st.composite
def bitstrings(draw, max_length: int = 8) -> BitString:
    """Arbitrary binary strings up to ``max_length`` bits."""
    bits = draw(st.lists(st.integers(min_value=0, max_value=1), max_size=max_length))
    return BitString(bits)


@st.composite
def names(draw, max_strings: int = 5, max_length: int = 6) -> Name:
    """Arbitrary well-formed names (antichains), built by maximal-element
    normalization of a random string set."""
    strings = draw(
        st.lists(bitstrings(max_length=max_length), min_size=0, max_size=max_strings)
    )
    return Name.from_down_set(maximal_strings(strings))


@st.composite
def trace_operations(draw, max_operations: int = 25, max_frontier: int = 6):
    """Random well-formed traces for lockstep property tests."""
    count = draw(st.integers(min_value=0, max_value=max_operations))
    rng_seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = random.Random(rng_seed)
    label_counter = [0]

    def fresh() -> str:
        label_counter[0] += 1
        return f"t{label_counter[0]}"

    seed_label = fresh()
    alive: List[str] = [seed_label]
    operations: List[Operation] = []
    for _ in range(count):
        kinds = ["update"]
        if len(alive) < max_frontier:
            kinds.append("fork")
        if len(alive) >= 2:
            kinds.extend(["join", "sync"])
        kind = rng.choice(kinds)
        if kind == "update":
            source = rng.choice(alive)
            result = fresh()
            operations.append(Operation.update(source, result))
            alive.remove(source)
            alive.append(result)
        elif kind == "fork":
            source = rng.choice(alive)
            left, right = fresh(), fresh()
            operations.append(Operation.fork(source, left, right))
            alive.remove(source)
            alive.extend((left, right))
        elif kind == "join":
            source, other = rng.sample(alive, 2)
            result = fresh()
            operations.append(Operation.join(source, other, result))
            alive.remove(source)
            alive.remove(other)
            alive.append(result)
        else:
            source, other = rng.sample(alive, 2)
            left, right = fresh(), fresh()
            operations.append(Operation.sync(source, other, left, right))
            alive.remove(source)
            alive.remove(other)
            alive.extend((left, right))
    return Trace(seed=seed_label, operations=tuple(operations), name="hypothesis")


# ---------------------------------------------------------------------------
# Plain fixtures
# ---------------------------------------------------------------------------


@pytest.fixture
def seed_stamp() -> VersionStamp:
    """The initial stamp ``[ε | ε]``."""
    return VersionStamp.seed()


@pytest.fixture
def figure2_frontier() -> Frontier:
    """A frontier replaying the Figure 2 evolution up to (not including) the joins."""
    frontier = Frontier.initial("a1", reducing=False)
    frontier.update("a1", "a2")
    frontier.fork("a2", "b1", "c1")
    frontier.update("c1", "c2")
    frontier.fork("b1", "d1", "e1")
    frontier.update("c2", "c3")
    return frontier
