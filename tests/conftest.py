"""Shared fixtures for the test suite.

The hypothesis strategies formerly defined here live in
:mod:`repro.testing` so test modules can import them normally
(``from repro.testing import bitstrings``) instead of relying on relative
imports into a conftest, which breaks pytest collection when ``tests`` is
not a package.  They are re-exported here for convenience.
"""

from __future__ import annotations

import pytest
from hypothesis import settings

# A stable profile for this suite: property tests exercise real data-structure
# operations whose duration varies with the drawn example, so per-example
# deadlines only produce flaky failures; 60 examples keeps the whole suite
# fast while still exploring the space well.
settings.register_profile("repro", deadline=None, max_examples=60)
settings.load_profile("repro")

from repro.core.frontier import Frontier
from repro.core.stamp import VersionStamp
from repro.testing import bitstrings, names, trace_operations  # noqa: F401

# ---------------------------------------------------------------------------
# Plain fixtures
# ---------------------------------------------------------------------------


@pytest.fixture
def seed_stamp() -> VersionStamp:
    """The initial stamp ``[ε | ε]``."""
    return VersionStamp.seed()


@pytest.fixture
def figure2_frontier() -> Frontier:
    """A frontier replaying the Figure 2 evolution up to (not including) the joins."""
    frontier = Frontier.initial("a1", reducing=False)
    frontier.update("a1", "a2")
    frontier.fork("a2", "b1", "c1")
    frontier.update("c1", "c2")
    frontier.fork("b1", "d1", "e1")
    frontier.update("c2", "c3")
    return frontier
