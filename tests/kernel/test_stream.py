"""Property tests for the batched envelope stream (:mod:`repro.kernel.stream`).

The contract under test:

* ``decode_stream(encode_stream(batch))`` restores every clock of every
  registered family, with the single shared epoch preserved, for any batch
  size including empty;
* the batch rules are enforced with typed errors: one family and one epoch
  per batch, empty batches only with both named explicitly;
* any truncation or corruption of a stream is rejected with a *typed*
  :class:`~repro.core.errors.EncodingError` subclass, never a raw
  ``struct``/``IndexError``/``KeyError``;
* frames decode lazily and, through an :class:`InternTable`, repeated
  payloads are pointer-equal within a batch and across batches sharing the
  table;
* :func:`stream_info` reads family/epoch/count from the 12-byte header
  alone (a partial buffer is enough) and accepts ``memoryview`` input
  without copying.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernel
from repro.core.errors import (
    EncodingError,
    EnvelopeError,
    EnvelopeMagicError,
    EnvelopeTruncatedError,
    EnvelopeVersionError,
    ReproError,
    UnknownClockFamily,
)
from repro.kernel.stream import (
    STREAM_FORMAT_VERSION,
    STREAM_HEADER_SIZE,
    STREAM_MAGIC,
    InternTable,
    decode_stream,
    encode_stream,
    stream_info,
)
from repro.testing import kernel_clocks

FAMILIES = kernel.families()


def _batch(draw, family, size, epoch):
    clocks = [
        draw(kernel_clocks(family, max_operations=8, max_epoch=0))
        for _ in range(size)
    ]
    return [clock.with_epoch(epoch) for clock in clocks]


@pytest.mark.parametrize("family", FAMILIES)
class TestRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_any_batch_round_trips_with_shared_epoch(self, family, data):
        size = data.draw(st.integers(min_value=0, max_value=6))
        epoch = data.draw(st.integers(min_value=0, max_value=7))
        batch = _batch(data.draw, family, size, epoch)
        blob = encode_stream(batch, family_name=family, epoch=epoch)
        info = stream_info(blob)
        assert info.family == family
        assert info.epoch == epoch
        assert info.frame_count == size
        assert info.format_version == STREAM_FORMAT_VERSION
        stream = decode_stream(blob)
        assert len(stream) == size
        assert list(stream) == batch
        assert all(clock.epoch == epoch for clock in stream)

    def test_memoryview_decodes_zero_copy(self, family):
        batch = [kernel.make(family).event(), kernel.make(family)]
        blob = encode_stream(batch)
        view = memoryview(blob)
        stream = decode_stream(view)
        assert list(stream) == batch
        # The frames really are subviews of the caller's buffer.
        assert all(
            isinstance(stream.frame_bytes(i), memoryview) for i in range(len(stream))
        )
        assert stream_info(view) == stream_info(blob)

    def test_header_is_enough_for_stream_info(self, family):
        blob = encode_stream([kernel.make(family).event()])
        # The streaming peek: only the header needs to have arrived.
        info = stream_info(blob[:STREAM_HEADER_SIZE])
        assert info.family == family
        assert info.frame_count == 1

    def test_single_frame_equals_envelope_payload(self, family):
        clock = kernel.make(family).event()
        blob = encode_stream([clock])
        stream = decode_stream(blob)
        assert bytes(stream.frame_bytes(0)) == clock.payload_bytes()


class TestBatchRules:
    def test_mixed_families_rejected(self):
        with pytest.raises(EnvelopeError):
            encode_stream([kernel.make("itc"), kernel.make("version-stamp")])

    def test_mixed_epochs_rejected(self):
        clock = kernel.make("itc")
        with pytest.raises(EnvelopeError):
            encode_stream([clock, clock.with_epoch(3)])

    def test_explicit_family_must_match_members(self):
        with pytest.raises(EnvelopeError):
            encode_stream([kernel.make("itc")], family_name="version-stamp")

    def test_explicit_epoch_must_match_members(self):
        with pytest.raises(EnvelopeError):
            encode_stream([kernel.make("itc")], epoch=2)

    def test_empty_batch_needs_family_and_epoch(self):
        with pytest.raises(EnvelopeError):
            encode_stream([])
        blob = encode_stream([], family_name="itc", epoch=9)
        info = stream_info(blob)
        assert (info.family, info.epoch, info.frame_count) == ("itc", 9, 0)
        assert list(decode_stream(blob)) == []

    def test_unknown_family_name_rejected(self):
        with pytest.raises(UnknownClockFamily):
            encode_stream([], family_name="no-such-clock", epoch=0)


class TestRejection:
    def test_bad_magic_is_typed(self):
        blob = bytearray(encode_stream([kernel.make("itc")]))
        blob[:2] = b"XX"
        with pytest.raises(EnvelopeMagicError):
            stream_info(bytes(blob))

    def test_future_version_is_typed(self):
        blob = bytearray(encode_stream([kernel.make("itc")]))
        blob[2] = STREAM_FORMAT_VERSION + 1
        with pytest.raises(EnvelopeVersionError):
            stream_info(bytes(blob))

    def test_unknown_tag_is_typed(self):
        blob = bytearray(encode_stream([kernel.make("itc")]))
        blob[3] = 0xEE
        with pytest.raises(UnknownClockFamily):
            stream_info(bytes(blob))

    def test_non_bytes_rejected(self):
        with pytest.raises(EnvelopeError):
            stream_info("CS not bytes")

    def test_trailing_bytes_rejected(self):
        blob = encode_stream([kernel.make("version-stamp")])
        with pytest.raises(EnvelopeError):
            decode_stream(blob + b"\x00")

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_truncation_always_typed(self, data):
        family = data.draw(st.sampled_from(FAMILIES))
        batch = _batch(data.draw, family, data.draw(st.integers(1, 4)), 0)
        blob = encode_stream(batch)
        cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        try:
            stream = decode_stream(blob[:cut])
            for clock in stream:  # lazy: force every frame
                pass
        except ReproError as exc:
            assert isinstance(exc, EncodingError)
        else:
            raise AssertionError("truncated stream decoded successfully")

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_corruption_never_leaks_raw_errors(self, data):
        family = data.draw(st.sampled_from(FAMILIES))
        batch = _batch(data.draw, family, data.draw(st.integers(1, 3)), 0)
        blob = bytearray(encode_stream(batch))
        flips = data.draw(st.integers(min_value=1, max_value=4))
        for _ in range(flips):
            index = data.draw(st.integers(0, len(blob) - 1))
            blob[index] ^= 1 << data.draw(st.integers(0, 7))
        try:
            stream = decode_stream(bytes(blob))
            decoded = list(stream)
        except ReproError:
            pass  # typed rejection is the contract
        else:
            # A surviving mutation must still decode to clocks of the
            # declared family with the declared epoch.
            info = stream_info(bytes(blob))
            assert all(clock.family == info.family for clock in decoded)
            assert all(clock.epoch == info.epoch for clock in decoded)

    def test_frame_decode_is_lazy_and_error_is_typed(self):
        good = kernel.make("version-stamp").event()
        blob = bytearray(encode_stream([good, good]))
        # Corrupt only the *second* frame's payload (the final byte).
        blob[-1] ^= 0xFF
        stream = decode_stream(bytes(blob))
        assert stream[0] == good  # first frame decodes fine
        with pytest.raises(EncodingError):
            stream[1]


class TestInterning:
    def test_repeats_are_pointer_equal_within_a_batch(self):
        clock = kernel.make("version-stamp").event()
        stream = decode_stream(
            encode_stream([clock, clock, clock]), intern=InternTable()
        )
        assert stream[0] is stream[1] is stream[2]

    def test_repeats_are_pointer_equal_across_batches(self):
        clock = kernel.make("itc").event()
        table = InternTable()
        first = decode_stream(encode_stream([clock]), intern=table)
        second = decode_stream(encode_stream([clock]), intern=table)
        assert first[0] is second[0]
        assert table.hits == 1

    def test_epoch_partitions_the_table(self):
        # Same payload, different epoch: must NOT be pointer-equal (the
        # epoch lives in the header, outside the frame payload).
        clock = kernel.make("itc").event()
        table = InternTable()
        first = decode_stream(encode_stream([clock]), intern=table)
        second = decode_stream(
            encode_stream([clock.with_epoch(5)]), intern=table
        )
        assert first[0] is not second[0]
        assert first[0].epoch == 0 and second[0].epoch == 5

    def test_table_is_bounded(self):
        table = InternTable(max_entries=2)
        clocks = [kernel.make("version-stamp")]
        for _ in range(4):
            clocks.append(clocks[-1].event())
        for clock in clocks:
            decode_stream(encode_stream([clock]), intern=table)
        assert len(table) <= 2

    def test_interning_is_optional(self):
        clock = kernel.make("version-stamp").event()
        stream = decode_stream(encode_stream([clock, clock]))
        assert stream[0] == stream[1]


class TestHeaderLayout:
    def test_frozen_layout(self):
        # The stream header layout is wire format; changing it breaks every
        # shipped batch.
        blob = encode_stream([], family_name="itc", epoch=0x01020304)
        assert blob[:2] == STREAM_MAGIC
        assert blob[2] == STREAM_FORMAT_VERSION
        assert blob[3] == kernel.family("itc").tag
        assert blob[4:8] == bytes((1, 2, 3, 4))
        assert blob[8:12] == b"\x00\x00\x00\x00"
        assert len(blob) == STREAM_HEADER_SIZE
