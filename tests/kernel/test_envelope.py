"""Property tests for the versioned, epoch-tagged wire envelope.

The contract under test:

* ``from_bytes(to_bytes(c)) == c`` for every registered clock family, with
  the epoch tag preserved bit-for-bit;
* every malformed input -- truncations, bad magic, unknown family tags,
  future format versions, trailing junk, corrupted payloads -- is rejected
  with a *typed* :class:`~repro.core.errors.EncodingError` subclass, never a
  raw ``struct``/``IndexError``/``KeyError``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernel
from repro.core.errors import (
    EncodingError,
    EnvelopeError,
    EnvelopeMagicError,
    EnvelopeTruncatedError,
    EnvelopeVersionError,
    ReproError,
    UnknownClockFamily,
)
from repro.kernel.envelope import FORMAT_VERSION, HEADER_SIZE, MAGIC
from repro.testing import kernel_clocks

FAMILIES = kernel.families()


class TestRegistry:
    def test_four_families_registered(self):
        assert {"version-stamp", "itc", "vv-dynamic", "causal-history"} <= set(
            FAMILIES
        )

    def test_make_unknown_family_is_typed(self):
        with pytest.raises(UnknownClockFamily):
            kernel.make("no-such-clock")

    def test_tags_are_stable(self):
        # Wire tags are serialization format; renumbering them would make
        # every shipped envelope decode as the wrong family.
        assert {kernel.family(name).tag for name in FAMILIES} == set(
            range(1, len(FAMILIES) + 1)
        )
        assert kernel.family("version-stamp").tag == 1
        assert kernel.family("itc").tag == 2
        assert kernel.family("vv-dynamic").tag == 3
        assert kernel.family("causal-history").tag == 4


@pytest.mark.parametrize("family", FAMILIES)
class TestRoundTrip:
    @settings(max_examples=40)
    @given(data=st.data())
    def test_round_trip_identity(self, family, data):
        clock = data.draw(kernel_clocks(family))
        payload = clock.to_bytes()
        restored = kernel.from_bytes(payload)
        assert restored == clock
        assert restored.family == family
        assert restored.epoch == clock.epoch
        assert restored.to_bytes() == payload

    @settings(max_examples=20)
    @given(data=st.data())
    def test_envelope_info_matches_without_decoding(self, family, data):
        clock = data.draw(kernel_clocks(family))
        info = kernel.envelope_info(clock.to_bytes())
        assert info.family == family
        assert info.epoch == clock.epoch
        assert info.format_version == FORMAT_VERSION
        assert info.payload_size == len(clock.to_bytes()) - HEADER_SIZE

    def test_seed_round_trip_and_size_yardstick(self, family):
        clock = kernel.make(family)
        assert kernel.from_bytes(clock.to_bytes()) == clock
        # encoded_size_bits measures the payload, not the envelope framing.
        assert clock.encoded_size_bits() <= (len(clock.to_bytes()) - HEADER_SIZE) * 8

    def test_epoch_survives_evolution_and_wire(self, family):
        clock = kernel.make(family).with_epoch(7)
        left, right = clock.fork()
        evolved = left.event().join(right)
        assert evolved.epoch == 7
        assert kernel.from_bytes(evolved.to_bytes()).epoch == 7


@pytest.mark.parametrize("family", FAMILIES)
class TestRejection:
    def _valid(self, family):
        clock = kernel.make(family).event() if family != "version-stamp" else (
            kernel.make(family).fork()[0].event()
        )
        return clock.to_bytes()

    def test_truncations_are_typed(self, family):
        payload = self._valid(family)
        for cut in range(len(payload)):
            with pytest.raises(EncodingError):
                kernel.from_bytes(payload[:cut])
        # Header-level truncation specifically reports as such.
        with pytest.raises(EnvelopeTruncatedError):
            kernel.from_bytes(payload[: HEADER_SIZE - 1])

    def test_bad_magic(self, family):
        payload = bytearray(self._valid(family))
        payload[0] ^= 0xFF
        with pytest.raises(EnvelopeMagicError):
            kernel.from_bytes(bytes(payload))

    def test_future_format_version(self, family):
        payload = bytearray(self._valid(family))
        payload[2] = FORMAT_VERSION + 1
        with pytest.raises(EnvelopeVersionError):
            kernel.from_bytes(bytes(payload))
        payload[2] = 0
        with pytest.raises(EnvelopeVersionError):
            kernel.from_bytes(bytes(payload))

    def test_unknown_family_tag(self, family):
        payload = bytearray(self._valid(family))
        payload[3] = 0xEE
        with pytest.raises(UnknownClockFamily):
            kernel.from_bytes(bytes(payload))

    def test_trailing_junk_rejected(self, family):
        with pytest.raises(EnvelopeError):
            kernel.from_bytes(self._valid(family) + b"\x00")

    @settings(max_examples=30)
    @given(data=st.data())
    def test_corrupted_payload_never_leaks_raw_errors(self, family, data):
        payload = bytearray(self._valid(family))
        flips = data.draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=HEADER_SIZE, max_value=len(payload) - 1),
                    st.integers(min_value=0, max_value=255),
                ),
                min_size=1,
                max_size=4,
            )
        )
        for index, value in flips:
            payload[index] = value
        try:
            kernel.from_bytes(bytes(payload))
        except ReproError:
            pass  # a typed rejection is the contract
        # Decoding to *some* valid clock is also acceptable: a flipped
        # counter byte can be a different, well-formed clock.


class TestCanonicalEncoding:
    @pytest.mark.parametrize("family", ["version-stamp", "itc"])
    def test_nonzero_padding_bits_rejected(self, family):
        # Bit-level payloads zero-pad their final byte; a flipped padding
        # bit must be rejected, not silently decode to an equal clock.
        clock = kernel.make(family).fork()[0].event()
        payload = bytearray(clock.to_bytes())
        assert kernel.from_bytes(bytes(payload)) == clock  # sanity
        payload[-1] |= 0x01
        with pytest.raises(EncodingError):
            kernel.from_bytes(bytes(payload))

    def test_causal_wire_format_only_ships_issued_identities(self):
        # The oracle is the global view: its envelopes are only meaningful
        # within one event arena.  Both encode and decode reject identities
        # the arena never issued (symmetrically, so the library can never
        # produce an envelope it refuses to read back), which also stops a
        # crafted envelope from ballooning every later bitset.
        from repro.causal.history import CausalHistory
        from repro.kernel.clocks import _GLOBAL_EVENTS, CausalHistoryClock

        issued = kernel.make("causal-history").event().event()
        assert kernel.from_bytes(issued.to_bytes()) == issued

        unissued_index = _GLOBAL_EVENTS.next_index + 1000
        foreign = CausalHistoryClock(CausalHistory.from_bits(1 << unissued_index))
        with pytest.raises(EncodingError):
            foreign.to_bytes()
        # The same identity smuggled in via a crafted envelope is rejected
        # too -- and the arena is not advanced by the attempt.
        payload = bytearray(issued.to_bytes())
        before = _GLOBAL_EVENTS.next_index
        payload[-8] = 0x01  # bend the last event identity to >= 2^56
        with pytest.raises(EncodingError):
            kernel.from_bytes(bytes(payload))
        assert _GLOBAL_EVENTS.next_index == before

    def test_vv_fork_counter_bounded_on_the_wire(self):
        # A crafted envelope with a huge fork counter must be rejected at
        # decode time -- fork() would otherwise loop over it bit by bit.
        from repro.kernel.clocks import VV_ID_BYTES, DynamicVVClock
        from repro.kernel.envelope import FORMAT_VERSION, MAGIC

        body = bytearray(kernel.make("vv-dynamic").event().payload_bytes())
        forks_offset = VV_ID_BYTES  # uvarint right after the id slot
        assert body[forks_offset] == 0  # seed clock: no forks yet
        # Splice in forks = 2**40 as a multi-byte uvarint.
        crafted_forks = bytearray()
        value = 1 << 40
        while value:
            crafted_forks.append((value & 0x7F) | (0x80 if value >> 7 else 0))
            value >>= 7
        body[forks_offset : forks_offset + 1] = crafted_forks
        tag = kernel.family("vv-dynamic").tag
        envelope = (
            MAGIC
            + bytes((FORMAT_VERSION, tag))
            + (0).to_bytes(4, "big")
            + len(body).to_bytes(4, "big")
            + bytes(body)
        )
        with pytest.raises(EncodingError):
            kernel.from_bytes(envelope)
        # And the boundary itself still errors cleanly (no hang) on fork().
        exhausted = DynamicVVClock(forks=VV_ID_BYTES * 8 - 1)
        with pytest.raises(EncodingError):
            exhausted.fork()

    @pytest.mark.parametrize("family", ["vv-dynamic", "causal-history"])
    @settings(max_examples=20)
    @given(data=st.data())
    def test_closed_form_size_matches_payload(self, family, data):
        clock = data.draw(kernel_clocks(family))
        assert clock.encoded_size_bits() == len(clock.payload_bytes()) * 8


    def test_non_canonical_entry_order_rejected(self):
        # Encoders emit event identities / vector entries in ascending
        # order; a reordered payload must not decode to an equal clock
        # (decode stays injective: encode(decode(x)) == x).
        from repro.kernel.clocks import EVENT_ID_BYTES
        from repro.kernel.envelope import HEADER_SIZE

        clock = kernel.make("causal-history").event().event().event()
        payload = bytearray(clock.to_bytes())
        ids_start = HEADER_SIZE + 1  # after the 1-byte count varint
        ids = payload[ids_start:]
        assert len(ids) == 3 * EVENT_ID_BYTES
        reordered = (
            ids[2 * EVENT_ID_BYTES :]
            + ids[EVENT_ID_BYTES : 2 * EVENT_ID_BYTES]
            + ids[:EVENT_ID_BYTES]
        )
        payload[ids_start:] = reordered
        with pytest.raises(EncodingError):
            kernel.from_bytes(bytes(payload))

    def test_non_minimal_varint_rejected(self):
        # 0x80 0x00 spells the same value as 0x00; accepting it would let
        # two distinct byte strings decode to equal clocks.
        from repro.kernel.clocks import VV_ID_BYTES
        from repro.kernel.envelope import FORMAT_VERSION, MAGIC

        body = bytearray(kernel.make("vv-dynamic").event().payload_bytes())
        forks_offset = VV_ID_BYTES
        assert body[forks_offset] == 0
        body[forks_offset : forks_offset + 1] = b"\x80\x00"
        envelope = (
            MAGIC
            + bytes((FORMAT_VERSION, kernel.family("vv-dynamic").tag))
            + (0).to_bytes(4, "big")
            + len(body).to_bytes(4, "big")
            + bytes(body)
        )
        with pytest.raises(EncodingError):
            kernel.from_bytes(envelope)

    def test_itc_depth_bomb_rejected_with_typed_error(self):
        # An all-ones bit stream describes an unboundedly deep id tree;
        # the decoder must reject it, not die with a raw RecursionError.
        from repro.kernel.envelope import FORMAT_VERSION, MAGIC

        bit_count = 50_000
        body = bit_count.to_bytes(4, "big") + b"\xff" * (bit_count // 8)
        envelope = (
            MAGIC
            + bytes((FORMAT_VERSION, kernel.family("itc").tag))
            + (0).to_bytes(4, "big")
            + len(body).to_bytes(4, "big")
            + body
        )
        with pytest.raises(EncodingError):
            kernel.from_bytes(envelope)


class TestFrontierEpoch:
    def test_reroot_bumps_epoch_and_clone_preserves_it(self):
        from repro.core.frontier import Frontier

        frontier = Frontier.initial("a")
        frontier.fork("a", "b", "c")
        frontier.update("b", "b1")
        assert frontier.epoch == 0
        frontier.reroot()
        assert frontier.epoch == 1
        assert frontier.reroots_performed == 1
        copied = frontier.copy()
        assert copied.epoch == 1
        frontier.reroot()
        assert frontier.epoch == 2
        assert copied.epoch == 1  # copies diverge independently


class TestNonBytesInput:
    def test_non_bytes_is_typed(self):
        with pytest.raises(EnvelopeError):
            kernel.from_bytes("not bytes")

    def test_empty_is_truncated(self):
        with pytest.raises(EnvelopeTruncatedError):
            kernel.from_bytes(b"")

    def test_magic_constant(self):
        assert MAGIC == b"CK"
        for family in FAMILIES:
            assert kernel.make(family).to_bytes()[:2] == MAGIC


@pytest.mark.parametrize("family", FAMILIES)
class TestZeroCopyBuffers:
    """Envelopes decode from any byte buffer without copying it."""

    def test_envelope_info_accepts_memoryview(self, family):
        clock = kernel.make(family).event().with_epoch(4)
        blob = clock.to_bytes()
        view = memoryview(blob)
        assert kernel.envelope_info(view) == kernel.envelope_info(blob)
        assert kernel.envelope_info(view).epoch == 4
        # A subview of a larger transfer works too (no bytes() round-trip).
        framed = b"prefix" + blob + b"suffix"
        inner = memoryview(framed)[6 : 6 + len(blob)]
        assert kernel.envelope_info(inner) == kernel.envelope_info(blob)

    def test_envelope_info_accepts_bytearray(self, family):
        blob = kernel.make(family).event().to_bytes()
        assert kernel.envelope_info(bytearray(blob)) == kernel.envelope_info(blob)

    def test_decode_envelope_accepts_memoryview(self, family):
        clock = kernel.make(family).event().with_epoch(2)
        blob = clock.to_bytes()
        assert kernel.from_bytes(memoryview(blob)) == clock
        assert kernel.from_bytes(bytearray(blob)) == clock

    def test_truncated_memoryview_is_typed(self, family):
        blob = kernel.make(family).event().to_bytes()
        with pytest.raises(EnvelopeTruncatedError):
            kernel.envelope_info(memoryview(blob)[: HEADER_SIZE - 1])
        with pytest.raises(EnvelopeTruncatedError):
            kernel.envelope_info(memoryview(blob)[:-1])
