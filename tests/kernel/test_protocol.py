"""Cross-family tests of the ``CausalityClock`` protocol and its consumers.

The point of the kernel redesign: every registered clock family runs the
same traces through the same protocol, and the lockstep harness cross-checks
each one against the causal-history oracle -- a cross-family comparison
matrix for free.
"""

import pytest
from hypothesis import given, settings

from repro import kernel
from repro.analysis.sizes import kernel_family_matrix, measure_trace_sizes
from repro.core.errors import EpochMismatch
from repro.kernel import CausalityClock, KernelClockAdapter, kernel_adapters
from repro.replication import KernelTracker, Replica
from repro.sim.runner import LockstepRunner
from repro.sim.workload import churn_trace, random_dynamic_trace
from repro.testing import trace_operations

FAMILIES = kernel.families()


@pytest.mark.parametrize("family", FAMILIES)
class TestProtocolConformance:
    def test_runtime_protocol_check(self, family):
        clock = kernel.make(family)
        assert isinstance(clock, CausalityClock)
        assert clock.family == family
        assert clock.epoch == 0

    def test_fork_event_join_compare(self, family):
        left, right = kernel.make(family).fork()
        left = left.event()
        assert left.compare(right) is kernel.PartialOrder.AFTER
        assert right.compare(left) is kernel.PartialOrder.BEFORE
        right = right.event()
        assert left.compare(right) is kernel.PartialOrder.CONCURRENT
        merged = left.join(right)
        assert merged.compare(merged) is kernel.PartialOrder.EQUAL

    def test_clocks_are_immutable_values(self, family):
        clock = kernel.make(family).event()
        with pytest.raises(AttributeError):
            clock.epoch = 3
        assert clock == clock.with_epoch(0)
        assert hash(clock) == hash(clock.with_epoch(0))
        assert clock != clock.with_epoch(1)

    def test_epoch_mismatch_is_typed(self, family):
        clock = kernel.make(family)
        newer = clock.with_epoch(1)
        with pytest.raises(EpochMismatch):
            clock.compare(newer)
        with pytest.raises(EpochMismatch):
            clock.join(newer)
        exc = pytest.raises(EpochMismatch, newer.compare, clock).value
        assert exc.mine == 1 and exc.theirs == 0

    def test_cross_family_operations_rejected(self, family):
        other_family = next(name for name in FAMILIES if name != family)
        with pytest.raises(TypeError):
            kernel.make(family).join(kernel.make(other_family))

    def test_encoded_size_grows_with_knowledge(self, family):
        clock = kernel.make(family)
        evolved = clock
        for _ in range(5):
            left, right = evolved.fork()
            evolved = left.event().join(right.event())
        assert evolved.encoded_size_bits() >= clock.encoded_size_bits()
        assert evolved.encoded_size_bits() > 0


class TestCrossFamilyMatrix:
    @pytest.mark.parametrize(
        "trace",
        [
            random_dynamic_trace(80, seed=5, max_frontier=8),
            churn_trace(100, seed=9),
        ],
        ids=["random", "churn"],
    )
    def test_every_family_agrees_with_the_oracle(self, trace):
        runner = LockstepRunner(kernel_adapters())
        reports, sizes = runner.run(trace)
        assert len(reports) == len(FAMILIES)
        for report in reports.values():
            assert report.agreement_rate == 1.0, str(report)
        for sample in sizes.values():
            assert sample.final_mean_bits > 0

    @settings(max_examples=15)
    @given(trace=trace_operations(max_operations=20, max_frontier=5))
    def test_property_every_family_agrees(self, trace):
        reports, _sizes = LockstepRunner(kernel_adapters()).run(trace)
        for report in reports.values():
            assert report.agreement_rate == 1.0, str(report)

    def test_kernel_family_matrix_table(self):
        table = kernel_family_matrix(random_dynamic_trace(50, seed=2))
        assert sorted(table.column("family")) == sorted(FAMILIES)
        assert all(value == 1.0 for value in table.column("agreement"))
        rendered = table.render(title="families")
        assert "vv-dynamic" in rendered

    def test_measure_trace_sizes_reports_legacy_names(self):
        sizes = measure_trace_sizes(random_dynamic_trace(40, seed=1))
        assert {
            "version-stamps",
            "version-stamps-nonreducing",
            "dynamic-version-vectors",
            "interval-tree-clocks",
            "causal-history",
        } <= set(sizes)


@pytest.mark.parametrize("family", FAMILIES)
class TestReplicationOverTheProtocol:
    def test_replica_scenario_runs_over_any_family(self, family):
        origin = Replica("origin", value="v1", tracker=KernelTracker(family=family))
        copy = origin.fork("copy")
        origin.write("v2")
        outcome = copy.sync_with(origin)
        assert not outcome.conflict
        assert copy.value == "v2"
        # Now force a genuine conflict.
        origin.write("left")
        copy.write("right")
        assert origin.conflicts_with(copy)
        outcome = origin.sync_with(copy, resolve=lambda a, b: a + b)
        assert outcome.conflict
        assert origin.value == "leftright"
        assert origin.metadata_size_in_bits() > 0

    def test_tracker_round_trips_through_the_envelope(self, family):
        tracker = KernelTracker(family=family).updated()
        restored = KernelTracker.from_bytes(tracker.to_bytes())
        assert restored.clock == tracker.clock
        assert restored.family == family


class TestCompactBumpsEpoch:
    def _group(self, count=3):
        root = Replica("r0", value=0, tracker=KernelTracker(family="version-stamp"))
        replicas = [root]
        for index in range(1, count):
            replicas.append(replicas[-1].fork(f"r{index}"))
        for index, replica in enumerate(replicas):
            replica.write(index)
        for first, second in zip(replicas, replicas[1:]):
            first.sync_with(second)
        return replicas

    def test_epoch_bumped_and_order_preserved(self):
        replicas = self._group()
        before = [
            [a.compare(b) for b in replicas] for a in replicas
        ]
        result = Replica.compact(replicas)
        assert result.bits_after <= result.bits_before
        for replica in replicas:
            assert replica.tracker.epoch == 1
        after = [[a.compare(b) for b in replicas] for a in replicas]
        assert after == before

    def test_stragglers_are_detected_after_compaction(self):
        replicas = self._group()
        straggler = replicas[0].fork("straggler")
        stale = straggler.tracker
        Replica.compact(replicas + [straggler])
        with pytest.raises(EpochMismatch):
            straggler.tracker.compare(stale)

    def test_mixed_epoch_group_is_rejected(self):
        replicas = self._group()
        Replica.compact(replicas)  # everyone moves to epoch 1
        outsider = Replica(
            "outsider", value=9, tracker=KernelTracker(family="version-stamp")
        )
        from repro.core.errors import ReplicationError

        with pytest.raises(ReplicationError):
            Replica.compact(replicas + [outsider])


class TestKernelClockAdapter:
    def test_unknown_label_is_a_simulation_error(self):
        from repro.core.errors import SimulationError

        adapter = KernelClockAdapter("itc")
        adapter.start("a")
        with pytest.raises(SimulationError):
            adapter.compare("a", "ghost")

    def test_factory_kwargs_flow_through(self):
        adapter = KernelClockAdapter(
            "version-stamp", name="nonreducing", reducing=False
        )
        adapter.start("a")
        assert adapter.clock_of("a").stamp.reducing is False

    def test_oracle_name_collision_avoided_and_guarded(self):
        from repro.core.errors import SimulationError

        assert KernelClockAdapter("causal-history").name == "causal-history-kernel"
        shadowing = KernelClockAdapter("causal-history", name="causal-history")
        runner = LockstepRunner([shadowing])
        with pytest.raises(SimulationError):
            runner.run(random_dynamic_trace(5, seed=0))
