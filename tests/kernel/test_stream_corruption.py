"""Single-bit corruption property: detect-or-reject, never silent damage.

The fault-tolerance contract of the ``"CS"`` stream format: flip *any*
single bit of an encoded stream and the result is either

* rejected with a typed :class:`~repro.core.errors.EncodingError` (at
  structural validation or at lazy frame access) -- the fault-handling
  path a retrying transport consumer relies on; or
* a stream that decodes cleanly and re-encodes **byte-identically** --
  the flip landed on a semantically valid alternative (a different
  epoch, a different-but-canonical payload), which a checksum-free
  receiver genuinely cannot distinguish from an honest message.

What the property forbids is the third outcome: a flip that decodes
without error into clocks whose canonical re-encoding *differs* from
what arrived -- silent corruption that would propagate damaged causal
metadata into stores and intern tables.
"""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import EncodingError
from repro.kernel.stream import decode_stream, encode_stream
from repro.testing import kernel_clocks

FAMILIES = ["version-stamp", "itc", "vv-dynamic", "causal-history"]


@pytest.mark.parametrize("family", FAMILIES)
@given(data=st.data())
def test_single_bit_flip_is_rejected_or_roundtrips_identically(family, data):
    epoch = data.draw(st.integers(min_value=0, max_value=5), label="epoch")
    clocks = [
        clock.with_epoch(epoch)
        for clock in data.draw(
            st.lists(kernel_clocks(family), min_size=0, max_size=4),
            label="clocks",
        )
    ]
    blob = encode_stream(clocks, family_name=family, epoch=epoch)
    position = data.draw(
        st.integers(min_value=0, max_value=len(blob) * 8 - 1), label="bit"
    )
    damaged = bytearray(blob)
    damaged[position // 8] ^= 1 << (position % 8)
    damaged = bytes(damaged)

    try:
        stream = decode_stream(damaged)
        decoded = list(stream)  # force every lazy frame decode
        reencoded = encode_stream(
            decoded, family_name=stream.family, epoch=stream.epoch
        )
    except EncodingError:
        return  # typed rejection: the retry/skip machinery handles this
    assert reencoded == damaged, (
        "a single-bit flip survived decoding but re-encodes differently: "
        "silent corruption"
    )
