"""Tests for :class:`repro.kernel.stream.IncrementalStreamDecoder`.

The contract: feeding a valid stream in *any* chunking produces exactly
the :func:`decode_stream` result, malformed prefixes are rejected with
the same typed errors at the earliest decidable byte, and a decoder that
has rejected input is spent.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernel
from repro.core.errors import (
    EnvelopeError,
    EnvelopeMagicError,
    EnvelopeTruncatedError,
    EnvelopeVersionError,
    UnknownClockFamily,
)
from repro.kernel.stream import (
    STREAM_HEADER_SIZE,
    IncrementalStreamDecoder,
    InternTable,
    decode_stream,
    encode_stream,
)

FAMILIES = kernel.families()


def _sample_blob(family, size=3, epoch=2):
    clock = kernel.make(family)
    batch = []
    for _ in range(size):
        clock = clock.event()
        batch.append(clock.with_epoch(epoch))
    return batch, encode_stream(batch, family_name=family, epoch=epoch)


def _feed_all(decoder, blob, chunk_size):
    for start in range(0, len(blob), chunk_size):
        decoder.feed(blob[start : start + chunk_size])


@pytest.mark.parametrize("family", FAMILIES)
class TestEquivalence:
    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 7, 64, 10_000])
    def test_any_fixed_chunking_matches_decode_stream(self, family, chunk_size):
        batch, blob = _sample_blob(family)
        decoder = IncrementalStreamDecoder()
        _feed_all(decoder, blob, chunk_size)
        assert decoder.is_complete
        stream = decoder.finish()
        assert list(stream) == list(decode_stream(blob))
        assert stream.info == decode_stream(blob).info

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_random_chunkings_match_decode_stream(self, family, data):
        size = data.draw(st.integers(min_value=0, max_value=4))
        batch, blob = _sample_blob(family, size=size)
        decoder = IncrementalStreamDecoder()
        position = 0
        while position < len(blob):
            step = data.draw(st.integers(min_value=1, max_value=len(blob) - position))
            decoder.feed(blob[position : position + step])
            position += step
        assert list(decoder.finish()) == batch

    def test_header_fields_available_mid_flight(self, family):
        _, blob = _sample_blob(family, size=2, epoch=5)
        decoder = IncrementalStreamDecoder()
        decoder.feed(blob[: STREAM_HEADER_SIZE - 1])
        assert decoder.info is None
        decoder.feed(blob[STREAM_HEADER_SIZE - 1 : STREAM_HEADER_SIZE])
        assert decoder.info is not None
        assert decoder.info.family == family
        assert decoder.info.epoch == 5
        assert decoder.info.frame_count == 2
        assert not decoder.is_complete

    def test_frames_ready_counts_progress(self, family):
        _, blob = _sample_blob(family, size=3)
        decoder = IncrementalStreamDecoder()
        seen = 0
        for start in range(0, len(blob), 4):
            ready = decoder.feed(blob[start : start + 4])
            assert ready >= seen
            seen = ready
        assert seen == 3

    def test_shared_intern_table(self, family):
        batch, blob = _sample_blob(family, size=1)
        table = InternTable()
        first = IncrementalStreamDecoder()
        first.feed(blob)
        second = IncrementalStreamDecoder()
        second.feed(blob)
        one = first.finish(intern=table)[0]
        two = second.finish(intern=table)[0]
        assert one is two


class TestEarlyRejection:
    def test_bad_magic_detected_at_two_bytes(self):
        decoder = IncrementalStreamDecoder()
        with pytest.raises(EnvelopeMagicError):
            decoder.feed(b"XX")

    def test_bad_version_detected_at_three_bytes(self):
        decoder = IncrementalStreamDecoder()
        with pytest.raises(EnvelopeVersionError):
            decoder.feed(b"CS\xff")

    def test_unknown_family_detected_at_four_bytes(self):
        decoder = IncrementalStreamDecoder()
        with pytest.raises(UnknownClockFamily):
            decoder.feed(b"CS\x01\xee")

    def test_trailing_bytes_rejected_on_arrival(self):
        _, blob = _sample_blob("itc", size=2)
        decoder = IncrementalStreamDecoder()
        decoder.feed(blob)
        with pytest.raises(EnvelopeError):
            decoder.feed(b"junk")

    def test_truncated_stream_rejected_at_finish(self):
        _, blob = _sample_blob("itc", size=2)
        decoder = IncrementalStreamDecoder()
        decoder.feed(blob[:-1])
        assert not decoder.is_complete
        with pytest.raises(EnvelopeTruncatedError):
            decoder.finish()

    def test_empty_input_rejected_at_finish(self):
        with pytest.raises(EnvelopeTruncatedError):
            IncrementalStreamDecoder().finish()

    def test_failed_decoder_is_spent(self):
        decoder = IncrementalStreamDecoder()
        with pytest.raises(EnvelopeMagicError):
            decoder.feed(b"XX")
        with pytest.raises(EnvelopeError):
            decoder.feed(b"CS")

    def test_non_bytes_chunk_rejected(self):
        decoder = IncrementalStreamDecoder()
        with pytest.raises(EnvelopeError):
            decoder.feed(12345)
