"""The encode-once contract of the kernel clock classes.

Kernel clocks are immutable values, so their serialized forms and hash can
be computed once and cached in slots:

* no kernel clock instance ever grows a ``__dict__`` (``__slots__`` all the
  way down -- an accidental attribute would silently cost a dict per clock
  on every frontier);
* ``to_bytes``/``payload_bytes``/``encoded_size_bits``/``hash`` return the
  same (cached) result on every call, and the caches never leak across
  derived clocks;
* the decode-side interns hand back pointer-equal stamps for repeated
  payloads, which the batched sync engine's verdict cache builds on.
"""

import pytest

from repro import kernel
from repro.kernel.clocks import (
    CausalHistoryClock,
    DynamicVVClock,
    ITCClock,
    KernelClock,
    VersionStampClock,
)

FAMILIES = kernel.families()
CLOCK_CLASSES = (
    KernelClock,
    VersionStampClock,
    ITCClock,
    DynamicVVClock,
    CausalHistoryClock,
)


@pytest.mark.parametrize("cls", CLOCK_CLASSES)
def test_no_kernel_clock_grows_a_dict(cls):
    # __slots__ everywhere: neither the class nor any base may fall back
    # to per-instance dictionaries.
    assert "__dict__" not in dir(cls) or not any(
        "__dict__" in vars(base) for base in cls.__mro__ if base is not object
    )
    for base in cls.__mro__:
        if base is object:
            continue
        assert "__slots__" in vars(base), f"{base.__name__} lacks __slots__"


@pytest.mark.parametrize("family", FAMILIES)
def test_instances_have_no_dict(family):
    clock = kernel.make(family).event()
    with pytest.raises(AttributeError):
        clock.__dict__
    with pytest.raises(AttributeError):
        clock.arbitrary_new_attribute = 1


@pytest.mark.parametrize("family", FAMILIES)
def test_wire_forms_are_cached_and_stable(family):
    # Fork first: the seed's event() can be a fixed point for some
    # families ([e | e].update() is itself), and a fork guarantees a
    # distinct derived clock below.
    clock, peer = kernel.make(family).fork()
    clock = clock.event().with_epoch(3)
    first = clock.to_bytes()
    assert clock.to_bytes() is first  # encode-once: the very same object
    payload = clock.payload_bytes()
    assert clock.payload_bytes() is payload
    assert clock.encoded_size_bits() == clock.encoded_size_bits()
    assert first.endswith(bytes(payload))
    # The cache belongs to the instance: a derived clock re-encodes.
    # (Fork-then-event guarantees a state change in every family: fork
    # alone preserves causal-history payloads, event alone can be a
    # fixed point for version stamps.)
    evolved = clock.fork()[1].event()
    assert evolved.to_bytes() != first

    restored = kernel.from_bytes(first)
    assert restored == clock
    assert restored.to_bytes() == first


@pytest.mark.parametrize("family", FAMILIES)
def test_hash_is_lazy_cached_and_consistent(family):
    clock = kernel.make(family).event()
    assert clock._hash is None  # not computed at construction time
    value = hash(clock)
    assert clock._hash == value
    assert hash(clock) == value
    twin = kernel.from_bytes(clock.to_bytes())
    assert twin == clock and hash(twin) == value


@pytest.mark.parametrize("family", ("version-stamp", "itc"))
def test_decode_intern_makes_repeated_payloads_pointer_equal(family):
    clock = kernel.make(family).event()
    blob = clock.to_bytes()
    first = kernel.from_bytes(blob)
    second = kernel.from_bytes(blob)
    # The stamp payloads intern; the clock wrappers are distinct objects
    # but share the interned stamp.
    assert first is not second
    assert first.stamp is second.stamp


def test_epoch_is_outside_the_payload_cache():
    clock = kernel.make("version-stamp").event()
    retagged = clock.with_epoch(7)
    assert retagged.payload_bytes() == clock.payload_bytes()
    assert retagged.to_bytes() != clock.to_bytes()
    assert kernel.from_bytes(retagged.to_bytes()).epoch == 7
