"""Unit tests for on-disk copy repositories (stamp sidecars)."""

import pytest

from repro.core.errors import ReplicationError
from repro.core.order import Ordering
from repro.panasync.repository import CopyRepository


@pytest.fixture
def repository(tmp_path):
    return CopyRepository(tmp_path / "repo")


class TestTracking:
    def test_create_and_load(self, repository):
        repository.create("notes.txt", "hello")
        copy = repository.load("notes.txt")
        assert copy.content == "hello"
        assert copy.copy_name == "notes.txt"

    def test_create_writes_file_and_sidecar(self, repository, tmp_path):
        repository.create("notes.txt", "hello")
        assert (repository.root / "notes.txt").read_text() == "hello"
        assert (repository.root / "notes.txt.stamp.json").exists()

    def test_tracked_copies(self, repository):
        repository.create("b.txt", "b")
        repository.create("a.txt", "a")
        assert repository.tracked_copies() == ["a.txt", "b.txt"]

    def test_duplicate_create_rejected(self, repository):
        repository.create("a.txt")
        with pytest.raises(ReplicationError):
            repository.create("a.txt")

    def test_load_untracked_rejected(self, repository):
        with pytest.raises(ReplicationError):
            repository.load("ghost.txt")

    def test_edit_persists(self, repository):
        repository.create("a.txt", "v1")
        repository.edit("a.txt", "v2")
        assert repository.load("a.txt").content == "v2"

    def test_stamp_survives_reload(self, repository):
        repository.create("a.txt", "v1")
        repository.edit("a.txt", "v2")
        first = repository.load("a.txt")
        second = repository.load("a.txt")
        assert first.stamp == second.stamp


class TestDuplicationAcrossRepositories:
    def test_duplicate_within_repository(self, repository):
        repository.create("a.txt", "data")
        repository.duplicate("a.txt", "a-copy.txt")
        assert repository.load("a-copy.txt").content == "data"

    def test_duplicate_to_other_repository(self, repository, tmp_path):
        laptop = CopyRepository(tmp_path / "laptop")
        repository.create("a.txt", "data")
        repository.duplicate("a.txt", "a.txt", target_repository=laptop)
        assert laptop.load("a.txt").content == "data"

    def test_duplicate_to_existing_name_rejected(self, repository):
        repository.create("a.txt")
        repository.create("b.txt")
        with pytest.raises(ReplicationError):
            repository.duplicate("a.txt", "b.txt")

    def test_source_stamp_updated_on_duplicate(self, repository):
        repository.create("a.txt", "data")
        before = repository.load("a.txt").stamp
        repository.duplicate("a.txt", "copy.txt")
        after = repository.load("a.txt").stamp
        assert before != after  # the fork re-wrote the source identity


class TestCompareAndMerge:
    def test_compare_detects_outdated_copy(self, repository, tmp_path):
        laptop = CopyRepository(tmp_path / "laptop")
        repository.create("a.txt", "v1")
        repository.duplicate("a.txt", "a.txt", target_repository=laptop)
        repository.edit("a.txt", "v2")
        relation = laptop.compare("a.txt", "a.txt", second_repository=repository)
        assert relation.ordering is Ordering.BEFORE

    def test_compare_detects_divergence(self, repository, tmp_path):
        laptop = CopyRepository(tmp_path / "laptop")
        repository.create("a.txt", "v1")
        repository.duplicate("a.txt", "a.txt", target_repository=laptop)
        repository.edit("a.txt", "desktop")
        laptop.edit("a.txt", "laptop")
        relation = repository.compare("a.txt", "a.txt", second_repository=laptop)
        assert relation.diverged

    def test_merge_synchronizes_content(self, repository, tmp_path):
        laptop = CopyRepository(tmp_path / "laptop")
        repository.create("a.txt", "v1")
        repository.duplicate("a.txt", "a.txt", target_repository=laptop)
        repository.edit("a.txt", "v2")
        laptop.merge("a.txt", "a.txt", second_repository=repository)
        assert laptop.load("a.txt").content == "v2"
        relation = laptop.compare("a.txt", "a.txt", second_repository=repository)
        assert relation.ordering is Ordering.EQUAL

    def test_merge_with_resolver(self, repository, tmp_path):
        laptop = CopyRepository(tmp_path / "laptop")
        repository.create("a.txt", "base")
        repository.duplicate("a.txt", "a.txt", target_repository=laptop)
        repository.edit("a.txt", "left")
        laptop.edit("a.txt", "right")
        repository.merge(
            "a.txt",
            "a.txt",
            second_repository=laptop,
            resolver=lambda a, b: a + "+" + b,
        )
        assert repository.load("a.txt").content == "left+right"
        assert laptop.load("a.txt").content == "left+right"
