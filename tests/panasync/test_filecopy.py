"""Unit tests for stamped file copies (PANASYNC)."""

import pytest

from repro.core.order import Ordering
from repro.panasync.filecopy import FileCopy


class TestLocalEditing:
    def test_initial_copy(self):
        copy = FileCopy("report.txt", "hello")
        assert copy.content == "hello"
        assert copy.edits == 0
        assert copy.logical_name == "report.txt"

    def test_edit_changes_content_and_counts(self):
        copy = FileCopy("report.txt", "hello")
        copy.edit("hello world")
        assert copy.content == "hello world"
        assert copy.edits == 1

    def test_append(self):
        copy = FileCopy("report.txt", "a")
        copy.append("b")
        assert copy.content == "ab"
        assert copy.edits == 1

    def test_digest_tracks_content(self):
        copy = FileCopy("report.txt", "a")
        before = copy.digest
        copy.edit("b")
        assert copy.digest != before

    def test_auto_copy_names_are_unique(self):
        assert FileCopy("f").copy_name != FileCopy("f").copy_name

    def test_repr(self):
        assert "report.txt" in repr(FileCopy("report.txt"))

    def test_metadata_size_positive(self):
        assert FileCopy("f").metadata_size_in_bits() > 0


class TestDuplicationAndComparison:
    def test_duplicate_copies_content(self):
        original = FileCopy("f", "data", copy_name="desktop")
        laptop = original.duplicate("laptop")
        assert laptop.content == "data"
        assert laptop.copy_name == "laptop"

    def test_fresh_duplicate_is_same_version(self):
        original = FileCopy("f", "data")
        clone = original.duplicate()
        relation = original.compare(clone)
        assert relation.ordering is Ordering.EQUAL
        assert "same version" in relation.description

    def test_edit_makes_other_copy_outdated(self):
        original = FileCopy("f", "data", copy_name="desktop")
        laptop = original.duplicate("laptop")
        original.edit("data v2")
        relation = laptop.compare(original)
        assert relation.ordering is Ordering.BEFORE
        assert "outdated" in relation.description
        assert not relation.diverged

    def test_divergent_edits_detected(self):
        original = FileCopy("f", "data", copy_name="desktop")
        laptop = original.duplicate("laptop")
        original.edit("desktop edit")
        laptop.edit("laptop edit")
        relation = original.compare(laptop)
        assert relation.ordering is Ordering.CONCURRENT
        assert relation.diverged


class TestMerge:
    def test_merge_pulls_newer_content(self):
        original = FileCopy("f", "v1", copy_name="desktop")
        laptop = original.duplicate("laptop")
        original.edit("v2")
        laptop.merge(original)
        assert laptop.content == "v2"
        assert original.content == "v2"
        assert laptop.compare(original).ordering is Ordering.EQUAL

    def test_merge_of_identical_copies_keeps_content(self):
        original = FileCopy("f", "v1")
        clone = original.duplicate()
        original.merge(clone)
        assert original.content == "v1"

    def test_diverged_merge_with_resolver(self):
        original = FileCopy("f", "base", copy_name="desktop")
        laptop = original.duplicate("laptop")
        original.edit("left")
        laptop.edit("right")
        relation = original.merge(laptop, resolver=lambda a, b: f"{a}|{b}")
        assert relation.diverged
        assert original.content == "left|right"
        assert laptop.content == "left|right"

    def test_diverged_merge_without_resolver_keeps_both_texts(self):
        original = FileCopy("f", "base", copy_name="desktop")
        laptop = original.duplicate("laptop")
        original.edit("left")
        laptop.edit("right")
        original.merge(laptop)
        assert "left" in original.content
        assert "right" in original.content
        assert "<<<<<<<" in original.content

    def test_merge_result_dominates_third_copy(self):
        original = FileCopy("f", "base", copy_name="desktop")
        laptop = original.duplicate("laptop")
        usb = original.duplicate("usb")
        original.edit("left")
        laptop.edit("right")
        original.merge(laptop, resolver=lambda a, b: a + b)
        assert usb.compare(original).ordering is Ordering.BEFORE

    def test_after_merge_future_edits_track_correctly(self):
        original = FileCopy("f", "base", copy_name="desktop")
        laptop = original.duplicate("laptop")
        original.edit("v2")
        laptop.merge(original)
        laptop.edit("v3")
        assert original.compare(laptop).ordering is Ordering.BEFORE
