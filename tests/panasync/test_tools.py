"""Unit tests for the PANASYNC command façade."""

import pytest

from repro.core.order import Ordering
from repro.panasync.tools import Panasync


@pytest.fixture
def panasync(tmp_path):
    tool = Panasync()
    tool.add_repository("desktop", tmp_path / "desktop")
    tool.add_repository("laptop", tmp_path / "laptop")
    return tool


class TestRepositories:
    def test_add_and_list(self, panasync):
        assert panasync.repositories() == ["desktop", "laptop"]

    def test_unknown_repository_rejected(self, panasync):
        with pytest.raises(KeyError):
            panasync.repository("usb")


class TestWorkflow:
    def test_full_panasync_workflow(self, panasync):
        # Create a file on the desktop, carry a copy to the laptop.
        panasync.create("desktop", "paper.tex", r"\documentclass{article}")
        panasync.copy("desktop", "paper.tex", "laptop")

        # Edit only the desktop copy: the laptop copy becomes outdated.
        panasync.edit("desktop", "paper.tex", "v2")
        relation = panasync.compare("laptop", "paper.tex", "desktop", "paper.tex")
        assert relation.ordering is Ordering.BEFORE

        # Merge: both copies hold the new content and are equivalent.
        panasync.merge("laptop", "paper.tex", "desktop", "paper.tex")
        relation = panasync.compare("laptop", "paper.tex", "desktop", "paper.tex")
        assert relation.ordering is Ordering.EQUAL

    def test_divergence_and_resolution(self, panasync):
        panasync.create("desktop", "notes.md", "base")
        panasync.copy("desktop", "notes.md", "laptop")
        panasync.edit("desktop", "notes.md", "desktop edit")
        panasync.edit("laptop", "notes.md", "laptop edit")

        relation = panasync.compare("desktop", "notes.md", "laptop", "notes.md")
        assert relation.diverged

        merged = panasync.merge(
            "desktop",
            "notes.md",
            "laptop",
            "notes.md",
            resolver=lambda a, b: a + "\n" + b,
        )
        assert merged.diverged
        content = panasync.repository("desktop").load("notes.md").content
        assert "desktop edit" in content and "laptop edit" in content

    def test_copy_with_rename(self, panasync):
        panasync.create("desktop", "a.txt", "data")
        panasync.copy("desktop", "a.txt", "laptop", "a-backup.txt")
        assert "a-backup.txt" in panasync.repository("laptop").tracked_copies()


class TestStatus:
    def test_status_lists_all_copies(self, panasync):
        panasync.create("desktop", "a.txt", "data")
        panasync.copy("desktop", "a.txt", "laptop")
        lines = panasync.status()
        assert len(lines) == 2
        assert {line.repository for line in lines} == {"desktop", "laptop"}

    def test_status_with_reference(self, panasync):
        panasync.create("desktop", "a.txt", "data")
        panasync.copy("desktop", "a.txt", "laptop")
        panasync.edit("desktop", "a.txt", "v2")
        lines = panasync.status(reference=("desktop", "a.txt"))
        by_repo = {line.repository: line for line in lines}
        assert by_repo["desktop"].relation_to_reference is None
        assert by_repo["laptop"].relation_to_reference is Ordering.BEFORE

    def test_status_line_render(self, panasync):
        panasync.create("desktop", "a.txt", "data")
        lines = panasync.status()
        assert "desktop:a.txt" in lines[0].render()
        assert "reference" in lines[0].render()
