"""Contract enforcement wired into the async anti-entropy service."""

from repro.contracts import ContractChecker, ContractSpec
from repro.replication import SyncHistory
from repro.service import AntiEntropyService, AsyncWireSyncEngine, build_cluster


def _checker(history=None):
    return ContractChecker(
        [
            ContractSpec(
                name="c",
                kind="observes",
                source="export",
                target="train",
                key="key0",
            )
        ],
        history=history,
    )


class TestServiceCheckerHook:
    def test_daemons_and_rounds_scan_the_checker(self):
        nodes, _keys = build_cluster(8, keys=2, seed=3)
        history = SyncHistory(maxlen=256)
        engine = AsyncWireSyncEngine(history=history)
        checker = _checker(history)
        checker.watch_writes(nodes[0].store, "export")
        checker.bind("train", nodes[-1].store)
        service = AntiEntropyService(
            nodes, engine=engine, seed=3, checker=checker
        )
        # Warm-up: converge the seeded writes so the exporter holds the
        # key's lineage before exporting (a fresh pre-sync write would
        # start an unrelated lineage that stamps cannot order).  No export
        # has happened yet, so the contract is vacuous and scans stay
        # silent.
        warmup = service.run(max_rounds=16)
        assert warmup.converged_after is not None
        assert checker.violations == []
        nodes[0].write("key0", "export #1")
        report = service.run(max_rounds=16)
        assert report.converged_after is not None
        # Scans ran while the export was still propagating, so the gap was
        # logged; the final converged scan is clean.
        assert checker.violations
        assert all(
            violation.spec.name == "c" and violation.mode == "stale"
            for violation in checker.violations
        )
        assert checker.check("train", raise_on_violation=False) == []

    def test_round_marking_reaches_the_history(self):
        nodes, _keys = build_cluster(4, keys=2, seed=3)
        history = SyncHistory(maxlen=128)
        engine = AsyncWireSyncEngine(history=history)
        service = AntiEntropyService(nodes, engine=engine, seed=3)
        nodes[0].write("key0", "x")
        service.run(max_rounds=3, until_converged=False)
        rounds = {record.round_number for record in history}
        assert rounds <= {1, 2, 3} and rounds
