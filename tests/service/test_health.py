"""Unit tests for the grey-failure resilience layer.

The accrual detector (phi scoring, adaptive deadlines, suspicion-decayed
weights), the circuit-breaker automaton, the health-weighted and hedged
peer selection, the grey degradation model, and the daemon's deadline
enforcement with transactional rollback.
"""

import random

import pytest

from repro.core.errors import FaultInjectionError, SessionTimeout
from repro.replication import (
    DegradationPlan,
    FaultPlan,
    FaultyTransport,
    FullyConnectedNetwork,
)
from repro.service import (
    AntiEntropyService,
    AsyncWireSyncEngine,
    CircuitBreaker,
    HealthConfig,
    HealthMonitor,
    LinkProfile,
    PeerHealth,
    ReplicaDaemon,
    build_cluster,
)
from repro.sim.scheduler import run_virtual


def _config(**overrides):
    return HealthConfig(**overrides)


class TestHealthConfig:
    def test_defaults_validate(self):
        config = HealthConfig()
        assert config.window >= config.min_samples

    @pytest.mark.parametrize(
        "overrides",
        [
            {"window": 1},
            {"min_samples": 1},
            {"decay": 0.0},
            {"decay": 1.5},
            {"min_weight": 0.0},
            {"min_weight": 1.1},
            {"min_deadline": 0.0},
            {"min_deadline": 2.0, "max_deadline": 1.0},
            {"breaker_failures": 0},
            {"breaker_cooldown": 0.0},
            {"breaker_backoff": 0.5},
        ],
    )
    def test_invalid_values_rejected(self, overrides):
        with pytest.raises(ValueError):
            HealthConfig(**overrides)


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(_config(breaker_failures=3))
        for _ in range(2):
            breaker.record_failure(now=0.0)
            assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure(now=0.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 1
        assert not breaker.allow(now=1.0)

    def test_success_resets_the_failure_run(self):
        breaker = CircuitBreaker(_config(breaker_failures=2))
        breaker.record_failure(now=0.0)
        breaker.record_success()
        breaker.record_failure(now=0.0)
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        breaker = CircuitBreaker(_config(breaker_failures=1, breaker_cooldown=5.0))
        breaker.record_failure(now=0.0)
        assert not breaker.allow(now=4.9)
        assert breaker.allow(now=5.0)  # the probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow(now=5.0)  # refused while the probe flies

    def test_probe_success_closes_the_circuit(self):
        breaker = CircuitBreaker(_config(breaker_failures=1, breaker_cooldown=1.0))
        breaker.record_failure(now=0.0)
        assert breaker.allow(now=1.0)
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow(now=1.0)

    def test_probe_failure_backs_the_cooldown_off(self):
        config = _config(
            breaker_failures=1, breaker_cooldown=2.0, breaker_backoff=2.0
        )
        breaker = CircuitBreaker(config)
        breaker.record_failure(now=0.0)  # open until 2.0
        assert breaker.allow(now=2.0)  # probe
        breaker.record_failure(now=2.0)  # probe fails: cooldown doubles
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow(now=5.9)  # 2.0 + 4.0 = 6.0
        assert breaker.allow(now=6.0)
        breaker.record_success()
        assert breaker.cooldown == config.breaker_cooldown  # reset on recovery


class TestPeerHealth:
    def _steady(self, config=None, latency=1.0, count=None):
        config = config or HealthConfig()
        peer = PeerHealth(config)
        for _ in range(count if count is not None else config.min_samples):
            peer.observe_success(latency)
        return peer

    def test_phi_is_zero_below_min_samples(self):
        peer = PeerHealth(HealthConfig(min_samples=5))
        for _ in range(4):
            peer.observe_success(1.0)
        assert peer.phi(100.0) == 0.0
        assert peer.deadline() == peer.config.max_deadline

    def test_phi_grows_with_improbability(self):
        peer = self._steady(latency=1.0)
        assert peer.phi(0.5) == 0.0  # faster than the model: never suspect
        assert peer.phi(1.0) == 0.0  # at the mean
        slow, slower = peer.phi(1.5), peer.phi(3.0)
        assert 0.0 < slow < slower

    def test_adaptive_deadline_tracks_the_history(self):
        config = HealthConfig(deadline_sigmas=4.0)
        fast = self._steady(config, latency=0.1)
        slow = self._steady(config, latency=10.0)
        assert fast.deadline() < slow.deadline() <= config.max_deadline
        # The std floor (10% of the mean) makes the steady-history
        # deadline mean * (1 + sigmas / 10).
        assert fast.deadline() == pytest.approx(0.1 * 1.4)

    def test_timeouts_accrue_suspicion_and_feed_the_breaker(self):
        peer = PeerHealth(HealthConfig(timeout_suspicion=3.0, breaker_failures=2))
        peer.observe_timeout(now=0.0)
        assert peer.suspicion == 3.0
        assert peer.breaker.state == CircuitBreaker.CLOSED
        peer.observe_timeout(now=0.0)
        assert peer.suspicion == 6.0
        assert peer.breaker.state == CircuitBreaker.OPEN

    def test_weight_is_one_while_quiet_then_decays_to_a_floor(self):
        peer = PeerHealth(HealthConfig(quiet_suspicion=1.0, min_weight=0.05))
        assert peer.weight() == 1.0
        peer.suspicion = 1.0
        assert peer.weight() == 1.0  # at the threshold: still quiet
        peer.suspicion = 2.0
        assert peer.weight() == pytest.approx(0.5)
        peer.suspicion = 100.0
        assert peer.weight() == 0.05  # the floor: never zero

    def test_success_decays_suspicion(self):
        peer = PeerHealth(HealthConfig(decay=0.5))
        peer.suspicion = 4.0
        peer.observe_success(1.0)
        assert peer.suspicion == 2.0


class TestHealthMonitor:
    def test_peers_materialize_lazily(self):
        monitor = HealthMonitor(seed=1)
        assert monitor.peers == {}
        assert monitor.allow(7, now=0.0)  # unknown peer: no state created
        assert monitor.deadline(7) == monitor.config.max_deadline
        assert monitor.peers == {}
        monitor.observe_success(7, 0.5)
        assert list(monitor.peers) == [7]

    def test_select_fast_path_consumes_no_rng(self):
        monitor = HealthMonitor(seed=3)
        before = monitor.rng.getstate()
        assert monitor.select([0, 1, 2], initiator=0, drawn=2) == 2
        assert monitor.rng.getstate() == before
        assert monitor.redraws == 0

    def test_select_redraws_away_from_suspects_but_never_excommunicates(self):
        monitor = HealthMonitor(config=HealthConfig(min_weight=0.05), seed=3)
        monitor.peer(1).suspicion = 50.0  # weight floored at 0.05
        picks = [monitor.select([0, 1, 2], initiator=0, drawn=1) for _ in range(400)]
        assert monitor.redraws > 0
        assert picks.count(1) < 100  # strongly steered away...
        assert 1 in picks  # ...but still reachable
        assert 0 not in picks  # the initiator is never drawn

    def test_breaker_refusals_are_counted(self):
        monitor = HealthMonitor(config=HealthConfig(breaker_failures=1), seed=0)
        monitor.observe_timeout(4, now=0.0)
        assert not monitor.allow(4, now=0.0)
        assert monitor.breaker_skips == 1

    def test_decay_round_forgives(self):
        monitor = HealthMonitor(config=HealthConfig(decay=0.5), seed=0)
        monitor.peer(2).suspicion = 8.0
        monitor.decay_round()
        assert monitor.peer(2).suspicion == 4.0

    def test_hedge_candidate_is_the_healthiest_non_excluded_peer(self):
        monitor = HealthMonitor(seed=0)
        monitor.peer(1).suspicion = 9.0
        monitor.peer(3).suspicion = 2.0
        # Peers 2 and 4 are untracked (weight 1.0); lowest index wins ties.
        assert monitor.hedge_candidate([0, 1, 2, 3, 4], exclude=(0, 2)) == 4
        assert monitor.hedge_candidate([0, 1], exclude=(0, 1)) is None

    def test_counters_and_table_shapes(self):
        monitor = HealthMonitor(seed=0)
        monitor.observe_success(0, 0.2)
        monitor.observe_timeout(1, now=1.0)
        counters = monitor.counters()
        assert counters["peers_tracked"] == 2
        assert counters["sessions_observed"] == 1
        assert counters["timeouts"] == 1
        rows = monitor.table()
        assert [row["peer"] for row in rows] == [0, 1]
        assert rows[0]["samples"] == 1
        assert rows[0]["circuit"] == CircuitBreaker.CLOSED
        assert rows[1]["timeouts"] == 1


class TestDegradation:
    def test_plan_validation(self):
        with pytest.raises(FaultInjectionError):
            DegradationPlan(slow_fraction=1.5)
        with pytest.raises(FaultInjectionError):
            DegradationPlan(slow_factor=(0.5, 2.0))
        with pytest.raises(FaultInjectionError):
            DegradationPlan(slow_factor=(3.0, 2.0))
        with pytest.raises(FaultInjectionError):
            DegradationPlan(stuck_seconds=0.0)
        with pytest.raises(FaultInjectionError):
            DegradationPlan(throttle_windows=((5.0, 4.0, 2.0),))
        with pytest.raises(FaultInjectionError):
            DegradationPlan(throttle_windows=((0.0, 1.0, 0.5),))

    def test_resolution_is_seeded_and_deterministic(self):
        plan = DegradationPlan.grey(slow_fraction=0.4)
        ids = [f"n{i}" for i in range(10)]
        first = plan.resolve(ids, seed=42)
        second = plan.resolve(ids, seed=42)
        assert first.degraded_nodes() == second.degraded_nodes()
        assert len(first.degraded_nodes()) == 4
        assert first.factors == second.factors
        assert all(10.0 <= f <= 100.0 for f in first.factors.values())
        other = plan.resolve(ids, seed=43)
        assert (
            other.degraded_nodes() != first.degraded_nodes()
            or other.factors != first.factors
        )

    def test_shape_leg_scales_by_the_slower_endpoint(self):
        state = DegradationPlan(slow_fraction=0.5, slow_factor=(8.0, 8.0)).resolve(
            ["a", "b"], seed=0
        )
        (degraded,) = state.degraded_nodes()
        healthy = "a" if degraded == "b" else "b"
        assert state.shape_leg(degraded, healthy, 1.0, now=0.0) == pytest.approx(8.0)
        assert state.shape_leg(healthy, degraded, 1.0, now=0.0) == pytest.approx(8.0)
        assert state.shape_leg(healthy, healthy, 1.0, now=0.0) == pytest.approx(1.0)

    def test_throttle_windows_multiply_inside_the_window_only(self):
        plan = DegradationPlan(throttle_windows=((10.0, 20.0, 4.0),))
        state = plan.resolve(["a"], seed=0)
        assert state.throttle_divisor(9.9) == 1.0
        assert state.throttle_divisor(10.0) == 4.0
        assert state.throttle_divisor(20.0) == 1.0

    def test_flapping_links_wait_for_the_next_up_phase(self):
        plan = DegradationPlan(
            slow_fraction=1.0,
            slow_factor=(1.0, 1.0),
            flap_fraction=1.0,
            flap_period=2.0,
            flap_duty=0.5,
        )
        state = plan.resolve(["a", "b"], seed=1)
        phase = state.flap_phase["a"]
        # Aligned so the cycle starts now: up for 1s, down for 1s.
        start = 2.0 - phase
        assert state.flap_wait("a", start) == 0.0
        down = start + 1.5  # mid down-phase: wait for the cycle to end
        assert state.flap_wait("a", down) == pytest.approx(0.5)

    def test_stuck_hang_only_draws_on_degraded_endpoints(self):
        plan = DegradationPlan(slow_fraction=0.5, stuck_rate=1.0, stuck_seconds=7.0)
        state = plan.resolve(["a", "b"], seed=0)
        (degraded,) = state.degraded_nodes()
        healthy = "a" if degraded == "b" else "b"
        before = state.rng.getstate()
        assert state.stuck_hang(healthy, healthy) == 0.0
        assert state.rng.getstate() == before  # healthy legs cost no RNG
        assert state.stuck_hang(degraded, healthy) == 7.0
        assert state.stuck_legs == 1
        assert state.stuck_seconds_total == 7.0

    def test_transport_charges_hangs_and_drops_the_leg(self):
        plan = FaultPlan(
            degradation=DegradationPlan(
                slow_fraction=1.0,
                slow_factor=(1.0, 1.0),
                stuck_rate=1.0,
                stuck_seconds=5.0,
            )
        )
        transport = FaultyTransport(FullyConnectedNetwork(), plan=plan, seed=0)
        transport.ensure_degradation(["a", "b"])
        delivered = transport.transfer_batch("a", "b", [(0, b"payload")])
        assert delivered == []
        assert transport.take_pending_hang() == 5.0
        assert transport.take_pending_hang() == 0.0  # charged exactly once


def _digest(nodes):
    return [
        (node.node_id, key, sorted(repr(value) for value in node.store.get(key)))
        for node in nodes
        for key in sorted(node.store.keys())
    ]


class TestDeadlineDriving:
    def _daemons(self, seed=11):
        nodes, _ = build_cluster(2, keys=3, seed=seed)
        engine = AsyncWireSyncEngine()
        daemons = [ReplicaDaemon(node, index) for index, node in enumerate(nodes)]
        return nodes, engine, daemons

    def test_session_timeout_rolls_both_replicas_back(self):
        nodes, engine, daemons = self._daemons()
        link = LinkProfile(latency=1.0)
        before = _digest(nodes)

        async def main():
            with pytest.raises(SessionTimeout) as excinfo:
                await daemons[0].drive_session(
                    daemons[1],
                    engine,
                    link=link,
                    link_rng=random.Random(1),
                    deadline=0.5,
                )
            return excinfo.value

        error, elapsed = run_virtual(main())
        assert _digest(nodes) == before  # never half-merges
        assert error.initiator == nodes[0].node_id
        assert error.peer == nodes[1].node_id
        assert elapsed == pytest.approx(0.5)  # the timeout costs honest time

    def test_generous_deadline_completes_normally(self):
        nodes, engine, daemons = self._daemons()
        link = LinkProfile(latency=0.01)

        async def main():
            return await daemons[0].drive_session(
                daemons[1],
                engine,
                link=link,
                link_rng=random.Random(1),
                deadline=100.0,
            )

        report, _ = run_virtual(main())
        assert report is not None
        assert _digest([nodes[0]]) != []

    def test_abortable_equals_plain_session_outcome(self):
        plain_nodes, engine_a, plain = self._daemons(seed=21)
        bounded_nodes, engine_b, bounded = self._daemons(seed=21)

        async def run(daemons, engine, deadline):
            return await daemons[0].drive_session(
                daemons[1],
                engine,
                link=LinkProfile(),
                link_rng=random.Random(2),
                deadline=deadline,
            )

        run_virtual(run(plain, engine_a, None))
        run_virtual(run(bounded, engine_b, 1e9))
        assert _digest(plain_nodes) == _digest(bounded_nodes)


class TestServiceGreyIntegration:
    def test_grey_cluster_converges_with_health_and_hedging(self):
        plan = FaultPlan(degradation=DegradationPlan.grey(slow_fraction=0.3))
        nodes, _ = build_cluster(8, keys=4, seed=7)
        transport = FaultyTransport(nodes[0].network, plan=plan, seed=7)
        service = AntiEntropyService(
            nodes,
            engine=AsyncWireSyncEngine(transport=transport),
            link=LinkProfile(latency=0.05),
            seed=7,
            health=HealthConfig(min_samples=3),
            hedge=True,
        )
        report = service.run(max_rounds=60)
        assert report.converged_after is not None
        assert report.health is not None
        assert service.degradation is not None
        assert service.degradation.degraded_nodes()

    def test_timeouts_surface_in_round_metrics_and_report(self):
        plan = FaultPlan(degradation=DegradationPlan.grey(slow_fraction=0.5))
        nodes, _ = build_cluster(6, keys=4, seed=3)
        transport = FaultyTransport(nodes[0].network, plan=plan, seed=3)
        service = AntiEntropyService(
            nodes,
            engine=AsyncWireSyncEngine(transport=transport),
            link=LinkProfile(latency=0.05),
            seed=3,
            health=HealthConfig(min_samples=3, max_deadline=1.0),
        )
        report = service.run(max_rounds=30, until_converged=False)
        assert report.total_timeouts > 0
        assert report.health["timeouts"] == report.total_timeouts
        data = report.as_dict()
        assert data["totals"]["timeouts"] == report.total_timeouts
        assert data["health"]["timeouts"] == report.total_timeouts
