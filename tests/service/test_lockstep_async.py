"""Lockstep-equality proofs for the async anti-entropy service.

The load-bearing claims, tested per clock family:

* sharded synchronous sync (``keys=`` restriction per shard) is exactly
  equal to unsharded sync -- the soundness of the sharding hook;
* the async service in lockstep mode is **byte-identical** to the
  synchronous :class:`~repro.replication.WireSyncEngine` reference on the
  same schedule -- state digests *and* meter counters -- including under
  the full chaos fault matrix;
* overlap mode (concurrent sessions under per-(replica, shard) locks) is
  deterministic for a fixed seed and converges to the same final state.
"""

import pytest

from repro import kernel
from repro.replication import FaultPlan, FaultyTransport, WireSyncEngine
from repro.service import (
    AntiEntropyService,
    AsyncWireSyncEngine,
    KeyShards,
    LinkProfile,
    build_cluster,
    gossip_schedule,
    replay_schedule_sync,
)

FAMILIES = kernel.families()

REPLICAS = 10
KEYS = 6
ROUNDS = 6


def digest(nodes):
    """Canonical state fingerprint: every node's siblings for every key."""
    return [
        (node.node_id, key, sorted(repr(value) for value in node.store.get(key)))
        for node in nodes
        for key in sorted(node.store.keys())
    ]


def meter_state(meter):
    return meter.snapshot() + meter.fault_snapshot()


@pytest.mark.parametrize("family", FAMILIES)
class TestShardingSoundness:
    def test_sharded_sync_equals_unsharded_sync(self, family):
        whole_nodes, _ = build_cluster(REPLICAS, keys=KEYS, family=family, seed=4)
        shard_nodes, _ = build_cluster(REPLICAS, keys=KEYS, family=family, seed=4)
        schedule = gossip_schedule(REPLICAS, ROUNDS, seed=9)
        replay_schedule_sync(whole_nodes, schedule, WireSyncEngine(), shards=1)
        replay_schedule_sync(shard_nodes, schedule, WireSyncEngine(), shards=3)
        assert digest(whole_nodes) == digest(shard_nodes)

    def test_shard_parts_cover_the_key_space(self, family):
        nodes, keys = build_cluster(4, keys=KEYS, family=family, seed=0)
        shards = KeyShards(3)
        parts = shards.split(keys)
        assert sorted(key for part in parts for key in part) == sorted(keys)


@pytest.mark.parametrize("family", FAMILIES)
class TestLockstepEquality:
    @pytest.mark.parametrize("shards", [1, 3])
    def test_async_lockstep_matches_sync_reference_under_chaos(self, family, shards):
        sync_nodes, _ = build_cluster(REPLICAS, keys=KEYS, family=family, seed=7)
        async_nodes, _ = build_cluster(REPLICAS, keys=KEYS, family=family, seed=7)
        schedule = gossip_schedule(REPLICAS, ROUNDS, seed=3)
        plan = FaultPlan.chaos()
        sync_engine = WireSyncEngine(
            transport=FaultyTransport(sync_nodes[0].network, plan=plan, seed=11)
        )
        async_engine = AsyncWireSyncEngine(
            transport=FaultyTransport(async_nodes[0].network, plan=plan, seed=11)
        )
        replay_schedule_sync(sync_nodes, schedule, sync_engine, shards=shards)
        service = AntiEntropyService(
            async_nodes,
            engine=async_engine,
            shards=shards,
            lockstep=True,
            link=LinkProfile(latency=0.002, bandwidth=1e6, jitter=0.3),
        )
        service.run(schedule=schedule, until_converged=False)
        assert digest(async_nodes) == digest(sync_nodes)
        assert meter_state(async_engine.meter) == meter_state(sync_engine.meter)
        # The incremental decoder really was on the async path.
        assert async_engine.chunks_fed > 0

    def test_round_by_round_digests_match(self, family):
        sync_nodes, _ = build_cluster(REPLICAS, keys=KEYS, family=family, seed=2)
        async_nodes, _ = build_cluster(REPLICAS, keys=KEYS, family=family, seed=2)
        schedule = gossip_schedule(REPLICAS, ROUNDS, seed=5)
        plan = FaultPlan.lossy(0.15)
        sync_engine = WireSyncEngine(
            transport=FaultyTransport(sync_nodes[0].network, plan=plan, seed=1)
        )
        async_engine = AsyncWireSyncEngine(
            transport=FaultyTransport(async_nodes[0].network, plan=plan, seed=1)
        )
        sync_digests = []
        for row in schedule:
            replay_schedule_sync(sync_nodes, [row], sync_engine, shards=2)
            sync_digests.append(digest(sync_nodes))
        async_digests = []
        service = AntiEntropyService(
            async_nodes, engine=async_engine, shards=2, lockstep=True
        )
        service.run(
            schedule=schedule,
            until_converged=False,
            on_round=lambda metrics: async_digests.append(digest(async_nodes)),
        )
        assert async_digests == sync_digests


class TestOverlapMode:
    def test_overlap_converges_and_is_deterministic(self):
        def one_run():
            nodes, _ = build_cluster(20, keys=8, seed=6)
            service = AntiEntropyService(
                nodes,
                shards=4,
                seed=13,
                link=LinkProfile(latency=0.001, bandwidth=1e6, jitter=0.2),
            )
            report = service.run(max_rounds=30)
            return digest(nodes), meter_state(service.meter), report.converged_after

        first = one_run()
        second = one_run()
        assert first == second
        assert first[2] is not None

    def test_overlap_matches_lockstep_final_state_on_perfect_wire(self):
        lockstep_nodes, _ = build_cluster(12, keys=6, seed=8)
        overlap_nodes, _ = build_cluster(12, keys=6, seed=8)
        schedule = gossip_schedule(12, 8, seed=2)
        AntiEntropyService(lockstep_nodes, shards=3, lockstep=True).run(
            schedule=schedule, until_converged=False
        )
        AntiEntropyService(overlap_nodes, shards=3, lockstep=False).run(
            schedule=schedule, until_converged=False
        )
        # Same sessions, perfect transport: final states agree even though
        # overlap interleaves sessions on the virtual clock.
        assert digest(overlap_nodes) == digest(lockstep_nodes)

    def test_overlap_round_is_shorter_than_lockstep_round(self):
        def run(lockstep):
            nodes, _ = build_cluster(16, keys=8, seed=1)
            service = AntiEntropyService(
                nodes,
                shards=4,
                lockstep=lockstep,
                link=LinkProfile(latency=0.01, bandwidth=1e6),
            )
            report = service.run(
                schedule=gossip_schedule(16, 3, seed=4), until_converged=False
            )
            return report.virtual_seconds

        # Overlap's virtual time is the longest chain, lockstep's the sum.
        assert run(lockstep=False) < run(lockstep=True)


class TestPartitionedScheduling:
    def test_gossip_respects_partitions_then_heals(self):
        from repro.replication import PartitionedNetwork

        network = PartitionedNetwork()
        nodes, keys = build_cluster(8, keys=4, seed=2, network=network)
        left = [node.node_id for node in nodes[:4]]
        right = [node.node_id for node in nodes[4:]]
        network.set_partitions([left, right])
        service = AntiEntropyService(nodes, shards=2, seed=1)
        report = service.run(max_rounds=6, until_converged=False)
        # Peers are only ever drawn inside a partition side, so sessions
        # all run (nothing skipped) but the sides cannot agree.
        assert all(metrics.skipped == 0 for metrics in report.rounds)
        assert not service.converged()
        network.heal()
        healed = service.run(max_rounds=20)
        assert healed.converged_after is not None

    def test_explicit_cross_partition_pairs_are_skipped(self):
        from repro.replication import PartitionedNetwork

        network = PartitionedNetwork()
        nodes, _ = build_cluster(4, keys=2, seed=0, network=network)
        network.set_partitions([[n.node_id for n in nodes[:2]],
                                [n.node_id for n in nodes[2:]]])
        service = AntiEntropyService(nodes, lockstep=True)
        report = service.run(
            schedule=[[(0, 2), (1, 3), (0, 1)]], until_converged=False
        )
        assert report.rounds[0].skipped == 2
        assert report.rounds[0].exchanges == 1

    def test_crashed_replicas_drop_out_of_the_schedule(self):
        nodes, _ = build_cluster(6, keys=3, seed=4)
        nodes[0].crash()
        service = AntiEntropyService(nodes, seed=2)
        report = service.run(max_rounds=12)
        assert report.converged_after is not None
        # The dead replica never initiates: at most one session per live node.
        assert all(metrics.exchanges <= 5 for metrics in report.rounds)


class TestReporting:
    def test_report_surfaces_percentiles_and_costs(self):
        nodes, keys = build_cluster(16, keys=4, seed=3)
        service = AntiEntropyService(
            nodes, shards=2, seed=5, link=LinkProfile(latency=0.001, bandwidth=1e6)
        )
        report = service.run(max_rounds=20)
        assert report.converged_after is not None
        assert report.total_bytes > 0
        assert report.bytes_per_key(len(keys)) > 0
        rounds_p = report.round_duration_percentiles()
        assert rounds_p[0.5] <= rounds_p[0.9] <= rounds_p[0.99]
        session_p = report.session_latency_percentiles()
        assert session_p[0.99] >= session_p[0.5] > 0
        assert report.rounds[-1].converged
