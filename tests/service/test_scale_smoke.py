"""Scale smokes: the service drives large populations to convergence.

The unmarked test keeps a 2,000-replica run in the everyday suite; the
``scale``-marked test is the 10^4-replica acceptance smoke (also soaked
in its own CI job).  Epidemic gossip converges in O(log N) rounds, so
both bounds are generous.
"""

import math

import pytest

from repro.service import AntiEntropyService, LinkProfile, build_cluster


def _converge(replicas, *, shards, max_rounds):
    nodes, keys = build_cluster(replicas, keys=4, seed=0)
    service = AntiEntropyService(
        nodes,
        shards=shards,
        seed=0,
        link=LinkProfile(latency=0.001, bandwidth=1e9, jitter=0.1),
    )
    report = service.run(max_rounds=max_rounds)
    assert report.converged_after is not None, (
        f"{replicas} replicas not converged within {max_rounds} rounds"
    )
    assert service.converged()
    # Epidemic spread: convergence within a small multiple of log2(N).
    assert report.converged_after <= 4 * math.log2(replicas)
    assert report.total_bytes > 0
    assert report.virtual_seconds > 0
    return report


def test_two_thousand_replicas_converge():
    report = _converge(2_000, shards=2, max_rounds=48)
    assert report.replicas == 2_000


@pytest.mark.scale
def test_ten_thousand_replicas_converge():
    report = _converge(10_000, shards=4, max_rounds=64)
    assert report.replicas == 10_000
    # The run must be virtual-time cheap: sub-second simulated convergence
    # at millisecond link latency, regardless of wall-clock cost.
    assert report.virtual_seconds < 1.0
