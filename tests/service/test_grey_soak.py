"""Seeded grey-failure soaks: the anti-entropy service under degradation.

The chaos soaks (``tests/replication/test_chaos_soak.py``) cover *crash*
faults -- loss, corruption, partitions, dead nodes.  This soak covers the
grey band between healthy and dead: 30% of the population is degraded
(10--100x slowdown factors, stuck sessions that hang half a minute,
flapping links, cluster-wide throttle windows) while 2,000 scripted write
steps churn through the cluster on the virtual clock.

Each family runs four arms on the same seeded schedule:

``healthy``
    No degradation, full health layer.  The false-positive control: the
    accrual detector must stay silent (zero timeouts, zero breaker
    skips) on a cluster that is merely busy.
``control``
    Degradation with the health layer off.  Every session waits out the
    full grey delay, so total virtual time balloons -- this arm proves
    the defensive layer is load-bearing, not decorative.
``protected``
    Degradation with accrual detection, adaptive deadlines, circuit
    breakers and hedged sessions.  Must converge to the oracle at a
    fraction of the control's virtual time, and its settle phase must
    stay within 2x the healthy baseline's rounds.
``prot-nohedge``
    Same, hedging off.  Sync idempotence means a hedge can move
    knowledge but never diverge, so this arm's final configuration must
    be byte-identical to the protected arm's.

The oracle is the chaos-soak idiom: a clean pre-phase seeds every key
everywhere, then after the write phase the cluster settles, one node
writes a final value per key, and the cluster settles again -- every
replica must end holding exactly the final values.  Any
``EpochMismatch`` (or any other exception) anywhere in the run fails the
soak outright.

Version stamps grow exponentially under sync churn (the paper's core
motivation), so a maintenance :class:`~repro.replication.AntiEntropy`
with a clean engine runs one re-rooting sweep per service round --
without it the stamps overflow the 16-bit wire length prefix long before
the soak ends.

Run the full matrix with ``pytest -m chaos``; an unmarked smoke variant
keeps the machinery covered in the default tier.
"""

import random

import pytest

from repro.replication import (
    AntiEntropy,
    DegradationPlan,
    FaultPlan,
    FaultyTransport,
    WireSyncEngine,
)
from repro.service import (
    AntiEntropyService,
    AsyncWireSyncEngine,
    HealthConfig,
    LinkProfile,
    build_cluster,
)

FAMILIES = ["version-stamp", "itc", "vv-dynamic", "causal-history"]

REPLICAS = 10
KEYS = 6
PER_ROUND = 20  # writes injected per service round
WRITE_ROUNDS = 100  # x PER_ROUND = 2,000 write steps in the full soak
SETTLE_ROUNDS = 120
WRITERS = 2  # only the first two nodes take writes (chaos-soak idiom)
COMPACT_THRESHOLD_BITS = 512

#: The soak's defensive-driving policy.  ``min_deadline`` sits well above
#: the slowest *clean* session (two 0.05s legs plus retries), so the
#: healthy arm never times out; ``max_deadline`` sits below the 30s
#: stuck-session hang, so genuinely wedged sessions are always cut off.
HEALTH = HealthConfig(min_samples=3, min_deadline=1.0, max_deadline=20.0)


def _run_arm(family, *, degrade, health, hedge, seed, write_rounds):
    """Drive one arm of the soak; returns the observables the asserts use."""
    nodes, names = build_cluster(
        REPLICAS, keys=KEYS, family=family, seed=seed, writes_per_key=0
    )
    plan = FaultPlan(degradation=DegradationPlan.grey() if degrade else None)
    transport = FaultyTransport(nodes[0].network, plan=plan, seed=seed)
    service = AntiEntropyService(
        nodes,
        engine=AsyncWireSyncEngine(transport=transport),
        link=LinkProfile(latency=0.05),
        seed=seed,
        health=HEALTH if health else None,
        hedge=hedge,
    )
    # Maintenance re-rooting on a clean, fault-free engine: compaction is
    # an agreement protocol, not a gossip exchange, so it must not run
    # through the degraded transport.
    maintenance = AntiEntropy(
        nodes,
        rng=random.Random(seed + 1),
        engine=WireSyncEngine(),
        compact_threshold_bits=COMPACT_THRESHOLD_BITS,
    )

    # Clean pre-phase: one creator writes every key and replicates it
    # everywhere before the grey weather starts, so compaction never sees
    # a node missing a key (ITC identity spaces must stay disjoint).
    for name in names:
        nodes[0].write(name, f"seed-{name}")
    for _ in range(40):
        maintenance.run_round()
        if maintenance.converged():
            break
    assert maintenance.converged(), "clean pre-phase failed to converge"

    ops = random.Random(seed + 2)
    step = 0

    def sweep_and_inject(metrics):
        nonlocal step
        maintenance.run_round()
        for _ in range(PER_ROUND):
            nodes[ops.randrange(WRITERS)].write(ops.choice(names), f"s{step}")
            step += 1

    def sweep(metrics):
        maintenance.run_round()

    write = service.run(
        max_rounds=write_rounds, until_converged=False, on_round=sweep_and_inject
    )
    maintenance.run_round()
    settle1 = service.run(
        max_rounds=SETTLE_ROUNDS, until_converged=True, on_round=sweep
    )
    assert settle1.converged_after is not None, "first settle never converged"
    for name in names:
        nodes[0].write(name, f"final-{name}")
    settle2 = service.run(
        max_rounds=SETTLE_ROUNDS, until_converged=True, on_round=sweep
    )
    assert settle2.converged_after is not None, "final settle never converged"

    oracle = all(
        node.store.get(name) == [f"final-{name}"]
        for node in nodes
        for name in names
    )
    digest = tuple(
        (node.node_id, name, tuple(sorted(repr(v) for v in node.store.get(name))))
        for node in nodes
        for name in names
    )
    counters = service.health.counters() if service.health is not None else {}
    return {
        "oracle": oracle,
        "digest": digest,
        "settle2_rounds": len(settle2.rounds),
        "virtual_total": (
            write.virtual_seconds
            + settle1.virtual_seconds
            + settle2.virtual_seconds
        ),
        "timeouts": counters.get("timeouts", 0),
        "hedges": counters.get("hedges", 0),
        "breaker_skips": counters.get("breaker_skips", 0),
    }


def test_grey_smoke():
    """A short protected-vs-healthy arm pair runs in the default tier."""
    healthy = _run_arm(
        "version-stamp", degrade=False, health=True, hedge=True,
        seed=6100, write_rounds=25,
    )
    protected = _run_arm(
        "version-stamp", degrade=True, health=True, hedge=True,
        seed=6100, write_rounds=25,
    )
    assert healthy["oracle"] and protected["oracle"]
    # The detector stayed silent on the healthy cluster...
    assert healthy["timeouts"] == 0
    assert healthy["breaker_skips"] == 0
    # ...and actually fired under the grey weather.
    assert protected["timeouts"] > 0


@pytest.mark.chaos
@pytest.mark.parametrize("family", FAMILIES)
def test_grey_soak(family):
    """2,000 grey write steps per family, four arms (acceptance)."""
    seed = 6000
    healthy = _run_arm(
        family, degrade=False, health=True, hedge=True,
        seed=seed, write_rounds=WRITE_ROUNDS,
    )
    control = _run_arm(
        family, degrade=True, health=False, hedge=False,
        seed=seed, write_rounds=WRITE_ROUNDS,
    )
    protected = _run_arm(
        family, degrade=True, health=True, hedge=True,
        seed=seed, write_rounds=WRITE_ROUNDS,
    )
    nohedge = _run_arm(
        family, degrade=True, health=True, hedge=False,
        seed=seed, write_rounds=WRITE_ROUNDS,
    )

    # 100% oracle agreement in every arm.
    for arm in (healthy, control, protected, nohedge):
        assert arm["oracle"], "an arm disagrees with the causal oracle"

    # The false-positive control: a busy-but-healthy cluster never trips
    # the accrual detector.
    assert healthy["timeouts"] == 0
    assert healthy["breaker_skips"] == 0

    # The defense was exercised: deadlines fired and hedges launched.
    assert protected["timeouts"] > 0
    assert protected["hedges"] > 0

    # Convergence stayed within 2x the healthy baseline's settle rounds.
    assert protected["settle2_rounds"] <= 2 * healthy["settle2_rounds"]

    # The no-health control is demonstrably worse: without deadlines every
    # session waits out the full grey delay.
    assert control["virtual_total"] > 1.5 * protected["virtual_total"]

    # Hedging is state-transparent: sync idempotence means the hedged and
    # unhedged arms end byte-identical.
    assert protected["digest"] == nohedge["digest"]
