"""Unit tests of the durable log layer: codecs, backends, torn tails."""

from __future__ import annotations

import os

import pytest

from repro.core.errors import DurabilityError, LogCorrupt
from repro.durability.log import FileDurableLog, TailDamage
from repro.durability.records import (
    KIND_CLEAR,
    KIND_STATE,
    KeyRecord,
    SnapshotGroup,
    decode_record,
    decode_snapshot,
    decode_state_body,
    decode_value,
    encode_key_state_record,
    encode_record,
    encode_snapshot,
    encode_state_body,
    encode_value,
)
from repro.durability.sqlite_log import SQLiteDurableLog
from repro.durability.store import open_log
from repro.kernel.stream import encode_stream
from repro import kernel

BACKENDS = ("file", "sqlite")


def make_log(tmp_path, backend, **kwargs):
    return open_log(tmp_path / f"store-{backend}", backend=backend, **kwargs)


def state_record(key="k", values=("v",), independent=True, tracker=b"\x00"):
    return KeyRecord(
        key=key,
        present=True,
        independently_created=independent,
        values=tuple(encode_value(v) for v in values),
        tracker=tracker,
    )


# ---------------------------------------------------------------------------
# record codec
# ---------------------------------------------------------------------------


class TestRecordCodec:
    def test_roundtrip(self):
        record = state_record(values=("v", 1, None, [1, {"a": 2}]))
        blob = encode_record(KIND_STATE, 42, encode_state_body(record))
        kind, seq, body = decode_record(blob)
        assert (kind, seq) == (KIND_STATE, 42)
        decoded = decode_state_body(body)
        assert decoded == record
        assert [decode_value(v) for v in decoded.values] == ["v", 1, None, [1, {"a": 2}]]

    def test_absent_record_roundtrip(self):
        record = KeyRecord("gone", False, False, (), b"")
        blob = encode_record(KIND_STATE, 7, encode_state_body(record))
        assert decode_state_body(decode_record(blob)[2]) == record

    def test_clear_record(self):
        kind, seq, body = decode_record(encode_record(KIND_CLEAR, 3, b""))
        assert (kind, seq, body) == (KIND_CLEAR, 3, b"")

    def test_every_single_bit_flip_is_detected(self):
        blob = encode_record(KIND_STATE, 1, encode_state_body(state_record()))
        for position in range(len(blob) * 8):
            damaged = bytearray(blob)
            damaged[position // 8] ^= 1 << (position % 8)
            with pytest.raises(LogCorrupt):
                decode_record(bytes(damaged))

    def test_truncation_is_detected(self):
        blob = encode_record(KIND_STATE, 1, encode_state_body(state_record()))
        for cut in range(len(blob)):
            with pytest.raises(LogCorrupt):
                decode_record(blob[:cut])

    def test_unserializable_value_is_typed(self):
        with pytest.raises(DurabilityError):
            encode_value(object())

    def test_bad_kind_rejected_on_encode(self):
        with pytest.raises(DurabilityError):
            encode_record(99, 1, b"")

    def test_trailing_bytes_rejected(self):
        body = encode_state_body(state_record()) + b"x"
        with pytest.raises(LogCorrupt):
            decode_state_body(body)

    def test_fused_encoder_matches_compositional_path(self):
        cases = [
            state_record(values=("v", 1, None, [1, {"a": 2}]), tracker=b"\x01\x02"),
            state_record(key="long" * 40, values=(), independent=False),
            KeyRecord("gone", False, False, (), b""),
            KeyRecord("gone-indep", False, True, (), b""),
        ]
        for seq, record in enumerate(cases, start=1):
            assert encode_key_state_record(
                seq,
                record.key,
                record.present,
                record.independently_created,
                record.values,
                record.tracker,
            ) == encode_record(KIND_STATE, seq, encode_state_body(record))

    def test_fused_encoder_rejects_oversized_fields(self):
        with pytest.raises(DurabilityError):
            encode_key_state_record(1 << 64, "k", True, False, (), b"")
        with pytest.raises(DurabilityError):
            encode_key_state_record(1, "k" * 70000, True, False, (), b"")


# ---------------------------------------------------------------------------
# snapshot codec
# ---------------------------------------------------------------------------


def small_snapshot(upto_seq=5):
    clock = kernel.make("itc").event()
    stream = encode_stream([clock])
    records = (state_record(key="a", tracker=b""),)
    return encode_snapshot(upto_seq, [SnapshotGroup(records=records, stream=stream)])


class TestSnapshotCodec:
    def test_roundtrip(self):
        blob = small_snapshot(upto_seq=17)
        upto_seq, groups = decode_snapshot(blob)
        assert upto_seq == 17
        assert len(groups) == 1
        assert groups[0].records[0].key == "a"

    def test_single_bit_flips_never_pass_the_seal(self):
        blob = small_snapshot()
        # The seal covers everything: flipping any one bit must be caught
        # (either by the CRC or, for the magic/version bytes, even before).
        for position in range(len(blob) * 8):
            damaged = bytearray(blob)
            damaged[position // 8] ^= 1 << (position % 8)
            with pytest.raises(LogCorrupt):
                decode_snapshot(bytes(damaged))

    def test_bad_magic_is_typed(self):
        with pytest.raises(LogCorrupt):
            decode_snapshot(b"XX" + small_snapshot()[2:])


# ---------------------------------------------------------------------------
# the log backends, driven identically
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
class TestDurableLog:
    def test_append_flush_replay(self, tmp_path, backend):
        log = make_log(tmp_path, backend)
        blobs = [
            encode_record(KIND_STATE, seq, encode_state_body(state_record()))
            for seq in range(1, 4)
        ]
        for blob in blobs:
            log.append(blob)
        assert log.pending == 3
        log.flush()
        assert log.pending == 0
        replayed, damage = log.replay()
        assert replayed == blobs
        assert damage is None
        log.close()

    def test_unflushed_records_die_with_the_process(self, tmp_path, backend):
        log = make_log(tmp_path, backend)
        committed = encode_record(KIND_STATE, 1, encode_state_body(state_record()))
        log.append(committed)
        log.flush()
        log.append(encode_record(KIND_STATE, 2, encode_state_body(state_record())))
        log.simulate_crash()
        replayed, damage = log.replay()
        assert replayed == [committed]
        assert damage is None
        log.close()

    def test_torn_tail_truncates_and_reports(self, tmp_path, backend):
        log = make_log(tmp_path, backend)
        keep = encode_record(KIND_STATE, 1, encode_state_body(state_record()))
        torn = encode_record(KIND_STATE, 2, encode_state_body(state_record()))
        log.append(keep)
        log.append(torn)
        log.flush()
        log.simulate_crash(torn_bytes=3)
        replayed, damage = log.replay()
        assert replayed == [keep]
        assert isinstance(damage, TailDamage)
        assert damage.dropped_bytes > 0
        # The truncation is physical: a second replay is clean.
        replayed_again, damage_again = log.replay()
        assert replayed_again == [keep]
        assert damage_again is None
        # And appends continue right after the valid prefix.
        fresh = encode_record(KIND_STATE, 3, encode_state_body(state_record()))
        log.append(fresh)
        log.flush()
        assert log.replay() == ([keep, fresh], None)
        log.close()

    def test_snapshot_install_and_read(self, tmp_path, backend):
        log = make_log(tmp_path, backend)
        log.append(encode_record(KIND_STATE, 1, encode_state_body(state_record())))
        log.flush()
        assert log.read_snapshot() is None
        blob = small_snapshot()
        log.install_snapshot(blob)
        assert log.read_snapshot() == blob
        # Installation truncates the journal.
        assert log.replay() == ([], None)
        assert log.journal_bytes() == 0
        log.close()

    def test_snapshot_overwrite(self, tmp_path, backend):
        log = make_log(tmp_path, backend)
        log.install_snapshot(small_snapshot(upto_seq=1))
        second = small_snapshot(upto_seq=2)
        log.install_snapshot(second)
        assert log.read_snapshot() == second
        log.close()

    def test_fsync_batching_validation(self, tmp_path, backend):
        with pytest.raises(DurabilityError):
            make_log(tmp_path, backend, fsync_every=0)
        log = make_log(tmp_path, backend, fsync_every=2)
        for seq in range(1, 6):
            log.append(
                encode_record(KIND_STATE, seq, encode_state_body(state_record()))
            )
            log.flush()
        replayed, damage = log.replay()
        assert len(replayed) == 5 and damage is None
        log.close()

    def test_mid_log_damage_condemns_the_rest(self, tmp_path, backend):
        """Damage *behind* later records still truncates from the damage on:
        a record whose seal fails cannot vouch for anything after it."""
        log = make_log(tmp_path, backend)
        blobs = [
            encode_record(KIND_STATE, seq, encode_state_body(state_record()))
            for seq in range(1, 5)
        ]
        for blob in blobs:
            log.append(blob)
        log.flush()
        log.close()
        if backend == "file":
            path = tmp_path / "store-file" / FileDurableLog.JOURNAL
            data = bytearray(path.read_bytes())
            data[len(blobs[0]) + 4 + 10] ^= 0x01  # inside the second record
            path.write_bytes(bytes(data))
            log = FileDurableLog(tmp_path / "store-file")
        else:
            import sqlite3

            db = tmp_path / "store-sqlite"
            connection = sqlite3.connect(os.fspath(db))
            row = connection.execute(
                "SELECT id, blob FROM journal WHERE id = 2"
            ).fetchone()
            damaged = bytearray(row[1])
            damaged[10] ^= 0x01
            connection.execute(
                "UPDATE journal SET blob = ? WHERE id = 2",
                (sqlite3.Binary(bytes(damaged)),),
            )
            connection.commit()
            connection.close()
            log = SQLiteDurableLog(os.fspath(db))
        replayed, damage = log.replay()
        assert replayed == blobs[:1]
        assert damage is not None and "CRC" in damage.reason
        log.close()

    def test_context_manager(self, tmp_path, backend):
        with make_log(tmp_path, backend) as log:
            log.append(
                encode_record(KIND_STATE, 1, encode_state_body(state_record()))
            )
        # close() flushed the buffer.
        reopened = make_log(tmp_path, backend)
        assert len(reopened.replay()[0]) == 1
        reopened.close()


def test_open_log_rejects_unknown_backend(tmp_path):
    with pytest.raises(DurabilityError):
        open_log(tmp_path, backend="papyrus")


def test_open_log_sqlite_in_directory(tmp_path):
    """Given an existing directory, the SQLite backend nests its db file."""
    target = tmp_path / "store"
    target.mkdir()
    log = open_log(target, backend="sqlite")
    log.append(encode_record(KIND_STATE, 1, encode_state_body(state_record())))
    log.flush()
    log.close()
    assert (target / "store.sqlite").exists()
