"""Recovery equality: a recovered replica is lockstep-equal to pre-crash.

The tentpole proof obligation of the durability layer: after ``recover()``
the replica's values, tracker stamps (byte for byte, through the
canonical envelope codec) and epochs equal the pre-crash configuration --
for all four kernel families, on both backends, including crashes
injected mid-sync and mid-compaction.
"""

from __future__ import annotations

import pytest

from repro import kernel
from repro.core.errors import DurabilityError, ReplicationError
from repro.durability.recovery import rebuild
from repro.durability.store import StoreJournal, open_log
from repro.replication.faults import FaultPlan, FaultyTransport
from repro.replication.network import PartitionedNetwork
from repro.replication.node import MobileNode
from repro.replication.store import StoreReplica
from repro.replication.synchronizer import AntiEntropy, WireSyncEngine
from repro.replication.tracker import KernelTracker

FAMILIES = kernel.families()
BACKENDS = ("file", "sqlite")


def store_fingerprint(store):
    """Everything recovery must reproduce: values, tracker bytes, epochs,
    origin flags -- per key."""
    out = {}
    for key in store.keys():
        state = store._keys[key]
        out[key] = (
            sorted(repr(v) for v in state.values),
            state.tracker.to_bytes(),
            state.tracker.epoch,
            state.independently_created,
        )
    return out


def assert_lockstep_equal(recovered, original):
    assert store_fingerprint(recovered) == store_fingerprint(original)


def durable_store(tmp_path, family, backend, name="a", **kwargs):
    return StoreReplica(
        name,
        tracker_factory=KernelTracker.factory(family),
        durable=True,
        path=tmp_path / f"{name}-{family}-{backend}",
        backend=backend,
        **kwargs,
    )


def recover_same(store, tmp_path, family, backend, name="a"):
    store.journal.simulate_crash()
    return StoreReplica.recover(
        tmp_path / f"{name}-{family}-{backend}", name=name, backend=backend
    )


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("backend", BACKENDS)
class TestRecoveryEquality:
    def test_puts_and_wire_syncs_recover_exactly(self, tmp_path, family, backend):
        a = durable_store(tmp_path, family, backend)
        b = StoreReplica("b", tracker_factory=KernelTracker.factory(family))
        engine = WireSyncEngine()
        a.put("x", 1)
        a.put("y", {"nested": [1, 2]})
        b.put("z", "other-origin")
        engine.sync(a, b)
        a.put("x", 2)
        b.put("z", "updated")
        engine.sync(a, b)
        recovered, report = recover_same(a, tmp_path, family, backend)
        assert report.clean
        assert_lockstep_equal(recovered, a)

    def test_in_memory_sync_recovers_exactly(self, tmp_path, family, backend):
        a = durable_store(tmp_path, family, backend)
        a.put("k", "seed")
        b = a.fork("b")
        a.put("k", "va")
        b.put("k", "vb")  # concurrent writes: a genuine conflict
        a.sync_with(b)
        recovered, report = recover_same(a, tmp_path, family, backend)
        assert report.clean
        assert_lockstep_equal(recovered, a)
        assert recovered.has_conflict("k")

    def test_recovery_composes_across_crashes(self, tmp_path, family, backend):
        a = durable_store(tmp_path, family, backend)
        a.put("k", 1)
        first, _ = recover_same(a, tmp_path, family, backend)
        first.put("k", 2)
        first.put("j", 3)
        second, report = recover_same(first, tmp_path, family, backend)
        assert report.clean
        assert_lockstep_equal(second, first)

    def test_reset_then_recover_is_empty(self, tmp_path, family, backend):
        a = durable_store(tmp_path, family, backend)
        a.put("k", 1)
        a.reset()
        recovered, report = recover_same(a, tmp_path, family, backend)
        assert recovered.keys() == []
        assert report.clears_applied == 1

    def test_uncommitted_local_put_is_lost_cleanly(self, tmp_path, family, backend):
        """The documented crash window: records buffered past the last
        flush die, leaving the previous durable state -- never a torn
        half-state."""
        a = durable_store(tmp_path, family, backend)
        a.put("k", "durable")
        before = store_fingerprint(a)
        # Bypass put()'s flush to model a crash inside the window.
        a._keys["k"].values = ["volatile"]
        a._keys["k"].tracker = a._keys["k"].tracker.updated()
        a.journal.record_key("k", a._keys["k"])
        a.journal.simulate_crash()
        recovered, report = StoreReplica.recover(
            tmp_path / f"a-{family}-{backend}", name="a", backend=backend
        )
        assert report.clean
        assert store_fingerprint(recovered) == before

    def test_snapshot_plus_tail_recovery(self, tmp_path, family, backend):
        a = durable_store(tmp_path, family, backend)
        for index in range(4):
            a.put(f"k{index}", index)
        a.journal.snapshot(a)
        a.put("k0", "post-snapshot")
        a.put("fresh", "tail-only")
        recovered, report = recover_same(a, tmp_path, family, backend)
        assert report.snapshot_keys == 4
        assert report.records_replayed == 2
        assert_lockstep_equal(recovered, a)

    def test_auto_snapshot_threshold(self, tmp_path, family, backend):
        a = durable_store(tmp_path, family, backend, snapshot_every=5)
        for index in range(12):
            a.put("k", index)
        assert a.journal.snapshots_written >= 2
        recovered, report = recover_same(a, tmp_path, family, backend)
        assert_lockstep_equal(recovered, a)


@pytest.mark.parametrize("family", FAMILIES)
class TestMidSyncCrash:
    """A crash in the middle of a faulty wire sync: the engine's per-key
    rollback restores in-memory state, and recovery lands on the same
    configuration (the journal is only advanced at the sync barrier)."""

    def test_mid_sync_crash_recovers_pre_sync_state(self, tmp_path, family):
        a = StoreReplica(
            "a",
            tracker_factory=KernelTracker.factory(family),
            durable=True,
            path=tmp_path / "a",
        )
        b = StoreReplica("b", tracker_factory=KernelTracker.factory(family))
        engine = WireSyncEngine()
        a.put("x", 1)
        b.put("y", 2)
        engine.sync(a, b)
        a.put("x", "pre-crash")
        pre_sync = store_fingerprint(a)

        # A transport that dies after the request leg: the response leg
        # loses everything, forcing the rollback path mid-sync.
        class DyingTransport:
            def __init__(self):
                self.legs = 0
                self.meter = None
                self.plan = FaultPlan()

            def transfer_batch(self, source, destination, blobs):
                self.legs += 1
                if self.legs > 1:
                    return []  # the crash: nothing ever arrives again
                return list(enumerate(blobs))

        faulty = WireSyncEngine(transport=DyingTransport())
        b.put("y", "concurrent")
        faulty.sync(a, b)
        # Whatever the rollback left in memory is what recovery must land on.
        post_rollback = store_fingerprint(a)
        a.journal.simulate_crash()
        recovered, report = StoreReplica.recover(tmp_path / "a", name="a")
        assert report.clean
        assert store_fingerprint(recovered) == post_rollback
        # And the rollback means that state is the pre-sync one.
        assert post_rollback == pre_sync


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("crash_point", ["snapshot-written", "snapshot-installed"])
class TestMidCompactionCrash:
    def test_mid_compaction_crash_recovers_exactly(
        self, tmp_path, family, backend, crash_point
    ):
        a = durable_store(tmp_path, family, backend)
        for index in range(5):
            a.put(f"k{index}", index)
        before = store_fingerprint(a)

        class Boom(Exception):
            pass

        def hook(point):
            if point == crash_point:
                raise Boom()

        a.journal.log.crash_hook = hook
        with pytest.raises(Boom):
            a.journal.snapshot(a)
        a.journal.log.crash_hook = None
        a.journal.simulate_crash()
        recovered, report = StoreReplica.recover(
            tmp_path / f"a-{family}-{backend}", name="a", backend=backend
        )
        assert report.clean
        assert store_fingerprint(recovered) == before
        # Crash after installation but before truncation: the journal
        # still holds records the snapshot covers; replay must skip them
        # by sequence number instead of double-applying.
        if crash_point == "snapshot-installed":
            assert report.records_skipped > 0

    def test_epoch_bump_compaction_crash(self, tmp_path, family, backend, crash_point):
        """Mid-compaction crash at the epoch bump: recovery lands either
        wholly before or wholly after the bump, never in between."""
        network = PartitionedNetwork()
        store = durable_store(tmp_path, family, backend, name="n0")
        n0 = MobileNode("n0", store, network)
        n0.write("k", "v")
        n1 = MobileNode("n1", store.fork("n1"), network)
        engine = WireSyncEngine()
        gossip = AntiEntropy([n0, n1], engine=engine)
        for step in range(3):
            n0.write("k", f"v{step}")
            gossip.run_round()

        class Boom(Exception):
            pass

        def hook(point):
            if point == crash_point:
                raise Boom()

        store.journal.log.crash_hook = hook
        epoch_before = store.tracker_of("k").epoch
        try:
            gossip.compact_key("k")
            crashed = False
        except Boom:
            crashed = True
        store.journal.log.crash_hook = None
        assert crashed
        post_crash = store_fingerprint(store)
        store.journal.simulate_crash()
        recovered, report = StoreReplica.recover(
            tmp_path / f"n0-{family}-{backend}", name="n0", backend=backend
        )
        assert report.clean
        recovered_epoch = recovered.tracker_of("k").epoch
        assert recovered_epoch in (epoch_before, epoch_before + 1)
        if crash_point == "snapshot-installed":
            # The bumped snapshot landed before the crash: recovery must
            # come back at the new epoch with the bumped tracker bytes.
            assert store_fingerprint(recovered) == post_crash
            assert recovered_epoch == epoch_before + 1


@pytest.mark.parametrize("family", FAMILIES)
def test_node_recover_restart_mode(tmp_path, family):
    network = PartitionedNetwork()
    store = StoreReplica(
        "n0",
        tracker_factory=KernelTracker.factory(family),
        durable=True,
        path=tmp_path / "n0",
    )
    n0 = MobileNode("n0", store, network)
    n1 = MobileNode("n1", store.fork("n1"), network)
    n1.store.journal = StoreJournal(open_log(tmp_path / "n1"))
    for key in n1.store.keys():
        n1.store._record(key)
    n1.store._flush_journal()
    engine = WireSyncEngine()
    n0.write("k", "v1")
    engine.sync(n0.store, n1.store)
    n0.write("k", "v2")
    before = store_fingerprint(n0.store)
    n0.crash()
    report = n0.restart(mode="recover")
    assert report is not None and report.clean
    assert n0.last_recovery is report
    assert store_fingerprint(n0.store) == before
    # The recovered node keeps syncing normally.
    n0.write("k", "v3")
    engine.sync(n0.store, n1.store)
    assert n1.store.get("k") == ["v3"]


def test_recover_mode_needs_a_durable_store(tmp_path):
    network = PartitionedNetwork()
    node = MobileNode.first("n0", network)
    node.crash()
    with pytest.raises(ReplicationError):
        node.restart(mode="recover")


def test_unknown_restart_mode_is_typed(tmp_path):
    network = PartitionedNetwork()
    node = MobileNode.first("n0", network)
    with pytest.raises(ReplicationError):
        node.restart(mode="reincarnate")


def test_rejoin_empty_journals_the_clear(tmp_path):
    """Crash-stop restart of a durable node leaves a durable *empty* store:
    a later recover must not resurrect pre-crash keys."""
    network = PartitionedNetwork()
    store = StoreReplica(
        "n0",
        tracker_factory=KernelTracker.factory("version-stamp"),
        durable=True,
        path=tmp_path / "n0",
    )
    node = MobileNode("n0", store, network)
    node.write("k", "v")
    node.crash()
    node.restart(mode="rejoin-empty")
    node.store.journal.simulate_crash()
    recovered, report = StoreReplica.recover(tmp_path / "n0", name="n0")
    assert recovered.keys() == []
    assert report.clears_applied == 1


def test_antientropy_restart_uses_plan_mode(tmp_path):
    network = PartitionedNetwork()
    store = StoreReplica(
        "n0",
        tracker_factory=KernelTracker.factory("itc"),
        durable=True,
        path=tmp_path / "n0",
    )
    n0 = MobileNode("n0", store, network)
    n0.write("k", "v")
    transport = FaultyTransport(network, plan=FaultPlan(crash_restart="recover"))
    engine = WireSyncEngine(transport=transport)
    gossip = AntiEntropy([n0], engine=engine)
    gossip.crash(n0)
    gossip.restart(n0)
    # The plan chose recover: state survived the restart.
    assert n0.store.get("k") == ["v"]
    assert n0.last_recovery is not None


def test_durable_store_requires_path():
    with pytest.raises(ReplicationError):
        StoreReplica("a", durable=True)


def test_baseline_trackers_are_rejected_with_typed_error(tmp_path):
    store = StoreReplica("a", durable=True, path=tmp_path / "a")
    with pytest.raises(DurabilityError):
        store.put("k", "v")


def test_rebuild_infers_family_from_recovered_state(tmp_path):
    log = open_log(tmp_path / "s")
    store = StoreReplica(
        "a",
        tracker_factory=KernelTracker.factory("causal-history"),
        journal=StoreJournal(log),
    )
    store.put("k", "v")
    rebuilt, _ = rebuild(log, name="a")
    rebuilt.put("fresh", "key")
    assert rebuilt.tracker_of("fresh").family == "causal-history"
