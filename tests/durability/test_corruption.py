"""Property tests: on-disk damage never yields silent wrong state.

The contract (ISSUE satellite): any single-bit flip or truncation of the
on-disk log either (a) recovers cleanly to the last valid record with a
typed :class:`~repro.durability.log.TailDamage` report, or (b) raises a
typed :class:`~repro.core.errors.EncodingError` /
:class:`~repro.core.errors.LogCorrupt` -- it must never replay a
corrupted frame as if it were valid, and never lose records *before* the
damage point.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro import kernel
from repro.core.errors import EncodingError, LogCorrupt
from repro.durability.log import FileDurableLog
from repro.durability.records import (
    KIND_STATE,
    KeyRecord,
    SnapshotGroup,
    decode_record,
    decode_snapshot,
    encode_record,
    encode_snapshot,
    encode_state_body,
    encode_value,
)
from repro.durability.recovery import recover_replica
from repro.durability.store import StoreJournal, open_log
from repro.kernel.stream import encode_stream
from repro.replication.store import StoreReplica
from repro.replication.tracker import KernelTracker

FAMILIES = kernel.families()


def build_store(path, family="version-stamp", puts=6):
    store = StoreReplica(
        "a",
        tracker_factory=KernelTracker.factory(family),
        durable=True,
        path=path,
    )
    for index in range(puts):
        store.put(f"k{index % 3}", {"step": index})
    store.journal.close()


def journal_path(path):
    return path / FileDurableLog.JOURNAL


@given(
    family=st.sampled_from(FAMILIES),
    bit=st.integers(min_value=0),
    data=st.data(),
)
def test_bit_flip_in_journal_never_silently_corrupts(tmp_path_factory, family, bit, data):
    path = tmp_path_factory.mktemp("flip") / "store"
    build_store(path, family=family)
    blob = journal_path(path).read_bytes()
    position = bit % (len(blob) * 8)
    damaged = bytearray(blob)
    damaged[position // 8] ^= 1 << (position % 8)
    journal_path(path).write_bytes(bytes(damaged))
    try:
        store, report = recover_replica(path, name="a")
    except (LogCorrupt, EncodingError):
        return  # typed rejection is an allowed outcome
    # Otherwise: recovery must have reported the damage (or the flip hit a
    # frame-length header in a way that truncated to a valid prefix) and
    # the surviving records must be a replayable prefix -- every recovered
    # key round-trips through its canonical codec.
    for key in store.keys():
        tracker = store.tracker_of(key)
        assert KernelTracker.from_bytes(tracker.to_bytes()).to_bytes() == tracker.to_bytes()
    assert report.records_replayed + report.records_skipped <= 6
    store.journal.close()


@given(
    family=st.sampled_from(FAMILIES),
    cut=st.integers(min_value=0),
)
def test_truncation_recovers_to_last_valid_record(tmp_path_factory, family, cut):
    path = tmp_path_factory.mktemp("cut") / "store"
    build_store(path, family=family)
    blob = journal_path(path).read_bytes()
    keep = cut % (len(blob) + 1)
    journal_path(path).write_bytes(blob[:keep])
    store, report = recover_replica(path, name="a")
    # A truncation can only cost the torn tail: replay stops at the last
    # record whose seal verifies, and reports anything dropped.
    if keep < len(blob):
        assert report.tail is not None or report.records_replayed < 6
    surviving = report.records_replayed
    assert 0 <= surviving <= 6
    if report.tail is not None:
        assert report.tail.dropped_bytes >= 0
    store.journal.close()


@given(bit=st.integers(min_value=0))
def test_snapshot_bit_flip_is_always_typed(bit):
    clock = kernel.make("itc").event()
    record = KeyRecord("a", True, True, (encode_value("v"),), b"")
    blob = encode_snapshot(
        9, [SnapshotGroup(records=(record,), stream=encode_stream([clock]))]
    )
    position = bit % (len(blob) * 8)
    damaged = bytearray(blob)
    damaged[position // 8] ^= 1 << (position % 8)
    with pytest.raises((LogCorrupt, EncodingError)):
        decode_snapshot(bytes(damaged))


@given(
    noise=st.binary(min_size=0, max_size=64),
)
def test_arbitrary_bytes_never_decode_as_records(noise):
    record = encode_record(
        KIND_STATE,
        1,
        encode_state_body(
            KeyRecord("k", True, True, (encode_value(1),), b"\x01\x02")
        ),
    )
    if noise == b"":
        return
    try:
        kind, seq, body = decode_record(record[: len(record) // 2] + noise)
    except (LogCorrupt, EncodingError):
        return
    # A CRC32 collision is astronomically unlikely at these sizes; if one
    # ever surfaces, the decoded frame is at least structurally valid.
    assert kind in (1, 2)


def test_damaged_snapshot_blocks_recovery_with_typed_error(tmp_path):
    path = tmp_path / "store"
    store = StoreReplica(
        "a",
        tracker_factory=KernelTracker.factory("vv-dynamic"),
        durable=True,
        path=path,
    )
    store.put("k", "v")
    store.journal.snapshot(store)
    store.journal.close()
    snapshot = path / FileDurableLog.SNAPSHOT
    data = bytearray(snapshot.read_bytes())
    data[len(data) // 2] ^= 0xFF
    snapshot.write_bytes(bytes(data))
    with pytest.raises(LogCorrupt):
        recover_replica(path, name="a")


def test_sqlite_torn_blob_recovers_prefix(tmp_path):
    path = tmp_path / "store.sqlite"
    log = open_log(path, backend="sqlite")
    journal = StoreJournal(log)
    store = StoreReplica(
        "a",
        tracker_factory=KernelTracker.factory("causal-history"),
        journal=journal,
    )
    store.put("k", 1)
    store.put("k", 2)
    journal.simulate_crash(torn_bytes=5)
    recovered, report = StoreReplica.recover(path, name="a", backend="sqlite")
    assert report.tail is not None
    assert recovered.get("k") == [1]
