"""ABL -- ablations over the design choices and the future-work extension.

Two ablations called out in DESIGN.md:

* **Reduction on/off** -- the Section 6 rewriting is the paper's key lever
  for keeping stamps small; running the same workloads with it disabled
  quantifies exactly what it buys.
* **Version stamps vs. Interval Tree Clocks vs. dynamic version vectors** --
  ITC is the authors' later answer to the same problem (Section 7 future
  work); on identical workloads we compare accuracy (always exact for all
  three) and metadata size.
"""

from repro.analysis.sizes import measure_trace_sizes
from repro.sim.metrics import SweepTable
from repro.kernel.adapters import default_adapters
from repro.sim.runner import LockstepRunner
from repro.sim.workload import churn_trace, fixed_replica_trace, partitioned_trace


WORKLOADS = {
    "fixed-6x200": lambda: fixed_replica_trace(6, 200, seed=1),
    "churn-300": lambda: churn_trace(200, seed=2, target_frontier=8),
    "partitioned": lambda: partitioned_trace(
        initial_replicas=6, partitions=3, phases=3, operations_per_phase=25, seed=3
    ),
}


def test_ablation_reduction_on_off(benchmark, experiment):
    def run():
        rows = {}
        for name, factory in WORKLOADS.items():
            sizes = measure_trace_sizes(factory())
            rows[name] = (
                sizes["version-stamps"].overall_mean_bits,
                sizes["version-stamps-nonreducing"].overall_mean_bits,
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment("ABL-reduction", "Ablation: Section 6 reduction on vs. off")
    table = SweepTable(["workload", "reducing_bits", "nonreducing_bits", "saving"])
    for name, (reducing, non_reducing) in rows.items():
        saving = 1 - reducing / non_reducing if non_reducing else 0.0
        table.add_row(
            workload=name,
            reducing_bits=reducing,
            nonreducing_bits=non_reducing,
            saving=f"{saving:.0%}",
        )
    report.note(table.render(title="mean stamp size (bits) per workload"))
    report.add(
        "reduction never hurts",
        "reducing <= non-reducing on every workload",
        all(reducing <= non_reducing for reducing, non_reducing in rows.values()),
    )
    assert all(reducing <= non_reducing for reducing, non_reducing in rows.values())


def test_ablation_stamps_vs_itc_vs_dynamic_vv(benchmark, experiment):
    def run():
        accuracy = {}
        size = {}
        for name, factory in WORKLOADS.items():
            trace = factory()
            reports, sizes = LockstepRunner(default_adapters(), compare_every_step=False).run(trace)
            accuracy[name] = {
                mechanism: agreement.agreement_rate for mechanism, agreement in reports.items()
            }
            size[name] = {
                mechanism: sizes[mechanism].final_mean_bits for mechanism in reports
            }
        return accuracy, size

    accuracy, size = benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment(
        "ABL-mechanisms", "Ablation: stamps vs. ITC vs. dynamic version vectors"
    )
    table = SweepTable(["workload", "stamps_bits", "itc_bits", "dynamic_vv_bits"])
    for name in WORKLOADS:
        table.add_row(
            workload=name,
            stamps_bits=size[name]["version-stamps"],
            itc_bits=size[name]["interval-tree-clocks"],
            dynamic_vv_bits=size[name]["dynamic-version-vectors"],
        )
    report.note(table.render(title="final mean metadata size (bits)"))
    for name in WORKLOADS:
        report.add(
            f"all mechanisms exact on {name}",
            "100%",
            f"{min(accuracy[name].values()):.0%}",
            matches=min(accuracy[name].values()) == 1.0,
        )
    report.add(
        "stamps cheaper than dynamic VV on the churn workload",
        "yes",
        size["churn-300"]["version-stamps"] < size["churn-300"]["dynamic-version-vectors"],
    )
    assert all(min(values.values()) == 1.0 for values in accuracy.values())
    assert (
        size["churn-300"]["version-stamps"]
        < size["churn-300"]["dynamic-version-vectors"]
    )
