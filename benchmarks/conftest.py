"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures or claims.  Besides
the timing numbers collected by pytest-benchmark, each benchmark prints an
:class:`~repro.analysis.reporting.ExperimentReport` mapping "what the paper
shows" to "what this run measured"; run with ``-s`` (or read the captured
output) to see them, and see EXPERIMENTS.md for the recorded results.
"""

from __future__ import annotations

import pytest

from repro.analysis.reporting import ExperimentReport


def emit(report: ExperimentReport) -> None:
    """Print an experiment report (visible with ``pytest -s``)."""
    print()
    print(report.render())


@pytest.fixture
def experiment():
    """Factory fixture creating named experiment reports and printing them."""
    reports = []

    def make(experiment_id: str, title: str) -> ExperimentReport:
        report = ExperimentReport(experiment_id, title)
        reports.append(report)
        return report

    yield make
    for report in reports:
        emit(report)
