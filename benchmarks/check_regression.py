"""Fail CI when a fresh perf snapshot regresses below the committed floors.

Compares two ``BENCH_ops.json`` files -- the committed snapshot (the floor)
and a freshly measured one -- on the two tracked *speedup ratios*:

* ``join_normalize[<frontier>].speedup_vs_reference`` (packed stamp core vs
  the text-based seed implementation), at frontier 32 by default;
* ``lockstep.speedup_vs_refhistory`` (bitset oracle + incremental lockstep
  cross-check vs the retained frozenset oracle + seed full-rescan strategy);
* ``reroot.speedup_vs_raw`` (Section 7 re-rooting GC vs raw reducing stamps
  on a sibling-starved sync chain);
* ``codec.envelope_vs_json_roundtrip`` (a version-stamp frontier
  round-tripped through the kernel's binary wire envelope vs through the
  JSON codec);
* ``replication.batched_vs_per_envelope`` (steady-state anti-entropy
  rounds/sec with the batched stream sync engine vs the per-envelope
  baseline, version-stamp family at 32 replicas);
* ``chaos.convergence_efficiency`` (fault-free rounds-to-convergence over
  rounds-to-convergence under the 10%-loss fault matrix -- a deterministic
  seeded count ratio, so any drift at all is a real behaviour change in
  the retry/skip machinery, not noise);
* ``health.grey_resilience`` (virtual time for a degraded seeded run with
  the accrual health layer *off* over the same run with detection,
  adaptive deadlines, circuit breakers and hedging *on* -- a
  deterministic virtual-time ratio measuring how much simulated time the
  defensive layer claws back from grey failures);
* ``scale.convergence_efficiency`` (log2(replicas) over the async
  service's rounds-to-convergence at 10^4 simulated replicas -- epidemic
  gossip converges in ~log2(N) rounds, and this deterministic ratio
  drops when the datacenter-scale service starts wasting rounds);
* ``contracts.check_vs_compare`` (per-spec causal ordering contract
  check evaluations/sec over the bare tracker comparison each check
  wraps, both arms in-process on a converged population -- the floor
  pins the enforcement layer's per-comparison overhead);
* ``durability.durable_vs_memory_sync`` (write-churn anti-entropy
  rounds/sec with journaling on over journaling off -- the committed
  floor enforces the <= 10% journaling-overhead budget of the durable
  store design).

Ratios rather than absolute ops/sec are checked because both sides of each
ratio run on the same machine in the same process, so the ratio is stable
across runner hardware while absolute throughput is not.  A tolerance
(default 30%) absorbs scheduler noise on shared CI runners: the check fails
only when ``fresh < committed * (1 - tolerance)``.

A top-level section *wholly absent from the committed snapshot* is skipped
with a note instead of failing: the committed file predates the section,
which is exactly the state of the first PR introducing a new benchmark (the
chicken-and-egg this rule breaks).  Everything else stays strict: a section
that is present but malformed errors, a ratio absent from the *fresh*
snapshot errors (that is a benchmark disappearing, not appearing), and a
committed snapshot with none of the tracked sections fails outright
(an empty or corrupted floor file must not wave CI through).

Usage::

    python benchmarks/check_regression.py BENCH_ops.json BENCH_quick.json
    python benchmarks/check_regression.py floor.json fresh.json --tolerance 0.3

Exit status 0 when every ratio holds, 1 on regression or missing data.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_TOLERANCE = 0.30
JOIN_NORMALIZE_FRONTIER = "32"

#: Sections whose floors are already committed.  These may never be
#: skipped: deleting one from the committed snapshot must fail the check,
#: otherwise a regressing PR could disable its own floor by dropping the
#: section.  The new-section skip below applies only to sections *not*
#: listed here (i.e. benchmarks newer than this file).  When a new section
#: lands, add it to this set in the same PR that commits its first floor.
ESTABLISHED_SECTIONS = frozenset(
    {
        "join_normalize",
        "lockstep",
        "reroot",
        "codec",
        "replication",
        "chaos",
        "health",
        "scale",
        "contracts",
        "durability",
    }
)


def _load(path):
    try:
        return json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        print(f"error: cannot read snapshot {path}: {exc}", file=sys.stderr)
        return None


def _ratio(data, label, *keys):
    """Fetch a nested float or report what is missing/malformed."""
    node = data
    for key in keys:
        if not isinstance(node, dict) or key not in node:
            print(
                f"error: {label} snapshot has no {'.'.join(keys)} entry "
                f"(stale schema? regenerate with perf_snapshot.py)",
                file=sys.stderr,
            )
            return None
        node = node[key]
    if not isinstance(node, (int, float)) or isinstance(node, bool):
        print(f"error: {label} {'.'.join(keys)} is not a number", file=sys.stderr)
        return None
    return float(node)


def check(committed, fresh, *, tolerance=DEFAULT_TOLERANCE):
    """Return True when every tracked ratio holds within ``tolerance``."""
    ok = True
    skipped = 0
    tracked = (
        ("join_normalize", JOIN_NORMALIZE_FRONTIER, "speedup_vs_reference"),
        ("lockstep", "speedup_vs_refhistory"),
        ("reroot", "speedup_vs_raw"),
        ("codec", "envelope_vs_json_roundtrip"),
        ("replication", "batched_vs_per_envelope"),
        ("chaos", "convergence_efficiency"),
        ("health", "grey_resilience"),
        ("scale", "convergence_efficiency"),
        ("contracts", "check_vs_compare"),
        ("durability", "durable_vs_memory_sync"),
    )
    for keys in tracked:
        name = ".".join(keys)
        if (
            isinstance(committed, dict)
            and keys[0] not in committed
            and keys[0] not in ESTABLISHED_SECTIONS
        ):
            # Newly-added bench section: there is no committed floor yet, so
            # there is nothing to regress against.  Skipping (instead of
            # failing) lets the PR that introduces the section also commit
            # its first floor.  Only a *wholly absent*, not-yet-established
            # top-level section qualifies -- a present-but-malformed one and
            # a deleted established one still error below.
            print(f"skip: committed snapshot has no {name} (new section)")
            skipped += 1
            continue
        floor = _ratio(committed, "committed", *keys)
        value = _ratio(fresh, "fresh", *keys)
        if floor is None or value is None:
            ok = False
            continue
        allowed = floor * (1.0 - tolerance)
        if value < allowed:
            print(
                f"REGRESSION: {name} = {value:.2f}x, below the committed "
                f"floor {floor:.2f}x - {tolerance:.0%} tolerance "
                f"(= {allowed:.2f}x)"
            )
            ok = False
        else:
            print(
                f"ok: {name} = {value:.2f}x (floor {floor:.2f}x, "
                f"allowed >= {allowed:.2f}x)"
            )
    if skipped == len(tracked):
        # Every tracked section "new" means the committed snapshot is empty
        # or corrupted, not newer than one benchmark -- fail loudly rather
        # than waving CI through with no floor enforced at all.
        print(
            "error: committed snapshot has none of the tracked sections "
            "(corrupted floor file? regenerate with perf_snapshot.py)",
            file=sys.stderr,
        )
        return False
    return ok


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("committed", help="committed BENCH_ops.json (the floor)")
    parser.add_argument("fresh", help="freshly measured snapshot to validate")
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed fractional drop below the floor (default: 0.30)",
    )
    args = parser.parse_args(argv)

    committed = _load(args.committed)
    fresh = _load(args.fresh)
    if committed is None or fresh is None:
        return 1
    return 0 if check(committed, fresh, tolerance=args.tolerance) else 1


if __name__ == "__main__":
    raise SystemExit(main())
