"""FIG2 -- Figure 2: fork/join dynamics and frontiers of coexisting elements.

Replays the Figure 2 evolution, checks the two frontiers containing ``c2``
discussed in Section 1.2, and verifies (via the lockstep runner) that the
frontier orderings produced by version stamps match the causal-history oracle
throughout the evolution.
"""

from repro.analysis.figures import figure2_frontiers, figure2_trace
from repro.core.frontier import Frontier
from repro.core.order import Ordering
from repro.kernel.adapters import StampAdapter
from repro.sim.runner import LockstepRunner


def _run_figure2():
    trace = figure2_trace()
    runner = LockstepRunner([StampAdapter(reducing=True), StampAdapter(reducing=False)])
    reports, _sizes = runner.run(trace)
    return trace, reports


def test_figure2_fork_join_evolution(benchmark, experiment):
    trace, reports = benchmark(_run_figure2)

    report = experiment("FIG2", "Figure 2: fork/join evolution and frontiers")
    report.add("final frontier after both joins", {"g1"}, set(trace.final_frontier()))
    report.add(
        "widest frontier during the run (d1, e1, c*)",
        3,
        trace.max_frontier_width(),
    )
    for name, agreement in reports.items():
        report.add(
            f"{name} agreement with causal histories",
            "100%",
            f"{agreement.agreement_rate:.0%}",
        )

    # The two possible frontiers containing c2 (Section 1.2).
    frontiers = figure2_frontiers()
    report.add("single-dotted frontier", ["b1", "c2"], frontiers["single-dotted"])
    report.add("double-dotted frontier", ["d1", "e1", "c2"], frontiers["double-dotted"])

    # a1 is in the past of c2: with stamps this shows as obsolescence of any
    # element holding only a1's knowledge.
    frontier = Frontier.initial("a1")
    frontier.update("a1", "a2")
    frontier.fork("a2", "b1", "c1")
    frontier.update("c1", "c2")
    report.add(
        "b1 (holding only a1's knowledge) vs c2",
        "obsolete",
        frontier.compare("b1", "c2").value,
        matches=frontier.compare("b1", "c2") is Ordering.BEFORE,
    )
    assert all(agreement.agreement_rate == 1.0 for agreement in reports.values())
