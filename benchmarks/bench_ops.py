"""OPS -- microbenchmarks of the stamp operations themselves.

The paper reports no throughput numbers; these benchmarks document the cost
of ``update``, ``fork``, ``join`` and ``compare`` for version stamps and the
baselines on this implementation, and how comparison cost scales with the
width of the frontier.  They exist so regressions in the data-structure code
are caught and so users know what to expect.
"""

import pytest

from repro.core.stamp import VersionStamp
from repro.itc.stamp import ITCStamp
from repro.vv.version_vector import VersionVector


def _stamp_frontier(width: int):
    """Build ``width`` coexisting stamps, a few of them updated."""
    stamps = [VersionStamp.seed()]
    while len(stamps) < width:
        stamps.sort(key=lambda stamp: stamp.id_depth())
        left, right = stamps.pop(0).fork()
        stamps.extend((left, right))
    return [
        stamp.update() if index % 3 == 0 else stamp
        for index, stamp in enumerate(stamps)
    ]


class TestStampOperations:
    def test_update(self, benchmark):
        stamps = _stamp_frontier(8)
        benchmark(lambda: [stamp.update() for stamp in stamps])

    def test_fork(self, benchmark):
        stamps = _stamp_frontier(8)
        benchmark(lambda: [stamp.fork() for stamp in stamps])

    def test_join(self, benchmark):
        stamps = _stamp_frontier(8)
        pairs = list(zip(stamps[::2], stamps[1::2]))
        benchmark(lambda: [a.join(b) for a, b in pairs])

    def test_compare(self, benchmark):
        stamps = _stamp_frontier(8)
        benchmark(
            lambda: [a.compare(b) for a in stamps for b in stamps if a is not b]
        )

    def test_sync_round_trip(self, benchmark):
        left, right = VersionStamp.seed().fork()

        def run():
            a, b = left, right
            for _ in range(20):
                a = a.update()
                a, b = a.sync(b)
            return a

        benchmark(run)


@pytest.mark.parametrize("width", [2, 8, 32, 128])
def test_compare_scales_with_frontier_width(benchmark, width):
    stamps = _stamp_frontier(width)
    sample = stamps[: min(len(stamps), 16)]
    benchmark(lambda: [a.compare(b) for a in sample for b in sample if a is not b])


class TestBaselineOperations:
    def test_version_vector_increment_and_merge(self, benchmark):
        vectors = [VersionVector({f"r{i}": i for i in range(8)}) for _ in range(8)]

        def run():
            merged = vectors[0]
            for vector in vectors[1:]:
                merged = merged.merge(vector.increment("r0"))
            return merged

        benchmark(run)

    def test_version_vector_compare(self, benchmark):
        vectors = [
            VersionVector({f"r{i}": i + offset for i in range(8)}) for offset in range(8)
        ]
        benchmark(
            lambda: [a.compare(b) for a in vectors for b in vectors if a is not b]
        )

    def test_itc_event_fork_join(self, benchmark):
        def run():
            left, right = ITCStamp.seed().fork()
            for _ in range(20):
                left = left.event()
                left, right = left.sync(right)
            return left

        benchmark(run)

    def test_itc_compare(self, benchmark):
        stamps = [ITCStamp.seed()]
        while len(stamps) < 8:
            left, right = stamps.pop(0).fork()
            stamps.extend((left, right))
        stamps = [stamp.event() if index % 2 else stamp for index, stamp in enumerate(stamps)]
        benchmark(
            lambda: [a.compare(b) for a in stamps for b in stamps if a is not b]
        )
