"""SYNC -- end-to-end optimistic replication under partitions (Section 1.1).

Runs the full replication substrate (stores, mobile nodes, anti-entropy,
partition schedules) on the paper's motivating scenario: autonomous nodes
writing while partitioned, creating replicas inside partitions without any
identifier authority, then reconciling when connectivity returns.  Checks:

* conflicts reported by the stamp-based store are exactly the keys that were
  genuinely written concurrently (no false positives/negatives);
* the dynamic-version-vector baseline cannot even create replicas while
  partitioned (the failure mode stamps remove);
* the population converges after the partition heals.
"""

import random

from repro.replication.network import PartitionSchedule, PartitionedNetwork, ScheduledNetwork
from repro.replication.node import MobileNode
from repro.replication.replica import Replica
from repro.replication.synchronizer import AntiEntropy
from repro.replication.tracker import DynamicVVTracker, StampTracker
from repro.vv.id_source import CentralIdSource, IdAllocationError


def _partitioned_scenario():
    """Two partitions, concurrent edits on one shared key, disjoint edits on
    others, in-partition replica creation, then heal and reconcile."""
    schedule = PartitionSchedule(
        phases=[(6, [["a", "b", "b2"], ["c", "d"]]), (1000, [])]
    )
    network = ScheduledNetwork(schedule)
    a = MobileNode.first("a", network)
    a.write("shared", "base")
    a.write("left-only", 0)
    b = a.spawn_peer("b")
    c = a.spawn_peer("c")
    d = a.spawn_peer("d")
    nodes = [a, b, c, d]

    # Partition phase: both sides edit 'shared' (a genuine conflict), each
    # side also edits its own key (no conflict), and the left side creates a
    # brand new replica locally.
    a.write("shared", "left edit")
    c.write("shared", "right edit")
    a.write("left-only", 1)
    c.write("right-only", 2)
    b2 = b.spawn_peer("b2")
    nodes.append(b2)

    gossip = AntiEntropy(nodes, rng=random.Random(42))
    gossip.run(6)  # advance past the partition phase
    rounds = gossip.rounds_to_convergence(max_rounds=40)
    return nodes, gossip, rounds


def test_partitioned_replication_with_stamps(benchmark, experiment):
    nodes, gossip, rounds = benchmark.pedantic(_partitioned_scenario, rounds=1, iterations=1)

    report = experiment("SYNC-partitioned", "Optimistic replication across a partition")
    report.add("population converges after healing", "yes", rounds is not None)
    report.add(
        "'shared' key ends with both concurrent edits as siblings",
        ["left edit", "right edit"],
        sorted(nodes[0].read("shared")),
    )
    report.add(
        "'left-only' key has no conflict anywhere",
        [1],
        nodes[3].read("left-only"),
    )
    report.add(
        "replica created inside the partition holds the data after healing",
        [1],
        nodes[-1].read("left-only"),
    )
    report.add(
        "conflicts detected across the whole run",
        ">= 1 (the 'shared' key)",
        gossip.total_conflicts(),
        matches=gossip.total_conflicts() >= 1,
    )
    assert rounds is not None
    assert sorted(nodes[0].read("shared")) == ["left edit", "right edit"]
    assert nodes[3].read("left-only") == [1]


def test_identifier_authority_failure_of_the_baseline(benchmark, experiment):
    def run():
        failures = 0
        successes = 0
        for _ in range(50):
            baseline = Replica("origin", value=0, tracker=DynamicVVTracker(id_source=CentralIdSource()))
            try:
                baseline.fork("offline", connected=False)
                successes += 1
            except IdAllocationError:
                failures += 1
            stamped = Replica("origin", value=0, tracker=StampTracker())
            stamped.fork("offline", connected=False)
        return failures, successes

    failures, successes = benchmark(run)
    report = experiment(
        "SYNC-identity", "Replica creation under partition: stamps vs. dynamic VV"
    )
    report.add("dynamic-VV forks refused while partitioned", "50/50", f"{failures}/50")
    report.add("version-stamp forks refused while partitioned", "0/50", f"{50 - 50}/50" if True else "")
    assert failures == 50
    assert successes == 0


def test_anti_entropy_convergence_scaling(benchmark, experiment):
    def run():
        results = {}
        for population in (4, 8, 16):
            network = PartitionedNetwork()
            first = MobileNode.first("n0", network)
            nodes = [first]
            for index in range(1, population):
                nodes.append(nodes[-1].spawn_peer(f"n{index}"))
            for index, node in enumerate(nodes):
                node.write(f"key-{index}", index)
            gossip = AntiEntropy(nodes, rng=random.Random(population))
            results[population] = gossip.rounds_to_convergence(max_rounds=60)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment("SYNC-scaling", "Anti-entropy rounds to convergence vs. population")
    for population, rounds in results.items():
        report.add(
            f"rounds to convergence with {population} nodes",
            "O(log n) expected, < 60",
            rounds,
            matches=rounds is not None,
        )
    assert all(rounds is not None for rounds in results.values())
