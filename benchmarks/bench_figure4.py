"""FIG4 -- Figure 4: the version stamps of the Figure 2 evolution.

Regenerates every stamp the paper prints (in the ``[update | id]`` notation),
including the final join's simplification chain
``[1 | 00+01+1] -> [1 | 0+1] -> [ε | ε]`` from Section 6.
"""

from repro.analysis.figures import FIGURE4_EXPECTED, figure4_stamps


def test_figure4_version_stamps(benchmark, experiment):
    result = benchmark(figure4_stamps)

    report = experiment("FIG4", "Figure 4: version stamps of the Figure 2 evolution")
    for key, expected in FIGURE4_EXPECTED.items():
        report.add(f"stamp of {key}", expected, result.stamps.get(key, "<missing>"))
    assert result.matches_paper(), result.mismatches()
