"""EQUIV -- Proposition 5.1 / Corollary 5.2 (Section 5).

The paper's central theorem: version stamps induce exactly the causal-history
pre-order on every frontier.  We measure agreement on exhaustive small
executions (including the stronger subset form of Proposition 5.1) and on
large random workloads, for both the reducing and non-reducing stamp
flavours, and contrast with plausible clocks (which, being approximate, are
the one mechanism *expected* to miss conflicts).
"""

from repro.kernel.adapters import LamportAdapter, PlausibleAdapter, StampAdapter
from repro.sim.exhaustive import explore
from repro.sim.runner import LockstepRunner
from repro.sim.workload import churn_trace, partitioned_trace, random_dynamic_trace


def test_equivalence_exhaustive_with_subsets(benchmark, experiment):
    result = benchmark.pedantic(
        lambda: explore(4, max_frontier=3, check_subsets=True),
        rounds=1,
        iterations=1,
    )
    report = experiment(
        "EQUIV-exhaustive", "Proposition 5.1 over every execution of <= 4 operations"
    )
    report.add("configurations checked", "> 100", result.configurations_checked, matches=result.configurations_checked > 100)
    report.add("pairwise disagreements (Corollary 5.2)", 0, result.pairwise_disagreements)
    report.add("subset-form disagreements (Proposition 5.1)", 0, result.subset_disagreements)
    assert result.ok


def test_equivalence_on_random_workloads(benchmark, experiment):
    traces = [
        random_dynamic_trace(100, seed=1, max_frontier=8),
        churn_trace(80, seed=2),
        partitioned_trace(initial_replicas=6, partitions=3, phases=2, operations_per_phase=15, seed=3),
    ]

    def run():
        totals = {}
        for trace in traces:
            runner = LockstepRunner(
                [StampAdapter(reducing=True), StampAdapter(reducing=False)],
                compare_every_step=True,
            )
            reports, _sizes = runner.run(trace)
            for name, agreement in reports.items():
                bucket = totals.setdefault(name, [0, 0])
                bucket[0] += agreement.agreements
                bucket[1] += agreement.comparisons
        return totals

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment(
        "EQUIV-random", "Corollary 5.2 agreement over random/churn/partition workloads"
    )
    for name, (agreements, comparisons) in totals.items():
        report.add(
            f"{name} agreement with causal histories",
            "100%",
            f"{agreements}/{comparisons}",
            matches=agreements == comparisons,
        )
        assert agreements == comparisons


def test_plausible_clocks_are_not_exact(benchmark, experiment):
    """Contrast: the constant-size baseline cannot be exact (Section 1)."""
    trace = random_dynamic_trace(300, seed=5, max_frontier=12)  # plausible clocks only: cheap

    def run():
        runner = LockstepRunner([PlausibleAdapter(entries=4)], compare_every_step=True)
        reports, _sizes = runner.run(trace)
        return next(iter(reports.values()))

    agreement = benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment(
        "EQUIV-plausible", "Plausible clocks: ordered-but-approximate baseline"
    )
    report.add(
        "missed conflicts (expected for a constant-size clock)",
        "> 0",
        agreement.missed_conflicts,
        matches=agreement.missed_conflicts > 0,
    )
    report.add(
        "false conflicts (plausible clocks never contradict causality)",
        0,
        agreement.false_conflicts,
    )
    assert agreement.missed_conflicts > 0
    assert agreement.false_conflicts == 0


def test_lamport_clocks_are_blind_to_concurrency(benchmark, experiment):
    """Contrast: a single scalar counter orders everything, conflicts vanish."""
    trace = random_dynamic_trace(200, seed=9, max_frontier=8)

    def run():
        runner = LockstepRunner([LamportAdapter()], compare_every_step=True)
        reports, _sizes = runner.run(trace)
        return next(iter(reports.values()))

    agreement = benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment(
        "EQUIV-lamport", "Scalar Lamport clocks: causality-consistent, conflict-blind"
    )
    report.add(
        "missed conflicts (scalar clocks cannot express concurrency)",
        "> 0",
        agreement.missed_conflicts,
        matches=agreement.missed_conflicts > 0,
    )
    report.add(
        "agreement rate (strictly below the exact mechanisms)",
        "< 100%",
        f"{agreement.agreement_rate:.0%}",
        matches=agreement.agreement_rate < 1.0,
    )
    assert agreement.missed_conflicts > 0
    assert agreement.agreement_rate < 1.0
