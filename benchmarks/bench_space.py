"""SPACE -- metadata size of version stamps vs. the baselines.

Section 3 motivates "an efficient use of space"; the reduction of Section 6
is what keeps identities proportional to the frontier.  This benchmark sweeps
(a) the number of replicas in a closed system and (b) the amount of replica
churn, and reports the mean per-element metadata size for reducing stamps,
non-reducing stamps, dynamic version vectors and Interval Tree Clocks.

Expected shape (no absolute numbers are reported in the paper):
* reducing stamps stay well below non-reducing stamps under churn;
* dynamic version vectors grow with the number of identifiers ever created,
  so churn hurts them the most;
* everything grows with the frontier width (that is inherent).
"""

from repro.analysis.sizes import churn_sweep, measure_trace_sizes, replica_count_sweep
from repro.sim.metrics import SweepTable
from repro.sim.workload import churn_trace


def test_space_vs_replica_count(benchmark, experiment):
    table = benchmark.pedantic(
        lambda: replica_count_sweep([2, 4, 8, 16], operations=60, seed=1),
        rounds=1,
        iterations=1,
    )
    report = experiment("SPACE-replicas", "Metadata size vs. number of replicas")
    report.note(table.render(title="mean bits per element (final frontier)"))
    stamps = table.column("stamps_bits")
    dynamic = table.column("dynamic_vv_bits")
    report.add(
        "stamps smaller than dynamic version vectors at every width",
        "yes",
        all(s < d for s, d in zip(stamps, dynamic)),
        matches=all(s < d for s, d in zip(stamps, dynamic)),
    )
    report.add(
        "metadata grows with replica count (all mechanisms)",
        "yes",
        stamps[-1] > stamps[0] and dynamic[-1] > dynamic[0],
    )
    assert all(s < d for s, d in zip(stamps, dynamic))


def test_space_vs_churn(benchmark, experiment):
    table = benchmark.pedantic(
        lambda: churn_sweep([100, 200, 400], target_frontier=8, seed=2),
        rounds=1,
        iterations=1,
    )
    report = experiment("SPACE-churn", "Metadata size vs. replica churn")
    report.note(table.render(title="mean bits per element (final frontier)"))
    stamps = table.column("stamps_bits")
    non_reducing = table.column("stamps_nonreducing_bits")
    dynamic = table.column("dynamic_vv_bits")
    report.add(
        "reducing stamps below non-reducing stamps",
        "yes",
        all(s <= n for s, n in zip(stamps, non_reducing)),
    )
    report.add(
        "dynamic version vectors grow fastest with churn",
        "yes",
        dynamic[-1] > stamps[-1],
        matches=dynamic[-1] > stamps[-1],
    )
    report.add(
        "reducing stamp growth from 100 to 600 ops",
        "bounded (< 4x)",
        f"{stamps[-1] / max(stamps[0], 1):.2f}x",
        matches=stamps[-1] < 4 * stamps[0],
    )
    assert all(s <= n for s, n in zip(stamps, non_reducing))
    assert dynamic[-1] > stamps[-1]


def test_space_distribution_on_one_long_churn_run(benchmark, experiment):
    trace = churn_trace(250, seed=3, target_frontier=8)
    sizes = benchmark.pedantic(
        lambda: measure_trace_sizes(trace),
        rounds=1,
        iterations=1,
    )
    report = experiment("SPACE-distribution", "Per-step size statistics on one churn run")
    table = SweepTable(["mechanism", "mean_bits", "peak_bits"])
    for name, sample in sorted(sizes.items()):
        table.add_row(mechanism=name, mean_bits=sample.overall_mean_bits, peak_bits=sample.peak_bits)
    report.note(table.render())
    report.add(
        "causal histories (explicit event sets) are the largest",
        "yes",
        sizes["causal-history"].peak_bits >= sizes["version-stamps"].peak_bits,
    )
    assert sizes["version-stamps"].overall_mean_bits <= sizes[
        "version-stamps-nonreducing"
    ].overall_mean_bits
