"""INV -- Invariants I1, I2, I3 (Section 4).

The paper proves the three invariants hold in every reachable configuration.
We verify them two ways: exhaustively over every execution up to a bounded
number of operations, and statistically over large random workloads.  The
expected violation count is zero everywhere; the benchmark times the checks
themselves (the invariant checker is also a useful runtime debugging tool, so
its cost matters).
"""

from repro.core.invariants import check_all
from repro.sim.exhaustive import explore
from repro.kernel.adapters import StampAdapter
from repro.sim.workload import churn_trace, random_dynamic_trace


def test_invariants_exhaustive_small_model(benchmark, experiment):
    result = benchmark.pedantic(
        lambda: explore(4, max_frontier=3, check_subsets=False),
        rounds=1,
        iterations=1,
    )
    report = experiment("INV-exhaustive", "Invariants over every small execution")
    report.add("configurations explored", "> 100", result.configurations_checked, matches=result.configurations_checked > 100)
    report.add("I1/I2/I3 violations", 0, result.invariant_violations)
    report.add("order disagreements with causal histories", 0, result.pairwise_disagreements)
    assert result.ok


def test_invariants_on_random_workloads(benchmark, experiment):
    def run():
        violations = 0
        checked = 0
        for seed in range(3):
            trace = random_dynamic_trace(200, seed=seed, max_frontier=10)
            adapter = StampAdapter(reducing=True)
            adapter.start(trace.seed)
            for operation in trace.operations:
                adapter.apply(operation)
                invariant_report = check_all(adapter.frontier.stamps())
                checked += 1
                if not invariant_report.ok:
                    violations += 1
        return checked, violations

    checked, violations = benchmark(run)
    report = experiment("INV-random", "Invariants along random dynamic workloads")
    report.add("configurations checked", "600 (3 traces x 200 ops)", checked, matches=checked == 600)
    report.add("violations", 0, violations)
    assert violations == 0
