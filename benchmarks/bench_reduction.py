"""REDUCE -- the Section 6 join-simplification rewriting rule.

Measures how effective the simplification is on fork/join-heavy workloads
(how often joins reduce, how many bits they save) and checks the properties
the paper proves: the rewriting preserves the invariants and the induced
frontier order, and normal forms are reached in finitely many steps.
"""

from repro.core.frontier import Frontier
from repro.core.invariants import check_all
from repro.sim.metrics import ReductionAccumulator
from repro.kernel.adapters import StampAdapter
from repro.sim.runner import LockstepRunner
from repro.sim.trace import OpKind
from repro.sim.workload import churn_trace


def test_reduction_effectiveness_on_churn(benchmark, experiment):
    trace = churn_trace(250, seed=7, target_frontier=8)

    def run():
        accumulator = ReductionAccumulator()
        frontier = Frontier.initial(trace.seed, reducing=False)
        for operation in trace.operations:
            if operation.kind == OpKind.UPDATE:
                frontier.update(operation.source, operation.results[0])
            elif operation.kind == OpKind.FORK:
                frontier.fork(operation.source, *operation.results)
            else:
                first = frontier.stamp_of(operation.source)
                second = frontier.stamp_of(operation.other)
                _joined, stats = first.join_with_stats(second)
                accumulator.record(stats)
                if operation.kind == OpKind.JOIN:
                    frontier.join(operation.source, operation.other, operation.results[0])
                else:
                    frontier.sync(operation.source, operation.other, *operation.results)
        return accumulator

    accumulator = benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment("REDUCE-effectiveness", "Join simplification on a churn workload")
    report.add("joins performed", "> 50", accumulator.joins, matches=accumulator.joins > 50)
    report.add(
        "joins where the rewriting applied",
        "a non-trivial fraction",
        f"{accumulator.reduction_rate:.0%}",
        matches=accumulator.reduction_rate > 0.1,
    )
    report.add(
        "bits saved by normalization",
        "> 5%",
        f"{accumulator.bits_saved_fraction:.0%}",
        matches=accumulator.bits_saved_fraction > 0.05,
    )
    assert accumulator.joins > 50
    assert accumulator.reduction_rate > 0.1


def test_reduction_preserves_order_and_invariants(benchmark, experiment):
    trace = churn_trace(80, seed=11, target_frontier=6)

    def run():
        runner = LockstepRunner(
            [StampAdapter(reducing=True), StampAdapter(reducing=False)],
            compare_every_step=True,
            check_invariants=True,
        )
        return runner.run(trace)

    reports, sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    reducing = reports["version-stamps"]
    non_reducing = reports["version-stamps-nonreducing"]

    report = experiment(
        "REDUCE-correctness", "Reduction preserves the frontier order (R) and I1-I3"
    )
    report.add("reducing stamps agreement with causal histories", "100%", f"{reducing.agreement_rate:.0%}")
    report.add("non-reducing stamps agreement with causal histories", "100%", f"{non_reducing.agreement_rate:.0%}")
    report.add("invariant failures (reducing)", 0, reducing.invariant_failures)
    report.add(
        "mean stamp size, reducing vs non-reducing",
        "reducing <= non-reducing",
        f"{sizes['version-stamps'].overall_mean_bits:.0f} vs "
        f"{sizes['version-stamps-nonreducing'].overall_mean_bits:.0f} bits",
        matches=sizes["version-stamps"].overall_mean_bits
        <= sizes["version-stamps-nonreducing"].overall_mean_bits,
    )
    assert reducing.agreement_rate == 1.0
    assert non_reducing.agreement_rate == 1.0
    assert reducing.invariant_failures == 0


def test_fork_join_round_trip_restores_identity(benchmark, experiment):
    """Section 3: a fork followed by a join restores the original id."""
    from repro.core.stamp import VersionStamp

    def run():
        stamp = VersionStamp.seed()
        for _ in range(200):
            left, right = stamp.fork()
            stamp = left.join(right)
        return stamp

    stamp = benchmark(run)
    report = experiment("REDUCE-roundtrip", "200 fork/join round trips")
    report.add("final stamp", "[ε | ε]", str(stamp))
    assert str(stamp) == "[ε | ε]"
