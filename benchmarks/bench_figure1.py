"""FIG1 -- Figure 1: version vectors tracking updates among three replicas.

Regenerates the exact vector values the paper prints for replicas A, B and C
and times the scenario (a microbenchmark of classic version-vector update
tracking).
"""

from repro.analysis.figures import FIGURE1_EXPECTED, figure1_version_vectors
from repro.core.order import Ordering


def test_figure1_version_vectors(benchmark, experiment):
    result = benchmark(figure1_version_vectors)

    report = experiment("FIG1", "Figure 1: version vectors among three replicas")
    for replica, expected in FIGURE1_EXPECTED.items():
        report.add(
            f"vector timeline of replica {replica}",
            expected,
            result.timelines[replica],
        )
    report.add(
        "final A vs B relation",
        "mutually inconsistent",
        result.final_orderings[("A", "B")].value,
        matches=result.final_orderings[("A", "B")] is Ordering.CONCURRENT,
    )
    report.add(
        "final B vs C relation",
        "equivalent (synchronized)",
        result.final_orderings[("B", "C")].value,
        matches=result.final_orderings[("B", "C")] is Ordering.EQUAL,
    )
    assert result.matches_paper()
