"""Perf snapshot of the stamp core and the lockstep oracle (BENCH_ops.json).

Measures three things:

* the throughput of the four Definition 4.3 operations plus the ``compare``
  pre-order at several frontier widths (``ops_per_sec``);
* a **join+normalize** microbenchmark run through both the packed-integer
  core and the retained text-based reference implementation
  (:mod:`repro.core.refimpl`), reporting the speedup (``join_normalize``);
* a **lockstep long-trace** benchmark (``lockstep``): a 500-step random
  fork/join/update trace replayed through :class:`repro.sim.runner.
  LockstepRunner` with per-step cross-checking, once with the bitset-backed
  causal oracle (:mod:`repro.causal.history`) and once with the retained
  frozenset oracle (:mod:`repro.causal.refhistory`), reporting trace
  steps/sec for each and the speedup.  This is the oracle-dominated regime
  of the long-trace experiments: histories hold hundreds of events and the
  per-step frontier cross-check is where the time goes.
* a **re-rooting GC** benchmark (``reroot``): a sibling-starved sync-chain
  trace (:func:`repro.sim.workload.sync_chain_trace`) replayed through a
  plain frontier and through one with the Section 7 re-rooting garbage
  collector enabled (:mod:`repro.core.reroot`).  Raw stamps compound
  exponentially on this workload, so the trace is kept just long enough
  for the raw arm to stay measurable; the tracked ratio is the GC'd
  replay's speedup over the raw replay, plus a long GC'd-only soak
  throughput for context.
* a **wire codec** benchmark (``codec``): encode/decode throughput of the
  kernel's epoch-tagged envelope (:mod:`repro.kernel.envelope`) for every
  registered clock family at each frontier width, plus the tracked ratio
  ``envelope_vs_json_roundtrip`` -- a version-stamp frontier round-tripped
  through the binary envelope vs through the JSON codec of
  :mod:`repro.core.encoding` (both arms in-process, so the ratio is stable
  across machines).  Encode is measured through the encode-once clock
  cache and decode through the decode-side intern (both on by design), so
  the rates reflect the steady state of a process re-shipping live
  metadata -- exactly the anti-entropy regime the replication benchmark
  drives end to end.
* a **chaos resilience** benchmark (``chaos``): the same anti-entropy
  population driven through :class:`repro.replication.faults.
  FaultyTransport` at several loss levels (plus duplication, reordering
  and bit corruption), reporting rounds-to-convergence, goodput and the
  full fault-counter breakdown per level.  Every number in the section is
  a **deterministic seeded count** -- no wall clock is involved (retry
  backoff is simulated latency), so the figures are bit-identical across
  machines.  The tracked ratio is ``convergence_efficiency``: fault-free
  rounds-to-convergence over rounds-to-convergence at 10% loss -- how
  little the fault matrix stretches the protocol.
* a **replication sync** benchmark (``replication``): steady-state
  anti-entropy throughput of the wire sync engine
  (:class:`repro.replication.synchronizer.WireSyncEngine`) over a
  fully-connected population, for every clock family at several replica
  counts -- gossip rounds/sec and stamps/sec, batched streams vs the
  per-envelope baseline, plus per-round message/byte counts.  The tracked
  ratio is ``batched_vs_per_envelope``: the version-stamp batched/
  per-envelope rounds-per-second ratio at 32 replicas (both arms
  in-process).

* a **contracts** benchmark (``contracts``): the causal ordering
  contract layer (:mod:`repro.contracts`) evaluated in its passing
  steady state on a converged gossip population -- per-spec check
  evaluations/sec vs the bare tracker comparison each check wraps, with
  the tracked ratio ``check_vs_compare`` pinning the enforcement
  layer's per-comparison overhead (both arms in-process, so the ratio
  transfers across machines) -- plus the provenance replay rate of
  :func:`repro.contracts.provenance.reconstruct` over a scripted
  lost-leg sync history;

* a **durability** benchmark (``durability``): recovery time against
  journals of several lengths (worst case: no snapshot, full replay),
  compacted-snapshot bytes per key for every clock family (the snapshot
  *is* the wire bytes -- see :mod:`repro.durability.store`), and the
  journaling overhead on write-churn anti-entropy rounds.  The tracked
  ratio is ``durable_vs_memory_sync`` (durable over in-memory rounds/sec,
  both arms in-process on the same schedule); the committed floor holds
  the <= 10% overhead budget of the durable-store design.

The output file makes the perf trajectory a tracked artifact: CI runs the
quick mode on every push and ``benchmarks/check_regression.py`` fails the
build when a recorded speedup drops below the committed floor.

Usage::

    PYTHONPATH=src python benchmarks/perf_snapshot.py            # full run
    PYTHONPATH=src python benchmarks/perf_snapshot.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/perf_snapshot.py -o out.json

The harness needs nothing beyond the standard library; timings use the
best-of-N repetition scheme of ``timeit`` to shrug off scheduler noise.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import kernel
from repro.core.encoding import stamp_from_json, stamp_to_json
from repro.core.frontier import Frontier
from repro.core.refimpl import RefStamp
from repro.core.stamp import VersionStamp
from repro.durability.recovery import recover_replica
from repro.durability.store import StoreJournal, open_log
from repro.kernel.adapters import CausalAdapter, RefCausalAdapter
from repro.replication import (
    AntiEntropy,
    FaultPlan,
    FaultyTransport,
    FullyConnectedNetwork,
    KernelTracker,
    MobileNode,
    RetryPolicy,
    StoreReplica,
    WireSyncEngine,
)
from repro.replication.network import PartitionedNetwork
from repro.sim.runner import LockstepRunner
from repro.sim.trace import apply_operation
from repro.sim.workload import random_dynamic_trace, sync_chain_trace

DEFAULT_FRONTIER_SIZES = (8, 16, 32, 64)
QUICK_FRONTIER_SIZES = (8, 32)

#: Replication benchmark shape: replica populations per family, the number
#: of replicated keys, and the warm-up rounds that bring the population to
#: the steady state (everything replicated everywhere, metadata stable).
DEFAULT_REPLICA_COUNTS = (8, 16, 32, 64)
QUICK_REPLICA_COUNTS = (8, 32)
REPLICATION_KEYS = 24
REPLICATION_WARMUP_ROUNDS = 6
#: The tracked replication ratio is measured at this population size.
REPLICATION_TRACKED_REPLICAS = 32
REPLICATION_TRACKED_FAMILY = "version-stamp"

#: Chaos benchmark shape: a small population, every key written up front,
#: then faulty anti-entropy rounds until convergence.  Everything is
#: seeded and counted (retry backoff is simulated), so the section is
#: deterministic -- the tolerance of the regression check absorbs nothing
#: and any drift is a real behaviour change.
CHAOS_LOSS_LEVELS = (0.0, 0.1, 0.3)
CHAOS_REPLICAS = 5
CHAOS_KEYS = 12
CHAOS_SEED = 424242
CHAOS_RETRY_ATTEMPTS = 4
CHAOS_MAX_ROUNDS = 200
#: The tracked efficiency ratio compares fault-free convergence against
#: this loss level.
CHAOS_TRACKED_LOSS = 0.1
CHAOS_FAMILY = "version-stamp"

#: Scale benchmark shape: the async anti-entropy service drives this many
#: simulated replicas to convergence on the virtual clock.  Everything is
#: seeded (gossip schedule, initial writes, link jitter) and the reported
#: numbers are counts and virtual-time figures -- never wall-clock -- so
#: the section is bit-identical across machines and runs, quick mode
#: included (same shape, so the committed floor always applies).  The
#: tracked ratio is ``convergence_efficiency`` = log2(replicas) divided by
#: rounds-to-convergence: epidemic gossip converges in ~log2(N) rounds, so
#: ~1.0 is ideal and a drop means the service started wasting rounds.
SCALE_REPLICAS = 10_000
SCALE_KEYS = 4
SCALE_SHARDS = 4
SCALE_SEED = 0
SCALE_MAX_ROUNDS = 64
SCALE_LINK_LATENCY = 0.001
SCALE_LINK_BANDWIDTH = 1e9
SCALE_LINK_JITTER = 0.1

#: Health benchmark shape: the grey-failure counterpart of the chaos
#: section.  Three arms of the same seeded write schedule -- a healthy
#: baseline, a degraded run with the accrual health layer off (the
#: control) and a degraded run with detection, deadlines, breakers and
#: hedging on (protected) -- each driven to convergence on the virtual
#: clock.  All reported figures are counts and virtual-time totals, so
#: the section is bit-identical across machines and runs, quick mode
#: included (same shape, so the committed floor always applies).  The
#: tracked ratio is ``grey_resilience`` = control virtual time divided by
#: protected virtual time: how much simulated time the defensive layer
#: claws back from the grey weather; a drop means the detection/hedging
#: machinery got worse at routing around degraded peers.
HEALTH_REPLICAS = 10
HEALTH_KEYS = 4
HEALTH_WRITE_ROUNDS = 40
HEALTH_WRITES_PER_ROUND = 10
HEALTH_SETTLE_ROUNDS = 120
HEALTH_WRITERS = 2
HEALTH_SEED = 6600
HEALTH_LINK_LATENCY = 0.05
HEALTH_COMPACT_THRESHOLD_BITS = 512
HEALTH_FAMILY = "version-stamp"

#: Lockstep benchmark shape: long enough that histories hold hundreds of
#: events, wide enough that the per-step cross-check dominates.
LOCKSTEP_TRACE_STEPS = 500
LOCKSTEP_MAX_FRONTIER = 64

#: Re-rooting benchmark shape.  42 sync-chain steps is the sweet spot: the
#: raw (no-GC) arm has already blown up ~4 orders of magnitude (hundreds of
#: kilobits per stamp) yet still replays in tens of milliseconds; the GC'd
#: arm holds stamps around a hundred bits throughout.  The soak arm is the
#: long GC'd-only replay showing throughput stays flat at trace lengths the
#: raw stamps could never reach.
REROOT_CHAIN_STEPS = 42
REROOT_SOAK_STEPS = 1500
REROOT_REPLICAS = 4
REROOT_THRESHOLD_BITS = 256

#: Contracts benchmark shape.  The enforcement arm drives a converged
#: gossip population (every export already propagated, so checks pass and
#: no reports are allocated) and times ``ContractChecker.check`` in
#: per-spec evaluations/sec against the bare tracker comparison the
#: checker wraps -- both arms in-process, so the tracked ratio
#: ``check_vs_compare`` is the enforcement layer's overhead per
#: comparison and transfers across runner hardware.  The provenance arm
#: replays :func:`repro.contracts.provenance.reconstruct` over a scripted
#: sync history whose target never appears (the full-replay worst case).
CONTRACTS_FAMILY = "version-stamp"
CONTRACTS_REPLICAS = 4
CONTRACTS_FRESHNESS_LAG = 4
CONTRACTS_WARMUP_WRITES = 8
CONTRACTS_PROVENANCE_EXCHANGES = 256
CONTRACTS_PROVENANCE_PEERS = 8

#: Durability benchmark shape.  Recovery is timed against journals of
#: these lengths (records); the snapshot arm measures compacted bytes per
#: key for every clock family; the overhead arm compares write-churn
#: anti-entropy rounds/sec with and without journaling (file backend, OS
#: page cache -- the process-crash model the replication layer defaults
#: to).  The tracked ratio is durable/in-memory rounds-per-second: the
#: ISSUE budget is <= 10% journaling overhead, i.e. a ratio >= 0.9.
DURABILITY_LOG_LENGTHS = (256, 1024, 4096)
QUICK_DURABILITY_LOG_LENGTHS = (256, 1024)
DURABILITY_KEYS = 24
DURABILITY_SNAPSHOT_KEYS = 64
DURABILITY_REPLICAS = 6
DURABILITY_FAMILY = "version-stamp"
DURABILITY_WARMUP_ROUNDS = 24
DURABILITY_CHURN_ROUNDS = 150
DURABILITY_COMPACT_THRESHOLD_BITS = 384


def _build_frontier(width, *, reducing=True, cls=VersionStamp):
    """``width`` coexisting stamps, every third one updated (mixed knowledge)."""
    stamps = [cls.seed(reducing=reducing)]
    while len(stamps) < width:
        left, right = stamps.pop(0).fork()
        stamps.extend((left, right))
    return [
        stamp.update() if index % 3 == 0 else stamp
        for index, stamp in enumerate(stamps)
    ]


def _best_rate(operation, operations_per_call, *, repeats, min_time):
    """Best observed ops/sec over ``repeats`` timed batches."""
    best = 0.0
    for _ in range(repeats):
        calls = 0
        start = time.perf_counter()
        elapsed = 0.0
        while elapsed < min_time:
            operation()
            calls += 1
            elapsed = time.perf_counter() - start
        rate = calls * operations_per_call / elapsed
        best = max(best, rate)
    return best


def measure_core_ops(width, *, repeats, min_time):
    """ops/sec for update/fork/join/compare at one frontier width."""
    stamps = _build_frontier(width)
    pairs = list(zip(stamps[::2], stamps[1::2]))
    results = {
        "update": _best_rate(
            lambda: [s.update() for s in stamps], len(stamps),
            repeats=repeats, min_time=min_time,
        ),
        "fork": _best_rate(
            lambda: [s.fork() for s in stamps], len(stamps),
            repeats=repeats, min_time=min_time,
        ),
        "join": _best_rate(
            lambda: [a.join(b) for a, b in pairs], len(pairs),
            repeats=repeats, min_time=min_time,
        ),
        "compare": _best_rate(
            lambda: [a.compare(b) for a in stamps for b in stamps if a is not b],
            len(stamps) * (len(stamps) - 1),
            repeats=repeats, min_time=min_time,
        ),
    }
    return results


def _fold_plans(width, rounds, seed=12345):
    """Random join orders folding ``width`` elements down to one.

    Real anti-entropy merges arrive in arbitrary order, so intermediate
    names carry O(width) strings and the Section 6 reduction fires
    throughout the fold -- the regime where normalization cost matters.
    The plans are precomputed so the timed loop contains nothing but joins.
    """
    import random

    rng = random.Random(seed)
    plans = []
    for _ in range(rounds):
        order = []
        alive = list(range(width))
        slot = width
        while len(alive) > 1:
            i, j = rng.sample(range(len(alive)), 2)
            a, b = alive[i], alive[j]
            for index in sorted((i, j), reverse=True):
                del alive[index]
            order.append((a, b, slot))
            alive.append(slot)
            slot += 1
        plans.append(order)
    return plans


def measure_join_normalize(width, *, repeats, min_time):
    """The acceptance microbenchmark: join+normalize, packed vs reference.

    Folds a width-``width`` frontier of updated stamps back to a single
    stamp along precomputed random join orders; every join triggers the
    Section 6 normalization.  The same workload runs through the packed
    core and the retained text-based seed implementation
    (:mod:`repro.core.refimpl`), and the ratio is the tracked speedup.
    """
    packed_frontier = _build_frontier(width, cls=VersionStamp)
    reference_frontier = _build_frontier(width, cls=RefStamp)
    plans = _fold_plans(width, rounds=8)
    joins_per_call = sum(len(plan) for plan in plans)

    def collapse(frontier):
        for plan in plans:
            slots = list(frontier) + [None] * len(plan)
            for a, b, out in plan:
                slots[out] = slots[a].join(slots[b])
        return slots[-1]

    packed_rate = _best_rate(
        lambda: collapse(packed_frontier), joins_per_call,
        repeats=repeats, min_time=min_time,
    )
    reference_rate = _best_rate(
        lambda: collapse(reference_frontier), joins_per_call,
        repeats=repeats, min_time=min_time,
    )
    return {
        "packed_ops_per_sec": packed_rate,
        "reference_ops_per_sec": reference_rate,
        "speedup_vs_reference": packed_rate / reference_rate if reference_rate else None,
    }


def measure_lockstep(
    *,
    steps=LOCKSTEP_TRACE_STEPS,
    max_frontier=LOCKSTEP_MAX_FRONTIER,
    repeats,
    min_time,
):
    """Lockstep trace throughput: this PR's oracle stack vs the seed stack.

    Replays one deterministic ``steps``-operation trace (frontier capped at
    ``max_frontier``, update-heavy so histories hold hundreds of events)
    through a :class:`LockstepRunner` with no comparison mechanisms
    attached: every step pays only for the oracle's frontier cross-check,
    i.e. the cost this benchmark isolates.  The same trace runs twice:

    * bitset-backed :class:`CausalAdapter` with the incremental
      comparison-cache strategy (this PR's lockstep stack), and
    * frozenset :class:`RefCausalAdapter` with the retained seed strategy
      (full O(F²) matrix rescans), exactly as the seed runner behaved.

    The two stacks are proven to produce identical agreement reports by the
    differential tests; the ratio of their trace throughput is the tracked
    speedup.
    """
    trace = random_dynamic_trace(
        steps,
        seed=97,
        update_weight=0.55,
        fork_weight=0.3,
        join_weight=0.15,
        max_frontier=max_frontier,
        name="lockstep-bench",
    )

    def replay_with(oracle_factory, incremental):
        def run():
            runner = LockstepRunner(
                adapters=[],
                oracle=oracle_factory(),
                compare_every_step=True,
                check_invariants=False,
                incremental=incremental,
            )
            runner.run(trace)
        return run

    bitset_rate = _best_rate(
        replay_with(CausalAdapter, True), len(trace),
        repeats=repeats, min_time=min_time,
    )
    reference_rate = _best_rate(
        replay_with(RefCausalAdapter, False), len(trace),
        repeats=repeats, min_time=min_time,
    )
    return {
        "trace_steps": steps,
        "max_frontier": max_frontier,
        "bitset_steps_per_sec": bitset_rate,
        "refhistory_steps_per_sec": reference_rate,
        "speedup_vs_refhistory": (
            bitset_rate / reference_rate if reference_rate else None
        ),
    }


def _replay_frontier(trace, threshold, *, track_peak=False):
    frontier = Frontier.initial(trace.seed, reroot_threshold=threshold)
    peak = 0
    for operation in trace.operations:
        apply_operation(frontier, operation)
        if track_peak:
            peak = max(peak, frontier.max_stamp_bits())
    return frontier, peak


def measure_reroot(
    *,
    chain_steps=REROOT_CHAIN_STEPS,
    soak_steps=REROOT_SOAK_STEPS,
    replicas=REROOT_REPLICAS,
    threshold=REROOT_THRESHOLD_BITS,
    repeats,
    min_time,
):
    """Re-rooting GC vs raw reducing stamps on a sibling-starved sync chain.

    The same ``chain_steps``-operation :func:`sync_chain_trace` replays
    through a plain frontier and one with ``reroot_threshold=threshold``;
    the speedup of the GC'd replay is the tracked ratio (stable across
    machines, both arms run in the same process).  A second, GC'd-only
    replay of a ``soak_steps`` trace reports absolute soak throughput and
    the peak stamp size, demonstrating the bounded regime the raw stamps
    cannot enter at all.
    """
    trace = sync_chain_trace(chain_steps, replicas=replicas, seed=11)
    rerooted_rate = _best_rate(
        lambda: _replay_frontier(trace, threshold), len(trace),
        repeats=repeats, min_time=min_time,
    )
    raw_rate = _best_rate(
        lambda: _replay_frontier(trace, None), len(trace),
        repeats=repeats, min_time=min_time,
    )
    soak_trace = sync_chain_trace(soak_steps, replicas=replicas, seed=11)
    soak_rate = _best_rate(
        lambda: _replay_frontier(soak_trace, threshold), len(soak_trace),
        repeats=max(1, repeats - 1), min_time=min_time,
    )
    final, soak_peak = _replay_frontier(soak_trace, threshold, track_peak=True)
    return {
        "chain_steps": chain_steps,
        "soak_steps": soak_steps,
        "replicas": replicas,
        "threshold_bits": threshold,
        "rerooted_steps_per_sec": rerooted_rate,
        "raw_steps_per_sec": raw_rate,
        "speedup_vs_raw": rerooted_rate / raw_rate if raw_rate else None,
        "soak_steps_per_sec": soak_rate,
        "soak_peak_stamp_bits": soak_peak,
        "soak_reroots": final.reroots_performed,
    }


def _build_kernel_frontier(family, width):
    """``width`` coexisting kernel clocks with mixed knowledge."""
    clocks = [kernel.make(family)]
    while len(clocks) < width:
        left, right = clocks.pop(0).fork()
        clocks.extend((left, right))
    return [
        clock.event() if index % 3 == 0 else clock
        for index, clock in enumerate(clocks)
    ]


def measure_codec(frontier_sizes, *, repeats, min_time):
    """Envelope encode/decode throughput for every registered clock family.

    Per family and frontier width: clocks/sec through ``to_bytes`` and
    ``from_bytes`` plus the mean envelope size.  The tracked floor is
    ``envelope_vs_json_roundtrip``: one full round-trip of a version-stamp
    frontier through the binary envelope vs through the JSON codec, at the
    largest measured width.  Both arms run in the same process, so the
    ratio (unlike the absolute rates) transfers across runner hardware.
    """
    section = {"frontier_sizes": list(frontier_sizes), "families": {}}
    for family in kernel.families():
        per_width = {}
        for width in frontier_sizes:
            clocks = _build_kernel_frontier(family, width)
            blobs = [clock.to_bytes() for clock in clocks]
            per_width[str(width)] = {
                "encode_ops_per_sec": _best_rate(
                    lambda clocks=clocks: [c.to_bytes() for c in clocks],
                    len(clocks), repeats=repeats, min_time=min_time,
                ),
                "decode_ops_per_sec": _best_rate(
                    lambda blobs=blobs: [kernel.from_bytes(b) for b in blobs],
                    len(blobs), repeats=repeats, min_time=min_time,
                ),
                "mean_envelope_bytes": sum(len(b) for b in blobs) / len(blobs),
            }
        section["families"][family] = per_width

    width = max(frontier_sizes)
    clocks = _build_kernel_frontier("version-stamp", width)
    stamps = [clock.stamp for clock in clocks]
    envelope_rate = _best_rate(
        lambda: [kernel.from_bytes(c.to_bytes()) for c in clocks],
        len(clocks), repeats=repeats, min_time=min_time,
    )
    json_rate = _best_rate(
        lambda: [stamp_from_json(stamp_to_json(s)) for s in stamps],
        len(stamps), repeats=repeats, min_time=min_time,
    )
    section["roundtrip_width"] = width
    section["envelope_roundtrips_per_sec"] = envelope_rate
    section["json_roundtrips_per_sec"] = json_rate
    section["envelope_vs_json_roundtrip"] = (
        envelope_rate / json_rate if json_rate else None
    )
    return section


def _build_population(family, replicas, keys, *, seed=0):
    """A fully-connected gossip population with ``keys`` replicated keys."""
    import random

    network = FullyConnectedNetwork()
    nodes = [
        MobileNode.first(
            "n0", network, tracker_factory=KernelTracker.factory(family)
        )
    ]
    for index in range(1, replicas):
        nodes.append(nodes[-1].spawn_peer(f"n{index}"))
    rng = random.Random(seed)
    for index in range(keys):
        rng.choice(nodes).write(f"key{index}", f"value{index}")
    return nodes


def _measure_sync_arm(family, replicas, *, batched, repeats, min_time):
    """Steady-state gossip throughput of one engine mode.

    Builds a population, replicates every key everywhere during warm-up
    rounds, then times further anti-entropy rounds.  In the steady state
    no values move, so what is measured is exactly the cost of shipping,
    decoding and comparing causal metadata -- the wire path this PR
    optimizes.  Returns (rounds/sec, stamps per round, messages per
    round, bytes per round).
    """
    import random

    nodes = _build_population(family, replicas, REPLICATION_KEYS)
    engine = WireSyncEngine(batched=batched)
    gossip = AntiEntropy(nodes, rng=random.Random(7), engine=engine)
    for _ in range(REPLICATION_WARMUP_ROUNDS):
        gossip.run_round()
    shipped_before = engine.stamps_shipped
    messages_before, bytes_before = engine.meter.snapshot()
    rounds_before = len(gossip.reports)
    rate = _best_rate(
        gossip.run_round, 1, repeats=repeats, min_time=min_time
    )
    rounds = len(gossip.reports) - rounds_before
    return (
        rate,
        (engine.stamps_shipped - shipped_before) / rounds,
        (engine.meter.messages - messages_before) / rounds,
        (engine.meter.bytes_sent - bytes_before) / rounds,
    )


def measure_replication(replica_counts, *, repeats, min_time):
    """Batched vs per-envelope anti-entropy for every clock family.

    Both arms run the identical merge logic over the identical population
    shape; they differ only in wire framing (one stream per peer pair and
    direction vs one envelope per stamp) and decode strategy (lazy,
    interned frames vs individual envelope decodes).  The tracked floor is
    the version-stamp batched/per-envelope rounds-per-second ratio at
    ``REPLICATION_TRACKED_REPLICAS`` replicas; both arms share the
    process, so the ratio transfers across runner hardware.
    """
    section = {
        "replica_counts": list(replica_counts),
        "keys": REPLICATION_KEYS,
        "warmup_rounds": REPLICATION_WARMUP_ROUNDS,
        "tracked_family": REPLICATION_TRACKED_FAMILY,
        "tracked_replicas": REPLICATION_TRACKED_REPLICAS,
        "families": {},
    }
    for family in kernel.families():
        per_count = {}
        for replicas in replica_counts:
            batched_rate, stamps, b_messages, b_bytes = _measure_sync_arm(
                family, replicas, batched=True,
                repeats=repeats, min_time=min_time,
            )
            envelope_rate, _, e_messages, e_bytes = _measure_sync_arm(
                family, replicas, batched=False,
                repeats=repeats, min_time=min_time,
            )
            per_count[str(replicas)] = {
                "batched_rounds_per_sec": batched_rate,
                "per_envelope_rounds_per_sec": envelope_rate,
                "speedup_batched_vs_per_envelope": (
                    batched_rate / envelope_rate if envelope_rate else None
                ),
                "stamps_per_round": stamps,
                "batched_stamps_per_sec": batched_rate * stamps,
                "per_envelope_stamps_per_sec": envelope_rate * stamps,
                "batched_messages_per_round": b_messages,
                "per_envelope_messages_per_round": e_messages,
                "batched_bytes_per_round": b_bytes,
                "per_envelope_bytes_per_round": e_bytes,
            }
        section["families"][family] = per_count
    tracked = section["families"][REPLICATION_TRACKED_FAMILY][
        str(REPLICATION_TRACKED_REPLICAS)
    ]
    section["batched_vs_per_envelope"] = tracked[
        "speedup_batched_vs_per_envelope"
    ]
    return section


def _chaos_arm(loss):
    """Rounds-to-convergence and fault counters at one loss level.

    Fully deterministic: the transport schedule, the gossip pairings and
    the simulated retry backoff all derive from :data:`CHAOS_SEED`, so
    the returned counts are bit-identical across machines and runs.
    """
    import random

    network = PartitionedNetwork()
    plan = FaultPlan.perfect() if loss == 0.0 else FaultPlan.chaos(loss=loss)
    transport = FaultyTransport(network, plan=plan, seed=CHAOS_SEED)
    engine = WireSyncEngine(
        transport=transport,
        retry=RetryPolicy(attempts=CHAOS_RETRY_ATTEMPTS),
    )
    nodes = [
        MobileNode.first(
            "n0", transport, tracker_factory=KernelTracker.factory(CHAOS_FAMILY)
        )
    ]
    for index in range(1, CHAOS_REPLICAS):
        nodes.append(nodes[-1].spawn_peer(f"n{index}"))
    rng = random.Random(CHAOS_SEED + 1)
    for index in range(CHAOS_KEYS):
        rng.choice(nodes).write(f"key{index}", f"value{index}")
    gossip = AntiEntropy(nodes, rng=random.Random(CHAOS_SEED + 2), engine=engine)
    rounds = 0
    while not gossip.converged() and rounds < CHAOS_MAX_ROUNDS:
        gossip.run_round()
        rounds += 1
    if not gossip.converged():
        raise RuntimeError(
            f"chaos benchmark arm at loss={loss} failed to converge within "
            f"{CHAOS_MAX_ROUNDS} rounds"
        )
    meter = engine.meter
    return {
        "rounds_to_convergence": rounds,
        "goodput": meter.goodput(),
        "messages": meter.messages,
        "bytes_sent": meter.bytes_sent,
        "dropped": meter.dropped,
        "duplicated": meter.duplicated,
        "corrupted": meter.corrupted,
        "retried": meter.retried,
        "retry_latency": meter.retry_latency,
        "deliveries_failed": engine.deliveries_failed,
        "frames_rejected": engine.frames_rejected,
    }


def measure_chaos(loss_levels=CHAOS_LOSS_LEVELS):
    """Convergence cost of the fault matrix, as deterministic seeded counts.

    One population shape per loss level: :data:`CHAOS_REPLICAS` replicas,
    every key written before the first round, then faulty anti-entropy
    rounds until ``converged()``.  The 0.0 arm runs a perfect transport
    (the clean reference); lossy arms run the full
    :meth:`~repro.replication.faults.FaultPlan.chaos` matrix (loss plus
    duplication, reordering and bit corruption).  The tracked ratio is
    ``convergence_efficiency`` = clean rounds / rounds at
    :data:`CHAOS_TRACKED_LOSS` -- 1.0 means the fault matrix cost nothing,
    and a drop means the retry/skip machinery got worse at hiding faults.
    """
    section = {
        "replicas": CHAOS_REPLICAS,
        "keys": CHAOS_KEYS,
        "seed": CHAOS_SEED,
        "family": CHAOS_FAMILY,
        "retry_attempts": CHAOS_RETRY_ATTEMPTS,
        "loss_levels": {},
    }
    for loss in loss_levels:
        section["loss_levels"][f"{loss:.2f}"] = _chaos_arm(loss)
    clean = section["loss_levels"]["0.00"]["rounds_to_convergence"]
    tracked = section["loss_levels"][f"{CHAOS_TRACKED_LOSS:.2f}"]
    section["tracked_loss"] = f"{CHAOS_TRACKED_LOSS:.2f}"
    section["convergence_efficiency"] = (
        clean / tracked["rounds_to_convergence"]
        if tracked["rounds_to_convergence"]
        else None
    )
    return section


def measure_scale():
    """Datacenter-scale convergence via the async anti-entropy service.

    :data:`SCALE_REPLICAS` simulated replicas gossip the batched stream
    format over the virtual-time event loop (overlap mode,
    :data:`SCALE_SHARDS` key shards, millisecond links) until every
    replica agrees.  All reported figures are deterministic: round and
    byte *counts*, plus latency percentiles in *virtual* seconds -- the
    wall-clock cost of the simulation never leaks into the snapshot.
    """
    import math

    from repro.service import AntiEntropyService, LinkProfile, build_cluster

    nodes, keys = build_cluster(SCALE_REPLICAS, keys=SCALE_KEYS, seed=SCALE_SEED)
    service = AntiEntropyService(
        nodes,
        shards=SCALE_SHARDS,
        seed=SCALE_SEED,
        link=LinkProfile(
            latency=SCALE_LINK_LATENCY,
            bandwidth=SCALE_LINK_BANDWIDTH,
            jitter=SCALE_LINK_JITTER,
        ),
    )
    report = service.run(max_rounds=SCALE_MAX_ROUNDS)
    if report.converged_after is None:
        raise RuntimeError(
            f"scale benchmark failed to converge within {SCALE_MAX_ROUNDS} rounds"
        )
    rounds_p = report.round_duration_percentiles()
    legs_p = report.session_latency_percentiles()
    return {
        "replicas": SCALE_REPLICAS,
        "keys": SCALE_KEYS,
        "shards": SCALE_SHARDS,
        "seed": SCALE_SEED,
        "link_latency": SCALE_LINK_LATENCY,
        "link_bandwidth": SCALE_LINK_BANDWIDTH,
        "link_jitter": SCALE_LINK_JITTER,
        "rounds_to_convergence": report.converged_after,
        "virtual_seconds": report.virtual_seconds,
        "messages": report.total_messages,
        "bytes_sent": report.total_bytes,
        "bytes_per_key": report.bytes_per_key(len(keys)),
        "bytes_per_key_per_replica": report.bytes_per_key_per_replica(len(keys)),
        "round_p50_virtual_seconds": rounds_p[0.5],
        "round_p90_virtual_seconds": rounds_p[0.9],
        "round_p99_virtual_seconds": rounds_p[0.99],
        "transfer_leg_p50_virtual_seconds": legs_p[0.5],
        "transfer_leg_p90_virtual_seconds": legs_p[0.9],
        "transfer_leg_p99_virtual_seconds": legs_p[0.99],
        "convergence_efficiency": (
            math.log2(SCALE_REPLICAS) / report.converged_after
        ),
    }


def _health_arm(*, degrade, health, hedge):
    """One seeded grey-weather run; returns deterministic observables.

    The structure mirrors ``tests/service/test_grey_soak.py``: a clean
    pre-phase seeds every key everywhere, a maintenance re-rooting sweep
    runs once per service round (version stamps grow exponentially under
    sync churn -- the paper's core motivation -- and would overflow the
    wire format without it), then the cluster settles to convergence.
    """
    import random

    from repro.replication import DegradationPlan
    from repro.service import (
        AntiEntropyService,
        AsyncWireSyncEngine,
        HealthConfig,
        LinkProfile,
        build_cluster,
    )

    seed = HEALTH_SEED
    nodes, names = build_cluster(
        HEALTH_REPLICAS,
        keys=HEALTH_KEYS,
        family=HEALTH_FAMILY,
        seed=seed,
        writes_per_key=0,
    )
    plan = FaultPlan(degradation=DegradationPlan.grey() if degrade else None)
    transport = FaultyTransport(nodes[0].network, plan=plan, seed=seed)
    service = AntiEntropyService(
        nodes,
        engine=AsyncWireSyncEngine(transport=transport),
        link=LinkProfile(latency=HEALTH_LINK_LATENCY),
        seed=seed,
        health=(
            HealthConfig(min_samples=3, min_deadline=1.0, max_deadline=20.0)
            if health
            else None
        ),
        hedge=hedge,
    )
    maintenance = AntiEntropy(
        nodes,
        rng=random.Random(seed + 1),
        engine=WireSyncEngine(),
        compact_threshold_bits=HEALTH_COMPACT_THRESHOLD_BITS,
    )
    for name in names:
        nodes[0].write(name, f"seed-{name}")
    for _ in range(40):
        maintenance.run_round()
        if maintenance.converged():
            break
    if not maintenance.converged():
        raise RuntimeError("health benchmark pre-phase failed to converge")

    ops = random.Random(seed + 2)
    step = 0
    detection_round = None

    def sweep_and_inject(metrics):
        nonlocal step, detection_round
        if detection_round is None and metrics.timeouts > 0:
            detection_round = metrics.number
        maintenance.run_round()
        for _ in range(HEALTH_WRITES_PER_ROUND):
            nodes[ops.randrange(HEALTH_WRITERS)].write(
                ops.choice(names), f"s{step}"
            )
            step += 1

    write = service.run(
        max_rounds=HEALTH_WRITE_ROUNDS,
        until_converged=False,
        on_round=sweep_and_inject,
    )
    maintenance.run_round()
    settle = service.run(
        max_rounds=HEALTH_SETTLE_ROUNDS,
        until_converged=True,
        on_round=lambda metrics: maintenance.run_round(),
    )
    if settle.converged_after is None:
        raise RuntimeError(
            "health benchmark arm failed to converge within "
            f"{HEALTH_SETTLE_ROUNDS} settle rounds"
        )
    counters = service.health.counters() if service.health is not None else {}
    return {
        "virtual_seconds": write.virtual_seconds + settle.virtual_seconds,
        "settle_rounds": len(settle.rounds),
        "detection_latency_rounds": detection_round,
        "timeouts": counters.get("timeouts", 0),
        "hedges": counters.get("hedges", 0),
        "hedge_wins": counters.get("hedge_wins", 0),
        "breaker_skips": counters.get("breaker_skips", 0),
    }


def measure_health():
    """Grey-failure resilience of the defensive anti-entropy service.

    Reported per arm: total virtual seconds to drive the seeded write
    schedule and settle to convergence, settle-phase round count, the
    round at which the accrual detector first cut a session off
    (detection latency), and the timeout/hedge/breaker counters.  The
    section-level figures: ``hedge_rate`` (hedges per timeout in the
    protected arm), ``convergence_slowdown_vs_healthy`` (protected over
    healthy virtual time -- the price of the grey weather *with* the
    defense up) and the tracked ``grey_resilience`` ratio (control over
    protected virtual time -- what the defense saves).
    """
    healthy = _health_arm(degrade=False, health=True, hedge=True)
    control = _health_arm(degrade=True, health=False, hedge=False)
    protected = _health_arm(degrade=True, health=True, hedge=True)
    if healthy["timeouts"] or healthy["breaker_skips"]:
        raise RuntimeError(
            "health benchmark healthy arm tripped the detector "
            "(false positives make the ratio meaningless)"
        )
    return {
        "replicas": HEALTH_REPLICAS,
        "keys": HEALTH_KEYS,
        "seed": HEALTH_SEED,
        "family": HEALTH_FAMILY,
        "write_rounds": HEALTH_WRITE_ROUNDS,
        "writes_per_round": HEALTH_WRITES_PER_ROUND,
        "link_latency": HEALTH_LINK_LATENCY,
        "healthy": healthy,
        "control": control,
        "protected": protected,
        "detection_latency_rounds": protected["detection_latency_rounds"],
        "hedge_rate": (
            protected["hedges"] / protected["timeouts"]
            if protected["timeouts"]
            else None
        ),
        "convergence_slowdown_vs_healthy": (
            protected["virtual_seconds"] / healthy["virtual_seconds"]
        ),
        "grey_resilience": (
            control["virtual_seconds"] / protected["virtual_seconds"]
        ),
    }


def _churn_elapsed(base, *, durable):
    """One write-churn run: build the population, time the fixed schedule.

    Quiescent rounds journal nothing (an EQUAL sync outcome writes no
    records), so the overhead workload makes every round actually move
    data: one write per round on a rotating node, then one gossip round,
    with auto re-rooting keeping the metadata bounded.  The schedule is
    fully deterministic (fixed seeds, fixed round count), so the durable
    and in-memory arms execute identical work and differ only in whether
    the stores journal to disk (file backend, OS page cache), including
    the amortized snapshots epoch bumps take.
    """
    import random

    network = FullyConnectedNetwork()
    factory = KernelTracker.factory(DURABILITY_FAMILY)
    if durable:
        store = StoreReplica(
            "n0", tracker_factory=factory,
            durable=True, path=Path(base) / "n0",
        )
        nodes = [MobileNode("n0", store, network)]
    else:
        nodes = [MobileNode.first("n0", network, tracker_factory=factory)]
    for index in range(1, DURABILITY_REPLICAS):
        peer = nodes[-1].spawn_peer(f"n{index}")
        if durable:
            peer.store.journal = StoreJournal(open_log(Path(base) / f"n{index}"))
            for key in peer.store.keys():
                peer.store._record(key)
            peer.store._flush_journal()
        nodes.append(peer)
    rng = random.Random(11)
    for index in range(DURABILITY_KEYS):
        rng.choice(nodes).write(f"key{index}", f"value{index}")
    gossip = AntiEntropy(
        nodes,
        rng=random.Random(13),
        engine=WireSyncEngine(),
        compact_threshold_bits=DURABILITY_COMPACT_THRESHOLD_BITS,
    )
    for _ in range(DURABILITY_WARMUP_ROUNDS):
        gossip.run_round()
    start = time.perf_counter()
    for step in range(DURABILITY_CHURN_ROUNDS):
        nodes[step % len(nodes)].write(f"key{step % DURABILITY_KEYS}", step)
        gossip.run_round()
    return time.perf_counter() - start


def _measure_sync_overhead(root, *, repeats):
    """Paired rounds/sec for the durable and in-memory churn arms.

    The workload's journaling overhead (~10%) is of the same order as
    this machine's run-to-run timing noise, so the measurement leans on
    two facts: both arms run the *same deterministic schedule* every
    repeat, and timing noise is strictly additive (GC pauses, scheduler
    preemption, frequency scaling only ever make a run slower).  The
    minimum elapsed per arm is therefore the estimator of each arm's
    true cost, and the tracked ratio divides the two minima.  The arms
    are still run interleaved (memory then durable, back to back each
    repeat) so neither gets to monopolize a favourable load regime, and
    a generational collection before each timed run keeps GC pauses
    from landing on one arm only.
    """
    import gc

    best = {"memory": None, "durable": None}
    for attempt in range(max(1, repeats)):
        for arm, durable in (("memory", False), ("durable", True)):
            gc.collect()
            elapsed = _churn_elapsed(
                Path(root) / f"{arm}-{attempt}", durable=durable
            )
            if best[arm] is None or elapsed < best[arm]:
                best[arm] = elapsed
    return (
        DURABILITY_CHURN_ROUNDS / best["durable"],
        DURABILITY_CHURN_ROUNDS / best["memory"],
        best["memory"] / best["durable"],
    )


def measure_contracts(*, repeats, min_time):
    """Contract enforcement overhead and provenance reconstruction rate.

    The enforcement arm builds a :data:`CONTRACTS_REPLICAS`-replica
    population, propagates :data:`CONTRACTS_WARMUP_WRITES` exports until
    the consumer holds the latest one, then times
    :meth:`~repro.contracts.checker.ContractChecker.check` over an
    observes and a bounded-freshness contract in the steady (passing)
    state -- the rate a store pays to evaluate contracts on every
    operation boundary.  The baseline arm times the single bare
    ``stale_or_concurrent`` tracker comparison the checker wraps, on the
    same live observer forks; the tracked ratio ``check_vs_compare``
    divides the two per-comparison rates, so a drop means the dispatch,
    log-lookup and report machinery around the comparison got heavier.

    The provenance arm scripts :data:`CONTRACTS_PROVENANCE_EXCHANGES`
    exchange records (one in five a lost leg) whose target replica never
    appears, forcing :func:`~repro.contracts.provenance.reconstruct` to
    replay the whole window every call, and reports traces/sec and
    records/sec.
    """
    import random

    from repro.contracts import ContractChecker, ContractSpec, reconstruct
    from repro.replication import SyncHistory

    network = FullyConnectedNetwork()
    factory = KernelTracker.factory(CONTRACTS_FAMILY)
    writer = MobileNode.first("writer", network, tracker_factory=factory)
    nodes = [writer] + [
        writer.spawn_peer(f"r{index}")
        for index in range(CONTRACTS_REPLICAS - 1)
    ]
    consumer = nodes[-1].store
    history = SyncHistory(maxlen=512)
    engine = WireSyncEngine(history=history)
    specs = [
        ContractSpec(
            name="observes", kind="observes",
            source="export", target="consume", key="k",
        ),
        ContractSpec(
            name="freshness", kind="freshness-within-k-events",
            source="export", target="consume", key="k",
            max_lag=CONTRACTS_FRESHNESS_LAG,
        ),
    ]
    checker = ContractChecker(specs, history=history)
    checker.watch_writes(writer.store, "export")
    gossip = AntiEntropy(
        nodes,
        rng=random.Random(5),
        engine=engine,
        compact_threshold_bits=384,
    )
    for generation in range(CONTRACTS_WARMUP_WRITES):
        writer.write("k", generation)
        gossip.run_round()
    violations = checker.check("consume", consumer, raise_on_violation=False)
    if violations:
        raise RuntimeError(
            "contracts benchmark population failed to reach the passing "
            f"steady state: {[v.summary() for v in violations]}"
        )
    check_rate = _best_rate(
        lambda: checker.check("consume", consumer, raise_on_violation=False),
        len(specs), repeats=repeats, min_time=min_time,
    )
    target = consumer.observe("k")
    record = writer.store.observe("k")
    compare_rate = _best_rate(
        lambda: target.stale_or_concurrent(record), 1,
        repeats=repeats, min_time=min_time,
    )

    trace_history = SyncHistory(maxlen=CONTRACTS_PROVENANCE_EXCHANGES)
    peers = [f"n{index}" for index in range(CONTRACTS_PROVENANCE_PEERS)]
    rng = random.Random(9)
    for seq in range(CONTRACTS_PROVENANCE_EXCHANGES):
        first, second = rng.sample(peers, 2)
        lost = seq % 5 == 0
        trace_history.append(
            first=first,
            second=second,
            keys_synced=() if lost else ("k",),
            keys_lost=(("k", "request-lost"),) if lost else (),
            messages=2,
            bytes_sent=64,
            dropped=1 if lost else 0,
            duplicated=0,
            retried=1 if lost else 0,
            corrupted=0,
            deliveries_failed=1 if lost else 0,
        )
    trace_rate = _best_rate(
        lambda: reconstruct(
            trace_history,
            key="k",
            source_replica=peers[0],
            target_replica="absent",
            since_seq=0,
        ),
        1, repeats=repeats, min_time=min_time,
    )
    return {
        "family": CONTRACTS_FAMILY,
        "replicas": CONTRACTS_REPLICAS,
        "specs": len(specs),
        "check_ops_per_sec": check_rate,
        "compare_ops_per_sec": compare_rate,
        "check_vs_compare": check_rate / compare_rate if compare_rate else None,
        "provenance": {
            "exchanges": CONTRACTS_PROVENANCE_EXCHANGES,
            "peers": CONTRACTS_PROVENANCE_PEERS,
            "traces_per_sec": trace_rate,
            "records_per_sec": trace_rate * CONTRACTS_PROVENANCE_EXCHANGES,
        },
    }


def measure_durability(log_lengths, *, repeats, min_time):
    """Recovery time, snapshot density and journaling overhead.

    Three arms:

    * ``recovery``: a journal of N records (no snapshot -- the worst
      case) rebuilt from disk via :func:`repro.durability.recovery.
      recover_replica`, reporting seconds and records/sec per length;
    * ``snapshot``: a compacted snapshot of ``DURABILITY_SNAPSHOT_KEYS``
      keys for every clock family, reporting bytes per key (the "CS"
      group streams make this the same bytes the wire ships);
    * ``sync_overhead``: write-churn anti-entropy rounds/sec with
      journaling on vs off, measured as interleaved repeats of one
      fixed deterministic schedule (``min_time`` does not apply).  The
      tracked ratio ``durable_vs_memory_sync`` divides the two minimum
      elapsed times -- the committed floor enforces the <= 10% overhead
      budget (ratio >= 0.9) in CI.
    """
    import tempfile

    del min_time  # fixed-length schedules; repeats absorb noise

    section = {
        "family": DURABILITY_FAMILY,
        "backend": "file",
        "log_lengths": list(log_lengths),
        "recovery": {},
        "snapshot": {},
    }
    factory = KernelTracker.factory(DURABILITY_FAMILY)
    with tempfile.TemporaryDirectory(prefix="repro-bench-durability-") as root:
        for length in log_lengths:
            path = Path(root) / f"recover-{length}"
            store = StoreReplica(
                "bench", tracker_factory=factory, durable=True, path=path
            )
            for index in range(length):
                store.put(f"key{index % DURABILITY_KEYS}", {"step": index})
            journal_bytes = store.journal.log.journal_bytes()
            store.journal.close()
            best = 0.0
            for _ in range(repeats):
                start = time.perf_counter()
                recovered, report = recover_replica(path, name="bench")
                elapsed = time.perf_counter() - start
                recovered.journal.close()
                best = max(best, length / elapsed)
            assert report.records_replayed == length
            section["recovery"][str(length)] = {
                "journal_bytes": journal_bytes,
                "seconds": length / best,
                "records_per_sec": best,
            }
        for family in kernel.families():
            path = Path(root) / f"snapshot-{family}"
            store = StoreReplica(
                "bench",
                tracker_factory=KernelTracker.factory(family),
                durable=True,
                path=path,
            )
            for index in range(DURABILITY_SNAPSHOT_KEYS):
                store.put(f"key{index}", {"slot": index})
            blob_size = store.journal.snapshot(store)
            store.journal.close()
            section["snapshot"][family] = {
                "keys": DURABILITY_SNAPSHOT_KEYS,
                "snapshot_bytes": blob_size,
                "bytes_per_key": blob_size / DURABILITY_SNAPSHOT_KEYS,
            }
        durable_rate, memory_rate, ratio = _measure_sync_overhead(
            Path(root) / "churn", repeats=max(repeats, 7)
        )
    section["sync_overhead"] = {
        "replicas": DURABILITY_REPLICAS,
        "keys": DURABILITY_KEYS,
        "rounds": DURABILITY_CHURN_ROUNDS,
        "durable_rounds_per_sec": durable_rate,
        "memory_rounds_per_sec": memory_rate,
    }
    section["durable_vs_memory_sync"] = ratio
    return section


def snapshot(
    *,
    frontier_sizes=DEFAULT_FRONTIER_SIZES,
    replica_counts=DEFAULT_REPLICA_COUNTS,
    durability_log_lengths=DURABILITY_LOG_LENGTHS,
    repeats=3,
    min_time=0.05,
):
    """Collect the full snapshot dictionary (no I/O)."""
    data = {
        "schema": "repro-bench-ops/2",
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "frontier_sizes": list(frontier_sizes),
        "ops_per_sec": {},
        "join_normalize": {},
    }
    for width in frontier_sizes:
        data["ops_per_sec"][str(width)] = measure_core_ops(
            width, repeats=repeats, min_time=min_time
        )
        data["join_normalize"][str(width)] = measure_join_normalize(
            width, repeats=repeats, min_time=min_time
        )
    data["lockstep"] = measure_lockstep(repeats=repeats, min_time=min_time)
    data["reroot"] = measure_reroot(repeats=repeats, min_time=min_time)
    data["codec"] = measure_codec(frontier_sizes, repeats=repeats, min_time=min_time)
    data["replication"] = measure_replication(
        replica_counts, repeats=repeats, min_time=min_time
    )
    data["chaos"] = measure_chaos()
    data["health"] = measure_health()
    data["scale"] = measure_scale()
    data["contracts"] = measure_contracts(repeats=repeats, min_time=min_time)
    data["durability"] = measure_durability(
        durability_log_lengths, repeats=repeats, min_time=min_time
    )
    return data


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        epilog=(
            "Sections written: ops_per_sec (update/fork/join/compare at each "
            "frontier width), join_normalize (packed core vs text-based seed "
            "implementation, speedup tracked), and lockstep (a "
            f"{LOCKSTEP_TRACE_STEPS}-step random trace at frontier "
            f"{LOCKSTEP_MAX_FRONTIER} replayed through LockstepRunner: "
            "bitset causal oracle + incremental comparison caching vs the "
            "retained frozenset oracle + seed full-rescan strategy, in trace "
            "steps/sec), reroot (a sibling-starved sync chain replayed "
            "with and without the Section 7 re-rooting GC, speedup tracked), "
            "codec (kernel envelope encode/decode per clock family, with "
            "the envelope-vs-JSON roundtrip ratio tracked), and replication "
            "(steady-state anti-entropy rounds/sec and stamps/sec per clock "
            "family at 8-64 replicas, batched streams vs the per-envelope "
            "baseline, with the batched-vs-per-envelope ratio at 32 "
            "replicas tracked), and chaos (rounds-to-convergence and fault "
            "counters under a faulty transport at 0/10/30 percent loss, all "
            "deterministic seeded counts, with the clean-vs-10-percent "
            "convergence-efficiency ratio tracked), health (grey-failure "
            "resilience: a seeded degraded run with the accrual health "
            "layer on vs off vs a healthy baseline, reporting detection "
            "latency in rounds, hedge rate and the convergence slowdown, "
            "with the control-vs-protected grey-resilience ratio tracked), "
            "scale (the async "
            f"anti-entropy service converging {SCALE_REPLICAS:,} simulated "
            "replicas on virtual time: rounds, bytes/key and round/leg "
            "latency percentiles, all deterministic, with the "
            "log2(N)-per-round convergence-efficiency ratio tracked), "
            "contracts (causal ordering contract checks/sec vs the bare "
            "tracker comparison they wrap, ratio tracked, plus provenance "
            "reconstruction traces/sec over a scripted lost-leg history), "
            "and durability "
            "(recovery records/sec vs journal length, snapshot bytes/key "
            "per clock family, and journaling overhead on write-churn sync "
            "rounds, with the durable-vs-in-memory ratio tracked). "
            "benchmarks/check_regression.py compares the join_normalize@32, "
            "lockstep, reroot, codec, replication, chaos, health, scale, "
            "contracts "
            "and durability ratios of a fresh "
            "snapshot against the committed BENCH_ops.json and fails CI "
            "when one drops more than 30 percent below its floor (sections "
            "absent from the committed snapshot are skipped, so a PR adding "
            "a section can land)."
        ),
    )
    parser.add_argument(
        "-o", "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_ops.json"),
        help="where to write the JSON snapshot (default: repo root BENCH_ops.json)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: fewer frontier sizes and shorter timing windows",
    )
    args = parser.parse_args(argv)

    if args.quick:
        data = snapshot(
            frontier_sizes=QUICK_FRONTIER_SIZES,
            replica_counts=QUICK_REPLICA_COUNTS,
            durability_log_lengths=QUICK_DURABILITY_LOG_LENGTHS,
            repeats=2,
            min_time=0.02,
        )
    else:
        data = snapshot()
    data["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")

    output = Path(args.output)
    try:
        output.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    except OSError as exc:
        print(f"error: cannot write snapshot to {output}: {exc}", file=sys.stderr)
        return 1

    print(f"wrote {output}")
    for width, ops in data["ops_per_sec"].items():
        summary = ", ".join(f"{name}={rate:,.0f}/s" for name, rate in ops.items())
        print(f"  frontier {width:>3}: {summary}")
    for width, ratio in data["join_normalize"].items():
        print(
            f"  join+normalize @ {width:>3}: packed "
            f"{ratio['packed_ops_per_sec']:,.0f}/s vs reference "
            f"{ratio['reference_ops_per_sec']:,.0f}/s "
            f"-> {ratio['speedup_vs_reference']:.1f}x"
        )
    lockstep = data["lockstep"]
    print(
        f"  lockstep {lockstep['trace_steps']} steps @ frontier "
        f"{lockstep['max_frontier']}: bitset "
        f"{lockstep['bitset_steps_per_sec']:,.0f} steps/s vs refhistory "
        f"{lockstep['refhistory_steps_per_sec']:,.0f} steps/s "
        f"-> {lockstep['speedup_vs_refhistory']:.1f}x"
    )
    reroot = data["reroot"]
    print(
        f"  reroot {reroot['chain_steps']}-step sync chain: GC'd "
        f"{reroot['rerooted_steps_per_sec']:,.0f} steps/s vs raw "
        f"{reroot['raw_steps_per_sec']:,.0f} steps/s "
        f"-> {reroot['speedup_vs_raw']:.1f}x; soak {reroot['soak_steps']} "
        f"steps at {reroot['soak_steps_per_sec']:,.0f} steps/s, peak stamp "
        f"{reroot['soak_peak_stamp_bits']} bits over {reroot['soak_reroots']} "
        f"reroots"
    )
    codec = data["codec"]
    for family, widths in codec["families"].items():
        widest = str(max(int(w) for w in widths))
        rates = widths[widest]
        print(
            f"  codec {family:<16} @ {widest:>3}: encode "
            f"{rates['encode_ops_per_sec']:,.0f}/s, decode "
            f"{rates['decode_ops_per_sec']:,.0f}/s, "
            f"{rates['mean_envelope_bytes']:.0f} B/envelope"
        )
    print(
        f"  codec envelope vs JSON roundtrip @ {codec['roundtrip_width']}: "
        f"{codec['envelope_vs_json_roundtrip']:.1f}x"
    )
    replication = data["replication"]
    for family, counts in replication["families"].items():
        widest = str(max(int(c) for c in counts))
        arm = counts[widest]
        print(
            f"  sync {family:<16} @ {widest:>3} replicas: batched "
            f"{arm['batched_rounds_per_sec']:,.0f} rounds/s "
            f"({arm['batched_stamps_per_sec']:,.0f} stamps/s) vs "
            f"per-envelope {arm['per_envelope_rounds_per_sec']:,.0f} rounds/s "
            f"-> {arm['speedup_batched_vs_per_envelope']:.1f}x"
        )
    print(
        f"  sync batched vs per-envelope "
        f"({replication['tracked_family']} @ "
        f"{replication['tracked_replicas']} replicas): "
        f"{replication['batched_vs_per_envelope']:.1f}x"
    )
    chaos = data["chaos"]
    for loss, arm in chaos["loss_levels"].items():
        print(
            f"  chaos @ {loss} loss: {arm['rounds_to_convergence']} rounds "
            f"to convergence, goodput {arm['goodput']:.2f}, "
            f"{arm['dropped']} dropped / {arm['duplicated']} duplicated / "
            f"{arm['corrupted']} corrupted / {arm['retried']} retried"
        )
    print(
        f"  chaos convergence efficiency @ {chaos['tracked_loss']} loss: "
        f"{chaos['convergence_efficiency']:.2f}"
    )
    health = data["health"]
    print(
        f"  health: detection in {health['detection_latency_rounds']} rounds, "
        f"hedge rate {health['hedge_rate']:.2f}, slowdown vs healthy "
        f"{health['convergence_slowdown_vs_healthy']:.2f}x, grey resilience "
        f"{health['grey_resilience']:.2f}x "
        f"({health['protected']['timeouts']} timeouts, "
        f"{health['protected']['hedges']} hedges, "
        f"{health['protected']['hedge_wins']} wins)"
    )
    scale = data["scale"]
    print(
        f"  scale @ {scale['replicas']:,} replicas x {scale['shards']} shards: "
        f"{scale['rounds_to_convergence']} rounds "
        f"({scale['virtual_seconds']:.3f} virtual s), "
        f"{scale['bytes_per_key_per_replica']:.1f} B/key/replica, round p99 "
        f"{scale['round_p99_virtual_seconds'] * 1000:.1f} ms, "
        f"efficiency {scale['convergence_efficiency']:.2f}"
    )
    contracts = data["contracts"]
    print(
        f"  contracts: {contracts['check_ops_per_sec']:,.0f} spec-checks/s "
        f"vs {contracts['compare_ops_per_sec']:,.0f} bare compares/s "
        f"-> {contracts['check_vs_compare']:.2f}x; provenance "
        f"{contracts['provenance']['traces_per_sec']:,.0f} traces/s over "
        f"{contracts['provenance']['exchanges']} exchanges"
    )
    durability = data["durability"]
    for length, arm in durability["recovery"].items():
        print(
            f"  recovery @ {length:>5} records: {arm['seconds'] * 1000:.1f} ms "
            f"({arm['records_per_sec']:,.0f} records/s, "
            f"{arm['journal_bytes']:,} journal bytes)"
        )
    for family, arm in durability["snapshot"].items():
        print(
            f"  snapshot {family:<16} @ {arm['keys']} keys: "
            f"{arm['snapshot_bytes']:,} B ({arm['bytes_per_key']:.0f} B/key)"
        )
    overhead = durability["sync_overhead"]
    print(
        f"  durable sync: {overhead['durable_rounds_per_sec']:,.0f} rounds/s "
        f"vs in-memory {overhead['memory_rounds_per_sec']:,.0f} rounds/s "
        f"-> {durability['durable_vs_memory_sync']:.2f}x "
        f"(budget >= 0.90)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
