"""FIG3 -- Figure 3: encoding a fixed replica set under fork-and-join dynamics.

The figure's point is that the classic fixed-replica version-vector setting
is a special case of the fork/join model: running the Figure 1 scenario both
ways must induce identical orderings at every synchronization checkpoint.
This benchmark also sweeps larger fixed replica sets to show the encoding
keeps agreeing with version vectors beyond the 3-replica example.
"""

from repro.analysis.figures import figure3_encoding
from repro.sim.runner import LockstepRunner
from repro.sim.workload import fixed_replica_trace


def test_figure3_fixed_replicas_as_fork_join(benchmark, experiment):
    result = benchmark(figure3_encoding)

    report = experiment(
        "FIG3", "Figure 3: fixed replicas encoded with fork-and-join dynamics"
    )
    report.add(
        "checkpoints where stamps agree with version vectors",
        "all (5/5)",
        f"{sum(1 for s, v in zip(result.stamp_orderings, result.vector_orderings) if s == v)}/5",
        matches=result.stamp_orderings == result.vector_orderings,
    )
    report.add(
        "checkpoints where both agree with causal histories",
        "all (5/5)",
        f"{sum(1 for s, c in zip(result.stamp_orderings, result.causal_orderings) if s == c)}/5",
        matches=result.all_agree(),
    )
    assert result.all_agree()


def test_figure3_generalizes_to_larger_fixed_systems(benchmark, experiment):
    def run_sweep():
        rates = {}
        for replicas in (2, 4, 8):
            trace = fixed_replica_trace(replicas, 80, seed=replicas)
            reports, _sizes = LockstepRunner(compare_every_step=False).run(trace)
            rates[replicas] = min(
                agreement.agreement_rate for agreement in reports.values()
            )
        return rates

    rates = benchmark(run_sweep)
    report = experiment(
        "FIG3-sweep", "Fixed replica sets of growing size under fork/join encoding"
    )
    for replicas, rate in rates.items():
        report.add(
            f"order agreement with causal histories ({replicas} replicas)",
            "100%",
            f"{rate:.0%}",
        )
    assert all(rate == 1.0 for rate in rates.values())
