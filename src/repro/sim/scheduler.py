"""A discrete-event scheduler behind the standard ``asyncio`` surface.

The datacenter-scale service (:mod:`repro.service`) needs thousands of
replica daemons sleeping through simulated link latency, retry backoff and
gossip intervals -- and a test suite that drives them cannot afford one
real second of wall time per simulated second.  :class:`VirtualTimeLoop`
is the discrete-event answer: a real ``asyncio`` event loop whose clock is
**virtual**.  Whenever every runnable callback has run and only timers
remain, the loop jumps its clock straight to the earliest deadline instead
of blocking in the selector.  ``await asyncio.sleep(3600)`` therefore
costs microseconds of wall time while still ordering events exactly as a
wall clock would, and ``loop.time()`` reads the simulation's own clock.

Determinism is the point, not a side effect: the loop is single-threaded,
timers break ties by insertion order (the standard ``asyncio`` heap), and
nothing here consults the OS clock or an unseeded RNG -- so a simulation
driven only by virtual sleeps and seeded RNGs replays *identically*, event
for event.  That property is what lets the async anti-entropy service be
proven lockstep-equal to the synchronous engine and what keeps the
``scale`` bench section's numbers machine-independent.

:func:`run_virtual` is the ``asyncio.run`` analogue: run one coroutine on
a fresh virtual-time loop and return ``(result, virtual_elapsed)``.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Tuple, TypeVar

__all__ = ["VirtualTimeLoop", "run_virtual", "virtual_time"]

T = TypeVar("T")


class VirtualTimeLoop(asyncio.SelectorEventLoop):
    """A selector event loop running on simulated time.

    ``time()`` returns the virtual clock, which starts at ``0.0`` and only
    moves when the loop is otherwise idle: with no ready callbacks and at
    least one scheduled timer, the clock jumps to the earliest timer's
    deadline, making that timer due immediately.  Every ``asyncio``
    primitive layered on timers -- ``sleep``, ``wait_for`` timeouts,
    ``Condition`` waits -- therefore runs at full speed in wall time while
    keeping its exact virtual-time semantics and ordering.

    Real I/O still works (the selector is polled with a zero timeout when
    a jump happens), but a simulation that *waits* on external I/O would
    block the virtual clock -- the intended use is pure in-process
    simulation where every wait is a timer.
    """

    def __init__(self) -> None:
        super().__init__()
        self._virtual_now = 0.0

    def time(self) -> float:
        """The current virtual time in seconds (starts at 0.0)."""
        return self._virtual_now

    @property
    def virtual_now(self) -> float:
        """Alias of :meth:`time`, for readers of simulation code."""
        return self._virtual_now

    def advance_to(self, when: float) -> None:
        """Manually advance the clock (never backwards)."""
        if when > self._virtual_now:
            self._virtual_now = when

    def _run_once(self) -> None:
        # The discrete-event jump: nothing is runnable right now and the
        # earliest timer lies in the future, so make it the present.  The
        # base implementation then computes a zero selector timeout and
        # fires the timer on this very iteration.  (A cancelled handle at
        # the heap head is harmless: the clock jumps at most too early,
        # never backwards, and the base loop pops cancelled heads.)
        if not self._ready and self._scheduled:
            deadline = self._scheduled[0]._when
            if deadline > self._virtual_now:
                self._virtual_now = deadline
        super()._run_once()


def virtual_time(default: float = 0.0) -> float:
    """The running event loop's clock, or ``default`` outside a loop.

    The health layer stamps breaker cool-downs, session deadlines and
    hedge decisions with this: inside a :class:`VirtualTimeLoop` it reads
    the simulation clock, inside a plain loop the wall clock, and from
    synchronous code (the reference sync driver, unit tests poking the
    breaker directly) it returns ``default`` instead of raising -- the
    callers that care about real time are always inside a loop.
    """
    try:
        loop = asyncio.get_running_loop()
    except RuntimeError:
        return default
    return loop.time()


def run_virtual(main: Awaitable[T]) -> Tuple[T, float]:
    """Run ``main`` to completion on a fresh :class:`VirtualTimeLoop`.

    Returns ``(result, virtual_elapsed)`` where ``virtual_elapsed`` is the
    loop's clock when the coroutine finished -- the simulation's total
    virtual duration.  The loop is closed (and the thread's event-loop
    slot restored) before returning, so successive simulations are fully
    isolated: each starts at virtual time 0 with a fresh timer heap.
    """
    loop = VirtualTimeLoop()
    try:
        asyncio.set_event_loop(loop)
        result: Any = loop.run_until_complete(main)
        return result, loop.time()
    finally:
        asyncio.set_event_loop(None)
        loop.close()
