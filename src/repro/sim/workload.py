"""Parameterized workload generators producing operation traces.

The paper's evaluation artefacts are worked examples; the behaviours it
*claims* (order equivalence with causal histories, ids that adapt to the
frontier, operation under partitions without an identifier authority) need
whole families of executions to be demonstrated convincingly.  These
generators produce them:

* :func:`random_dynamic_trace` -- the general fork/join/update soup with a
  configurable operation mix and frontier-width cap; this is the workhorse of
  the equivalence and reduction experiments.
* :func:`fixed_replica_trace` -- a closed set of replicas doing updates and
  pairwise synchronizations, i.e. the classic version-vector setting of
  Figure 1/Figure 3 encoded with fork-and-join dynamics.
* :func:`partitioned_trace` -- replicas split into partitions for a number of
  phases: updates and syncs happen only within a partition, *new replicas are
  created inside partitions* (the operation version vectors cannot support
  without an authority), and partitions merge at the end.
* :func:`churn_trace` -- aggressive replica creation and retirement, the
  worst case for identifier-based mechanisms.
* :func:`sync_chain_trace` -- a rotating ring of pairwise synchronizations
  that provably starves the Section 6 sibling collapse, growing stamps
  without bound; the workload the re-rooting garbage collector
  (:mod:`repro.core.reroot`) exists for.

All generators are deterministic given a seed and return
:class:`~repro.sim.trace.Trace` objects.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..core.errors import SimulationError
from .trace import Operation, Trace

__all__ = [
    "random_dynamic_trace",
    "fixed_replica_trace",
    "partitioned_trace",
    "churn_trace",
    "sync_chain_trace",
]


class _LabelFactory:
    """Generates fresh, readable element labels (``n1``, ``n2``, ...)."""

    def __init__(self, prefix: str = "n") -> None:
        self._prefix = prefix
        self._next = 0

    def fresh(self) -> str:
        self._next += 1
        return f"{self._prefix}{self._next}"


def random_dynamic_trace(
    operations: int,
    *,
    seed: int = 0,
    update_weight: float = 0.5,
    fork_weight: float = 0.25,
    join_weight: float = 0.25,
    max_frontier: int = 16,
    name: str = "",
) -> Trace:
    """A random fork/join/update execution.

    Parameters
    ----------
    operations:
        Number of operations to generate.
    seed:
        RNG seed (the trace is a pure function of the parameters).
    update_weight / fork_weight / join_weight:
        Relative probabilities of each operation kind.  Joins are only
        possible with at least two live elements and forks are suppressed at
        ``max_frontier`` width, with the probability mass redistributed.
    max_frontier:
        Upper bound on the number of coexisting elements.
    """
    if operations < 0:
        raise SimulationError("operation count must be non-negative")
    if min(update_weight, fork_weight, join_weight) < 0:
        raise SimulationError("operation weights must be non-negative")
    if update_weight + fork_weight + join_weight <= 0:
        raise SimulationError("at least one operation weight must be positive")
    if max_frontier < 1:
        raise SimulationError("max_frontier must be at least 1")

    rng = random.Random(seed)
    labels = _LabelFactory()
    seed_label = labels.fresh()
    alive: List[str] = [seed_label]
    trace_operations: List[Operation] = []

    for _ in range(operations):
        choices: List[str] = []
        weights: List[float] = []
        if update_weight > 0:
            choices.append("update")
            weights.append(update_weight)
        if fork_weight > 0 and len(alive) < max_frontier:
            choices.append("fork")
            weights.append(fork_weight)
        if join_weight > 0 and len(alive) >= 2:
            choices.append("join")
            weights.append(join_weight)
        kind = rng.choices(choices, weights=weights, k=1)[0]

        if kind == "update":
            source = rng.choice(alive)
            result = labels.fresh()
            trace_operations.append(Operation.update(source, result))
            alive.remove(source)
            alive.append(result)
        elif kind == "fork":
            source = rng.choice(alive)
            left, right = labels.fresh(), labels.fresh()
            trace_operations.append(Operation.fork(source, left, right))
            alive.remove(source)
            alive.extend((left, right))
        else:
            source, other = rng.sample(alive, 2)
            result = labels.fresh()
            trace_operations.append(Operation.join(source, other, result))
            alive.remove(source)
            alive.remove(other)
            alive.append(result)

    return Trace(
        seed=seed_label,
        operations=tuple(trace_operations),
        name=name or f"random-dynamic(ops={operations}, seed={seed})",
    )


def fixed_replica_trace(
    replicas: int,
    operations: int,
    *,
    seed: int = 0,
    update_probability: float = 0.6,
    name: str = "",
) -> Trace:
    """A closed system of ``replicas`` replicas doing updates and pair syncs.

    The trace starts by forking the seed element ``replicas - 1`` times (the
    Figure 3 encoding of a fixed replica set), then performs ``operations``
    steps, each either an update of a random replica (with probability
    ``update_probability``) or a synchronization of a random pair.
    """
    if replicas < 1:
        raise SimulationError("need at least one replica")
    if not 0.0 <= update_probability <= 1.0:
        raise SimulationError("update_probability must be within [0, 1]")

    rng = random.Random(seed)
    labels = _LabelFactory()
    seed_label = labels.fresh()
    trace_operations: List[Operation] = []

    alive = [seed_label]
    while len(alive) < replicas:
        source = alive.pop(0)
        left, right = labels.fresh(), labels.fresh()
        trace_operations.append(Operation.fork(source, left, right))
        alive.extend((left, right))

    for _ in range(operations):
        if len(alive) < 2 or rng.random() < update_probability:
            source = rng.choice(alive)
            result = labels.fresh()
            trace_operations.append(Operation.update(source, result))
            alive.remove(source)
            alive.append(result)
        else:
            source, other = rng.sample(alive, 2)
            left, right = labels.fresh(), labels.fresh()
            trace_operations.append(Operation.sync(source, other, left, right))
            alive.remove(source)
            alive.remove(other)
            alive.extend((left, right))

    return Trace(
        seed=seed_label,
        operations=tuple(trace_operations),
        name=name or f"fixed-replicas(n={replicas}, ops={operations}, seed={seed})",
    )


def partitioned_trace(
    *,
    initial_replicas: int = 4,
    partitions: int = 2,
    phases: int = 3,
    operations_per_phase: int = 20,
    creation_probability: float = 0.2,
    update_probability: float = 0.6,
    seed: int = 0,
    name: str = "",
) -> Trace:
    """Partitioned operation with in-partition replica creation.

    The trace builds ``initial_replicas`` replicas, splits them round-robin
    into ``partitions`` groups and then runs ``phases`` phases.  Within a
    phase every operation stays inside one partition: a new replica is forked
    from a partition member (probability ``creation_probability``), a member
    is updated (``update_probability``), or two members synchronize.  Between
    phases the partition membership is reshuffled (nodes move between
    clusters), and after the last phase all replicas of each partition are
    joined and the partition representatives are synchronized -- the "heal"
    that lets every mechanism be compared on one final frontier.
    """
    if partitions < 1:
        raise SimulationError("need at least one partition")
    if initial_replicas < partitions:
        raise SimulationError("need at least one replica per partition")

    rng = random.Random(seed)
    labels = _LabelFactory()
    seed_label = labels.fresh()
    trace_operations: List[Operation] = []

    alive = [seed_label]
    while len(alive) < initial_replicas:
        source = alive.pop(0)
        left, right = labels.fresh(), labels.fresh()
        trace_operations.append(Operation.fork(source, left, right))
        alive.extend((left, right))

    for _phase in range(phases):
        rng.shuffle(alive)
        groups: List[List[str]] = [alive[index::partitions] for index in range(partitions)]
        groups = [group for group in groups if group]
        for _ in range(operations_per_phase):
            group = rng.choice(groups)
            roll = rng.random()
            if roll < creation_probability:
                source = rng.choice(group)
                left, right = labels.fresh(), labels.fresh()
                trace_operations.append(Operation.fork(source, left, right))
                group.remove(source)
                group.extend((left, right))
            elif roll < creation_probability + update_probability or len(group) < 2:
                source = rng.choice(group)
                result = labels.fresh()
                trace_operations.append(Operation.update(source, result))
                group.remove(source)
                group.append(result)
            else:
                source, other = rng.sample(group, 2)
                left, right = labels.fresh(), labels.fresh()
                trace_operations.append(Operation.sync(source, other, left, right))
                group.remove(source)
                group.remove(other)
                group.extend((left, right))
        alive = [label for group in groups for label in group]

    # Heal: collapse each partition to one element, then synchronize the
    # representatives in a chain so the first one ends up with the combined
    # knowledge of the whole system while every partition keeps one element.
    rng.shuffle(alive)
    groups = [alive[index::partitions] for index in range(partitions)]
    groups = [group for group in groups if group]
    representatives: List[str] = []
    for group in groups:
        representative = group[0]
        for other in group[1:]:
            result = labels.fresh()
            trace_operations.append(Operation.join(representative, other, result))
            representative = result
        representatives.append(representative)
    carrier = representatives[0]
    for other in representatives[1:]:
        left, right = labels.fresh(), labels.fresh()
        trace_operations.append(Operation.sync(carrier, other, left, right))
        carrier = left

    return Trace(
        seed=seed_label,
        operations=tuple(trace_operations),
        name=name
        or (
            f"partitioned(replicas={initial_replicas}, partitions={partitions}, "
            f"phases={phases}, seed={seed})"
        ),
    )


def churn_trace(
    operations: int,
    *,
    seed: int = 0,
    target_frontier: int = 8,
    update_probability: float = 0.3,
    name: str = "",
) -> Trace:
    """Aggressive replica creation and retirement around a target width.

    Below ``target_frontier`` live elements the generator prefers forks,
    above it joins, with updates sprinkled in -- a steady stream of identity
    creation and retirement that is the worst case for mechanisms that never
    recycle identifiers.
    """
    if target_frontier < 1:
        raise SimulationError("target_frontier must be at least 1")

    rng = random.Random(seed)
    labels = _LabelFactory()
    seed_label = labels.fresh()
    alive = [seed_label]
    trace_operations: List[Operation] = []

    for _ in range(operations):
        if rng.random() < update_probability:
            source = rng.choice(alive)
            result = labels.fresh()
            trace_operations.append(Operation.update(source, result))
            alive.remove(source)
            alive.append(result)
            continue
        want_fork = len(alive) < target_frontier or len(alive) < 2
        if want_fork:
            source = rng.choice(alive)
            left, right = labels.fresh(), labels.fresh()
            trace_operations.append(Operation.fork(source, left, right))
            alive.remove(source)
            alive.extend((left, right))
        else:
            source, other = rng.sample(alive, 2)
            result = labels.fresh()
            trace_operations.append(Operation.join(source, other, result))
            alive.remove(source)
            alive.remove(other)
            alive.append(result)

    return Trace(
        seed=seed_label,
        operations=tuple(trace_operations),
        name=name or f"churn(ops={operations}, target={target_frontier}, seed={seed})",
    )


def sync_chain_trace(
    operations: int,
    *,
    replicas: int = 4,
    seed: int = 0,
    update_probability: float = 0.5,
    name: str = "",
) -> Trace:
    """A rotating synchronization ring that starves the sibling collapse.

    ``replicas`` elements are arranged in a ring; each step synchronizes one
    adjacent pair, rotating one position per step (``sync(r0,r1)``,
    ``sync(r1,r2)``, ..., wrapping around), with the pair's first element
    updated beforehand with probability ``update_probability`` so update
    components keep growing too.

    This is the growth pathology of the mechanism: the Section 6 rule only
    collapses *sibling* id strings, and siblings are exactly what this
    schedule never reassembles.  A ``sync`` leaves its two participants with
    ids that are mutual siblings (``n·0`` / ``n·1``), so only an immediate
    re-sync of the same pair could collapse them -- but the rotation always
    moves on to the neighbouring pair first, whose ids come from different
    joins and share no sibling pairs.  Every sync therefore *adds* strings
    (the join keeps both input antichains) and then lengthens all of them by
    one bit (the fork), compounding: with ``replicas ≥ 3`` stamp sizes grow
    exponentially in the number of ring rounds.  With ``replicas = 2`` the
    ring degenerates to re-syncing one pair, which collapses fine -- hence
    the minimum of 3.

    This is the workload the re-rooting garbage collector exists for; the
    soak test drives thousands of these steps and checks GC'd stamps stay
    bounded while raw stamps blow past any fixed bound within a few rounds.

    The trace contains exactly ``operations`` operations -- the initial
    ring-building forks included -- whenever ``operations >= replicas``
    (below that only the ring-building forks are emitted).
    """
    if replicas < 3:
        raise SimulationError("a sibling-starved sync chain needs >= 3 replicas")
    if operations < 0:
        raise SimulationError("operation count must be non-negative")
    if not 0.0 <= update_probability <= 1.0:
        raise SimulationError("update_probability must be within [0, 1]")

    rng = random.Random(seed)
    labels = _LabelFactory()
    seed_label = labels.fresh()
    trace_operations: List[Operation] = []

    ring = [seed_label]
    while len(ring) < replicas:
        source = ring.pop(0)
        left, right = labels.fresh(), labels.fresh()
        trace_operations.append(Operation.fork(source, left, right))
        ring.extend((left, right))

    position = 0
    while len(trace_operations) < operations:
        index = position % replicas
        position += 1
        first, second = ring[index], ring[(index + 1) % replicas]
        if (
            rng.random() < update_probability
            and len(trace_operations) + 1 < operations
        ):
            updated = labels.fresh()
            trace_operations.append(Operation.update(first, updated))
            ring[index] = first = updated
        left, right = labels.fresh(), labels.fresh()
        trace_operations.append(Operation.sync(first, second, left, right))
        ring[index] = left
        ring[(index + 1) % replicas] = right

    return Trace(
        seed=seed_label,
        operations=tuple(trace_operations),
        name=name
        or f"sync-chain(ops={operations}, replicas={replicas}, seed={seed})",
    )
