"""Operation traces: the common language of the simulation harness.

A trace is a sequence of frontier operations (``update``, ``fork``, ``join``,
``sync``) over named elements, starting from a single seed element.  Traces
are the lingua franca of the evaluation: the workload generators produce
them, the lockstep runner replays them simultaneously against every
mechanism (causal histories, version stamps, version vectors, ITC, ...), and
the figure reconstructions are simply hand-written traces copied from the
paper.

Traces are plain data (dataclasses) so they can be stored, pretty-printed and
shrunk by hypothesis during property-based testing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..core.errors import SimulationError

__all__ = ["OpKind", "Operation", "Trace", "apply_operation", "validate_trace"]


class OpKind:
    """The four kinds of trace operations (plain string constants)."""

    UPDATE = "update"
    FORK = "fork"
    JOIN = "join"
    SYNC = "sync"

    ALL = (UPDATE, FORK, JOIN, SYNC)


@dataclass(frozen=True)
class Operation:
    """One step of a trace.

    Attributes
    ----------
    kind:
        One of :class:`OpKind`'s constants.
    source:
        The element operated upon (for ``join``/``sync``: the first element).
    other:
        The second element for ``join``/``sync``; unused otherwise.
    results:
        Labels of the produced elements: one for ``update``/``join``, two for
        ``fork``/``sync``.
    """

    kind: str
    source: str
    other: Optional[str] = None
    results: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in OpKind.ALL:
            raise SimulationError(f"unknown operation kind {self.kind!r}")
        expected = 2 if self.kind in (OpKind.FORK, OpKind.SYNC) else 1
        if len(self.results) != expected:
            raise SimulationError(
                f"{self.kind} must produce {expected} element(s), "
                f"got {len(self.results)}"
            )
        needs_other = self.kind in (OpKind.JOIN, OpKind.SYNC)
        if needs_other and self.other is None:
            raise SimulationError(f"{self.kind} needs a second element")
        if not needs_other and self.other is not None:
            raise SimulationError(f"{self.kind} takes a single element")

    # -- convenience constructors ------------------------------------------------

    @classmethod
    def update(cls, source: str, result: str) -> "Operation":
        """An ``update(source)`` producing ``result``."""
        return cls(OpKind.UPDATE, source, None, (result,))

    @classmethod
    def fork(cls, source: str, left: str, right: str) -> "Operation":
        """A ``fork(source)`` producing ``left`` and ``right``."""
        return cls(OpKind.FORK, source, None, (left, right))

    @classmethod
    def join(cls, source: str, other: str, result: str) -> "Operation":
        """A ``join(source, other)`` producing ``result``."""
        return cls(OpKind.JOIN, source, other, (result,))

    @classmethod
    def sync(cls, source: str, other: str, left: str, right: str) -> "Operation":
        """A synchronization (join + fork) leaving ``left`` and ``right``."""
        return cls(OpKind.SYNC, source, other, (left, right))

    def consumed(self) -> Tuple[str, ...]:
        """The element labels removed from the frontier by this operation."""
        if self.other is not None:
            return (self.source, self.other)
        return (self.source,)

    def __str__(self) -> str:
        if self.other is not None:
            call = f"{self.kind}({self.source}, {self.other})"
        else:
            call = f"{self.kind}({self.source})"
        return f"{call} -> {', '.join(self.results)}"


def apply_operation(target, operation: "Operation") -> None:
    """Dispatch one trace operation onto a configuration-like object.

    ``target`` is anything with the label-based ``update``/``fork``/
    ``join``/``sync`` methods of :class:`~repro.core.frontier.Frontier` and
    the causal configurations -- the one switch every replay loop
    (adapters, benchmarks, analysis sweeps, soak tests) shares.
    """
    if operation.kind == OpKind.UPDATE:
        target.update(operation.source, operation.results[0])
    elif operation.kind == OpKind.FORK:
        target.fork(operation.source, *operation.results)
    elif operation.kind == OpKind.JOIN:
        target.join(operation.source, operation.other, operation.results[0])
    else:
        target.sync(operation.source, operation.other, *operation.results)


@dataclass(frozen=True)
class Trace:
    """A complete run: a seed element plus a sequence of operations."""

    seed: str
    operations: Tuple[Operation, ...]
    name: str = ""

    def __post_init__(self) -> None:
        validate_trace(self)

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    def update_count(self) -> int:
        """Number of update operations in the trace."""
        return sum(1 for op in self.operations if op.kind == OpKind.UPDATE)

    def fork_count(self) -> int:
        """Number of fork operations (syncs count as one fork)."""
        return sum(1 for op in self.operations if op.kind in (OpKind.FORK, OpKind.SYNC))

    def join_count(self) -> int:
        """Number of join operations (syncs count as one join)."""
        return sum(1 for op in self.operations if op.kind in (OpKind.JOIN, OpKind.SYNC))

    def final_frontier(self) -> Set[str]:
        """The element labels alive after replaying the whole trace."""
        alive = {self.seed}
        for operation in self.operations:
            for label in operation.consumed():
                alive.discard(label)
            alive.update(operation.results)
        return alive

    def max_frontier_width(self) -> int:
        """The largest number of coexisting elements at any point of the trace."""
        alive = {self.seed}
        widest = 1
        for operation in self.operations:
            for label in operation.consumed():
                alive.discard(label)
            alive.update(operation.results)
            widest = max(widest, len(alive))
        return widest

    def describe(self) -> str:
        """A multi-line human-readable rendering of the trace."""
        header = self.name or f"trace over {len(self.operations)} operations"
        lines = [header, f"  seed: {self.seed}"]
        lines.extend(f"  {index}: {op}" for index, op in enumerate(self.operations))
        return "\n".join(lines)


def validate_trace(trace: Trace) -> None:
    """Check that every operation only touches live elements and that labels
    produced are fresh.

    Raises
    ------
    SimulationError
        Describing the first ill-formed operation found.
    """
    alive: Set[str] = {trace.seed}
    used: Set[str] = {trace.seed}
    for index, operation in enumerate(trace.operations):
        for label in operation.consumed():
            if label not in alive:
                raise SimulationError(
                    f"operation {index} ({operation}) uses {label!r} which is not "
                    f"alive (alive: {sorted(alive)})"
                )
        if operation.other is not None and operation.other == operation.source:
            raise SimulationError(
                f"operation {index} ({operation}) uses the same element twice"
            )
        for label in operation.consumed():
            alive.discard(label)
        for label in operation.results:
            if label in alive or (label in used and label not in operation.consumed()):
                raise SimulationError(
                    f"operation {index} ({operation}) produces label {label!r} "
                    f"which was already used"
                )
            alive.add(label)
            used.add(label)
