"""Exhaustive model checking of small executions.

Random traces give statistical confidence; this module gives certainty on a
bounded universe.  Starting from the one-element initial configuration it
enumerates *every* execution of at most ``max_operations`` operations (with a
cap on the frontier width to keep the state space finite), running causal
histories and version stamps (reducing and non-reducing) in lockstep, and at
every reached configuration checks:

* invariants I1, I2, I3 on the stamp configuration,
* Corollary 5.2: the stamp order equals the causal-history order on every
  pair of frontier elements,
* Proposition 5.1 in its general form: for every element ``x`` and every
  non-empty subset ``S`` of the frontier,
  ``C(x) ⊆ ∪C[S]  ⇔  fst(V(x)) ⊑ ⊔ fst[V[S]]``.

This is the strongest automated form of the paper's Section 5 result we can
check on a laptop; the benchmarks report the number of configurations
explored and the (expected zero) violation counts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..causal.configuration import CausalConfiguration
from ..core.frontier import Frontier
from ..core.invariants import check_all
from ..core.names import Name
from ..core.order import Ordering
from .trace import Operation, Trace

__all__ = ["ExhaustiveReport", "explore"]


@dataclass
class ExhaustiveReport:
    """Aggregated result of an exhaustive exploration."""

    configurations_checked: int = 0
    executions_completed: int = 0
    max_operations: int = 0
    invariant_violations: int = 0
    pairwise_disagreements: int = 0
    subset_disagreements: int = 0
    counterexamples: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no violation of any kind was found."""
        return (
            self.invariant_violations == 0
            and self.pairwise_disagreements == 0
            and self.subset_disagreements == 0
        )

    def __str__(self) -> str:
        status = "OK" if self.ok else "VIOLATIONS FOUND"
        return (
            f"exhaustive check up to {self.max_operations} operations: {status} "
            f"({self.configurations_checked} configurations, "
            f"{self.executions_completed} complete executions, "
            f"invariant={self.invariant_violations}, "
            f"pairwise={self.pairwise_disagreements}, "
            f"subset={self.subset_disagreements})"
        )


@dataclass
class _State:
    """One node of the execution tree."""

    causal: CausalConfiguration
    reducing: Frontier
    non_reducing: Frontier
    depth: int
    history: Tuple[str, ...]


def _possible_operations(labels: List[str], max_frontier: int) -> Iterator[Tuple[str, Tuple[str, ...]]]:
    for label in labels:
        yield "update", (label,)
    if len(labels) < max_frontier:
        for label in labels:
            yield "fork", (label,)
    for first, second in itertools.combinations(labels, 2):
        yield "join", (first, second)


def _check_state(state: _State, report: ExhaustiveReport, check_subsets: bool) -> None:
    report.configurations_checked += 1
    labels = state.causal.labels()

    for frontier_name, frontier in (
        ("reducing", state.reducing),
        ("non-reducing", state.non_reducing),
    ):
        invariant_report = check_all(frontier.stamps())
        if not invariant_report.ok:
            report.invariant_violations += 1
            report.counterexamples.append(
                f"invariants ({frontier_name}) after {state.history}: {invariant_report}"
            )

        for x in labels:
            for y in labels:
                if x == y:
                    continue
                oracle = state.causal.compare(x, y)
                observed = frontier.compare(x, y)
                if oracle is not observed:
                    report.pairwise_disagreements += 1
                    report.counterexamples.append(
                        f"pairwise ({frontier_name}) after {state.history}: "
                        f"{x} vs {y}: causal={oracle} stamps={observed}"
                    )

        if not check_subsets:
            continue
        for x in labels:
            others = [label for label in labels]
            for size in range(1, len(others) + 1):
                for subset in itertools.combinations(others, size):
                    causal_holds = state.causal.dominated_by_set(x, subset)
                    stamp_join = Name.join_all(
                        frontier.stamp_of(label).update_component for label in subset
                    )
                    stamp_holds = frontier.stamp_of(x).update_component.dominated_by(
                        stamp_join
                    )
                    if causal_holds != stamp_holds:
                        report.subset_disagreements += 1
                        report.counterexamples.append(
                            f"subset ({frontier_name}) after {state.history}: "
                            f"{x} vs {subset}: causal={causal_holds} stamps={stamp_holds}"
                        )


def explore(
    max_operations: int,
    *,
    max_frontier: int = 4,
    check_subsets: bool = True,
    max_counterexamples: int = 20,
) -> ExhaustiveReport:
    """Exhaustively explore every execution of at most ``max_operations`` steps.

    Parameters
    ----------
    max_operations:
        Depth bound of the execution tree.
    max_frontier:
        Forks are not explored past this frontier width (keeps the universe
        finite and matches the paper's frontier-centric argument).
    check_subsets:
        Also check the subset form of Proposition 5.1 (more expensive).
    max_counterexamples:
        Cap on stored counterexample descriptions.
    """
    report = ExhaustiveReport(max_operations=max_operations)
    seed_label = "a"
    label_counter = itertools.count(1)

    initial = _State(
        causal=CausalConfiguration.initial(seed_label),
        reducing=Frontier.initial(seed_label, reducing=True),
        non_reducing=Frontier.initial(seed_label, reducing=False),
        depth=0,
        history=(),
    )
    _check_state(initial, report, check_subsets)

    stack: List[_State] = [initial]
    while stack:
        state = stack.pop()
        if state.depth >= max_operations:
            report.executions_completed += 1
            continue
        labels = state.causal.labels()
        expanded = False
        for kind, arguments in _possible_operations(labels, max_frontier):
            expanded = True
            fresh = f"x{next(label_counter)}"
            fresh2 = f"x{next(label_counter)}"
            causal = state.causal.copy()
            reducing = state.reducing.copy()
            non_reducing = state.non_reducing.copy()
            if kind == "update":
                (source,) = arguments
                causal.update(source, fresh)
                reducing.update(source, fresh)
                non_reducing.update(source, fresh)
                description = f"update({source})"
            elif kind == "fork":
                (source,) = arguments
                causal.fork(source, fresh, fresh2)
                reducing.fork(source, fresh, fresh2)
                non_reducing.fork(source, fresh, fresh2)
                description = f"fork({source})"
            else:
                first, second = arguments
                causal.join(first, second, fresh)
                reducing.join(first, second, fresh)
                non_reducing.join(first, second, fresh)
                description = f"join({first},{second})"
            successor = _State(
                causal=causal,
                reducing=reducing,
                non_reducing=non_reducing,
                depth=state.depth + 1,
                history=state.history + (description,),
            )
            _check_state(successor, report, check_subsets)
            if len(report.counterexamples) > max_counterexamples:
                del report.counterexamples[max_counterexamples:]
                return report
            stack.append(successor)
        if not expanded:
            report.executions_completed += 1
    return report
