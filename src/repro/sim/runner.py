"""Lockstep execution of one trace against every causality mechanism.

Proposition 5.1 is an equivalence between the orders induced by causal
histories and by version stamps *for the same system execution*.  The
:class:`LockstepRunner` makes that statement executable: it replays a single
:class:`~repro.sim.trace.Trace` simultaneously against

* the causal-history oracle (:class:`CausalAdapter`),
* version stamps, reducing and non-reducing (:class:`StampAdapter`),
* dynamic version vectors (:class:`DynamicVVAdapter`),
* Interval Tree Clocks (:class:`ITCAdapter`),
* plausible clocks (:class:`PlausibleAdapter`),

and after every step compares each mechanism's pairwise ordering of the
current frontier with the oracle's.  The per-mechanism
:class:`AgreementReport` records exact agreement counts plus the two
interesting error kinds: *missed conflicts* (mechanism says ordered, oracle
says concurrent -- expected only for plausible clocks) and *false conflicts*
(the reverse).  Size statistics are collected at the same time so a single
trace replay feeds both the correctness and the space experiments.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..causal.configuration import CausalConfiguration
from ..causal.refhistory import RefCausalConfiguration
from ..core.frontier import Frontier
from ..core.invariants import check_all
from ..core.order import Ordering
from ..core.stamp import VersionStamp
from ..itc.stamp import ITCStamp
from ..vv.dynamic_vv import DynamicVVSystem
from ..vv.id_source import CentralIdSource, IdSource
from ..vv.lamport import LamportClock
from ..vv.plausible import PlausibleClock
from ..core.errors import SimulationError
from .trace import OpKind, Operation, Trace, apply_operation

__all__ = [
    "MechanismAdapter",
    "CausalAdapter",
    "RefCausalAdapter",
    "StampAdapter",
    "RerootingStampAdapter",
    "DynamicVVAdapter",
    "ITCAdapter",
    "PlausibleAdapter",
    "LamportAdapter",
    "AgreementReport",
    "SizeSample",
    "LockstepRunner",
    "default_adapters",
]


class MechanismAdapter:
    """Uniform driver interface: replay trace operations, answer comparisons."""

    #: Short name used in reports and benchmark tables.
    name = "mechanism"

    def start(self, seed: str) -> None:
        """Initialize with a single element labelled ``seed``."""
        raise NotImplementedError

    def apply(self, operation: Operation) -> None:
        """Apply one trace operation."""
        raise NotImplementedError

    def labels(self) -> List[str]:
        """Labels of the currently coexisting elements."""
        raise NotImplementedError

    def compare(self, first: str, second: str) -> Ordering:
        """Pairwise comparison of two live elements."""
        raise NotImplementedError

    def comparison_table(self) -> Optional[Mapping[str, object]]:
        """Optional label -> comparable mapping for bulk comparisons.

        When an adapter can expose its live elements as objects with a
        ``compare`` method, the lockstep runner compares through this table
        directly, skipping the per-call label resolution of :meth:`compare`.
        Returning ``None`` (the default) keeps the label-based path.
        """
        return None

    def size_in_bits(self, label: str) -> int:
        """Metadata size of one live element (0 when not meaningful)."""
        return 0

    def check_invariants(self) -> bool:
        """Mechanism-specific self-check (True when nothing is violated)."""
        return True


class CausalAdapter(MechanismAdapter):
    """The causal-history oracle (global view), bitset-backed."""

    name = "causal-history"

    #: The configuration implementation this adapter drives.
    configuration_class = CausalConfiguration

    def __init__(self) -> None:
        self._configuration = None

    @property
    def configuration(self):
        if self._configuration is None:
            raise SimulationError("adapter not started")
        return self._configuration

    def start(self, seed: str) -> None:
        self._configuration = self.configuration_class.initial(seed)

    def apply(self, operation: Operation) -> None:
        apply_operation(self.configuration, operation)

    def labels(self) -> List[str]:
        return self.configuration.labels()

    def compare(self, first: str, second: str) -> Ordering:
        return self.configuration.compare(first, second)

    def comparison_table(self) -> Mapping[str, object]:
        return self.configuration.histories_view()

    def size_in_bits(self, label: str) -> int:
        # One event identifier is modelled as a 64-bit value; ``event_count``
        # is a cached popcount, so no event set is ever materialized here.
        return 64 * self.configuration.history_of(label).event_count


class RefCausalAdapter(CausalAdapter):
    """The seed frozenset oracle, kept as a differential/perf baseline."""

    name = "causal-history-ref"

    configuration_class = RefCausalConfiguration

    def size_in_bits(self, label: str) -> int:
        return 64 * len(self.configuration.history_of(label).events)


class StampAdapter(MechanismAdapter):
    """Version stamps, in either the reducing or the non-reducing flavour."""

    def __init__(self, *, reducing: bool = True) -> None:
        self._reducing = reducing
        self.name = "version-stamps" if reducing else "version-stamps-nonreducing"
        self._frontier: Optional[Frontier] = None

    @property
    def frontier(self) -> Frontier:
        if self._frontier is None:
            raise SimulationError("adapter not started")
        return self._frontier

    def start(self, seed: str) -> None:
        self._frontier = Frontier.initial(seed, reducing=self._reducing)

    def apply(self, operation: Operation) -> None:
        apply_operation(self.frontier, operation)

    def labels(self) -> List[str]:
        return self.frontier.labels()

    def compare(self, first: str, second: str) -> Ordering:
        return self.frontier.compare(first, second)

    def size_in_bits(self, label: str) -> int:
        return self.frontier.stamp_of(label).size_in_bits()

    def check_invariants(self) -> bool:
        return check_all(self.frontier.stamps()).ok


class RerootingStampAdapter(StampAdapter):
    """Reducing version stamps with the Section 7 re-rooting GC enabled.

    Drives a :class:`~repro.core.frontier.Frontier` whose automatic re-root
    fires whenever any live stamp's encoded size exceeds ``threshold``
    bits.  Run
    alongside a plain :class:`StampAdapter` in one lockstep replay this
    measures GC'd and raw stamps side by side on the same trace -- and
    because the runner cross-checks every mechanism against the causal
    oracle after every step, it *proves* on that trace that re-rooting
    preserved the frontier ordering (the re-rooted stamps must keep a 100%
    agreement rate with ground truth for the whole run).
    """

    def __init__(self, *, threshold: int = 256) -> None:
        super().__init__(reducing=True)
        self.name = f"version-stamps-rerooting-{threshold}"
        self._threshold = threshold

    @property
    def threshold(self) -> int:
        """The re-root trigger: largest allowed stamp, in encoded bits."""
        return self._threshold

    @property
    def reroots_performed(self) -> int:
        """How many re-roots the replay has triggered so far."""
        return self.frontier.reroots_performed

    def start(self, seed: str) -> None:
        self._frontier = Frontier.initial(
            seed, reducing=True, reroot_threshold=self._threshold
        )


class DynamicVVAdapter(MechanismAdapter):
    """Dynamic version vectors driven by an identifier source."""

    name = "dynamic-version-vectors"

    def __init__(self, id_source: Optional[IdSource] = None) -> None:
        self._id_source = id_source
        self._system: Optional[DynamicVVSystem] = None

    @property
    def system(self) -> DynamicVVSystem:
        if self._system is None:
            raise SimulationError("adapter not started")
        return self._system

    def start(self, seed: str) -> None:
        source = self._id_source if self._id_source is not None else CentralIdSource()
        self._system = DynamicVVSystem.initial(seed, id_source=source)

    def apply(self, operation: Operation) -> None:
        system = self.system
        if operation.kind == OpKind.UPDATE:
            system.update(operation.source, operation.results[0])
        elif operation.kind == OpKind.FORK:
            system.fork(operation.source, *operation.results)
        elif operation.kind == OpKind.JOIN:
            system.join(operation.source, operation.other, operation.results[0])
        else:
            joined = system.join(operation.source, operation.other)
            system.fork(joined, *operation.results)

    def labels(self) -> List[str]:
        return self.system.labels()

    def compare(self, first: str, second: str) -> Ordering:
        return self.system.compare(first, second)

    def size_in_bits(self, label: str) -> int:
        return self.system.element(label).size_in_bits()


class ITCAdapter(MechanismAdapter):
    """Interval Tree Clocks (the extension mechanism)."""

    name = "interval-tree-clocks"

    def __init__(self) -> None:
        self._stamps: Dict[str, ITCStamp] = {}

    def start(self, seed: str) -> None:
        self._stamps = {seed: ITCStamp.seed()}

    def _take(self, label: str) -> ITCStamp:
        try:
            return self._stamps.pop(label)
        except KeyError:
            raise SimulationError(f"ITC adapter has no element {label!r}") from None

    def apply(self, operation: Operation) -> None:
        if operation.kind == OpKind.UPDATE:
            stamp = self._take(operation.source)
            self._stamps[operation.results[0]] = stamp.event()
        elif operation.kind == OpKind.FORK:
            stamp = self._take(operation.source)
            left, right = stamp.fork()
            self._stamps[operation.results[0]] = left
            self._stamps[operation.results[1]] = right
        elif operation.kind == OpKind.JOIN:
            first = self._take(operation.source)
            second = self._take(operation.other)
            self._stamps[operation.results[0]] = first.join(second)
        else:
            first = self._take(operation.source)
            second = self._take(operation.other)
            left, right = first.join(second).fork()
            self._stamps[operation.results[0]] = left
            self._stamps[operation.results[1]] = right

    def labels(self) -> List[str]:
        return list(self._stamps)

    def compare(self, first: str, second: str) -> Ordering:
        return self._stamps[first].compare(self._stamps[second])

    def size_in_bits(self, label: str) -> int:
        return self._stamps[label].size_in_bits()


class PlausibleAdapter(MechanismAdapter):
    """Plausible clocks: constant size, approximate ordering."""

    def __init__(self, entries: int = 4) -> None:
        self.name = f"plausible-clocks-{entries}"
        self._entries = entries
        self._clocks: Dict[str, PlausibleClock] = {}
        self._next_replica = 0

    def _fresh_replica_id(self) -> str:
        identifier = f"p{self._next_replica}"
        self._next_replica += 1
        return identifier

    def start(self, seed: str) -> None:
        self._clocks = {seed: PlausibleClock(self._entries, self._fresh_replica_id())}

    def _take(self, label: str) -> PlausibleClock:
        try:
            return self._clocks.pop(label)
        except KeyError:
            raise SimulationError(f"plausible adapter has no element {label!r}") from None

    def apply(self, operation: Operation) -> None:
        if operation.kind == OpKind.UPDATE:
            clock = self._take(operation.source)
            self._clocks[operation.results[0]] = clock.update()
        elif operation.kind == OpKind.FORK:
            clock = self._take(operation.source)
            self._clocks[operation.results[0]] = clock
            self._clocks[operation.results[1]] = clock.for_replica(self._fresh_replica_id())
        elif operation.kind == OpKind.JOIN:
            first = self._take(operation.source)
            second = self._take(operation.other)
            self._clocks[operation.results[0]] = first.merge(second)
        else:
            first = self._take(operation.source)
            second = self._take(operation.other)
            merged = first.merge(second)
            self._clocks[operation.results[0]] = merged
            self._clocks[operation.results[1]] = merged.for_replica(
                self._fresh_replica_id()
            )

    def labels(self) -> List[str]:
        return list(self._clocks)

    def compare(self, first: str, second: str) -> Ordering:
        return self._clocks[first].compare(self._clocks[second])

    def size_in_bits(self, label: str) -> int:
        return self._clocks[label].size_in_bits()


class LamportAdapter(MechanismAdapter):
    """Scalar Lamport clocks: causality-consistent but blind to concurrency.

    Included purely as a contrast baseline -- every pair the oracle reports
    as concurrent is (arbitrarily) ordered by a scalar clock, so the
    agreement rate quantifies how much information the single integer loses.
    """

    name = "lamport-clocks"

    def __init__(self) -> None:
        self._clocks: Dict[str, LamportClock] = {}
        self._next_process = 0

    def _fresh_process(self) -> str:
        identifier = f"l{self._next_process}"
        self._next_process += 1
        return identifier

    def start(self, seed: str) -> None:
        self._clocks = {seed: LamportClock(0, self._fresh_process())}

    def _take(self, label: str) -> LamportClock:
        try:
            return self._clocks.pop(label)
        except KeyError:
            raise SimulationError(f"lamport adapter has no element {label!r}") from None

    def apply(self, operation: Operation) -> None:
        if operation.kind == OpKind.UPDATE:
            clock = self._take(operation.source)
            self._clocks[operation.results[0]] = clock.tick()
        elif operation.kind == OpKind.FORK:
            clock = self._take(operation.source)
            self._clocks[operation.results[0]] = clock
            self._clocks[operation.results[1]] = LamportClock(
                clock.counter, self._fresh_process()
            )
        elif operation.kind == OpKind.JOIN:
            first = self._take(operation.source)
            second = self._take(operation.other)
            self._clocks[operation.results[0]] = LamportClock(
                max(first.counter, second.counter), first.process
            )
        else:
            first = self._take(operation.source)
            second = self._take(operation.other)
            merged = max(first.counter, second.counter)
            self._clocks[operation.results[0]] = LamportClock(merged, first.process)
            self._clocks[operation.results[1]] = LamportClock(merged, second.process)

    def labels(self) -> List[str]:
        return list(self._clocks)

    def compare(self, first: str, second: str) -> Ordering:
        mine = self._clocks[first]
        theirs = self._clocks[second]
        if mine.counter == theirs.counter:
            return Ordering.EQUAL
        return Ordering.BEFORE if mine.counter < theirs.counter else Ordering.AFTER

    def size_in_bits(self, label: str) -> int:
        return self._clocks[label].size_in_bits()


@dataclass
class AgreementReport:
    """How one mechanism's frontier order compares with the oracle's."""

    mechanism: str
    comparisons: int = 0
    agreements: int = 0
    missed_conflicts: int = 0
    false_conflicts: int = 0
    other_disagreements: int = 0
    invariant_failures: int = 0

    @property
    def agreement_rate(self) -> float:
        """Fraction of pairwise comparisons that matched the oracle exactly."""
        if self.comparisons == 0:
            return 1.0
        return self.agreements / self.comparisons

    def record(self, oracle: Ordering, observed: Ordering) -> None:
        """Fold one pairwise comparison into the report."""
        self.comparisons += 1
        if oracle is observed:
            self.agreements += 1
        elif oracle is Ordering.CONCURRENT and observed is not Ordering.CONCURRENT:
            self.missed_conflicts += 1
        elif oracle is not Ordering.CONCURRENT and observed is Ordering.CONCURRENT:
            self.false_conflicts += 1
        else:
            self.other_disagreements += 1

    def __str__(self) -> str:
        return (
            f"{self.mechanism}: {self.agreements}/{self.comparisons} agree "
            f"({self.agreement_rate:.1%}), missed={self.missed_conflicts}, "
            f"false={self.false_conflicts}, other={self.other_disagreements}, "
            f"invariant failures={self.invariant_failures}"
        )


@dataclass
class SizeSample:
    """Metadata-size statistics of one mechanism over one trace replay."""

    mechanism: str
    per_step_mean_bits: List[float] = field(default_factory=list)
    per_step_max_bits: List[int] = field(default_factory=list)

    def record(self, sizes: Sequence[int]) -> None:
        """Record the per-element sizes observed after one trace step."""
        if not sizes:
            return
        self.per_step_mean_bits.append(sum(sizes) / len(sizes))
        self.per_step_max_bits.append(max(sizes))

    @property
    def final_mean_bits(self) -> float:
        """Mean element size after the last step (0.0 for empty traces)."""
        return self.per_step_mean_bits[-1] if self.per_step_mean_bits else 0.0

    @property
    def peak_bits(self) -> int:
        """Largest single element observed anywhere in the trace."""
        return max(self.per_step_max_bits, default=0)

    @property
    def overall_mean_bits(self) -> float:
        """Mean of the per-step means (a trace-level size summary)."""
        if not self.per_step_mean_bits:
            return 0.0
        return statistics.fmean(self.per_step_mean_bits)


def default_adapters(*, include_plausible: bool = False) -> List[MechanismAdapter]:
    """The standard set of non-oracle mechanisms used by the experiments."""
    adapters: List[MechanismAdapter] = [
        StampAdapter(reducing=True),
        StampAdapter(reducing=False),
        DynamicVVAdapter(),
        ITCAdapter(),
    ]
    if include_plausible:
        adapters.append(PlausibleAdapter())
    return adapters


class LockstepRunner:
    """Replay one trace against the oracle and a set of mechanisms.

    Parameters
    ----------
    adapters:
        Mechanisms to compare against the causal-history oracle; defaults to
        :func:`default_adapters`.
    oracle:
        The oracle adapter to cross-check against; defaults to the
        bitset-backed :class:`CausalAdapter`.  Pass :class:`RefCausalAdapter`
        to run against the retained frozenset implementation (used by the
        differential tests and the lockstep benchmark).
    compare_every_step:
        When ``True`` (default) the full pairwise ordering of the frontier is
        cross-checked after every operation; when ``False`` only after the
        final operation (cheaper for very long traces).
    check_invariants:
        When ``True`` each adapter's self-check runs after every step.
    incremental:
        When ``True`` (default) the pairwise-comparison caches are kept
        *incrementally*: only canonical ``(min, max)`` pairs are stored (the
        mirror ordering is derived with :meth:`Ordering.flipped`), a
        ``label -> cached pairs`` reverse index makes each operation's
        invalidation O(pairs actually touched), and the per-step refill only
        walks pairs involving labels produced since the last cross-check.
        When ``False`` the runner uses the retained seed strategy -- a full
        O(F²) matrix rescan per operation and a full alive×alive refill per
        cross-check -- kept as the baseline for the lockstep benchmark and
        the differential tests.  Both strategies produce identical
        :class:`AgreementReport`/:class:`SizeSample` results: only the
        oracle's mirror ordering is derived with :meth:`Ordering.flipped`
        (valid for a preorder by construction); each mechanism under test is
        still *measured* in both argument orders, so a direction-inconsistent
        ``compare`` is caught under either strategy.

    Notes
    -----
    Invalidation runs on every operation even when ``compare_every_step`` is
    off, so a cache can never serve a pair whose labels were consumed and
    recycled (e.g. by a relabelling ``sync``) between cross-checks.
    """

    def __init__(
        self,
        adapters: Optional[Sequence[MechanismAdapter]] = None,
        *,
        oracle: Optional[MechanismAdapter] = None,
        compare_every_step: bool = True,
        check_invariants: bool = True,
        incremental: bool = True,
    ) -> None:
        self.oracle = oracle if oracle is not None else CausalAdapter()
        self.adapters: List[MechanismAdapter] = (
            list(adapters) if adapters is not None else default_adapters()
        )
        self._compare_every_step = compare_every_step
        self._check_invariants = check_invariants
        self._incremental = incremental

    def run(self, trace: Trace) -> Tuple[Dict[str, AgreementReport], Dict[str, SizeSample]]:
        """Replay ``trace``; return per-mechanism agreement and size reports."""
        reports = {
            adapter.name: AgreementReport(adapter.name) for adapter in self.adapters
        }
        sizes = {adapter.name: SizeSample(adapter.name) for adapter in self.adapters}
        sizes[self.oracle.name] = SizeSample(self.oracle.name)

        self.oracle.start(trace.seed)
        for adapter in self.adapters:
            adapter.start(trace.seed)

        # Per-mechanism pairwise-comparison caches.  Each trace operation
        # removes and creates a handful of elements; every other pair's
        # comparison is unchanged, so with per-step cross-checking the work
        # per step drops from O(F²) comparisons to O(F) fresh ones.  In
        # incremental mode the cache is keyed by canonical (min, max) pairs
        # and a reverse index (label -> cached pairs) bounds invalidation;
        # in seed mode it is keyed by ordered (x, y) pairs and rescanned.
        self._matrices = {self.oracle.name: {}}
        self._pair_index: Dict[str, Dict[str, set]] = {self.oracle.name: {}}
        for adapter in self.adapters:
            self._matrices[adapter.name] = {}
            self._pair_index[adapter.name] = {}
        # Labels produced since the last cross-check.  Any canonical pair
        # missing from a matrix involves one of them (invalidation only
        # drops pairs whose endpoints died or were re-produced), so the
        # incremental refill walks fresh × alive instead of alive × alive.
        self._fresh_labels = {trace.seed}

        steps = list(trace.operations)
        for index, operation in enumerate(steps):
            self.oracle.apply(operation)
            for adapter in self.adapters:
                adapter.apply(operation)
            self._invalidate_matrices(operation)
            last_step = index == len(steps) - 1
            if self._compare_every_step or last_step:
                self._cross_check(reports, sizes)
        if not steps:
            self._cross_check(reports, sizes)
        return reports, sizes

    def _invalidate_matrices(self, operation: Operation) -> None:
        """Drop cached comparisons involving the labels an operation touched."""
        dirty = set(operation.results)
        dirty.add(operation.source)
        if operation.other is not None:
            dirty.add(operation.other)
        if self._incremental:
            self._fresh_labels.difference_update(dirty)
            self._fresh_labels.update(operation.results)
            # Reverse-index invalidation: O(cached pairs touching a dirty
            # label).  A pair lives in both endpoints' buckets; the partner
            # bucket is cleaned lazily (its matrix.pop is a no-op later),
            # which keeps the hot path to one dict pop per dirty label.
            for name, matrix in self._matrices.items():
                index = self._pair_index[name]
                for label in dirty:
                    pairs = index.pop(label, None)
                    if pairs:
                        for pair in pairs:
                            matrix.pop(pair, None)
        else:
            # Seed strategy: rescan every cached pair of every matrix.
            for matrix in self._matrices.values():
                stale = [
                    pair for pair in matrix if pair[0] in dirty or pair[1] in dirty
                ]
                for pair in stale:
                    del matrix[pair]

    def _fill_oracle_matrix(self, labels: List[str]) -> Dict:
        """Bring the oracle's comparison cache up to date for ``labels``."""
        oracle_matrix = self._matrices[self.oracle.name]
        if not self._incremental:
            # Seed strategy: rescan alive × alive, both directions.
            for x in labels:
                for y in labels:
                    if x != y and (x, y) not in oracle_matrix:
                        oracle_matrix[(x, y)] = self.oracle.compare(x, y)
            return oracle_matrix
        # Incremental: only pairs involving a label produced since the last
        # cross-check can be missing; store the canonical direction only.
        fresh = [label for label in labels if label in self._fresh_labels]
        if fresh:
            table = self.oracle.comparison_table()
            index = self._pair_index[self.oracle.name]
            oracle = self.oracle
            for x in fresh:
                for y in labels:
                    if x == y:
                        continue
                    pair = (x, y) if x < y else (y, x)
                    if pair not in oracle_matrix:
                        if table is not None:
                            ordering = table[pair[0]].compare(table[pair[1]])
                        else:
                            ordering = oracle.compare(pair[0], pair[1])
                        oracle_matrix[pair] = ordering
                        index.setdefault(pair[0], set()).add(pair)
                        index.setdefault(pair[1], set()).add(pair)
        self._fresh_labels.clear()
        return oracle_matrix

    def _cross_check(
        self,
        reports: Dict[str, AgreementReport],
        sizes: Dict[str, SizeSample],
    ) -> None:
        labels = self.oracle.labels()
        oracle_matrix = self._fill_oracle_matrix(labels)
        sizes[self.oracle.name].record(
            [self.oracle.size_in_bits(label) for label in labels]
        )

        incremental = self._incremental
        for adapter in self.adapters:
            adapter_labels = set(adapter.labels())
            if adapter_labels != set(labels):
                raise SimulationError(
                    f"{adapter.name} diverged from the oracle: frontier "
                    f"{sorted(adapter_labels)} vs {sorted(labels)}"
                )
            report = reports[adapter.name]
            matrix = self._matrices[adapter.name]
            index = self._pair_index[adapter.name]
            if incremental:
                # Canonical pairs, but both directions are *measured* on the
                # mechanism under test (a direction-inconsistent compare must
                # not be masked by deriving the mirror with flipped()); only
                # the oracle side, a preorder by construction, is flipped.
                for pair, oracle_ordering in oracle_matrix.items():
                    observed = matrix.get(pair)
                    if observed is None:
                        observed = (
                            adapter.compare(pair[0], pair[1]),
                            adapter.compare(pair[1], pair[0]),
                        )
                        matrix[pair] = observed
                        index.setdefault(pair[0], set()).add(pair)
                        index.setdefault(pair[1], set()).add(pair)
                    report.record(oracle_ordering, observed[0])
                    report.record(oracle_ordering.flipped(), observed[1])
            else:
                for pair, oracle_ordering in oracle_matrix.items():
                    observed = matrix.get(pair)
                    if observed is None:
                        observed = adapter.compare(*pair)
                        matrix[pair] = observed
                    report.record(oracle_ordering, observed)
            if self._check_invariants and not adapter.check_invariants():
                report.invariant_failures += 1
            sizes[adapter.name].record(
                [adapter.size_in_bits(label) for label in labels]
            )
