"""Lockstep execution of one trace against every causality mechanism.

Proposition 5.1 is an equivalence between the orders induced by causal
histories and by version stamps *for the same system execution*.  The
:class:`LockstepRunner` makes that statement executable: it replays a single
:class:`~repro.sim.trace.Trace` simultaneously against the causal-history
oracle and any set of mechanism adapters, and after every step compares each
mechanism's pairwise ordering of the current frontier with the oracle's.

The adapters themselves live in :mod:`repro.kernel.adapters`: the generic
:class:`~repro.kernel.adapters.KernelClockAdapter` drives any registered
clock family through the :class:`~repro.kernel.protocol.CausalityClock`
protocol alone, so one lockstep replay doubles as a cross-family comparison
matrix; the specialised adapters (oracle, Frontier-backed stamps, the
identifier-authority VV baseline, the lossy contrast clocks) are retained
for what the protocol deliberately does not expose.  Importing adapter
names from this module still works but emits a :class:`DeprecationWarning`.

The per-mechanism :class:`AgreementReport` records exact agreement counts
plus the two interesting error kinds: *missed conflicts* (mechanism says
ordered, oracle says concurrent -- expected only for plausible clocks) and
*false conflicts* (the reverse).  Size statistics are collected at the same
time so a single trace replay feeds both the correctness and the space
experiments.
"""

from __future__ import annotations

import statistics
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import SimulationError
from ..core.order import Ordering
from ..kernel import adapters as _adapters
from .trace import Operation, Trace

__all__ = [
    "MechanismAdapter",
    "CausalAdapter",
    "RefCausalAdapter",
    "StampAdapter",
    "RerootingStampAdapter",
    "DynamicVVAdapter",
    "ITCAdapter",
    "PlausibleAdapter",
    "LamportAdapter",
    "AgreementReport",
    "SizeSample",
    "LockstepRunner",
    "default_adapters",
]

#: Adapter names that moved to :mod:`repro.kernel.adapters`; accessed here
#: they still resolve (via module ``__getattr__``) but warn.
_MOVED_TO_KERNEL = (
    "MechanismAdapter",
    "CausalAdapter",
    "RefCausalAdapter",
    "StampAdapter",
    "RerootingStampAdapter",
    "DynamicVVAdapter",
    "ITCAdapter",
    "PlausibleAdapter",
    "LamportAdapter",
    "default_adapters",
)


def __getattr__(name: str):
    if name in _MOVED_TO_KERNEL:
        warnings.warn(
            f"importing {name} from repro.sim.runner is deprecated; "
            f"import it from repro.kernel.adapters (or repro.sim) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(_adapters, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class AgreementReport:
    """How one mechanism's frontier order compares with the oracle's."""

    mechanism: str
    comparisons: int = 0
    agreements: int = 0
    missed_conflicts: int = 0
    false_conflicts: int = 0
    other_disagreements: int = 0
    invariant_failures: int = 0

    @property
    def agreement_rate(self) -> float:
        """Fraction of pairwise comparisons that matched the oracle exactly."""
        if self.comparisons == 0:
            return 1.0
        return self.agreements / self.comparisons

    def record(self, oracle: Ordering, observed: Ordering) -> None:
        """Fold one pairwise comparison into the report."""
        self.comparisons += 1
        if oracle is observed:
            self.agreements += 1
        elif oracle is Ordering.CONCURRENT and observed is not Ordering.CONCURRENT:
            self.missed_conflicts += 1
        elif oracle is not Ordering.CONCURRENT and observed is Ordering.CONCURRENT:
            self.false_conflicts += 1
        else:
            self.other_disagreements += 1

    def __str__(self) -> str:
        return (
            f"{self.mechanism}: {self.agreements}/{self.comparisons} agree "
            f"({self.agreement_rate:.1%}), missed={self.missed_conflicts}, "
            f"false={self.false_conflicts}, other={self.other_disagreements}, "
            f"invariant failures={self.invariant_failures}"
        )


@dataclass
class SizeSample:
    """Metadata-size statistics of one mechanism over one trace replay."""

    mechanism: str
    per_step_mean_bits: List[float] = field(default_factory=list)
    per_step_max_bits: List[int] = field(default_factory=list)

    def record(self, sizes: Sequence[int]) -> None:
        """Record the per-element sizes observed after one trace step."""
        if not sizes:
            return
        self.per_step_mean_bits.append(sum(sizes) / len(sizes))
        self.per_step_max_bits.append(max(sizes))

    @property
    def final_mean_bits(self) -> float:
        """Mean element size after the last step (0.0 for empty traces)."""
        return self.per_step_mean_bits[-1] if self.per_step_mean_bits else 0.0

    @property
    def peak_bits(self) -> int:
        """Largest single element observed anywhere in the trace."""
        return max(self.per_step_max_bits, default=0)

    @property
    def overall_mean_bits(self) -> float:
        """Mean of the per-step means (a trace-level size summary)."""
        if not self.per_step_mean_bits:
            return 0.0
        return statistics.fmean(self.per_step_mean_bits)


class LockstepRunner:
    """Replay one trace against the oracle and a set of mechanisms.

    Parameters
    ----------
    adapters:
        Mechanisms to compare against the causal-history oracle; defaults to
        :func:`repro.kernel.adapters.default_adapters`.  Pass
        :func:`repro.kernel.adapters.kernel_adapters` to compare every
        registered clock family through the kernel protocol instead.
    oracle:
        The oracle adapter to cross-check against; defaults to the
        bitset-backed :class:`~repro.kernel.adapters.CausalAdapter`.  Pass
        :class:`~repro.kernel.adapters.RefCausalAdapter` to run against the
        retained frozenset implementation (used by the differential tests
        and the lockstep benchmark).
    compare_every_step:
        When ``True`` (default) the full pairwise ordering of the frontier is
        cross-checked after every operation; when ``False`` only after the
        final operation (cheaper for very long traces).
    check_invariants:
        When ``True`` each adapter's self-check runs after every step.
    incremental:
        When ``True`` (default) the pairwise-comparison caches are kept
        *incrementally*: only canonical ``(min, max)`` pairs are stored (the
        mirror ordering is derived with :meth:`Ordering.flipped`), a
        ``label -> cached pairs`` reverse index makes each operation's
        invalidation O(pairs actually touched), and the per-step refill only
        walks pairs involving labels produced since the last cross-check.
        When ``False`` the runner uses the retained seed strategy -- a full
        O(F²) matrix rescan per operation and a full alive×alive refill per
        cross-check -- kept as the baseline for the lockstep benchmark and
        the differential tests.  Both strategies produce identical
        :class:`AgreementReport`/:class:`SizeSample` results: only the
        oracle's mirror ordering is derived with :meth:`Ordering.flipped`
        (valid for a preorder by construction); each mechanism under test is
        still *measured* in both argument orders, so a direction-inconsistent
        ``compare`` is caught under either strategy.

    Notes
    -----
    Invalidation runs on every operation even when ``compare_every_step`` is
    off, so a cache can never serve a pair whose labels were consumed and
    recycled (e.g. by a relabelling ``sync``) between cross-checks.
    """

    def __init__(
        self,
        adapters: Optional[Sequence["_adapters.MechanismAdapter"]] = None,
        *,
        oracle: Optional["_adapters.MechanismAdapter"] = None,
        compare_every_step: bool = True,
        check_invariants: bool = True,
        incremental: bool = True,
    ) -> None:
        self.oracle = oracle if oracle is not None else _adapters.CausalAdapter()
        self.adapters: List["_adapters.MechanismAdapter"] = (
            list(adapters) if adapters is not None else _adapters.default_adapters()
        )
        self._compare_every_step = compare_every_step
        self._check_invariants = check_invariants
        self._incremental = incremental

    def run(self, trace: Trace) -> Tuple[Dict[str, AgreementReport], Dict[str, SizeSample]]:
        """Replay ``trace``; return per-mechanism agreement and size reports."""
        names = [adapter.name for adapter in self.adapters] + [self.oracle.name]
        if len(set(names)) != len(names):
            raise SimulationError(
                f"adapter names must be unique (reports and comparison caches "
                f"are keyed by them): {sorted(names)}"
            )
        reports = {
            adapter.name: AgreementReport(adapter.name) for adapter in self.adapters
        }
        sizes = {adapter.name: SizeSample(adapter.name) for adapter in self.adapters}
        sizes[self.oracle.name] = SizeSample(self.oracle.name)

        self.oracle.start(trace.seed)
        for adapter in self.adapters:
            adapter.start(trace.seed)

        # Per-mechanism pairwise-comparison caches.  Each trace operation
        # removes and creates a handful of elements; every other pair's
        # comparison is unchanged, so with per-step cross-checking the work
        # per step drops from O(F²) comparisons to O(F) fresh ones.  In
        # incremental mode the cache is keyed by canonical (min, max) pairs
        # and a reverse index (label -> cached pairs) bounds invalidation;
        # in seed mode it is keyed by ordered (x, y) pairs and rescanned.
        self._matrices = {self.oracle.name: {}}
        self._pair_index: Dict[str, Dict[str, set]] = {self.oracle.name: {}}
        for adapter in self.adapters:
            self._matrices[adapter.name] = {}
            self._pair_index[adapter.name] = {}
        # Labels produced since the last cross-check.  Any canonical pair
        # missing from a matrix involves one of them (invalidation only
        # drops pairs whose endpoints died or were re-produced), so the
        # incremental refill walks fresh × alive instead of alive × alive.
        self._fresh_labels = {trace.seed}

        steps = list(trace.operations)
        for index, operation in enumerate(steps):
            self.oracle.apply(operation)
            for adapter in self.adapters:
                adapter.apply(operation)
            self._invalidate_matrices(operation)
            last_step = index == len(steps) - 1
            if self._compare_every_step or last_step:
                self._cross_check(reports, sizes)
        if not steps:
            self._cross_check(reports, sizes)
        return reports, sizes

    def _invalidate_matrices(self, operation: Operation) -> None:
        """Drop cached comparisons involving the labels an operation touched."""
        dirty = set(operation.results)
        dirty.add(operation.source)
        if operation.other is not None:
            dirty.add(operation.other)
        if self._incremental:
            self._fresh_labels.difference_update(dirty)
            self._fresh_labels.update(operation.results)
            # Reverse-index invalidation: O(cached pairs touching a dirty
            # label).  A pair lives in both endpoints' buckets; the partner
            # bucket is cleaned lazily (its matrix.pop is a no-op later),
            # which keeps the hot path to one dict pop per dirty label.
            for name, matrix in self._matrices.items():
                index = self._pair_index[name]
                for label in dirty:
                    pairs = index.pop(label, None)
                    if pairs:
                        for pair in pairs:
                            matrix.pop(pair, None)
        else:
            # Seed strategy: rescan every cached pair of every matrix.
            for matrix in self._matrices.values():
                stale = [
                    pair for pair in matrix if pair[0] in dirty or pair[1] in dirty
                ]
                for pair in stale:
                    del matrix[pair]

    def _fill_oracle_matrix(self, labels: List[str]) -> Dict:
        """Bring the oracle's comparison cache up to date for ``labels``."""
        oracle_matrix = self._matrices[self.oracle.name]
        if not self._incremental:
            # Seed strategy: rescan alive × alive, both directions.
            for x in labels:
                for y in labels:
                    if x != y and (x, y) not in oracle_matrix:
                        oracle_matrix[(x, y)] = self.oracle.compare(x, y)
            return oracle_matrix
        # Incremental: only pairs involving a label produced since the last
        # cross-check can be missing; store the canonical direction only.
        fresh = [label for label in labels if label in self._fresh_labels]
        if fresh:
            table = self.oracle.comparison_table()
            index = self._pair_index[self.oracle.name]
            oracle = self.oracle
            for x in fresh:
                for y in labels:
                    if x == y:
                        continue
                    pair = (x, y) if x < y else (y, x)
                    if pair not in oracle_matrix:
                        if table is not None:
                            ordering = table[pair[0]].compare(table[pair[1]])
                        else:
                            ordering = oracle.compare(pair[0], pair[1])
                        oracle_matrix[pair] = ordering
                        index.setdefault(pair[0], set()).add(pair)
                        index.setdefault(pair[1], set()).add(pair)
        self._fresh_labels.clear()
        return oracle_matrix

    def _cross_check(
        self,
        reports: Dict[str, AgreementReport],
        sizes: Dict[str, SizeSample],
    ) -> None:
        labels = self.oracle.labels()
        oracle_matrix = self._fill_oracle_matrix(labels)
        sizes[self.oracle.name].record(
            [self.oracle.size_in_bits(label) for label in labels]
        )

        incremental = self._incremental
        for adapter in self.adapters:
            adapter_labels = set(adapter.labels())
            if adapter_labels != set(labels):
                raise SimulationError(
                    f"{adapter.name} diverged from the oracle: frontier "
                    f"{sorted(adapter_labels)} vs {sorted(labels)}"
                )
            report = reports[adapter.name]
            matrix = self._matrices[adapter.name]
            index = self._pair_index[adapter.name]
            if incremental:
                # Canonical pairs, but both directions are *measured* on the
                # mechanism under test (a direction-inconsistent compare must
                # not be masked by deriving the mirror with flipped()); only
                # the oracle side, a preorder by construction, is flipped.
                for pair, oracle_ordering in oracle_matrix.items():
                    observed = matrix.get(pair)
                    if observed is None:
                        observed = (
                            adapter.compare(pair[0], pair[1]),
                            adapter.compare(pair[1], pair[0]),
                        )
                        matrix[pair] = observed
                        index.setdefault(pair[0], set()).add(pair)
                        index.setdefault(pair[1], set()).add(pair)
                    report.record(oracle_ordering, observed[0])
                    report.record(oracle_ordering.flipped(), observed[1])
            else:
                for pair, oracle_ordering in oracle_matrix.items():
                    observed = matrix.get(pair)
                    if observed is None:
                        observed = adapter.compare(*pair)
                        matrix[pair] = observed
                    report.record(oracle_ordering, observed)
            if self._check_invariants and not adapter.check_invariants():
                report.invariant_failures += 1
            sizes[adapter.name].record(
                [adapter.size_in_bits(label) for label in labels]
            )
