"""Simulation and evaluation harness.

* :mod:`~repro.sim.trace` -- the trace language shared by every experiment.
* :mod:`~repro.sim.workload` -- parameterized random workload generators.
* :mod:`~repro.sim.runner` -- lockstep replay of one trace against the
  causal-history oracle and every mechanism, with agreement and size reports.
* :mod:`~repro.sim.exhaustive` -- exhaustive model checking of all small
  executions (invariants + Proposition 5.1).
* :mod:`~repro.sim.metrics` -- statistics containers used by the benchmarks.
* :mod:`~repro.sim.scheduler` -- the discrete-event scheduler: a virtual-time
  ``asyncio`` event loop (no real sleeping) driving :mod:`repro.service`.
"""

from ..kernel.adapters import (
    CausalAdapter,
    DynamicVVAdapter,
    ITCAdapter,
    KernelClockAdapter,
    LamportAdapter,
    MechanismAdapter,
    PlausibleAdapter,
    RerootingStampAdapter,
    StampAdapter,
    default_adapters,
    kernel_adapters,
)
from .exhaustive import ExhaustiveReport, explore
from .metrics import ReductionAccumulator, Summary, summarize, SweepTable
from .scheduler import VirtualTimeLoop, run_virtual
from .runner import AgreementReport, LockstepRunner, SizeSample
from .trace import OpKind, Operation, Trace, validate_trace
from .workload import (
    churn_trace,
    fixed_replica_trace,
    partitioned_trace,
    random_dynamic_trace,
    sync_chain_trace,
)

__all__ = [
    "OpKind",
    "Operation",
    "Trace",
    "validate_trace",
    "random_dynamic_trace",
    "fixed_replica_trace",
    "partitioned_trace",
    "churn_trace",
    "sync_chain_trace",
    "LockstepRunner",
    "MechanismAdapter",
    "KernelClockAdapter",
    "kernel_adapters",
    "CausalAdapter",
    "StampAdapter",
    "RerootingStampAdapter",
    "DynamicVVAdapter",
    "ITCAdapter",
    "PlausibleAdapter",
    "LamportAdapter",
    "AgreementReport",
    "SizeSample",
    "default_adapters",
    "ExhaustiveReport",
    "explore",
    "VirtualTimeLoop",
    "run_virtual",
    "Summary",
    "summarize",
    "ReductionAccumulator",
    "SweepTable",
]
