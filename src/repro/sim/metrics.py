"""Aggregation helpers for the experiments.

The benchmarks sweep parameters (replica counts, operation counts, partition
schedules) and need small, dependency-free statistics containers: summarizing
a list of numbers, accumulating reduction effectiveness, and tabulating
per-mechanism results across a sweep.  They live here so benchmark files stay
declarative.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..core.reduction import ReductionStats

__all__ = ["Summary", "summarize", "ReductionAccumulator", "SweepTable"]


@dataclass(frozen=True)
class Summary:
    """Five-number summary of a sample of measurements."""

    count: int
    mean: float
    minimum: float
    maximum: float
    stdev: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.2f} min={self.minimum:.2f} "
            f"max={self.maximum:.2f} stdev={self.stdev:.2f}"
        )


def summarize(values: Iterable[float]) -> Summary:
    """Summarize a sample; an empty sample yields an all-zero summary."""
    sample = [float(value) for value in values]
    if not sample:
        return Summary(count=0, mean=0.0, minimum=0.0, maximum=0.0, stdev=0.0)
    mean = statistics.fmean(sample)
    stdev = statistics.pstdev(sample) if len(sample) > 1 else 0.0
    return Summary(
        count=len(sample),
        mean=mean,
        minimum=min(sample),
        maximum=max(sample),
        stdev=stdev,
    )


@dataclass
class ReductionAccumulator:
    """Accumulates :class:`ReductionStats` over many joins."""

    joins: int = 0
    joins_reduced: int = 0
    total_steps: int = 0
    total_bits_before: int = 0
    total_bits_after: int = 0

    def record(self, stats: ReductionStats) -> None:
        """Fold one join's reduction statistics into the accumulator."""
        self.joins += 1
        if stats.reduced:
            self.joins_reduced += 1
        self.total_steps += stats.steps
        self.total_bits_before += stats.id_bits_before + stats.update_bits_before
        self.total_bits_after += stats.id_bits_after + stats.update_bits_after

    @property
    def reduction_rate(self) -> float:
        """Fraction of joins where at least one rewriting step applied."""
        return self.joins_reduced / self.joins if self.joins else 0.0

    @property
    def mean_steps(self) -> float:
        """Average number of rewriting steps per join."""
        return self.total_steps / self.joins if self.joins else 0.0

    @property
    def bits_saved_fraction(self) -> float:
        """Fraction of encoded bits removed by normalization."""
        if self.total_bits_before == 0:
            return 0.0
        return 1.0 - self.total_bits_after / self.total_bits_before


class SweepTable:
    """A tiny column-oriented table for sweep results.

    Rows are added as dictionaries; :meth:`render` produces an aligned
    plain-text table suitable for benchmark output and EXPERIMENTS.md.
    """

    def __init__(self, columns: Sequence[str]) -> None:
        self.columns: List[str] = list(columns)
        self.rows: List[Dict[str, object]] = []

    def add_row(self, **values: object) -> None:
        """Append one row; missing columns render as empty cells."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns: {sorted(unknown)}")
        self.rows.append(dict(values))

    @staticmethod
    def _format(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        if value is None:
            return ""
        return str(value)

    def render(self, *, title: Optional[str] = None) -> str:
        """An aligned, plain-text rendering of the table."""
        cells = [[self._format(row.get(column)) for column in self.columns] for row in self.rows]
        widths = [
            max(len(column), *(len(row[index]) for row in cells)) if cells else len(column)
            for index, column in enumerate(self.columns)
        ]
        lines = []
        if title:
            lines.append(title)
        header = "  ".join(column.ljust(width) for column, width in zip(self.columns, widths))
        lines.append(header)
        lines.append("  ".join("-" * width for width in widths))
        for row in cells:
            lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        return "\n".join(lines)

    def column(self, name: str) -> List[object]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}")
        return [row.get(name) for row in self.rows]
