"""Optimistic replication substrate exercised by the end-to-end scenarios.

The paper targets update tracking for optimistic replication in mobile,
partition-prone environments.  This subpackage builds that environment:

* :mod:`~repro.replication.tracker` -- pluggable causality trackers (version
  stamps by default, ITC and dynamic version vectors for comparison).
* :mod:`~repro.replication.replica` -- single-item replicas with local
  writes, coordination-free forking and pairwise synchronization.
* :mod:`~repro.replication.store` -- a multi-value key-value store replica.
* :mod:`~repro.replication.conflict` -- conflict resolution policies.
* :mod:`~repro.replication.network` -- simulated partitions and mobility.
* :mod:`~repro.replication.faults` -- fault-injecting transport (loss,
  duplication, reordering, corruption, outages, crash/restart) plus the
  retry policy the sync engine degrades through.
* :mod:`~repro.replication.degradation` -- grey-failure injection (slow
  nodes, stuck sessions, flapping links, throttle windows): replicas that
  are alive but degraded, for the service's health layer to route around.
* :mod:`~repro.replication.node` / :mod:`~repro.replication.synchronizer` --
  mobile nodes and anti-entropy gossip on top of all of the above.

Stores opened ``durable=True`` journal to :mod:`repro.durability` and
survive crash-recover restarts (``MobileNode.restart(mode="recover")``);
see that package for the log, snapshot and recovery machinery.
"""

from .conflict import ConflictPolicy, KeepBoth, MergeWith, PreferNewest
from .degradation import DegradationPlan, DegradationState
from .faults import FaultPlan, FaultyTransport, RetryPolicy
from .network import (
    FullyConnectedNetwork,
    LatencyPercentiles,
    NetworkMeter,
    NodePosition,
    PartitionSchedule,
    PartitionedNetwork,
    ProximityNetwork,
    ScheduledNetwork,
    SimulatedNetwork,
)
from .history import ExchangeRecord, SyncHistory
from .node import MobileNode
from .replica import Replica, SyncOutcome, Version
from .store import FrameRejected, MergeReport, StoreReplica
from .synchronizer import (
    AntiEntropy,
    RoundReport,
    SessionAbort,
    SleepEffect,
    TransferEffect,
    WireSyncEngine,
)
from .tracker import (
    CausalityTracker,
    DynamicVVTracker,
    ITCTracker,
    KernelTracker,
    StampTracker,
)

__all__ = [
    "CausalityTracker",
    "StampTracker",
    "ITCTracker",
    "DynamicVVTracker",
    "KernelTracker",
    "Replica",
    "Version",
    "SyncOutcome",
    "StoreReplica",
    "MergeReport",
    "FrameRejected",
    "ConflictPolicy",
    "KeepBoth",
    "MergeWith",
    "PreferNewest",
    "SimulatedNetwork",
    "FullyConnectedNetwork",
    "PartitionedNetwork",
    "ScheduledNetwork",
    "PartitionSchedule",
    "ProximityNetwork",
    "NodePosition",
    "NetworkMeter",
    "LatencyPercentiles",
    "FaultPlan",
    "FaultyTransport",
    "RetryPolicy",
    "DegradationPlan",
    "DegradationState",
    "SessionAbort",
    "SleepEffect",
    "TransferEffect",
    "MobileNode",
    "AntiEntropy",
    "RoundReport",
    "WireSyncEngine",
    "SyncHistory",
    "ExchangeRecord",
]
