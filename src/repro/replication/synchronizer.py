"""Anti-entropy synchronization over a set of mobile nodes.

Optimistic systems reconcile replicas opportunistically: whenever two copies
can communicate, they exchange what they know.  :class:`AntiEntropy` drives
that process over a collection of :class:`~repro.replication.node.MobileNode`
objects and a :class:`~repro.replication.network.SimulatedNetwork`:

* each *round*, every node picks a reachable peer (at random or round-robin)
  and performs a two-way store synchronization;
* partitions simply limit who can be picked, so progress continues
  independently inside every partition -- the paper's partitioned operation;
* the collected :class:`RoundReport` objects let benchmarks measure how many
  rounds convergence takes and how many conflicts were detected.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from .node import MobileNode
from .store import MergeReport

__all__ = ["RoundReport", "AntiEntropy"]


@dataclass
class RoundReport:
    """What happened during one anti-entropy round."""

    round_number: int
    exchanges: int = 0
    skipped_partitioned: int = 0
    conflicts_detected: int = 0
    values_exchanged: int = 0

    def record(self, merge: MergeReport) -> None:
        """Fold one pairwise merge into the round statistics."""
        self.exchanges += 1
        self.conflicts_detected += merge.conflicts_detected
        self.values_exchanged += merge.values_taken


class AntiEntropy:
    """Round-based gossip reconciliation over a node population."""

    def __init__(
        self,
        nodes: Sequence[MobileNode],
        *,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.nodes: List[MobileNode] = list(nodes)
        self._rng = rng if rng is not None else random.Random(0)
        self.reports: List[RoundReport] = []

    def add_node(self, node: MobileNode) -> None:
        """Bring a new node into the gossip population."""
        self.nodes.append(node)

    def run_round(self) -> RoundReport:
        """Run one gossip round: every node tries to sync with one peer."""
        report = RoundReport(round_number=len(self.reports) + 1)
        order = list(self.nodes)
        self._rng.shuffle(order)
        for node in order:
            peers = [other for other in self.nodes if other is not node]
            if not peers:
                continue
            reachable = [other for other in peers if node.can_reach(other)]
            if not reachable:
                report.skipped_partitioned += 1
                continue
            peer = self._rng.choice(reachable)
            merge = node.try_sync_with(peer)
            if merge is None:
                report.skipped_partitioned += 1
            else:
                report.record(merge)
        self.reports.append(report)
        return report

    def run(self, rounds: int, *, advance_network: bool = True) -> List[RoundReport]:
        """Run several rounds, optionally advancing the network between them."""
        results = []
        for _ in range(rounds):
            results.append(self.run_round())
            if advance_network and self.nodes:
                self.nodes[0].network.advance()
        return results

    # -- convergence checks ------------------------------------------------------

    def converged(self, keys: Optional[Iterable[str]] = None) -> bool:
        """True when every node holds the same siblings for every key."""
        if not self.nodes:
            return True
        if keys is None:
            keys = set()
            for node in self.nodes:
                keys |= set(node.store.keys())
        for key in keys:
            reference = None
            for node in self.nodes:
                values = sorted(repr(value) for value in node.store.get(key))
                if reference is None:
                    reference = values
                elif values != reference:
                    return False
        return True

    def rounds_to_convergence(
        self, max_rounds: int, *, advance_network: bool = True
    ) -> Optional[int]:
        """Run until convergence and return the number of rounds needed.

        Returns ``None`` when convergence was not reached within
        ``max_rounds`` (e.g. because partitions never healed).
        """
        for round_number in range(1, max_rounds + 1):
            self.run_round()
            if advance_network and self.nodes:
                self.nodes[0].network.advance()
            if self.converged():
                return round_number
        return None

    def total_conflicts(self) -> int:
        """Total conflicts detected across all rounds so far."""
        return sum(report.conflicts_detected for report in self.reports)

    def total_metadata_bits(self) -> int:
        """Total causal-metadata footprint across the node population."""
        return sum(node.store.metadata_size_in_bits() for node in self.nodes)
