"""Anti-entropy synchronization over a set of mobile nodes.

Optimistic systems reconcile replicas opportunistically: whenever two copies
can communicate, they exchange what they know.  :class:`AntiEntropy` drives
that process over a collection of :class:`~repro.replication.node.MobileNode`
objects and a :class:`~repro.replication.network.SimulatedNetwork`:

* each *round*, every node picks a reachable peer (at random or round-robin)
  and performs a two-way store synchronization;
* partitions simply limit who can be picked, so progress continues
  independently inside every partition -- the paper's partitioned operation;
* the collected :class:`RoundReport` objects let benchmarks measure how many
  rounds convergence takes and how many conflicts were detected.

The wire sync engine
--------------------
:class:`WireSyncEngine` is the batched replication path: instead of the
in-memory tracker handoff of :meth:`StoreReplica.sync_with`, every piece of
causal metadata a pairwise synchronization moves actually crosses a wire
boundary as bytes.  A reconciliation between stores ``A`` and ``B`` is two
transfers:

1. *request* -- ``B`` ships the trackers of every key it holds; batched
   mode frames them as **one stream per (family, epoch) group**
   (:mod:`repro.kernel.stream`), per-envelope mode as one envelope per
   stamp (the PR-4 baseline);
2. ``A`` decodes (lazily and through a shared
   :class:`~repro.kernel.stream.InternTable` in batched mode), runs the
   same per-key merge as the in-memory path, and
3. *response* -- ships back only the trackers that changed, which ``B``
   installs after decoding, so what a store holds after a wire sync has
   genuinely round-tripped the codec.

Causally EQUAL keys are left untouched (``refork_equal=False``), so the
steady state of anti-entropy -- most keys unchanged between rounds --
re-ships byte-identical frames, and the batched engine's intern table
turns their re-decode into dictionary hits while byte-equality doubles as
a free EQUAL check (the codecs are canonical, so equal bytes mean equal
clocks).  The per-envelope baseline re-decodes every envelope every round.
Both modes drive the identical merge logic, so they produce identical
configurations -- a property test locks this in against the causal oracle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.errors import ReplicationError
from ..kernel.envelope import decode_envelope
from ..kernel.stream import InternTable, decode_stream, encode_stream
from .network import NetworkMeter
from .node import MobileNode
from .store import KeyState, MergeReport, StoreReplica
from .tracker import KernelTracker

__all__ = ["RoundReport", "AntiEntropy", "WireSyncEngine"]


@dataclass
class RoundReport:
    """What happened during one anti-entropy round."""

    round_number: int
    exchanges: int = 0
    skipped_partitioned: int = 0
    conflicts_detected: int = 0
    values_exchanged: int = 0
    #: Wire traffic of the round (zero when syncing in memory).
    messages_sent: int = 0
    bytes_sent: int = 0

    def record(self, merge: MergeReport) -> None:
        """Fold one pairwise merge into the round statistics."""
        self.exchanges += 1
        self.conflicts_detected += merge.conflicts_detected
        self.values_exchanged += merge.values_taken


class _LazyFrame:
    """A not-yet-decoded stream frame (decoded on demand, intern-backed)."""

    __slots__ = ("_stream", "_index")

    def __init__(self, stream, index: int) -> None:
        self._stream = stream
        self._index = index

    def get(self):
        return self._stream[self._index]


def _materialize(frame):
    """The decoded clock behind ``frame`` (a clock or a lazy frame)."""
    return frame.get() if type(frame) is _LazyFrame else frame


class WireSyncEngine:
    """Pairwise store synchronization over the kernel wire formats.

    Parameters
    ----------
    batched:
        ``True`` (default) ships one envelope stream per (family, epoch)
        group and direction and decodes through a shared
        :class:`~repro.kernel.stream.InternTable`; ``False`` is the
        per-envelope baseline -- one self-describing envelope per stamp,
        decoded individually.
    meter:
        The :class:`~repro.replication.network.NetworkMeter` recording
        messages and bytes; a fresh one is created when omitted.
    intern_entries:
        Capacity of the batched mode's intern table.

    Both modes run the identical merge logic
    (:meth:`StoreReplica._merge_key_states` with ``refork_equal=False``),
    so they produce identical configurations; they differ only in framing
    and decode strategy.  Values move by reference -- this is a
    simulation -- but every piece of *causal metadata* a sync transfers
    crosses the codec boundary as real bytes, in both directions.

    Only stores whose keys are tracked by
    :class:`~repro.replication.tracker.KernelTracker` can sync over the
    wire (the baselines have no byte form); anything else raises
    :class:`~repro.core.errors.ReplicationError`.
    """

    def __init__(
        self,
        *,
        batched: bool = True,
        meter: Optional[NetworkMeter] = None,
        intern_entries: int = 65536,
    ) -> None:
        self.batched = batched
        self.meter = meter if meter is not None else NetworkMeter()
        self.intern = InternTable(max_entries=intern_entries) if batched else None
        #: Stamps that crossed the wire (both directions, all syncs).
        self.stamps_shipped = 0
        #: Keys settled by the canonical-bytes EQUAL fast path alone.
        self.equal_bytes_skips = 0
        #: Keys settled by the pointer-identity EQUAL verdict cache.
        self.equal_cache_hits = 0
        # The pointer-equality dividend of the intern table: once a frame
        # decodes to the *same object* round after round, a previously
        # computed EQUAL verdict for (my clock, that object) can be reused
        # with one dictionary hit.  Keyed by object identity -- the cached
        # entry holds strong references, so the ids cannot be recycled
        # while the verdict lives.  Clock immutability makes this sound;
        # bounded FIFO like every other cache in this codebase.
        self._equal_verdicts: Dict[Tuple[int, int], Tuple[object, object]] = {}
        # One tracker wrapper per decoded clock object (wrappers are
        # stateless beyond the clock, so sharing them is safe; the wrapper
        # holds the clock alive, so a live cache entry's id is never
        # recycled -- the identity check makes a stale hit impossible).
        self._wrappers: Dict[int, KernelTracker] = {}

    _MAX_CACHED = 1 << 16

    def _wrap(self, clock) -> KernelTracker:
        key = id(clock)
        cached = self._wrappers.get(key)
        if cached is not None and cached.clock is clock:
            return cached
        tracker = KernelTracker(clock)
        if len(self._wrappers) >= self._MAX_CACHED:
            self._wrappers.clear()
        self._wrappers[key] = tracker
        return tracker

    @staticmethod
    def _clock_of(store: StoreReplica, key: str, state: KeyState):
        tracker = state.tracker
        if not isinstance(tracker, KernelTracker):
            raise ReplicationError(
                f"wire sync needs kernel clock trackers; key {key!r} on "
                f"replica {store.name!r} is tracked by "
                f"{type(tracker).__name__}"
            )
        return tracker.clock

    def _ship(
        self,
        sender: StoreReplica,
        receiver: StoreReplica,
        items: List[Tuple[str, KeyState]],
    ) -> Dict[str, Tuple[object, object]]:
        """Transfer the trackers of ``items`` from sender to receiver.

        Returns ``key -> (decoded clock, raw frame payload)`` on the
        receiving side; the raw payload feeds the canonical-bytes EQUAL
        fast path, and the decoded clock is materialized lazily (a
        ``ClockStream`` index access) only for keys that need a real
        merge.  One stream per (family, epoch) group in batched mode, one
        envelope per stamp otherwise; either way the meter sees every
        message.
        """
        self.stamps_shipped += len(items)
        received: Dict[str, Tuple[object, object]] = {}
        if not self.batched:
            for key, state in items:
                blob = self._clock_of(sender, key, state).to_bytes()
                self.meter.record(sender.name, receiver.name, len(blob))
                received[key] = (decode_envelope(blob), None)
            return received
        groups: Dict[Tuple[str, int], List[Tuple[str, object]]] = {}
        for key, state in items:
            clock = self._clock_of(sender, key, state)
            groups.setdefault((clock.family, clock.epoch), []).append((key, clock))
        for (family_name, epoch), members in groups.items():
            blob = encode_stream(
                [clock for _, clock in members],
                family_name=family_name,
                epoch=epoch,
            )
            self.meter.record(sender.name, receiver.name, len(blob))
            stream = decode_stream(memoryview(blob), intern=self.intern)
            for index, (key, _) in enumerate(members):
                received[key] = (
                    _LazyFrame(stream, index),
                    (family_name, epoch, stream.frame_bytes(index)),
                )
        return received

    def sync(self, first: StoreReplica, second: StoreReplica) -> MergeReport:
        """Two-way reconciliation of ``first`` and ``second`` over the wire.

        Equivalent to :meth:`StoreReplica.sync_with` except that causally
        EQUAL keys keep their trackers (metadata stability) and all causal
        metadata round-trips the codec.
        """
        if first is second:
            raise ReplicationError("a store replica cannot synchronize with itself")
        report = MergeReport()
        keys = sorted(set(first._keys) | set(second._keys))

        # Request leg: second ships everything it holds to first.
        held = [(key, second._keys[key]) for key in keys if key in second._keys]
        received = self._ship(second, first, held)

        changed: List[str] = []
        for key in keys:
            mine = first._keys.get(key)
            theirs = second._keys.get(key)
            report.keys_examined += 1
            if theirs is None:
                # Replicate first -> second: fork the holder's tracker; the
                # remote half rides the response leg to its new home.
                local, remote = mine.tracker.forked()
                mine.tracker = local
                second._keys[key] = KeyState(values=list(mine.values), tracker=remote)
                mine.independently_created = False
                report.keys_replicated += 1
                report.values_taken += len(mine.values)
                changed.append(key)
                continue
            frame, raw = received[key]
            if mine is None:
                # Replicate second -> first from the decoded wire copy.
                holder = KernelTracker(_materialize(frame))
                local, remote = holder.forked()
                theirs.tracker = local
                first._keys[key] = KeyState(values=list(theirs.values), tracker=remote)
                theirs.independently_created = False
                report.keys_replicated += 1
                report.values_taken += len(theirs.values)
                changed.append(key)
                continue
            independent = mine.independently_created and theirs.independently_created
            if raw is not None and not independent:
                # Canonical-bytes fast path: the codec maps equal clocks to
                # equal bytes, so a frame matching our own payload proves
                # EQUAL without decoding it (the converse does not hold --
                # distinct EQUAL clocks still decode and compare below).
                clock = mine.tracker.clock
                if (
                    (clock.family, clock.epoch) == raw[:2]
                    and clock.payload_bytes() == raw[2]
                ):
                    self.equal_bytes_skips += 1
                    continue
            remote_clock = _materialize(frame)
            mine_clock = mine.tracker.clock
            verdict_key = (id(mine_clock), id(remote_clock))
            if not independent and verdict_key in self._equal_verdicts:
                # Both objects are pointer-stable (intern table) and were
                # proven causally EQUAL before: nothing to move, nothing
                # to re-fork, nothing to ship back.
                self.equal_cache_hits += 1
                theirs.tracker = self._wrap(remote_clock)
                continue
            before = self._wrap(remote_clock)
            theirs.tracker = before
            mine_before = mine.tracker
            first._merge_key_states(mine, theirs, report, refork_equal=False)
            if theirs.tracker is not before:
                changed.append(key)
            elif mine.tracker is mine_before and not independent:
                # EQUAL no-op: remember the verdict for the next round.
                if len(self._equal_verdicts) >= self._MAX_CACHED:
                    self._equal_verdicts.clear()
                self._equal_verdicts[verdict_key] = (mine_clock, remote_clock)

        # Response leg: only second-side trackers that changed go back.
        returned = self._ship(
            first, second, [(key, second._keys[key]) for key in changed]
        )
        for key in changed:
            frame, _ = returned[key]
            second._keys[key].tracker = KernelTracker(_materialize(frame))
        return report


class AntiEntropy:
    """Round-based gossip reconciliation over a node population.

    Pass a :class:`WireSyncEngine` as ``engine`` to run every pairwise
    exchange over the kernel wire formats (batched streams or per-stamp
    envelopes); each :class:`RoundReport` then carries the round's real
    message and byte counts.  Without an engine, stores reconcile in
    memory exactly as before.
    """

    def __init__(
        self,
        nodes: Sequence[MobileNode],
        *,
        rng: Optional[random.Random] = None,
        engine: Optional[WireSyncEngine] = None,
    ) -> None:
        self.nodes: List[MobileNode] = list(nodes)
        self._rng = rng if rng is not None else random.Random(0)
        self.engine = engine
        self.reports: List[RoundReport] = []

    def add_node(self, node: MobileNode) -> None:
        """Bring a new node into the gossip population."""
        self.nodes.append(node)

    def run_round(self) -> RoundReport:
        """Run one gossip round: every node tries to sync with one peer."""
        report = RoundReport(round_number=len(self.reports) + 1)
        engine = self.engine
        if engine is not None:
            messages_before, bytes_before = engine.meter.snapshot()
        order = list(self.nodes)
        self._rng.shuffle(order)
        for node in order:
            peers = [other for other in self.nodes if other is not node]
            if not peers:
                continue
            reachable = [other for other in peers if node.can_reach(other)]
            if not reachable:
                report.skipped_partitioned += 1
                continue
            peer = self._rng.choice(reachable)
            merge = node.try_sync_with(peer, engine=engine)
            if merge is None:
                report.skipped_partitioned += 1
            else:
                report.record(merge)
        if engine is not None:
            messages_after, bytes_after = engine.meter.snapshot()
            report.messages_sent = messages_after - messages_before
            report.bytes_sent = bytes_after - bytes_before
        self.reports.append(report)
        return report

    def run(self, rounds: int, *, advance_network: bool = True) -> List[RoundReport]:
        """Run several rounds, optionally advancing the network between them."""
        results = []
        for _ in range(rounds):
            results.append(self.run_round())
            if advance_network and self.nodes:
                self.nodes[0].network.advance()
        return results

    # -- convergence checks ------------------------------------------------------

    def converged(self, keys: Optional[Iterable[str]] = None) -> bool:
        """True when every node holds the same siblings for every key."""
        if not self.nodes:
            return True
        if keys is None:
            keys = set()
            for node in self.nodes:
                keys |= set(node.store.keys())
        for key in keys:
            reference = None
            for node in self.nodes:
                values = sorted(repr(value) for value in node.store.get(key))
                if reference is None:
                    reference = values
                elif values != reference:
                    return False
        return True

    def rounds_to_convergence(
        self, max_rounds: int, *, advance_network: bool = True
    ) -> Optional[int]:
        """Run until convergence and return the number of rounds needed.

        Returns ``None`` when convergence was not reached within
        ``max_rounds`` (e.g. because partitions never healed).
        """
        for round_number in range(1, max_rounds + 1):
            self.run_round()
            if advance_network and self.nodes:
                self.nodes[0].network.advance()
            if self.converged():
                return round_number
        return None

    def total_conflicts(self) -> int:
        """Total conflicts detected across all rounds so far."""
        return sum(report.conflicts_detected for report in self.reports)

    def total_metadata_bits(self) -> int:
        """Total causal-metadata footprint across the node population."""
        return sum(node.store.metadata_size_in_bits() for node in self.nodes)
