"""Anti-entropy synchronization over a set of mobile nodes.

Optimistic systems reconcile replicas opportunistically: whenever two copies
can communicate, they exchange what they know.  :class:`AntiEntropy` drives
that process over a collection of :class:`~repro.replication.node.MobileNode`
objects and a :class:`~repro.replication.network.SimulatedNetwork`:

* each *round*, every live node picks a reachable peer (at random) and
  performs a two-way store synchronization;
* partitions and crashed nodes simply limit who can be picked, so progress
  continues independently inside every partition -- the paper's partitioned
  operation;
* the collected :class:`RoundReport` objects let benchmarks measure how many
  rounds convergence takes, how many conflicts were detected, and -- under a
  fault-injecting transport -- the effective goodput of the exchange.

The wire sync engine
--------------------
:class:`WireSyncEngine` is the batched replication path: instead of the
in-memory tracker handoff of :meth:`StoreReplica.sync_with`, every piece of
causal metadata a pairwise synchronization moves actually crosses a wire
boundary as bytes.  A reconciliation between stores ``A`` and ``B`` is two
transfers:

1. *request* -- ``B`` ships the trackers of every key it holds; batched
   mode frames them as **one stream per (family, epoch) group**
   (:mod:`repro.kernel.stream`), per-envelope mode as one envelope per
   stamp (the PR-4 baseline);
2. ``A`` decodes (lazily and through a shared
   :class:`~repro.kernel.stream.InternTable` in batched mode), runs the
   same per-key merge as the in-memory path, and
3. *response* -- ships back only the trackers that changed, which ``B``
   installs after decoding, so what a store holds after a wire sync has
   genuinely round-tripped the codec.

Causally EQUAL keys are left untouched (``refork_equal=False``), so the
steady state of anti-entropy -- most keys unchanged between rounds --
re-ships byte-identical frames, and the batched engine's intern table
turns their re-decode into dictionary hits while byte-equality doubles as
a free EQUAL check (the codecs are canonical, so equal bytes mean equal
clocks).  The per-envelope baseline re-decodes every envelope every round.
Both modes drive the identical merge logic, so they produce identical
configurations -- a property test locks this in against the causal oracle.

Degrading gracefully under faults
---------------------------------
Give the engine a :class:`~repro.replication.faults.FaultyTransport` and a
:class:`~repro.replication.faults.RetryPolicy` and every transfer leg runs
through scheduled loss, duplication, reordering and corruption:

* each wire message carries a CRC32 transport checksum; a copy that fails
  the checksum (or fails eager structural decode) is discarded and the
  message is *resent* under bounded exponential backoff with jitter --
  ``messages``/``bytes_sent`` on the meter count every attempt, so goodput
  is honest;
* duplicate copies of an already-accepted message are no-ops (positional
  reassembly plus canonical bytes make re-delivery idempotent), and
  reordering is absorbed the same way;
* a frame that fails *lazy* payload decode at merge time costs exactly one
  key one round: the key is skipped and reported as a typed
  :class:`~repro.replication.store.FrameRejected` in the
  :class:`~repro.replication.store.MergeReport`, the rest of the pairwise
  sync proceeds, and the key heals on a later round (the intern table is
  never poisoned -- it only admits successfully decoded clocks);
* keys whose *response* leg is lost past the retry budget are rolled back
  on **both** sides to their pre-sync state: a half-installed join/fork
  would strand one half of freshly split identifier space, an I2 hazard
  that could manufacture false orderings;
* a stale-epoch straggler is *upgraded* instead of rejected: epoch bumps
  only happen at common knowledge (:meth:`AntiEntropy.compact_key`), so
  the merge adopts the newer-epoch state wholesale rather than raising
  :class:`~repro.core.errors.EpochMismatch` -- reroot announcements simply
  piggyback on the normal sync legs.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from .. import kernel
from ..core.errors import EncodingError, ReplicationError
from ..core.order import Ordering
from ..core.reroot import reroot_group
from ..kernel.clocks import VersionStampClock
from ..kernel.envelope import decode_envelope
from ..kernel.stream import InternTable, decode_stream, encode_stream
from .faults import FaultyTransport, RetryPolicy
from .history import SyncHistory
from .network import NetworkMeter
from .node import MobileNode
from .store import FrameRejected, KeyState, MergeReport, StoreReplica
from .tracker import KernelTracker

__all__ = [
    "RoundReport",
    "AntiEntropy",
    "WireSyncEngine",
    "SleepEffect",
    "TransferEffect",
    "SessionAbort",
]
# SyncHistory/ExchangeRecord live in .history; re-exported by the package.


class SessionAbort(Exception):
    """Thrown *into* a running session generator to cancel it cleanly.

    A driver that decides a session must not continue -- the async
    daemon's deadline enforcement -- calls ``session.throw(SessionAbort())``
    at the suspended wire effect.  Every yield of the session generator
    sits inside a transfer leg, so the abort surfaces at one of the two
    ``_ship`` calls; the generator restores both replicas from the
    session's transactional snapshots and re-raises, guaranteeing the
    aborted session left no half-merged key behind (the same I2-hazard
    discipline the response-loss rollback follows).  The driver then
    reports the abort as a typed
    :class:`~repro.core.errors.SessionTimeout`.
    """


class SleepEffect(NamedTuple):
    """A sans-io wire effect: the session waits out simulated time.

    Emitted by :meth:`WireSyncEngine.session` for retry backoff.  The
    synchronous driver ignores it (the meter already accounts the latency
    as ``retry_latency``); an asynchronous driver sleeps it on the virtual
    clock so backoff shapes the simulation's timeline.
    """

    seconds: float


class TransferEffect(NamedTuple):
    """A sans-io wire effect: one transfer attempt just hit the wire.

    Emitted after the transport computed its deliveries and before the
    receiver validates them -- the point where, on a real network, the
    bytes would be in flight.  An asynchronous driver turns it into a
    link-model delay (latency plus ``nbytes`` over bandwidth); the
    synchronous driver ignores it.
    """

    source: str
    destination: str
    messages: int
    nbytes: int


@dataclass
class RoundReport:
    """What happened during one anti-entropy round."""

    round_number: int
    exchanges: int = 0
    skipped_partitioned: int = 0
    conflicts_detected: int = 0
    values_exchanged: int = 0
    #: Wire traffic of the round (zero when syncing in memory).
    messages_sent: int = 0
    bytes_sent: int = 0
    #: Fault economy of the round (all zero on a perfect transport).
    dropped: int = 0
    duplicated: int = 0
    retried: int = 0
    corrupted: int = 0
    retry_latency: float = 0.0
    #: Accepted payload bytes over sent bytes for this round's traffic.
    goodput: float = 0.0
    #: Frames skipped via :class:`~repro.replication.store.FrameRejected`.
    frames_rejected: int = 0
    #: Stale-epoch stragglers fiat-upgraded during this round's merges.
    epoch_upgrades: int = 0

    def record(self, merge: MergeReport) -> None:
        """Fold one pairwise merge into the round statistics."""
        self.exchanges += 1
        self.conflicts_detected += merge.conflicts_detected
        self.values_exchanged += merge.values_taken
        self.frames_rejected += len(merge.frames_rejected)
        self.epoch_upgrades += merge.epoch_upgrades


class _LazyFrame:
    """A not-yet-decoded stream frame (decoded on demand, intern-backed)."""

    __slots__ = ("_stream", "_index")

    def __init__(self, stream, index: int) -> None:
        self._stream = stream
        self._index = index

    def get(self):
        return self._stream[self._index]


def _materialize(frame):
    """The decoded clock behind ``frame`` (a clock or a lazy frame)."""
    return frame.get() if type(frame) is _LazyFrame else frame


class WireSyncEngine:
    """Pairwise store synchronization over the kernel wire formats.

    Parameters
    ----------
    batched:
        ``True`` (default) ships one envelope stream per (family, epoch)
        group and direction and decodes through a shared
        :class:`~repro.kernel.stream.InternTable`; ``False`` is the
        per-envelope baseline -- one self-describing envelope per stamp,
        decoded individually.
    meter:
        The :class:`~repro.replication.network.NetworkMeter` recording
        messages, bytes and fault counters; a fresh one is created when
        omitted.
    intern_entries:
        Capacity of the batched mode's intern table.
    transport:
        Optional :class:`~repro.replication.faults.FaultyTransport`; when
        given, every transfer leg is delivered through its fault plan and
        retried under ``retry``.  Without it the wire is perfect (the
        pre-fault behaviour, bit for bit).
    retry:
        The :class:`~repro.replication.faults.RetryPolicy` used with a
        transport; defaults to a fresh policy.
    verify_checksums:
        Whether transport messages carry a CRC32 end-to-end check (the
        simulated analogue of a datagram checksum).  Disable only to
        deliberately let damaged frames reach the decode layer, e.g. to
        exercise the skip-and-report path.
    retry_seed:
        Seed of the jitter RNG, so retry schedules are reproducible.
    history:
        Optional :class:`~repro.replication.history.SyncHistory` -- a
        bounded ring buffer that receives one
        :class:`~repro.replication.history.ExchangeRecord` per completed
        session (which keys completed, which were lost to faults, the
        exchange's fault-counter deltas).  This is what contract
        provenance reconstruction walks; without it the engine keeps the
        pre-existing transient reporting only.

    Both modes run the identical merge logic
    (:meth:`StoreReplica._merge_key_states` with ``refork_equal=False``),
    so they produce identical configurations; they differ only in framing
    and decode strategy.  Values move by reference -- this is a
    simulation -- but every piece of *causal metadata* a sync transfers
    crosses the codec boundary as real bytes, in both directions.

    Only stores whose keys are tracked by
    :class:`~repro.replication.tracker.KernelTracker` can sync over the
    wire (the baselines have no byte form); anything else raises
    :class:`~repro.core.errors.ReplicationError`.
    """

    def __init__(
        self,
        *,
        batched: bool = True,
        meter: Optional[NetworkMeter] = None,
        intern_entries: int = 65536,
        transport: Optional[FaultyTransport] = None,
        retry: Optional[RetryPolicy] = None,
        verify_checksums: bool = True,
        retry_seed: int = 0x5EED,
        history: Optional[SyncHistory] = None,
    ) -> None:
        self.batched = batched
        self.meter = meter if meter is not None else NetworkMeter()
        self.intern = InternTable(max_entries=intern_entries) if batched else None
        self.transport = transport
        self.retry = retry if retry is not None else RetryPolicy()
        self.verify_checksums = verify_checksums
        self.history = history
        self._retry_rng = random.Random(retry_seed)
        if transport is not None and transport.meter is None:
            # One meter carries the whole fault economy: the transport
            # records ground truth (drops, duplicates, corruption), the
            # engine records attempts, retries and accepted deliveries.
            transport.meter = self.meter
        #: Stamps that crossed the wire (both directions, all syncs).
        self.stamps_shipped = 0
        #: Keys settled by the canonical-bytes EQUAL fast path alone.
        self.equal_bytes_skips = 0
        #: Keys settled by the pointer-identity EQUAL verdict cache.
        self.equal_cache_hits = 0
        #: Messages given up on after exhausting the retry budget.
        self.deliveries_failed = 0
        #: Frames skipped via the typed FrameRejected path (all syncs).
        self.frames_rejected = 0
        #: Stale-epoch stragglers fiat-upgraded during merges (all syncs).
        self.epoch_upgrades = 0
        # The pointer-equality dividend of the intern table: once a frame
        # decodes to the *same object* round after round, a previously
        # computed EQUAL verdict for (my clock, that object) can be reused
        # with one dictionary hit.  Keyed by object identity -- the cached
        # entry holds strong references, so the ids cannot be recycled
        # while the verdict lives.  Clock immutability makes this sound;
        # bounded FIFO like every other cache in this codebase.
        self._equal_verdicts: Dict[Tuple[int, int], Tuple[object, object]] = {}
        # One tracker wrapper per decoded clock object (wrappers are
        # stateless beyond the clock, so sharing them is safe; the wrapper
        # holds the clock alive, so a live cache entry's id is never
        # recycled -- the identity check makes a stale hit impossible).
        self._wrappers: Dict[int, KernelTracker] = {}

    _MAX_CACHED = 1 << 16
    _CRC_BYTES = 4

    def _wrap(self, clock) -> KernelTracker:
        key = id(clock)
        cached = self._wrappers.get(key)
        if cached is not None and cached.clock is clock:
            return cached
        tracker = KernelTracker(clock)
        if len(self._wrappers) >= self._MAX_CACHED:
            self._wrappers.clear()
        self._wrappers[key] = tracker
        return tracker

    @staticmethod
    def _clock_of(store: StoreReplica, key: str, state: KeyState):
        tracker = state.tracker
        if not isinstance(tracker, KernelTracker):
            raise ReplicationError(
                f"wire sync needs kernel clock trackers; key {key!r} on "
                f"replica {store.name!r} is tracked by "
                f"{type(tracker).__name__}"
            )
        return tracker.clock

    # -- faulty delivery ---------------------------------------------------

    def _seal(self, blob: bytes) -> bytes:
        """Prepend the transport checksum (a simulated datagram CRC)."""
        if not self.verify_checksums:
            return blob
        return (zlib.crc32(blob) & 0xFFFFFFFF).to_bytes(self._CRC_BYTES, "big") + blob

    def _unseal(self, payload) -> bytes:
        """Verify and strip the transport checksum of one delivered copy."""
        if not self.verify_checksums:
            return bytes(payload)
        if len(payload) < self._CRC_BYTES:
            raise EncodingError("transport frame shorter than its checksum")
        expected = int.from_bytes(payload[: self._CRC_BYTES], "big")
        body = bytes(payload[self._CRC_BYTES :])
        if (zlib.crc32(body) & 0xFFFFFFFF) != expected:
            raise EncodingError("transport frame failed its checksum")
        return body

    def _deliver_batch(
        self,
        source: str,
        destination: str,
        blobs: Sequence[bytes],
        validate: Callable[[int, bytes], object],
    ):
        """Send ``blobs`` through the transport, retrying failed messages.

        A sans-io generator: it yields :class:`SleepEffect` (retry
        backoff) and :class:`TransferEffect` (an attempt on the wire) and
        *returns* ``blob index -> validated result`` via ``StopIteration``.
        The synchronous driver exhausts it ignoring every effect; the
        async service sleeps the effects on the virtual clock -- either
        way the computation, RNG draws and meter counters are the same
        code in the same order, which is what makes the two paths
        lockstep-equal on identical schedules.

        An index missing from the result exhausted the retry budget (lost
        or damaged on every attempt) and the caller degrades without it.
        ``validate`` is the eager acceptance check: checksum-stripped
        payloads it rejects with a typed :class:`EncodingError` count as
        not delivered and are retried.  Duplicate copies of an
        already-accepted message are discarded (idempotent re-delivery);
        reordering is absorbed by the positional index riding with each
        copy.
        """
        results: Dict[int, object] = {}
        if self.transport is None:
            total = 0
            for blob in blobs:
                self.meter.record(source, destination, len(blob))
                total += len(blob)
            if blobs:
                yield TransferEffect(source, destination, len(blobs), total)
            for index, blob in enumerate(blobs):
                self.meter.record_delivery(len(blob))
                results[index] = validate(index, blob)
            return results
        policy = self.retry
        sealed = [self._seal(blob) for blob in blobs]
        pending = list(range(len(blobs)))
        for attempt in range(1, policy.attempts + 1):
            if not pending:
                break
            if attempt > 1:
                latency = sum(
                    policy.delay(attempt - 1, self._retry_rng) for _ in pending
                )
                self.meter.record_retry(len(pending), latency)
                yield SleepEffect(latency)
            nbytes = 0
            for index in pending:
                self.meter.record(source, destination, len(sealed[index]))
                nbytes += len(sealed[index])
            deliveries = self.transport.transfer_batch(
                source, destination, [sealed[index] for index in pending]
            )
            yield TransferEffect(source, destination, len(pending), nbytes)
            for position, payload in deliveries:
                index = pending[position]
                if index in results:
                    # An extra copy of a message we already accepted:
                    # re-delivery is a no-op by construction.
                    continue
                try:
                    body = self._unseal(payload)
                    results[index] = validate(index, body)
                except EncodingError:
                    # Damaged in flight; a later attempt may succeed.
                    continue
                self.meter.record_delivery(len(payload))
            pending = [index for index in pending if index not in results]
        self.deliveries_failed += len(pending)
        return results

    def _decode_stream(self, body):
        """Decode one delivered stream body (the async daemon's feed point).

        The base engine decodes the assembled buffer in one call; the
        service's :class:`~repro.service.engine.AsyncWireSyncEngine`
        overrides this to feed the body through an
        :class:`~repro.kernel.stream.IncrementalStreamDecoder` in
        link-sized chunks, as an async read loop would.  Both return an
        equivalent lazy ``ClockStream`` over the same intern table.
        """
        return decode_stream(memoryview(body), intern=self.intern)

    def _ship(
        self,
        sender: StoreReplica,
        receiver: StoreReplica,
        items: List[Tuple[str, KeyState]],
    ):
        """Transfer the trackers of ``items`` from sender to receiver.

        A sans-io generator (effects as in :meth:`_deliver_batch`) whose
        *return value* is ``key -> (decoded clock, raw frame payload)`` on
        the receiving side; the raw payload feeds the canonical-bytes
        EQUAL fast path, and the decoded clock is materialized lazily (a
        ``ClockStream`` index access) only for keys that need a real
        merge.  One stream per (family, epoch) group in batched mode, one
        envelope per stamp otherwise; either way the meter sees every
        message and attempt.  Keys whose message exhausted the transport
        retry budget are simply absent from the result -- the caller skips
        them and a later round heals the difference.
        """
        self.stamps_shipped += len(items)
        received: Dict[str, Tuple[object, object]] = {}
        if not self.batched:
            blobs = [
                self._clock_of(sender, key, state).to_bytes()
                for key, state in items
            ]

            def validate_envelope(index: int, body: bytes):
                return decode_envelope(body)

            results = yield from self._deliver_batch(
                sender.name, receiver.name, blobs, validate_envelope
            )
            for index, (key, _) in enumerate(items):
                if index in results:
                    received[key] = (results[index], None)
            return received
        groups: Dict[Tuple[str, int], List[Tuple[str, object]]] = {}
        for key, state in items:
            clock = self._clock_of(sender, key, state)
            groups.setdefault((clock.family, clock.epoch), []).append((key, clock))
        ordered = list(groups.items())
        blobs = [
            encode_stream(
                [clock for _, clock in members],
                family_name=family_name,
                epoch=epoch,
            )
            for (family_name, epoch), members in ordered
        ]

        def validate_stream(index: int, body: bytes):
            (family_name, epoch), members = ordered[index]
            stream = self._decode_stream(body)
            # The session's control data (which keys, which group) rides a
            # reliable out-of-band channel; a delivered stream must match
            # its announcement, or bits were flipped in the header.
            if (stream.family, stream.epoch, len(stream)) != (
                family_name,
                epoch,
                len(members),
            ):
                raise EncodingError(
                    f"stream header does not match its announced group "
                    f"({family_name!r}, epoch {epoch}, {len(members)} frames)"
                )
            return stream

        results = yield from self._deliver_batch(
            sender.name, receiver.name, blobs, validate_stream
        )
        for index, ((family_name, epoch), members) in enumerate(ordered):
            stream = results.get(index)
            if stream is None:
                continue
            for frame_index, (key, _) in enumerate(members):
                received[key] = (
                    _LazyFrame(stream, frame_index),
                    (family_name, epoch, stream.frame_bytes(frame_index)),
                )
        return received

    # -- per-key transactionality ------------------------------------------

    @staticmethod
    def _snapshot(state: Optional[KeyState]):
        if state is None:
            return None
        return (list(state.values), state.tracker, state.independently_created)

    @staticmethod
    def _restore(store: StoreReplica, key: str, snap) -> None:
        if snap is None:
            store._keys.pop(key, None)
        else:
            values, tracker, independent = snap
            store._keys[key] = KeyState(
                values=list(values),
                tracker=tracker,
                independently_created=independent,
            )

    def _restore_session(self, first: StoreReplica, second: StoreReplica, backup) -> None:
        """Roll every snapshotted key on both sides back to pre-session state."""
        for key, (mine_snap, theirs_snap) in backup.items():
            self._restore(first, key, mine_snap)
            self._restore(second, key, theirs_snap)

    @staticmethod
    def _reject(
        report: MergeReport, key: str, raw, stage: str, error: Exception
    ) -> None:
        if raw is not None:
            family_name, epoch = raw[0], raw[1]
        else:
            family_name, epoch = "unknown", -1
        report.frames_rejected.append(
            FrameRejected(
                key=key,
                family=family_name,
                epoch=epoch,
                stage=stage,
                reason=str(error),
            )
        )

    def sync(
        self,
        first: StoreReplica,
        second: StoreReplica,
        *,
        keys: Optional[Iterable[str]] = None,
    ) -> MergeReport:
        """Two-way reconciliation of ``first`` and ``second`` over the wire.

        Equivalent to :meth:`StoreReplica.sync_with` except that causally
        EQUAL keys keep their trackers (metadata stability) and all causal
        metadata round-trips the codec.  Under a faulty transport the sync
        is *per-key transactional*: a key whose frames are lost or damaged
        past the retry budget is either skipped untouched (request leg) or
        rolled back on both sides (response leg); every other key of the
        pairwise sync completes normally.

        ``keys`` restricts the exchange to the named subset -- the
        sharding hook: every key's merge is independent of every other
        key's, so syncing each shard of the key space separately (in any
        interleaving that keeps one shard's syncs ordered) produces
        exactly the state of one unrestricted sync.  The datacenter-scale
        service uses this to parallelize one logical exchange across
        worker event loops.

        This is the synchronous driver of :meth:`session`: it runs the
        identical sans-io generator, ignoring the wire-timing effects.
        """
        session = self.session(first, second, keys=keys)
        while True:
            try:
                next(session)
            except StopIteration as stop:
                return stop.value

    def session(
        self,
        first: StoreReplica,
        second: StoreReplica,
        *,
        keys: Optional[Iterable[str]] = None,
        abortable: bool = False,
    ):
        """The sans-io pairwise sync: a generator of wire effects.

        Yields :class:`SleepEffect` and :class:`TransferEffect` at every
        point where a real network would spend time, and returns the
        :class:`~repro.replication.store.MergeReport` via
        ``StopIteration.value``.  All state mutation, RNG consumption and
        meter accounting happen *inside* the generator, so any driver --
        the synchronous :meth:`sync`, the virtual-time async service --
        produces identical merges, fault schedules and counters for the
        same call sequence; drivers differ only in what they do with the
        effects.

        ``abortable`` opts the session into deadline cancellation: the
        transactional snapshots are taken even on a perfect transport,
        so a driver may ``throw(SessionAbort())`` at any yielded effect
        and both replicas roll back to their pre-session state before
        the abort propagates.  The flag exists because snapshots cost
        memory proportional to the key subset -- drivers without a
        deadline keep the old zero-overhead path.
        """
        if first is second:
            raise ReplicationError("a store replica cannot synchronize with itself")
        report = MergeReport()
        history = self.history
        if history is not None:
            meter = self.meter
            before_messages, before_bytes = meter.snapshot()
            before_faults = meter.fault_snapshot()
            before_failed = self.deliveries_failed
        spanned = set(first._keys) | set(second._keys)
        if keys is not None:
            spanned &= set(keys)
        keys = sorted(spanned)
        faulty = self.transport is not None
        backup = None
        if faulty or abortable:
            backup = {
                key: (
                    self._snapshot(first._keys.get(key)),
                    self._snapshot(second._keys.get(key)),
                )
                for key in keys
            }

        # Request leg: second ships everything it holds to first.  An
        # abort thrown at one of this leg's effects arrives before any
        # merge ran; the restore is then a no-op, kept for uniformity.
        held = [(key, second._keys[key]) for key in keys if key in second._keys]
        try:
            received = yield from self._ship(second, first, held)
        except SessionAbort:
            if backup is not None:
                self._restore_session(first, second, backup)
            raise

        changed: List[str] = []
        request_lost: List[str] = []
        for key in keys:
            mine = first._keys.get(key)
            theirs = second._keys.get(key)
            report.keys_examined += 1
            if theirs is None:
                # Replicate first -> second: fork the holder's tracker; the
                # remote half rides the response leg to its new home.
                local, remote = mine.tracker.forked()
                mine.tracker = local
                second._keys[key] = KeyState(values=list(mine.values), tracker=remote)
                mine.independently_created = False
                report.keys_replicated += 1
                report.values_taken += len(mine.values)
                changed.append(key)
                continue
            if key not in received:
                # The request-leg message carrying this key never made it
                # past the retry budget: leave both sides untouched and
                # let a later round heal the difference.
                request_lost.append(key)
                continue
            frame, raw = received[key]
            if mine is None:
                # Replicate second -> first from the decoded wire copy.
                try:
                    holder = KernelTracker(_materialize(frame))
                except EncodingError as error:
                    self._reject(report, key, raw, "request", error)
                    continue
                local, remote = holder.forked()
                theirs.tracker = local
                first._keys[key] = KeyState(values=list(theirs.values), tracker=remote)
                theirs.independently_created = False
                report.keys_replicated += 1
                report.values_taken += len(theirs.values)
                changed.append(key)
                continue
            independent = mine.independently_created and theirs.independently_created
            if raw is not None and not independent:
                # Canonical-bytes fast path: the codec maps equal clocks to
                # equal bytes, so a frame matching our own payload proves
                # EQUAL without decoding it (the converse does not hold --
                # distinct EQUAL clocks still decode and compare below).
                clock = mine.tracker.clock
                if (
                    (clock.family, clock.epoch) == raw[:2]
                    and clock.payload_bytes() == raw[2]
                ):
                    self.equal_bytes_skips += 1
                    continue
            try:
                remote_clock = _materialize(frame)
            except EncodingError as error:
                # One damaged frame costs this key this round, nothing
                # more: the group's other frames and the sync's other
                # keys proceed (and the intern table only ever admits
                # successfully decoded clocks, so it is not poisoned).
                self._reject(report, key, raw, "request", error)
                continue
            mine_clock = mine.tracker.clock
            verdict_key = (id(mine_clock), id(remote_clock))
            if not independent and verdict_key in self._equal_verdicts:
                # Both objects are pointer-stable (intern table) and were
                # proven causally EQUAL before: nothing to move, nothing
                # to re-fork, nothing to ship back.
                self.equal_cache_hits += 1
                theirs.tracker = self._wrap(remote_clock)
                continue
            before = self._wrap(remote_clock)
            theirs.tracker = before
            mine_before = mine.tracker
            first._merge_key_states(mine, theirs, report, refork_equal=False)
            if theirs.tracker is not before:
                changed.append(key)
            elif mine.tracker is mine_before and not independent:
                # EQUAL no-op: remember the verdict for the next round.
                if len(self._equal_verdicts) >= self._MAX_CACHED:
                    self._equal_verdicts.clear()
                self._equal_verdicts[verdict_key] = (mine_clock, remote_clock)

        # Response leg: only second-side trackers that changed go back.
        # An abort here lands after the merge mutated both sides: restore
        # every snapshotted key so the cancelled session is a no-op (no
        # journal record has been written yet -- journaling happens after
        # this leg completes -- so a crash-after-abort recovers cleanly).
        try:
            returned = yield from self._ship(
                first, second, [(key, second._keys[key]) for key in changed]
            )
        except SessionAbort:
            if backup is not None:
                self._restore_session(first, second, backup)
            raise
        rolled_back = set()
        for key in changed:
            entry = returned.get(key)
            if entry is not None:
                frame, raw = entry
                try:
                    second._keys[key].tracker = KernelTracker(_materialize(frame))
                    continue
                except EncodingError as error:
                    self._reject(report, key, raw, "response", error)
            # The response leg for this key was lost or damaged past the
            # retry budget.  Roll BOTH sides back to their pre-sync state:
            # completing only one half of a join/fork would strand freshly
            # split identifier space across an unfinished exchange (an I2
            # hazard that can manufacture false orderings later).
            mine_snap, theirs_snap = backup[key]
            self._restore(first, key, mine_snap)
            self._restore(second, key, theirs_snap)
            rolled_back.add(key)
        if first.journal is not None or second.journal is not None:
            # Durable stores journal only what this sync actually changed
            # (rolled-back keys are byte-identical to their already
            # journaled pre-sync state), then flush once per side: the
            # sync-completion durability barrier.  A crash mid-sync thus
            # recovers to the pre-sync state -- exactly what the per-key
            # rollback would have produced -- and a crash after the
            # barrier recovers the completed sync; there is no state in
            # between to resurrect.
            for key in changed:
                if key in rolled_back:
                    continue
                first._record(key)
                second._record(key)
            first._flush_journal()
            second._flush_journal()
        self.frames_rejected += len(report.frames_rejected)
        self.epoch_upgrades += report.epoch_upgrades
        if history is not None:
            # One ExchangeRecord per session: which keys completed (both
            # sides now share the combined knowledge), which were lost to
            # faults and why, plus this session's fault-counter deltas --
            # the raw material contract provenance reconstruction walks.
            lost: List[Tuple[str, str]] = [
                (key, "request-lost") for key in request_lost
            ]
            lost.extend((key, "response-lost") for key in sorted(rolled_back))
            lost.extend(
                (frame.key, f"rejected:{frame.stage}: {frame.reason}")
                for frame in report.frames_rejected
            )
            lost_keys = {key for key, _ in lost}
            meter = self.meter
            after_messages, after_bytes = meter.snapshot()
            dropped, duplicated, retried, corrupted, _ = (
                after - before
                for after, before in zip(meter.fault_snapshot(), before_faults)
            )
            history.append(
                first=first.name,
                second=second.name,
                keys_synced=tuple(k for k in keys if k not in lost_keys),
                keys_lost=tuple(lost),
                messages=after_messages - before_messages,
                bytes_sent=after_bytes - before_bytes,
                dropped=int(dropped),
                duplicated=int(duplicated),
                retried=int(retried),
                corrupted=int(corrupted),
                deliveries_failed=self.deliveries_failed - before_failed,
            )
        return report


class AntiEntropy:
    """Round-based gossip reconciliation over a node population.

    Pass a :class:`WireSyncEngine` as ``engine`` to run every pairwise
    exchange over the kernel wire formats (batched streams or per-stamp
    envelopes); each :class:`RoundReport` then carries the round's real
    message, byte and fault counts.  Without an engine, stores reconcile
    in memory exactly as before.

    With ``compact_threshold_bits`` set, every round ends with a
    decentralized re-rooting sweep: any key whose causal metadata exceeds
    the threshold on some holder is compacted via :meth:`compact_key` --
    the epoch-gossip protocol that replaces the frontier-wide synchronous
    re-root of :mod:`repro.core.reroot` for replicated stores.
    """

    def __init__(
        self,
        nodes: Sequence[MobileNode],
        *,
        rng: Optional[random.Random] = None,
        engine: Optional[WireSyncEngine] = None,
        compact_threshold_bits: Optional[int] = None,
        checker=None,
    ) -> None:
        self.nodes: List[MobileNode] = list(nodes)
        self._rng = rng if rng is not None else random.Random(0)
        self.engine = engine
        self.compact_threshold_bits = compact_threshold_bits
        #: Optional :class:`~repro.contracts.ContractChecker` scanned at
        #: the end of every round (duck-typed: anything with ``scan()``),
        #: so ordering contracts are evaluated inline with gossip instead
        #: of only at explicit operation boundaries.
        self.checker = checker
        self.reports: List[RoundReport] = []
        #: Successful epoch-bump compactions performed so far.
        self.compactions = 0
        #: Compaction attempts (a verify step may abort one harmlessly).
        self.compaction_attempts = 0

    @property
    def transport(self) -> Optional[FaultyTransport]:
        """The engine's faulty transport, when one is in play."""
        return self.engine.transport if self.engine is not None else None

    def add_node(self, node: MobileNode) -> None:
        """Bring a new node into the gossip population."""
        self.nodes.append(node)

    # -- crash / restart ---------------------------------------------------

    def crash(self, node: MobileNode) -> None:
        """Crash-stop ``node``: it stops gossiping and drops off the network."""
        node.crash()
        transport = self.transport
        if transport is not None:
            transport.crash(node.node_id)

    def restart(self, node: MobileNode, *, mode: Optional[str] = None) -> None:
        """Restart ``node`` under the chosen (or the plan's) crash model.

        ``mode`` is ``"rejoin-empty"`` (crash-stop: drop state, re-replicate
        from peers) or ``"recover"`` (crash-recover: rebuild the pre-crash
        state from the node's durable log).  When omitted, the transport's
        :attr:`~repro.replication.faults.FaultPlan.crash_restart` decides,
        defaulting to rejoin-empty.
        """
        transport = self.transport
        if mode is None:
            plan = transport.plan if transport is not None else None
            mode = getattr(plan, "crash_restart", None) or "rejoin-empty"
        node.restart(mode=mode)
        if transport is not None:
            transport.restart(node.node_id)

    # -- rounds ------------------------------------------------------------

    def run_round(self) -> RoundReport:
        """Run one gossip round: every live node tries to sync with one peer."""
        report = RoundReport(round_number=len(self.reports) + 1)
        engine = self.engine
        if engine is not None and engine.history is not None:
            engine.history.mark_round(report.round_number)
        if engine is not None:
            meter = engine.meter
            before = (
                meter.messages,
                meter.bytes_sent,
                meter.bytes_delivered,
                meter.fault_snapshot(),
            )
        order = list(self.nodes)
        self._rng.shuffle(order)
        for node in order:
            if not node.alive:
                continue
            peers = [other for other in self.nodes if other is not node and other.alive]
            if not peers:
                continue
            reachable = [other for other in peers if node.can_reach(other)]
            if not reachable:
                report.skipped_partitioned += 1
                continue
            peer = self._rng.choice(reachable)
            merge = node.try_sync_with(peer, engine=engine)
            if merge is None:
                report.skipped_partitioned += 1
            else:
                report.record(merge)
        if self.compact_threshold_bits is not None:
            self._auto_compact()
        if engine is not None:
            meter = engine.meter
            report.messages_sent = meter.messages - before[0]
            report.bytes_sent = meter.bytes_sent - before[1]
            delivered = meter.bytes_delivered - before[2]
            dropped, duplicated, retried, corrupted, latency = before[3]
            report.dropped = meter.dropped - dropped
            report.duplicated = meter.duplicated - duplicated
            report.retried = meter.retried - retried
            report.corrupted = meter.corrupted - corrupted
            report.retry_latency = meter.retry_latency - latency
            report.goodput = (
                delivered / report.bytes_sent if report.bytes_sent > 0 else 0.0
            )
        self.reports.append(report)
        if self.checker is not None:
            self.checker.scan()
        return report

    def run(self, rounds: int, *, advance_network: bool = True) -> List[RoundReport]:
        """Run several rounds, optionally advancing the network between them."""
        results = []
        for _ in range(rounds):
            results.append(self.run_round())
            if advance_network and self.nodes:
                self.nodes[0].network.advance()
        return results

    # -- decentralized re-rooting (epoch gossip) ---------------------------

    def _pairwise(self, node: MobileNode, other: MobileNode) -> MergeReport:
        if self.engine is not None:
            return self.engine.sync(node.store, other.store)
        return node.store.sync_with(other.store)

    def _auto_compact(self) -> None:
        threshold = self.compact_threshold_bits
        oversized: List[str] = []
        seen: set = set()
        for node in self.nodes:
            if not node.alive:
                continue
            for key in node.store._keys:
                if key in seen:
                    continue
                state = node.store._keys[key]
                if state.tracker.size_in_bits() > threshold:
                    oversized.append(key)
                    seen.add(key)
        for key in oversized:
            self.compact_key(key)

    def compact_key(
        self, key: str, *, participants: Optional[Sequence[MobileNode]] = None
    ) -> bool:
        """Compact one key's causal metadata by bumping its epoch.

        The sync-then-bump protocol: all live holders of ``key`` are first
        synchronized to pairwise-EQUAL (two passes through one hub), the
        common knowledge is *verified* -- identical sibling values, a
        single shared epoch, every pair causally EQUAL -- and only then is
        the epoch bumped: the version-stamp family re-roots the group
        (:func:`~repro.core.reroot.reroot_group`, the paper's Section 7
        collection), every other family re-seeds at the new epoch and
        forks the seed into one identity per holder.  Verification instead
        of assumption is what makes the protocol safe under faults: a
        lossy transport can make a sync pass silently skip the key, in
        which case the verify step fails and the compaction aborts
        harmlessly (``False``) -- to be retried a later round.

        The bump is sound because everything the old epoch could ever
        discriminate is common knowledge at bump time: older-epoch
        knowledge is causally dominated *by construction*, which is
        exactly the fiat rule the merge's straggler upgrade applies.  A
        holder excluded via ``participants`` is being *asserted* dominated
        by the caller (e.g. a holder known quiescent on this key); the
        default -- all live holders -- never needs that assertion.

        Returns ``True`` when the epoch was bumped.
        """
        nodes = list(participants) if participants is not None else self.nodes
        holders = [
            node
            for node in nodes
            if node.alive and key in node.store._keys
        ]
        if not holders:
            return False
        if not all(
            isinstance(node.store._keys[key].tracker, KernelTracker)
            for node in holders
        ):
            # Epochs only exist for kernel-tracked stores; the in-memory
            # baselines keep the frontier-wide synchronous re-root.
            return False
        for node in holders:
            for other in holders:
                if node is not other and not node.can_reach(other):
                    return False
        self.compaction_attempts += 1
        hub = holders[0]
        for _sweep in range(2):
            for other in holders[1:]:
                self._pairwise(hub, other)
        states = [node.store._keys.get(key) for node in holders]
        if any(
            state is None or not isinstance(state.tracker, KernelTracker)
            for state in states
        ):
            return False
        epochs = {state.tracker.epoch for state in states}
        if len(epochs) != 1:
            return False
        reference = sorted(repr(value) for value in states[0].values)
        for state in states[1:]:
            if sorted(repr(value) for value in state.values) != reference:
                return False
        trackers = [state.tracker for state in states]
        for i in range(len(trackers)):
            for j in range(i + 1, len(trackers)):
                if trackers[i].compare(trackers[j]) is not Ordering.EQUAL:
                    return False
        new_epoch = epochs.pop() + 1
        clocks = [state.tracker.clock for state in states]
        family_name = clocks[0].family
        if family_name == "version-stamp":
            stamps = reroot_group([clock.stamp for clock in clocks])
            fresh = [VersionStampClock(stamp, epoch=new_epoch) for stamp in stamps]
        else:
            # Everything since the causal past is common knowledge, so a
            # fresh seed carries the same discriminating power; fork it
            # breadth-first into one identity per holder.
            queue = [kernel.make(family_name).with_epoch(new_epoch)]
            while len(queue) < len(states):
                left, right = queue.pop(0).fork()
                queue.extend((left, right))
            fresh = queue
        for node, state, clock in zip(holders, states, fresh):
            state.tracker = KernelTracker(clock)
            state.independently_created = False
            store = node.store
            if store.journal is not None:
                # The epoch bump is the natural log-truncation point: every
                # journal record below it describes identifier space the
                # re-root just retired, so the store journals its compact
                # post-bump state and -- once enough tail has accumulated
                # to pay for one -- snapshots and drops the old epoch's
                # records (amortized: see StoreJournal.snapshot_on_bump).
                store._record(key)
                if not store.journal.snapshot_on_bump(store):
                    store.journal.flush()
        self.compactions += 1
        return True

    # -- convergence checks ------------------------------------------------------

    def converged(self, keys: Optional[Iterable[str]] = None) -> bool:
        """True when every live node holds the same siblings for every key."""
        live = [node for node in self.nodes if node.alive]
        if not live:
            return True
        if keys is None:
            keys = set()
            for node in live:
                keys |= set(node.store.keys())
        for key in keys:
            reference = None
            for node in live:
                values = sorted(repr(value) for value in node.store.get(key))
                if reference is None:
                    reference = values
                elif values != reference:
                    return False
        return True

    def rounds_to_convergence(
        self, max_rounds: int, *, advance_network: bool = True
    ) -> Optional[int]:
        """Run until convergence and return the number of rounds needed.

        Returns ``None`` when convergence was not reached within
        ``max_rounds`` (e.g. because partitions never healed).
        """
        for round_number in range(1, max_rounds + 1):
            self.run_round()
            if advance_network and self.nodes:
                self.nodes[0].network.advance()
            if self.converged():
                return round_number
        return None

    def total_conflicts(self) -> int:
        """Total conflicts detected across all rounds so far."""
        return sum(report.conflicts_detected for report in self.reports)

    def total_metadata_bits(self) -> int:
        """Total causal-metadata footprint across the node population."""
        return sum(node.store.metadata_size_in_bits() for node in self.nodes)
