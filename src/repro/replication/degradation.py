"""Grey-failure injection: replicas that are alive but degraded.

The fault matrix of :mod:`repro.replication.faults` models *fail-stop*
behaviour -- messages vanish, nodes crash -- but the failure mode that
dominates at datacenter scale is the **grey failure**: a replica or link
that is alive, answering, and slow.  A throttled NIC, a node swapping
itself to death, a flapping top-of-rack link -- none of them drop off the
membership list, yet each one stretches every gossip round that touches
it.  This module makes that regime injectable:

* :class:`DegradationPlan` -- a declarative, seeded description of the
  grey modes: which fraction of nodes run slow and by how much, scheduled
  bandwidth-throttling windows, stuck-session hangs (a transfer leg that
  hangs for tens of virtual seconds and delivers nothing), and flapping
  links (a periodic up/down duty cycle per afflicted node);
* :class:`DegradationState` -- the plan resolved over a concrete node
  population: per-node slowdown factors, flap phases, and the grey RNG.

Two invariants anchor the design:

1. **Timing-only modes never touch state.**  Slowdowns, throttling
   windows and flapping waits only *scale or delay* a transfer leg's
   virtual-time cost; the bytes delivered, the merge outcome and every
   fault-RNG draw are identical with the modes on or off.  Only the
   stuck-session hang affects delivery (the hung leg's messages are
   lost for that attempt, to be retried or healed by a later round).
2. **The grey RNG is its own seeded stream.**  Degradation decisions
   (which nodes degrade, their factors, stuck draws) come from a
   dedicated :class:`random.Random`, never from the transport's fault
   RNG or the service's link RNG -- so enabling degradation can never
   silently shift an existing fault or jitter schedule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.errors import FaultInjectionError

__all__ = ["DegradationPlan", "DegradationState", "GREY_SEED_SALT"]

#: XORed into the owning transport's seed to derive the grey RNG stream,
#: keeping it disjoint from the fault RNG seeded with the raw seed.
GREY_SEED_SALT = 0x617E7FA1


def _check_fraction(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise FaultInjectionError(f"{name} must be within [0, 1], got {value}")


@dataclass(frozen=True)
class DegradationPlan:
    """A declarative description of grey failure across a population.

    Attributes
    ----------
    slow_fraction:
        Fraction of nodes that run degraded.  Which nodes are afflicted
        is drawn once from the grey RNG when the plan is resolved.
    slow_factor:
        ``(low, high)`` range the per-node slowdown multiplier is drawn
        from; every transfer leg touching a degraded node costs its
        normal virtual-time delay times the larger endpoint factor.
    stuck_rate:
        Per-attempt probability that a transfer leg touching a degraded
        node *hangs*: the attempt costs :attr:`stuck_seconds` of virtual
        time and delivers nothing (the engine's retry budget and later
        rounds heal the difference).  This is the one grey mode that
        affects delivery, not just timing.
    stuck_seconds:
        How long one stuck leg hangs, in virtual seconds.
    flap_fraction:
        Fraction of *degraded* nodes whose links additionally flap: the
        link is down for part of a periodic cycle, and a leg arriving
        during a down phase waits (alive, not lost) until the next up
        phase.
    flap_period / flap_duty:
        Length of one flap cycle in virtual seconds, and the fraction of
        the cycle the link is *up*.  Each flapping node gets a seeded
        phase offset so the population does not flap in unison.
    throttle_windows:
        Scheduled bandwidth-throttling windows ``(start, end, divisor)``
        in virtual seconds: while ``start <= now < end`` every leg's
        delay is multiplied by ``divisor`` (a cluster-wide congestion
        event, e.g. a backup job saturating the fabric).
    """

    slow_fraction: float = 0.0
    slow_factor: Tuple[float, float] = (10.0, 100.0)
    stuck_rate: float = 0.0
    stuck_seconds: float = 30.0
    flap_fraction: float = 0.0
    flap_period: float = 1.0
    flap_duty: float = 0.5
    throttle_windows: Tuple[Tuple[float, float, float], ...] = ()

    def __post_init__(self) -> None:
        _check_fraction("slow_fraction", self.slow_fraction)
        _check_fraction("stuck_rate", self.stuck_rate)
        _check_fraction("flap_fraction", self.flap_fraction)
        _check_fraction("flap_duty", self.flap_duty)
        low, high = self.slow_factor
        if low < 1.0 or high < low:
            raise FaultInjectionError(
                f"slow_factor must be (low, high) with 1 <= low <= high, "
                f"got {self.slow_factor!r}"
            )
        if self.stuck_seconds <= 0:
            raise FaultInjectionError(
                f"stuck_seconds must be positive, got {self.stuck_seconds}"
            )
        if self.flap_period <= 0:
            raise FaultInjectionError(
                f"flap_period must be positive, got {self.flap_period}"
            )
        for window in self.throttle_windows:
            if len(window) != 3 or window[0] < 0 or window[1] <= window[0]:
                raise FaultInjectionError(
                    f"throttle windows are (start, end, divisor) with "
                    f"0 <= start < end, got {window!r}"
                )
            if window[2] < 1.0:
                raise FaultInjectionError(
                    f"a throttle divisor must be >= 1, got {window[2]}"
                )

    @classmethod
    def grey(cls, *, slow_fraction: float = 0.3) -> "DegradationPlan":
        """The grey-chaos preset: slow nodes, stuck legs, some flapping."""
        return cls(
            slow_fraction=slow_fraction,
            slow_factor=(10.0, 100.0),
            stuck_rate=0.25,
            stuck_seconds=30.0,
            flap_fraction=0.34,
            flap_period=2.0,
            flap_duty=0.5,
        )

    def resolve(
        self, node_ids: Iterable[str], *, seed: int = 0
    ) -> "DegradationState":
        """Assign concrete per-node degradation from the grey RNG."""
        return DegradationState(self, list(node_ids), seed=seed)


class DegradationState:
    """A :class:`DegradationPlan` resolved over a concrete population.

    Construction draws, from the dedicated grey RNG, which nodes are
    degraded, their slowdown factors and (for the flapping subset) their
    phase offsets.  After that the only randomness left is the per-leg
    stuck draw; everything else is a pure function of the endpoints and
    the virtual clock, so the timing-only modes replay identically.
    """

    __slots__ = (
        "plan",
        "rng",
        "factors",
        "flap_phase",
        "stuck_legs",
        "stuck_seconds_total",
    )

    def __init__(
        self, plan: DegradationPlan, node_ids: List[str], *, seed: int = 0
    ) -> None:
        self.plan = plan
        #: The grey RNG: a stream of its own, never the fault or link RNG.
        self.rng = random.Random(seed ^ GREY_SEED_SALT)
        self.factors: Dict[str, float] = {}
        self.flap_phase: Dict[str, float] = {}
        #: Stuck legs injected so far, and the virtual time they hung.
        self.stuck_legs = 0
        self.stuck_seconds_total = 0.0
        if plan.slow_fraction > 0 and node_ids:
            count = max(1, round(plan.slow_fraction * len(node_ids)))
            degraded = self.rng.sample(sorted(node_ids), min(count, len(node_ids)))
            low, high = plan.slow_factor
            for node in degraded:
                self.factors[node] = self.rng.uniform(low, high)
            if plan.flap_fraction > 0:
                flappers = max(0, round(plan.flap_fraction * len(degraded)))
                for node in self.rng.sample(degraded, flappers):
                    self.flap_phase[node] = self.rng.uniform(0.0, plan.flap_period)

    # -- introspection -----------------------------------------------------

    def degraded_nodes(self) -> List[str]:
        """Node ids afflicted with a slowdown factor, sorted."""
        return sorted(self.factors)

    def factor_of(self, node: str) -> float:
        """The slowdown multiplier of ``node`` (1.0 when healthy)."""
        return self.factors.get(node, 1.0)

    def is_degraded(self, node: str) -> bool:
        return node in self.factors

    # -- timing-only shaping ----------------------------------------------

    def throttle_divisor(self, now: float) -> float:
        """The bandwidth-throttle multiplier in force at virtual ``now``."""
        divisor = 1.0
        for start, end, window_divisor in self.plan.throttle_windows:
            if start <= now < end:
                divisor *= window_divisor
        return divisor

    def flap_wait(self, node: str, now: float) -> float:
        """Virtual seconds until ``node``'s flapping link is next up."""
        phase_offset = self.flap_phase.get(node)
        if phase_offset is None:
            return 0.0
        period = self.plan.flap_period
        up = self.plan.flap_duty * period
        phase = (now + phase_offset) % period
        if phase < up:
            return 0.0
        return period - phase

    def shape_leg(
        self, source: str, destination: str, delay: float, *, now: float
    ) -> float:
        """The virtual-time cost of one leg after grey shaping.

        Pure timing: multiplies ``delay`` by the slower endpoint's factor
        and any active throttle window, then adds the wait until both
        endpoints' flapping links are up.  No RNG is consumed and no
        delivery decision is made here, so shaping on vs. off cannot
        perturb fault schedules or merge outcomes.
        """
        factor = max(self.factor_of(source), self.factor_of(destination))
        shaped = delay * factor * self.throttle_divisor(now)
        wait = max(self.flap_wait(source, now), self.flap_wait(destination, now))
        return shaped + wait

    # -- the one state-affecting mode --------------------------------------

    def stuck_hang(self, source: str, destination: str) -> float:
        """Draw whether this leg attempt hangs; returns the hang seconds.

        Consumes one grey-RNG draw **only** when an endpoint is degraded
        and the plan has a stuck rate -- healthy legs cost no randomness,
        so a population with degradation resolved but nobody degraded
        replays byte-identically to one without degradation at all.
        """
        plan = self.plan
        if plan.stuck_rate <= 0:
            return 0.0
        if source not in self.factors and destination not in self.factors:
            return 0.0
        if self.rng.random() >= plan.stuck_rate:
            return 0.0
        self.stuck_legs += 1
        self.stuck_seconds_total += plan.stuck_seconds
        return plan.stuck_seconds
