"""Mobile nodes: a store replica plus a position in the simulated network.

A :class:`MobileNode` is the unit of the end-to-end scenarios: it owns one
:class:`~repro.replication.store.StoreReplica`, knows its own network
identifier, accepts local writes at any time (optimistic operation) and can
only synchronize with peers the network currently lets it reach.  New nodes
are created by forking an existing node's replica -- with version stamps this
needs no identifier authority, so it works inside any partition.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..core.errors import ReplicationError
from .conflict import ConflictPolicy
from .network import SimulatedNetwork
from .store import MergeReport, StoreReplica
from .tracker import CausalityTracker

__all__ = ["MobileNode"]


class MobileNode:
    """A node of the mobile replication scenario.

    Parameters
    ----------
    node_id:
        Unique node identifier used by the network model.
    store:
        The node's store replica; use :meth:`spawn_peer` to derive further
        nodes so the causal identities stay consistent.
    network:
        The shared connectivity oracle.
    """

    def __init__(
        self,
        node_id: str,
        store: StoreReplica,
        network: SimulatedNetwork,
    ) -> None:
        self.node_id = node_id
        self.store = store
        self.network = network
        self.sync_attempts = 0
        self.sync_failures = 0
        #: Crash flag: a dead node neither gossips nor answers peers.
        self.alive = True
        self.crashes = 0
        #: The :class:`~repro.durability.recovery.RecoveryReport` of the
        #: most recent crash-recover restart (``None`` before the first).
        self.last_recovery = None

    # -- construction ------------------------------------------------------

    @classmethod
    def first(
        cls,
        node_id: str,
        network: SimulatedNetwork,
        *,
        tracker_factory=None,
        policy: Optional[ConflictPolicy] = None,
    ) -> "MobileNode":
        """Create the first node of a system (seed replica)."""
        if tracker_factory is not None:
            store = StoreReplica(node_id, tracker_factory=tracker_factory, policy=policy)
        else:
            store = StoreReplica(node_id, policy=policy)
        return cls(node_id, store, network)

    def spawn_peer(self, node_id: str, *, connected: Optional[bool] = None) -> "MobileNode":
        """Create a new node by forking this node's replica.

        ``connected`` describes whether this node can currently reach an
        identifier authority; it defaults to whether the network reports any
        reachable peer, and it only matters for identifier-dependent trackers
        (the dynamic-version-vector baseline).
        """
        if connected is None:
            connected = True
        store = self.store.fork(node_id, connected=connected)
        return MobileNode(node_id, store, self.network)

    # -- operation ----------------------------------------------------------

    def write(self, key: str, value: object) -> None:
        """Accept a local write (always possible, regardless of connectivity)."""
        self.store.put(key, value)

    def read(self, key: str) -> List[object]:
        """Read all sibling values of ``key`` held locally."""
        return self.store.get(key)

    def crash(self) -> None:
        """Crash the node: it stops operating and drops off the network.

        The process image dies with it -- a durable store's *uncommitted*
        journal buffer is lost (committed records survive on disk), which
        is exactly the window the flush-at-sync-completion barrier keeps
        safe (only purely local writes can sit in it).
        """
        self.alive = False
        self.crashes += 1
        journal = self.store.journal
        if journal is not None:
            journal.simulate_crash()

    def restart(self, *, mode: str = "rejoin-empty"):
        """Come back from a crash under one of the two crash models.

        ``mode="rejoin-empty"`` (crash-stop, the default): drop local
        state and re-replicate from peers -- each key flowing back mints
        fresh identities through the normal replication fork.  Always
        sound, even for a purely in-memory store, because nothing old is
        resurrected.

        ``mode="recover"`` (crash-recover): rebuild the pre-crash store
        from the node's durable log (snapshot + CRC-valid journal tail).
        Sound because a crashed node shares no identifiers while down and
        the journal is flushed at every sync completion, so the recovered
        state is at worst missing purely local writes -- never holding a
        half of somebody else's fork.  The node may come back as an epoch
        straggler (peers compacted while it was down); the next sync's
        epoch gossip upgrades it in-band.  Returns the
        :class:`~repro.durability.recovery.RecoveryReport`.

        Raises
        ------
        ReplicationError
            On an unknown mode, or ``mode="recover"`` without a durable
            store.
        """
        if mode == "rejoin-empty":
            self.store.reset()
            self.alive = True
            return None
        if mode != "recover":
            raise ReplicationError(
                f"unknown restart mode {mode!r} "
                f"(choose 'rejoin-empty' or 'recover')"
            )
        journal = self.store.journal
        if journal is None:
            raise ReplicationError(
                f"node {self.node_id!r} cannot restart in recover mode: "
                f"its store has no durable journal"
            )
        from ..durability.recovery import rebuild

        self.store, report = rebuild(
            journal.log,
            name=self.store.name,
            tracker_factory=self.store._tracker_factory,
            policy=self.store._policy,
            snapshot_every=journal.snapshot_every,
        )
        self.alive = True
        #: Report of the most recent crash-recover restart.
        self.last_recovery = report
        return report

    def can_reach(self, other: "MobileNode") -> bool:
        """Whether the network currently lets this node talk to ``other``."""
        if not (self.alive and other.alive):
            return False
        return self.network.can_communicate(self.node_id, other.node_id)

    def sync_with(self, other: "MobileNode", *, engine=None) -> MergeReport:
        """Synchronize stores with ``other`` if the network allows it.

        With ``engine`` (a :class:`~repro.replication.synchronizer.
        WireSyncEngine`) the exchange runs over the kernel wire formats --
        batched streams or per-stamp envelopes -- instead of the in-memory
        tracker handoff.

        Raises
        ------
        ReplicationError
            If the two nodes are currently partitioned from each other.
        """
        self.sync_attempts += 1
        if not self.can_reach(other):
            self.sync_failures += 1
            raise ReplicationError(
                f"nodes {self.node_id!r} and {other.node_id!r} are partitioned"
            )
        if engine is not None:
            return engine.sync(self.store, other.store)
        return self.store.sync_with(other.store)

    def try_sync_with(self, other: "MobileNode", *, engine=None) -> Optional[MergeReport]:
        """Like :meth:`sync_with` but returns ``None`` instead of raising."""
        try:
            return self.sync_with(other, engine=engine)
        except ReplicationError:
            return None

    def __repr__(self) -> str:
        return f"MobileNode({self.node_id!r})"
