"""Mobile nodes: a store replica plus a position in the simulated network.

A :class:`MobileNode` is the unit of the end-to-end scenarios: it owns one
:class:`~repro.replication.store.StoreReplica`, knows its own network
identifier, accepts local writes at any time (optimistic operation) and can
only synchronize with peers the network currently lets it reach.  New nodes
are created by forking an existing node's replica -- with version stamps this
needs no identifier authority, so it works inside any partition.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..core.errors import ReplicationError
from .conflict import ConflictPolicy
from .network import SimulatedNetwork
from .store import MergeReport, StoreReplica
from .tracker import CausalityTracker

__all__ = ["MobileNode"]


class MobileNode:
    """A node of the mobile replication scenario.

    Parameters
    ----------
    node_id:
        Unique node identifier used by the network model.
    store:
        The node's store replica; use :meth:`spawn_peer` to derive further
        nodes so the causal identities stay consistent.
    network:
        The shared connectivity oracle.
    """

    def __init__(
        self,
        node_id: str,
        store: StoreReplica,
        network: SimulatedNetwork,
    ) -> None:
        self.node_id = node_id
        self.store = store
        self.network = network
        self.sync_attempts = 0
        self.sync_failures = 0
        #: Crash-stop flag: a dead node neither gossips nor answers peers.
        self.alive = True
        self.crashes = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def first(
        cls,
        node_id: str,
        network: SimulatedNetwork,
        *,
        tracker_factory=None,
        policy: Optional[ConflictPolicy] = None,
    ) -> "MobileNode":
        """Create the first node of a system (seed replica)."""
        if tracker_factory is not None:
            store = StoreReplica(node_id, tracker_factory=tracker_factory, policy=policy)
        else:
            store = StoreReplica(node_id, policy=policy)
        return cls(node_id, store, network)

    def spawn_peer(self, node_id: str, *, connected: Optional[bool] = None) -> "MobileNode":
        """Create a new node by forking this node's replica.

        ``connected`` describes whether this node can currently reach an
        identifier authority; it defaults to whether the network reports any
        reachable peer, and it only matters for identifier-dependent trackers
        (the dynamic-version-vector baseline).
        """
        if connected is None:
            connected = True
        store = self.store.fork(node_id, connected=connected)
        return MobileNode(node_id, store, self.network)

    # -- operation ----------------------------------------------------------

    def write(self, key: str, value: object) -> None:
        """Accept a local write (always possible, regardless of connectivity)."""
        self.store.put(key, value)

    def read(self, key: str) -> List[object]:
        """Read all sibling values of ``key`` held locally."""
        return self.store.get(key)

    def crash(self) -> None:
        """Crash-stop: keep the (now unreachable) state but stop operating."""
        self.alive = False
        self.crashes += 1

    def restart(self) -> None:
        """Recover from a crash by rejoining *empty*.

        Restoring the pre-crash store would resurrect identifier space
        that post-crash forks elsewhere may already have split away (an I2
        violation able to manufacture false orderings), so recovery drops
        local state and re-replicates from peers -- each key flowing back
        mints fresh identities through the normal replication fork.
        """
        self.store.reset()
        self.alive = True

    def can_reach(self, other: "MobileNode") -> bool:
        """Whether the network currently lets this node talk to ``other``."""
        if not (self.alive and other.alive):
            return False
        return self.network.can_communicate(self.node_id, other.node_id)

    def sync_with(self, other: "MobileNode", *, engine=None) -> MergeReport:
        """Synchronize stores with ``other`` if the network allows it.

        With ``engine`` (a :class:`~repro.replication.synchronizer.
        WireSyncEngine`) the exchange runs over the kernel wire formats --
        batched streams or per-stamp envelopes -- instead of the in-memory
        tracker handoff.

        Raises
        ------
        ReplicationError
            If the two nodes are currently partitioned from each other.
        """
        self.sync_attempts += 1
        if not self.can_reach(other):
            self.sync_failures += 1
            raise ReplicationError(
                f"nodes {self.node_id!r} and {other.node_id!r} are partitioned"
            )
        if engine is not None:
            return engine.sync(self.store, other.store)
        return self.store.sync_with(other.store)

    def try_sync_with(self, other: "MobileNode", *, engine=None) -> Optional[MergeReport]:
        """Like :meth:`sync_with` but returns ``None`` instead of raising."""
        try:
            return self.sync_with(other, engine=engine)
        except ReplicationError:
            return None

    def __repr__(self) -> str:
        return f"MobileNode({self.node_id!r})"
