"""Bounded recording of what each pairwise sync actually carried.

:class:`~repro.replication.synchronizer.AntiEntropy` keeps per-round
aggregates (:class:`~repro.replication.synchronizer.RoundReport`), but the
aggregates cannot answer the question a contract violation raises: *which
exchange should have carried this key's knowledge to that replica and
didn't?*  :class:`SyncHistory` is the opt-in answer -- a bounded ring
buffer (``collections.deque(maxlen=...)``) of per-exchange
:class:`ExchangeRecord` entries appended by
:meth:`~repro.replication.synchronizer.WireSyncEngine.session`:

* which pair of replicas exchanged,
* which keys completed the exchange (both sides share the combined
  knowledge afterwards),
* which keys were *lost* -- request leg dropped past the retry budget,
  response leg rolled back, or frame rejected at decode -- with the
  per-exchange fault counters (drops, retries, corruptions) that explain
  the loss,
* the gossip round number, when an :class:`~repro.replication.
  synchronizer.AntiEntropy` driver is marking rounds.

The buffer is bounded by construction: memory stays ``O(maxlen)`` no
matter how long a soak runs, at the price that provenance reconstruction
over evicted records reports itself truncated instead of guessing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterator, List, Optional, Tuple

from ..core.errors import ReplicationError

__all__ = ["ExchangeRecord", "SyncHistory"]


@dataclass(frozen=True)
class ExchangeRecord:
    """What one pairwise sync exchange did, key by key.

    ``keys_synced`` lists the keys whose exchange completed -- after the
    session both replicas hold the combined causal knowledge for them
    (merged, replicated, or proven EQUAL).  ``keys_lost`` lists the keys
    the session *attempted* but could not complete, each with the reason:
    ``"request-lost"`` (the frames carrying the key never survived the
    retry budget), ``"response-lost"`` (the return leg died, both sides
    rolled back), or ``"rejected:<stage>: <why>"`` (a frame survived
    transport retries but failed decode).  The fault counters are this
    exchange's deltas on the engine meter, so a lost key sits next to the
    drops and retries that killed it.
    """

    seq: int
    round_number: Optional[int]
    first: str
    second: str
    keys_synced: Tuple[str, ...]
    keys_lost: Tuple[Tuple[str, str], ...]
    messages: int
    bytes_sent: int
    dropped: int
    duplicated: int
    retried: int
    corrupted: int
    deliveries_failed: int

    def involves(self, key: str) -> bool:
        """Whether this exchange attempted ``key`` at all."""
        return key in self.keys_synced or any(k == key for k, _ in self.keys_lost)

    def carried(self, key: str) -> bool:
        """Whether the exchange completed for ``key`` (knowledge shared)."""
        return key in self.keys_synced

    def lost_reason(self, key: str) -> Optional[str]:
        """Why ``key`` failed this exchange, or ``None`` if it did not."""
        for name, reason in self.keys_lost:
            if name == key:
                return reason
        return None


class SyncHistory:
    """A bounded ring buffer of :class:`ExchangeRecord` entries.

    Pass one as ``WireSyncEngine(history=...)`` and every completed
    session appends a record; :class:`~repro.replication.synchronizer.
    AntiEntropy` stamps the current round number onto records via
    :meth:`mark_round`.  ``maxlen`` bounds memory for arbitrarily long
    soaks -- :attr:`evicted` counts what the bound discarded, so
    provenance reconstruction can tell "no record" apart from "record
    rotated out".
    """

    def __init__(self, maxlen: int = 256) -> None:
        if maxlen < 1:
            raise ReplicationError(
                f"sync history needs maxlen >= 1, got {maxlen}"
            )
        self.maxlen = maxlen
        self._records: Deque[ExchangeRecord] = deque(maxlen=maxlen)
        self._next_seq = 0
        #: Records discarded by the ring bound so far.
        self.evicted = 0
        #: The round number stamped on subsequent records (None outside
        #: a round-marking driver).
        self.current_round: Optional[int] = None

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[ExchangeRecord]:
        return iter(self._records)

    def records(self) -> List[ExchangeRecord]:
        """The retained records, oldest first."""
        return list(self._records)

    @property
    def next_seq(self) -> int:
        """The sequence number the next recorded exchange will get.

        Contract checkers snapshot this when an operation is recorded, so
        provenance can walk exactly the exchanges that happened after it.
        """
        return self._next_seq

    @property
    def oldest_seq(self) -> Optional[int]:
        """Sequence number of the oldest retained record (None when empty)."""
        return self._records[0].seq if self._records else None

    def mark_round(self, round_number: int) -> None:
        """Stamp subsequent records with ``round_number``."""
        self.current_round = round_number

    def append(
        self,
        *,
        first: str,
        second: str,
        keys_synced: Tuple[str, ...],
        keys_lost: Tuple[Tuple[str, str], ...],
        messages: int,
        bytes_sent: int,
        dropped: int,
        duplicated: int,
        retried: int,
        corrupted: int,
        deliveries_failed: int,
    ) -> ExchangeRecord:
        """Append one exchange record (called by the sync engine)."""
        record = ExchangeRecord(
            seq=self._next_seq,
            round_number=self.current_round,
            first=first,
            second=second,
            keys_synced=keys_synced,
            keys_lost=keys_lost,
            messages=messages,
            bytes_sent=bytes_sent,
            dropped=dropped,
            duplicated=duplicated,
            retried=retried,
            corrupted=corrupted,
            deliveries_failed=deliveries_failed,
        )
        self._next_seq += 1
        if len(self._records) == self.maxlen:
            self.evicted += 1
        self._records.append(record)
        return record

    def since(self, seq: int, *, until: Optional[int] = None) -> List[ExchangeRecord]:
        """Retained records with ``seq <= record.seq < until``, in order."""
        return [
            record
            for record in self._records
            if record.seq >= seq and (until is None or record.seq < until)
        ]

    def __repr__(self) -> str:
        return (
            f"SyncHistory(len={len(self._records)}, maxlen={self.maxlen}, "
            f"evicted={self.evicted})"
        )
