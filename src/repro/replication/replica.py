"""Replicas: data values paired with causality trackers.

A :class:`Version` is an immutable pairing of an application value with the
causal metadata describing which updates produced it.  A :class:`Replica` is
one autonomously-operating copy of a logical data item: it can be written
locally, forked into a new replica *without any coordination* (the paper's
central capability), and synchronized with another replica, detecting
whether the two copies are equivalent, one is obsolete, or they conflict.

The causality mechanism is pluggable through
:class:`~repro.replication.tracker.CausalityTracker`; version stamps are the
default.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.errors import ReplicationError
from ..core.order import Ordering
from ..core.reroot import RerootResult, reroot_stamps
from .conflict import ConflictPolicy, KeepBoth
from .tracker import CausalityTracker, KernelTracker, StampTracker

__all__ = ["Version", "Replica", "SyncOutcome"]

_replica_counter = itertools.count(1)


@dataclass(frozen=True)
class Version:
    """An immutable (value, causal metadata) pair."""

    value: object
    tracker: CausalityTracker

    def compare(self, other: "Version") -> Ordering:
        """Compare the causal knowledge behind two versions."""
        return self.tracker.compare(other.tracker)

    def conflicts_with(self, other: "Version") -> bool:
        """True when neither version dominates the other."""
        return self.compare(other) is Ordering.CONCURRENT


@dataclass(frozen=True)
class SyncOutcome:
    """What a pairwise synchronization observed and produced.

    Attributes
    ----------
    relation:
        How the two replicas compared before synchronizing.
    conflict:
        True when the relation was :attr:`Ordering.CONCURRENT`.
    value:
        The value both replicas hold after the synchronization.
    """

    relation: Ordering
    conflict: bool
    value: object


class Replica:
    """One autonomously operating copy of a logical data item.

    Parameters
    ----------
    name:
        Human-readable replica name (used in logs and test assertions).
    value:
        Initial application value.
    tracker:
        Causality tracker; defaults to a fresh version-stamp tracker, which
        is only appropriate for the *first* replica of an item -- create
        further replicas with :meth:`fork` so identities stay distinct.
    """

    def __init__(
        self,
        name: Optional[str] = None,
        value: object = None,
        tracker: Optional[CausalityTracker] = None,
    ) -> None:
        self.name = name if name is not None else f"replica-{next(_replica_counter)}"
        self._version = Version(value, tracker if tracker is not None else StampTracker())
        self._writes = 0
        self._syncs = 0
        self._conflicts_seen = 0

    # -- inspection ------------------------------------------------------

    @property
    def version(self) -> Version:
        """The current (value, tracker) pair."""
        return self._version

    @property
    def value(self) -> object:
        """The current application value."""
        return self._version.value

    @property
    def tracker(self) -> CausalityTracker:
        """The current causality tracker."""
        return self._version.tracker

    @property
    def writes(self) -> int:
        """Number of local writes performed."""
        return self._writes

    @property
    def syncs(self) -> int:
        """Number of synchronizations performed."""
        return self._syncs

    @property
    def conflicts_seen(self) -> int:
        """Number of synchronizations that found a conflict."""
        return self._conflicts_seen

    def __repr__(self) -> str:
        return f"Replica({self.name!r}, value={self.value!r}, tracker={self.tracker!r})"

    # -- operations ----------------------------------------------------------

    def write(self, value: object) -> Version:
        """Perform a local update, recording it in the causal metadata."""
        self._version = Version(value, self._version.tracker.updated())
        self._writes += 1
        return self._version

    def fork(self, name: Optional[str] = None, *, connected: bool = True) -> "Replica":
        """Create a new replica of the same item, entirely locally.

        With version stamps this always succeeds -- the new identity is built
        by extending the local one.  With the dynamic-version-vector tracker
        it may raise when the identifier authority is unreachable
        (``connected=False``), reproducing the failure mode of Section 1.
        """
        mine, theirs = self._version.tracker.forked(connected=connected)
        self._version = Version(self._version.value, mine)
        return Replica(
            name if name is not None else f"{self.name}-fork",
            self._version.value,
            theirs,
        )

    def compare(self, other: "Replica") -> Ordering:
        """How this replica's version relates to another replica's version."""
        return self._version.compare(other._version)

    def conflicts_with(self, other: "Replica") -> bool:
        """True when the two replicas hold mutually inconsistent versions."""
        return self.compare(other) is Ordering.CONCURRENT

    def sync_with(
        self,
        other: "Replica",
        *,
        resolve: Optional[Callable[[object, object], object]] = None,
    ) -> SyncOutcome:
        """Synchronize with ``other``: both end with the same value and
        combined causal knowledge (join followed by fork, Section 1.1).

        The surviving value is chosen by causality when possible: the
        dominating side wins.  On a genuine conflict, ``resolve`` is called
        with both values (``resolve(self.value, other.value)``); without a
        resolver the local value wins and the outcome records the conflict.
        """
        relation = self.compare(other)
        conflict = relation is Ordering.CONCURRENT
        if relation is Ordering.BEFORE:
            value = other.value
        elif relation in (Ordering.AFTER, Ordering.EQUAL):
            value = self.value
        elif resolve is not None:
            value = resolve(self.value, other.value)
        else:
            value = self.value

        joined = self._version.tracker.joined(other._version.tracker)
        if conflict and resolve is not None:
            # A resolved conflict is a new update: record it so later
            # comparisons see the merged value as dominating both inputs.
            joined = joined.updated()
        mine, theirs = joined.forked()
        self._version = Version(value, mine)
        other._version = Version(value, theirs)

        self._syncs += 1
        other._syncs += 1
        if conflict:
            self._conflicts_seen += 1
            other._conflicts_seen += 1
        return SyncOutcome(relation=relation, conflict=conflict, value=value)

    def absorb(self, other: "Replica") -> None:
        """One-way merge: retire ``other`` into this replica (join only).

        The other replica's identity is consumed by the join -- in the
        paper's model the join inputs leave the frontier -- so ``other`` must
        be discarded after this call; keeping it alive (or comparing against
        it) is outside the mechanism's frontier-ordering guarantees.  Use
        :meth:`sync_with` when both replicas remain in service.
        """
        relation = self.compare(other)
        if relation is Ordering.BEFORE:
            value = other.value
        else:
            value = self.value
        joined = self._version.tracker.joined(other._version.tracker)
        self._version = Version(value, joined)
        self._syncs += 1
        if relation is Ordering.CONCURRENT:
            self._conflicts_seen += 1

    def metadata_size_in_bits(self) -> int:
        """Encoded size of the causal metadata currently held."""
        return self._version.tracker.size_in_bits()

    # -- garbage collection --------------------------------------------------

    @staticmethod
    def compact(replicas: Sequence["Replica"]) -> RerootResult:
        """Re-root the causal metadata of a complete replica group in place.

        Long synchronization chains that never retire replicas grow version
        stamps without bound (the Section 6 rule only collapses siblings).
        ``compact`` applies the Section 7 re-rooting garbage collector
        (:func:`repro.core.reroot.reroot_stamps`) across the group: the
        causally-dominated common past is discarded and every replica's
        stamp is rewritten onto fresh short bitstrings.  All pairwise
        ``compare``/``conflicts_with`` answers among the group -- and among
        anything later derived from it by writes, forks and syncs -- are
        unchanged.

        The group must be *complete*: every live replica of the item has to
        participate, because a stamp left out would still be compared
        against re-rooted strings it knows nothing about.  This mirrors the
        frontier-wide coordination the paper's Section 7 leaves open; the
        implementation takes the simplest sound interpretation (a store
        that owns its replica set compacts them together).  Values and
        statistics are untouched.

        Kernel trackers (:class:`~repro.replication.tracker.KernelTracker`
        around a version-stamp clock) participate too: their re-rooted
        clocks come back with the **epoch bumped by one**, so any stale
        envelope shipped before the compaction is detectable as a straggler
        (``compare``/``join`` against it raises ``EpochMismatch``).  The
        whole group must enter the compaction at one common epoch.

        Raises
        ------
        ReplicationError
            If the group is empty, contains duplicate replicas, mixes
            epochs, or any member does not track causality with version
            stamps.
        """
        from ..kernel.clocks import VersionStampClock

        if not replicas:
            raise ReplicationError("cannot compact an empty replica group")
        if len({id(replica) for replica in replicas}) != len(replicas):
            raise ReplicationError("cannot compact a group with duplicate replicas")
        stamps = {}
        epochs = set()
        for index, replica in enumerate(replicas):
            tracker = replica.tracker
            if isinstance(tracker, StampTracker):
                stamps[str(index)] = tracker.stamp
            elif isinstance(tracker, KernelTracker) and isinstance(
                tracker.clock, VersionStampClock
            ):
                stamps[str(index)] = tracker.clock.stamp
                epochs.add(tracker.clock.epoch)
            else:
                raise ReplicationError(
                    f"compact requires version-stamp trackers; replica "
                    f"{replica.name!r} uses {type(tracker).__name__}"
                )
        if len(epochs) > 1:
            raise ReplicationError(
                f"cannot compact replicas from different re-rooting epochs "
                f"{sorted(epochs)}; upgrade the stragglers first"
            )
        next_epoch = (epochs.pop() + 1) if epochs else None
        result = reroot_stamps(stamps)
        for index, replica in enumerate(replicas):
            stamp = result.stamps[str(index)]
            if isinstance(replica.tracker, KernelTracker):
                tracker: CausalityTracker = KernelTracker(
                    VersionStampClock(stamp, epoch=next_epoch)
                )
            else:
                tracker = StampTracker(stamp)
            replica._version = Version(replica._version.value, tracker)
        return result
