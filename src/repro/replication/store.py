"""A replicated multi-value key-value store built on version stamps.

This is the kind of optimistic data store the paper's motivation describes:
every node holds a copy, writes are accepted locally without coordination,
and reconciliation happens whenever two copies meet.  Because writes can
race, a key may hold several *sibling* values after a synchronization; the
causal metadata is what distinguishes stale values (safe to drop) from
genuinely concurrent ones (application conflicts).

Design notes (how the store stays inside the paper's frontier model)
---------------------------------------------------------------------
Version stamps order *coexisting* elements; comparing a live stamp against a
stale snapshot from an earlier frontier is outside the model.  The store
therefore keeps **one live tracker per key per replica** and only ever
compares the live trackers of the two replicas being synchronized:

* a local ``put`` records an update on that key's tracker;
* replicating a key to a replica that does not hold it yet *forks* the key's
  tracker (exactly like creating a new replica of a file);
* a pairwise synchronization compares the two live trackers, moves values in
  the direction causality dictates (or keeps both as siblings on a genuine
  conflict), and then joins-and-forks the trackers so both replicas continue
  with combined knowledge and distinct identities (Section 1.1).

Sibling values carry no stamps of their own -- they are simply the set of
candidate values for the key; the next causally-dominating write supersedes
all of them everywhere it propagates.

One consequence (shared with PANASYNC file copies): a logical key should be
*created* at one replica and spread by synchronization.  Two replicas
independently creating the same key cannot be causally related -- the store
flags that situation as a conflict of independent origins.

Durability (PR 7)
-----------------
A replica opened with ``durable=True`` (or recovered via
:meth:`StoreReplica.recover`) journals the post-mutation state of every
key it writes, merges, replicates or rolls back to an append-only
:class:`~repro.durability.log.DurableLog` through a
:class:`~repro.durability.store.StoreJournal`.  Local writes flush
immediately; synchronization paths flush once at sync completion (the
durability barrier that keeps recovery inside the paper's I2 invariant --
see the recovery design record in ``ROADMAP.md``).  The store only duck
-types the journal, so this module never imports the durability package
at module level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.errors import ReplicationError
from ..core.order import Ordering
from .conflict import ConflictPolicy, KeepBoth
from .tracker import CausalityTracker, StampTracker

__all__ = ["StoreReplica", "MergeReport", "KeyState", "FrameRejected"]


@dataclass(frozen=True)
class FrameRejected:
    """One wire frame the sync engine skipped instead of merging.

    Produced by the wire sync engine when a frame survives transport-level
    retries but still fails to decode (e.g. payload bits flipped in
    flight past the stream's structural checks).  The affected key keeps
    its local state and is healed by a later round; the rest of the
    pairwise sync proceeds.  ``stage`` says where the damage surfaced
    (``"request"`` or ``"response"`` leg), ``reason`` carries the typed
    decode error's message.
    """

    key: str
    family: str
    epoch: int
    stage: str
    reason: str


@dataclass
class MergeReport:
    """Statistics produced by one pairwise store synchronization."""

    keys_examined: int = 0
    values_taken: int = 0
    values_dropped_stale: int = 0
    conflicts_detected: int = 0
    conflicts_resolved: int = 0
    keys_replicated: int = 0
    #: Stale-epoch trackers fiat-upgraded to the newer epoch during merge.
    epoch_upgrades: int = 0
    #: Frames skipped (not merged) because they failed decode after retries.
    frames_rejected: List[FrameRejected] = field(default_factory=list)

    def __iadd__(self, other: "MergeReport") -> "MergeReport":
        self.keys_examined += other.keys_examined
        self.values_taken += other.values_taken
        self.values_dropped_stale += other.values_dropped_stale
        self.conflicts_detected += other.conflicts_detected
        self.conflicts_resolved += other.conflicts_resolved
        self.keys_replicated += other.keys_replicated
        self.epoch_upgrades += other.epoch_upgrades
        self.frames_rejected.extend(other.frames_rejected)
        return self


@dataclass
class KeyState:
    """The live state of one key at one replica: sibling values + tracker."""

    values: List[object]
    tracker: CausalityTracker
    independently_created: bool = False


class StoreReplica:
    """One replica of a multi-value key-value store.

    Parameters
    ----------
    name:
        Replica name used in logs and reports.
    tracker_factory:
        Callable producing the causality tracker used for keys first created
        at this replica; defaults to version-stamp trackers.
    policy:
        Conflict policy applied when concurrent versions of a key meet;
        defaults to keeping all siblings.
    durable:
        Open a journaled replica: every accepted mutation is persisted to
        the durable log at ``path`` so :meth:`recover` can rebuild the
        replica after a crash.  Requires kernel trackers
        (``KernelTracker.factory(<family>)``) -- the baselines have no
        canonical byte form.
    path:
        Location of the backing log (a directory for the file backend,
        a database file for SQLite).  Required with ``durable=True``.
    backend:
        ``"file"`` (default) or ``"sqlite"``.
    fsync_every:
        Device-sync batching forwarded to the log: ``None`` commits stop
        at the OS page cache (the process-crash model), ``N`` fsyncs
        every Nth flush.
    snapshot_every:
        Auto-compaction threshold in journal records (``None`` compacts
        only at epoch bumps and explicit requests).
    journal:
        An already-constructed :class:`~repro.durability.store.
        StoreJournal` to attach (used by recovery); mutually exclusive
        with ``durable=True``.
    """

    def __init__(
        self,
        name: str,
        *,
        tracker_factory=StampTracker,
        policy: Optional[ConflictPolicy] = None,
        durable: bool = False,
        path=None,
        backend: str = "file",
        fsync_every: Optional[int] = None,
        snapshot_every: Optional[int] = None,
        journal=None,
    ) -> None:
        self.name = name
        self._tracker_factory = tracker_factory
        self._policy = policy if policy is not None else KeepBoth()
        self._keys: Dict[str, KeyState] = {}
        # Write observers, called as fn(replica, key) after every local
        # put.  This is the contracts layer's producer-side hook
        # (ContractChecker.watch_writes snapshots the key's tracker the
        # moment an export lands), kept generic so other consumers can
        # observe local mutations without subclassing the store.
        self._put_listeners: List = []
        if durable and journal is None:
            if path is None:
                raise ReplicationError(
                    "a durable store needs a path for its backing log"
                )
            from ..durability.store import StoreJournal, open_log

            journal = StoreJournal(
                open_log(path, backend=backend, fsync_every=fsync_every),
                snapshot_every=snapshot_every,
            )
        #: The attached :class:`~repro.durability.store.StoreJournal`
        #: (``None`` for a purely in-memory replica).
        self.journal = journal

    @classmethod
    def recover(
        cls,
        path,
        *,
        name: str,
        backend: str = "file",
        tracker_factory=None,
        policy: Optional[ConflictPolicy] = None,
        fsync_every: Optional[int] = None,
        snapshot_every: Optional[int] = None,
    ):
        """Rebuild a replica from the durable log at ``path``.

        Returns ``(replica, report)``: the replica holds the pre-crash
        values, trackers and epochs (snapshot + CRC-valid journal tail,
        torn tails truncated and reported -- never silently decoded), and
        the :class:`~repro.durability.recovery.RecoveryReport` says what
        was replayed, skipped and cut.  The replica is re-attached to the
        same log, so journaling continues where the crash interrupted it.
        """
        from ..durability.recovery import recover_replica

        return recover_replica(
            path,
            name=name,
            backend=backend,
            tracker_factory=tracker_factory,
            policy=policy,
            fsync_every=fsync_every,
            snapshot_every=snapshot_every,
        )

    # -- journaling hooks --------------------------------------------------

    def _record(self, key: str) -> None:
        """Journal the current (post-mutation) state of ``key``, if durable."""
        if self.journal is not None:
            self.journal.record_key(key, self._keys.get(key))

    def _flush_journal(self) -> None:
        """Commit journaled records (the sync-boundary durability barrier)."""
        if self.journal is not None:
            self.journal.flush()

    # -- inspection ------------------------------------------------------

    def keys(self) -> List[str]:
        """All keys currently holding at least one value."""
        return sorted(self._keys)

    def get(self, key: str) -> List[object]:
        """All sibling values currently stored under ``key`` (may be empty)."""
        state = self._keys.get(key)
        return list(state.values) if state is not None else []

    def get_one(self, key: str) -> object:
        """The single value of ``key``.

        Raises
        ------
        ReplicationError
            If the key is missing or currently holds conflicting siblings.
        """
        state = self._keys.get(key)
        if state is None or not state.values:
            raise ReplicationError(f"key {key!r} has no value on replica {self.name!r}")
        if len(state.values) > 1:
            raise ReplicationError(
                f"key {key!r} holds {len(state.values)} conflicting siblings on "
                f"replica {self.name!r}; resolve them before reading one value"
            )
        return state.values[0]

    def tracker_of(self, key: str) -> CausalityTracker:
        """The live causality tracker of ``key`` at this replica."""
        state = self._keys.get(key)
        if state is None:
            raise ReplicationError(f"key {key!r} is not stored on replica {self.name!r}")
        return state.tracker

    def has_conflict(self, key: str) -> bool:
        """True when ``key`` currently holds more than one sibling."""
        return len(self.get(key)) > 1

    def conflicted_keys(self) -> List[str]:
        """All keys currently holding conflicting siblings."""
        return [key for key in self.keys() if self.has_conflict(key)]

    def metadata_size_in_bits(self) -> int:
        """Encoded size of every causal tracker held by this replica."""
        return sum(state.tracker.size_in_bits() for state in self._keys.values())

    def __repr__(self) -> str:
        return f"StoreReplica({self.name!r}, keys={self.keys()})"

    # -- local operations ------------------------------------------------------

    def put(self, key: str, value: object) -> None:
        """Write ``value`` under ``key``, superseding every local sibling.

        A key written for the first time at this replica starts a fresh
        causal lineage (it is "created" here); the key then spreads to other
        replicas through synchronization.
        """
        state = self._keys.get(key)
        if state is None:
            state = KeyState(values=[], tracker=self._tracker_factory(), independently_created=True)
            self._keys[key] = state
        state.values = [value]
        state.tracker = state.tracker.updated()
        if self.journal is not None:
            self._record(key)
            self.journal.flush()
            self.journal.maybe_snapshot(self)
        for listener in self._put_listeners:
            listener(self, key)

    def add_put_listener(self, listener) -> None:
        """Observe local writes: ``listener(replica, key)`` after each put.

        Listeners fire after the write is applied (and journaled, when
        durable), so they see the post-write tracker -- the snapshot an
        ordering contract needs for "the producer's latest export".
        """
        self._put_listeners.append(listener)

    def observe(self, key: str) -> CausalityTracker:
        """Mint a live observer of ``key``'s current causal state.

        Forks the key's tracker: one half stays in the store, the other
        is returned for the caller to keep.  The observer is causally
        EQUAL to the key's state at observation time and is never updated
        or joined, so a later ``current.dominates(observer)`` answers
        "has ``current`` seen everything this key had seen by then?".

        Callers must hold a *live fork*, never a plain copy of the
        tracker: version stamps only order coexisting stamps, and the
        frontier-relative normalization applied by later joins discards
        exactly the history a retired copy would still be relying on --
        a copied stamp can end up spuriously "ahead" of replicas that
        causally dominate it.  Forking registers the observer in the
        key's identity space, which the normalization then provably
        cannot collapse away.
        """
        state = self._keys.get(key)
        if state is None:
            raise ReplicationError(
                f"key {key!r} is not stored on replica {self.name!r}"
            )
        local, observer = state.tracker.forked()
        state.tracker = local
        if self.journal is not None:
            self._record(key)
            self.journal.flush()
        return observer

    def delete(self, key: str) -> None:
        """Remove ``key`` locally (modelled as writing a tombstone value)."""
        self.put(key, None)

    def reset(self) -> None:
        """Drop all keys, values and trackers (crash-stop recovery).

        A replica that crashes rejoins *empty* and re-replicates from
        peers: restoring an old snapshot would resurrect identifier space
        that later forks already split away (an I2 violation that can
        manufacture false orderings).  Fresh identities are minted per key
        by the normal replication fork when the key flows back in.
        """
        self._keys.clear()
        if self.journal is not None:
            self.journal.record_clear()
            self.journal.flush()

    def fork(self, name: str, *, connected: bool = True) -> "StoreReplica":
        """Create a new store replica holding the same data, entirely locally.

        Every key's tracker is forked so both replicas keep distinct,
        autonomous identities per key.  The clone starts in-memory (attach
        a journal or open it durable separately); the *parent's* re-seated
        trackers are journaled and flushed before the clone leaves this
        call, so a post-fork crash can never resurrect the pre-fork
        identities the clone now co-owns.
        """
        clone = StoreReplica(name, tracker_factory=self._tracker_factory, policy=self._policy)
        for key, state in self._keys.items():
            mine, theirs = state.tracker.forked(connected=connected)
            state.tracker = mine
            clone._keys[key] = KeyState(
                values=list(state.values),
                tracker=theirs,
                independently_created=False,
            )
            state.independently_created = False
            self._record(key)
        self._flush_journal()
        return clone

    # -- reconciliation ------------------------------------------------------

    def _sync_key(self, key: str, other: "StoreReplica", report: MergeReport) -> None:
        mine = self._keys.get(key)
        theirs = other._keys.get(key)
        report.keys_examined += 1

        if mine is None and theirs is None:
            return
        if mine is None or theirs is None:
            # Replicate towards the side that does not hold the key yet by
            # forking the holder's tracker.
            holder, receiver = (self, other) if theirs is None else (other, self)
            state = holder._keys[key]
            local, remote = state.tracker.forked()
            state.tracker = local
            receiver._keys[key] = KeyState(values=list(state.values), tracker=remote)
            state.independently_created = False
            report.keys_replicated += 1
            report.values_taken += len(state.values)
            return

        self._merge_key_states(mine, theirs, report)

    def _merge_key_states(
        self,
        mine: KeyState,
        theirs: KeyState,
        report: MergeReport,
        *,
        refork_equal: bool = True,
    ) -> None:
        """Reconcile two held key states (values + trackers) in place.

        The core of a pairwise synchronization, shared between the
        in-memory path (:meth:`_sync_key`) and the wire sync engine, which
        substitutes ``theirs.tracker`` with metadata decoded off the wire
        before calling in.  With ``refork_equal=False`` a pair of causally
        EQUAL trackers is left untouched -- both already carry identical
        knowledge, so the join-and-fork would only churn metadata.  The
        wire engine relies on that stability: unchanged trackers re-ship
        as byte-identical frames, which its decode intern turns into
        dictionary hits.

        Epoch-gossip straggler upgrade: when the two trackers disagree on
        their re-rooting epoch, the older-epoch side is a straggler that
        missed a compaction.  Epoch bumps only happen once every live
        holder of the key reached pairwise-EQUAL common knowledge (see
        :meth:`repro.replication.synchronizer.AntiEntropy.compact_key`),
        so the straggler's knowledge is causally dominated by the
        newer-epoch state *by construction* -- the merge adopts the newer
        side's values wholesale and re-seats the straggler on a fresh fork
        of the newer tracker, instead of raising :class:`EpochMismatch`.
        """
        my_epoch = getattr(mine.tracker, "epoch", None)
        their_epoch = getattr(theirs.tracker, "epoch", None)
        if (
            my_epoch is not None
            and their_epoch is not None
            and my_epoch != their_epoch
        ):
            fresh, stale = (mine, theirs) if my_epoch > their_epoch else (theirs, mine)
            report.epoch_upgrades += 1
            report.values_dropped_stale += len(stale.values)
            stale.values = list(fresh.values)
            report.values_taken += len(fresh.values)
            local, remote = fresh.tracker.forked()
            fresh.tracker = local
            stale.tracker = remote
            mine.independently_created = False
            theirs.independently_created = False
            return

        relation = mine.tracker.compare(theirs.tracker)
        independent_origins = (
            mine.independently_created
            and theirs.independently_created
            and relation is not Ordering.CONCURRENT
        )
        if relation is Ordering.CONCURRENT or independent_origins:
            report.conflicts_detected += 1
            combined = self._policy.resolve(list(mine.values) + list(theirs.values))
            if len(combined) < len(mine.values) + len(theirs.values):
                report.conflicts_resolved += 1
            mine.values = list(combined)
            theirs.values = list(combined)
            report.values_taken += len(combined)
        elif relation is Ordering.BEFORE:
            report.values_dropped_stale += len(mine.values)
            mine.values = list(theirs.values)
            report.values_taken += len(theirs.values)
        elif relation is Ordering.AFTER:
            report.values_dropped_stale += len(theirs.values)
            theirs.values = list(mine.values)
            report.values_taken += len(mine.values)
        elif not refork_equal:
            # EQUAL and stability requested: both sides already hold the
            # same version with equivalent causal knowledge.
            return
        # EQUAL (refork path): both sides already hold the same version;
        # nothing to move, but knowledge is still combined below.

        joined = mine.tracker.joined(theirs.tracker)
        if relation is Ordering.CONCURRENT and self._policy.collapses:
            # A resolved conflict is a new version that must dominate both
            # inputs in later comparisons with third replicas.
            joined = joined.updated()
        local, remote = joined.forked()
        mine.tracker = local
        theirs.tracker = remote
        mine.independently_created = False
        theirs.independently_created = False

    def sync_with(self, other: "StoreReplica") -> MergeReport:
        """Two-way reconciliation: both replicas end with the same keys and
        values, with combined causal knowledge per key (Section 1.1).
        """
        if other is self:
            raise ReplicationError("a store replica cannot synchronize with itself")
        report = MergeReport()
        durable = self.journal is not None or other.journal is not None
        for key in sorted(set(self._keys) | set(other._keys)):
            if not durable:
                self._sync_key(key, other, report)
                continue
            mine_before = self._keys.get(key)
            mine_tracker = mine_before.tracker if mine_before is not None else None
            theirs_before = other._keys.get(key)
            theirs_tracker = (
                theirs_before.tracker if theirs_before is not None else None
            )
            self._sync_key(key, other, report)
            mine_after = self._keys.get(key)
            if mine_after is not None and mine_after.tracker is not mine_tracker:
                self._record(key)
            theirs_after = other._keys.get(key)
            if (
                theirs_after is not None
                and theirs_after.tracker is not theirs_tracker
            ):
                other._record(key)
        # One flush per sync, on both journals: the barrier that makes a
        # completed sync durable as a unit (see the I2 argument in the
        # ROADMAP recovery record).
        self._flush_journal()
        other._flush_journal()
        return report
