"""Conflict resolution policies for optimistic replication.

Version stamps (like version vectors) *detect* mutual inconsistency; what to
do about it is a policy decision of the application.  A policy receives the
sibling values of a key after a synchronization has found the two replicas'
versions to be concurrent, and returns the values that survive:

* :class:`KeepBoth` -- keep every concurrent value as a sibling and let a
  later write or an explicit merge resolve them (the Dynamo/Coda style).
* :class:`MergeWith` -- collapse the siblings with a caller-supplied merge
  function (state-based merge).
* :class:`PreferNewest` -- pick a single survivor deterministically using a
  tie-break key (a pragmatic last-writer-wins; causality information is still
  what decides whether a conflict exists at all).

Policies operate on plain values; causal metadata is handled by the store,
which joins the two replicas' stamps regardless of what the policy keeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence

__all__ = ["ConflictPolicy", "KeepBoth", "MergeWith", "PreferNewest"]


class ConflictPolicy:
    """Decides which values survive when concurrent versions of a key meet."""

    def resolve(self, values: Sequence[object]) -> List[object]:
        """Return the surviving values (never empty for non-empty input)."""
        raise NotImplementedError

    @property
    def collapses(self) -> bool:
        """Whether the policy always returns a single value."""
        return False


class KeepBoth(ConflictPolicy):
    """Keep every concurrent value as a sibling (no data loss)."""

    def resolve(self, values: Sequence[object]) -> List[object]:
        unique: List[object] = []
        for value in values:
            if not any(value == existing for existing in unique):
                unique.append(value)
        return unique


@dataclass
class MergeWith(ConflictPolicy):
    """Collapse conflicting values with ``merge_function``.

    The function receives the list of sibling values and must return the
    merged value.
    """

    merge_function: Callable[[Sequence[object]], object]

    def resolve(self, values: Sequence[object]) -> List[object]:
        if len(values) <= 1:
            return list(values)
        return [self.merge_function(list(values))]

    @property
    def collapses(self) -> bool:
        return True


@dataclass
class PreferNewest(ConflictPolicy):
    """Keep a single value chosen by a tie-break key (last-writer-wins).

    ``key`` extracts a comparable value from each sibling; the sibling with
    the largest key survives.  Ties keep the earliest sibling, which makes
    the policy deterministic for a fixed input order.
    """

    key: Callable[[object], object] = field(default=lambda value: value)

    def resolve(self, values: Sequence[object]) -> List[object]:
        if len(values) <= 1:
            return list(values)
        best = values[0]
        best_key = self.key(best)
        for value in values[1:]:
            candidate_key = self.key(value)
            if candidate_key > best_key:
                best = value
                best_key = candidate_key
        return [best]

    @property
    def collapses(self) -> bool:
        return True
