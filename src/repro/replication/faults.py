"""Composable fault injection for the anti-entropy wire path.

The paper's target environment -- ad-hoc networks where "partitioned
operation is the common mode of operation" -- does not merely partition:
it loses, duplicates, reorders and damages messages, and whole replicas
crash and come back.  This module makes that environment injectable so the
sync stack can be *proven* to degrade gracefully instead of assuming a
perfect transport:

* :class:`FaultPlan` -- a declarative, seeded description of the fault
  matrix (loss rate, scheduled outage windows, duplication, reordering,
  single/multi-bit corruption, latency per delivery);
* :class:`FaultyTransport` -- wraps any
  :class:`~repro.replication.network.SimulatedNetwork` and delivers sync
  payloads through the plan; it also tracks crashed replicas, so a
  crashed node is unreachable exactly like a partitioned one;
* :class:`RetryPolicy` -- the sender-side answer: per-transfer timeout
  expressed as a bounded number of attempts, with exponential backoff and
  seeded jitter, all in *simulated* latency (no real sleeping) so soak
  tests stay fast and deterministic.

The engine/transport contract
-----------------------------
:class:`~repro.replication.synchronizer.WireSyncEngine` hands the
transport one batch of wire blobs per sync leg via
:meth:`FaultyTransport.transfer_batch` and receives back a list of
``(index, payload)`` deliveries: an index can be missing (lost), appear
several times (duplicated), arrive out of order (reordered), and its
payload can differ from what was sent (corrupted).  The engine retries
missing or transport-damaged indices under its :class:`RetryPolicy`; what
still fails after the last attempt is skipped and reported per key
(``FrameRejected`` entries in the ``MergeReport``), never raised -- one
bad frame can cost one key one round, not the whole pairwise sync.

Faults operate on whole sync-leg messages and on frames *within* one
pairwise session.  Cross-session replay is modelled at the session level
(running the identical sync again, which the engine's idempotent merge
absorbs) rather than by re-injecting stale blobs into a later session:
anti-entropy legs are positional (keys travel out of band), so a
datagram-level replay across sessions is a different protocol's failure
mode, not this one's.  The fault matrix in the README spells this out.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..core.errors import FaultInjectionError
from .degradation import DegradationPlan, DegradationState
from .network import NetworkMeter, SimulatedNetwork

__all__ = [
    "FaultPlan",
    "FaultyTransport",
    "RetryPolicy",
]


def _check_rate(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise FaultInjectionError(f"{name} must be within [0, 1], got {value}")
    return float(value)


@dataclass(frozen=True)
class FaultPlan:
    """A declarative description of what the transport does to messages.

    All rates are per-message probabilities in ``[0, 1]``; everything is
    driven by the transport's seeded RNG, so a plan plus a seed is a fully
    reproducible chaos schedule.

    Attributes
    ----------
    loss:
        Probability that a message is dropped outright.
    duplicate:
        Probability that a delivered message arrives a second time
        (``max_duplicates`` bounds how many extra copies one message can
        spawn).
    reorder:
        Probability that a *batch* of messages is delivered in a shuffled
        order rather than send order.
    corrupt:
        Probability that a delivered copy has ``corrupt_bits`` random bits
        flipped somewhere in its payload.
    corrupt_bits:
        How many bit flips one corruption event applies (1 = the classic
        single-bit error; >1 exercises multi-bit damage).
    latency:
        Simulated in-flight latency added per delivered message,
        accounted by the engine as retry-free transfer time (seconds of
        simulated time per message).
    outages:
        Scheduled total-loss windows: ``(start, end)`` pairs in transfer
        counts -- while ``start <= transfers_so_far < end`` every message
        is dropped.  This is the scripted analogue of a radio blackout,
        independent of the probabilistic ``loss`` rate.
    degradation:
        Optional grey-failure plan
        (:class:`~repro.replication.degradation.DegradationPlan`): nodes
        that are alive but slow, stuck or flapping.  The transport only
        executes the plan's one state-affecting mode (stuck-session
        hangs, which lose the hung leg's deliveries); the timing-only
        shaping is applied by whoever drives the session's effects, so
        the fault RNG stream stays byte-identical with degradation on or
        off.
    crash_restart:
        Which crash model a restarted replica follows when the caller
        does not choose one explicitly: ``"rejoin-empty"`` (crash-stop,
        the default -- drop state, re-replicate from peers) or
        ``"recover"`` (crash-recover -- rebuild the pre-crash state from
        the node's durable log, possibly returning as an epoch straggler
        for the epoch gossip to upgrade).  The transport itself only
        gates connectivity; this knob rides the plan so one
        ``(plan, seed)`` pair fully describes a chaos schedule,
        recovery semantics included.
    """

    loss: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    corrupt: float = 0.0
    corrupt_bits: int = 1
    max_duplicates: int = 1
    latency: float = 0.0
    outages: Tuple[Tuple[int, int], ...] = ()
    degradation: Optional[DegradationPlan] = None
    crash_restart: str = "rejoin-empty"

    #: The crash models a restarted replica can follow.
    RESTART_MODES = ("rejoin-empty", "recover")

    def __post_init__(self) -> None:
        _check_rate("loss", self.loss)
        _check_rate("duplicate", self.duplicate)
        _check_rate("reorder", self.reorder)
        _check_rate("corrupt", self.corrupt)
        if self.corrupt_bits < 1:
            raise FaultInjectionError(
                f"corrupt_bits must be at least 1, got {self.corrupt_bits}"
            )
        if self.max_duplicates < 1:
            raise FaultInjectionError(
                f"max_duplicates must be at least 1, got {self.max_duplicates}"
            )
        if self.latency < 0:
            raise FaultInjectionError(f"latency must be >= 0, got {self.latency}")
        for window in self.outages:
            if len(window) != 2 or window[0] < 0 or window[1] <= window[0]:
                raise FaultInjectionError(
                    f"outage windows are (start, end) with 0 <= start < end, "
                    f"got {window!r}"
                )
        if self.crash_restart not in self.RESTART_MODES:
            raise FaultInjectionError(
                f"crash_restart must be one of {self.RESTART_MODES}, "
                f"got {self.crash_restart!r}"
            )

    @classmethod
    def perfect(cls) -> "FaultPlan":
        """The no-fault plan (useful as a baseline arm in benchmarks)."""
        return cls()

    @classmethod
    def lossy(cls, loss: float) -> "FaultPlan":
        """A plan with loss only (the classic lossy-datagram model)."""
        return cls(loss=loss)

    @classmethod
    def chaos(
        cls,
        *,
        loss: float = 0.1,
        seed_everything: bool = True,
        crash_restart: str = "rejoin-empty",
    ) -> "FaultPlan":
        """A kitchen-sink plan used by the chaos soaks."""
        return cls(
            loss=loss,
            duplicate=0.08,
            reorder=0.25,
            corrupt=0.03,
            corrupt_bits=1,
            max_duplicates=2 if seed_everything else 1,
            crash_restart=crash_restart,
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with jitter, in simulated time.

    ``attempts`` is the per-transfer timeout expressed as a retry budget:
    the first send plus at most ``attempts - 1`` resends.  The delay
    before resend ``k`` (1-based) is::

        min(max_delay, base * factor**(k-1)) * (1 + jitter * u),  u ~ U[0,1)

    accumulated into :attr:`NetworkMeter.retry_latency` -- no real clock
    is involved, so chaos soaks run at full speed while still reporting
    honest retry-latency totals.
    """

    attempts: int = 4
    base: float = 0.05
    factor: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise FaultInjectionError(
                f"a retry policy needs at least 1 attempt, got {self.attempts}"
            )
        if self.base < 0 or self.max_delay < 0 or self.factor < 1 or self.jitter < 0:
            raise FaultInjectionError(
                "retry policy needs base/max_delay/jitter >= 0 and factor >= 1"
            )

    def delay(self, retry_number: int, rng: random.Random) -> float:
        """Simulated backoff before the given resend (1-based)."""
        raw = min(self.max_delay, self.base * self.factor ** (retry_number - 1))
        return raw * (1.0 + self.jitter * rng.random())


class FaultyTransport:
    """A fault-injecting delivery layer over a simulated network.

    Wraps a :class:`~repro.replication.network.SimulatedNetwork` (whose
    connectivity verdicts it honours and augments with crash state) and
    delivers wire blobs through a :class:`FaultPlan`.  All randomness
    comes from one seeded RNG, so a ``(plan, seed)`` pair replays the
    exact same fault schedule.

    Crash/restart: :meth:`crash` freezes a replica out of the network
    (every message to or from it is dropped and counted); :meth:`restart`
    brings it back.  The store-level recovery semantics (rejoin empty and
    re-replicate) live with the node, not here -- the transport only
    answers "can bytes flow".
    """

    def __init__(
        self,
        network: SimulatedNetwork,
        *,
        plan: Optional[FaultPlan] = None,
        seed: int = 0,
        meter: Optional[NetworkMeter] = None,
    ) -> None:
        self.network = network
        self.plan = plan if plan is not None else FaultPlan()
        self._rng = random.Random(seed)
        #: Retained so :meth:`ensure_degradation` can derive the grey RNG
        #: stream (seed XOR salt) without touching the fault RNG above.
        self.seed = seed
        #: Meter receiving drop/duplicate/corrupt ground truth; the wire
        #: sync engine points this at its own meter when it adopts the
        #: transport, so one object carries the whole fault economy.
        self.meter = meter
        self._crashed: Set[str] = set()
        #: Total transfer attempts seen (the clock outage windows run on).
        self.transfers = 0
        #: The plan's grey modes resolved over a node population (see
        #: :meth:`ensure_degradation`); ``None`` until resolved.
        self.degradation: Optional[DegradationState] = None
        #: Virtual seconds of stuck-session hang charged by the last
        #: transfer, stashed for the effect driver to sleep off.
        self._pending_hang = 0.0

    # -- connectivity (SimulatedNetwork-compatible surface) ---------------

    def can_communicate(self, first: str, second: str) -> bool:
        """Network connectivity, minus crashed endpoints."""
        if first in self._crashed or second in self._crashed:
            return False
        return self.network.can_communicate(first, second)

    def reachable_from(self, node: str, nodes: Iterable[str]) -> Set[str]:
        """The subset of ``nodes`` reachable from ``node`` right now."""
        if node in self._crashed:
            return set()
        return {
            other
            for other in self.network.reachable_from(node, nodes)
            if other not in self._crashed
        }

    def advance(self, steps: int = 1) -> None:
        """Advance the wrapped network's simulated time."""
        self.network.advance(steps)

    # -- crash / restart ---------------------------------------------------

    def crash(self, node: str) -> None:
        """Freeze ``node`` out of the network (crash-stop)."""
        self._crashed.add(node)

    def restart(self, node: str) -> None:
        """Bring ``node`` back into the network."""
        self._crashed.discard(node)

    def is_crashed(self, node: str) -> bool:
        """Whether ``node`` is currently crashed."""
        return node in self._crashed

    @property
    def crashed(self) -> Set[str]:
        """A copy of the currently crashed node set."""
        return set(self._crashed)

    # -- grey failure ------------------------------------------------------

    def ensure_degradation(
        self, node_ids: Iterable[str]
    ) -> Optional[DegradationState]:
        """Resolve the plan's grey modes over ``node_ids`` (idempotent).

        The resolved state is cached; the grey RNG it owns is seeded from
        this transport's seed XOR a salt, so it is a stream of its own --
        resolving degradation never advances the fault RNG.
        """
        if self.degradation is None and self.plan.degradation is not None:
            self.degradation = self.plan.degradation.resolve(
                node_ids, seed=self.seed
            )
        return self.degradation

    def take_pending_hang(self) -> float:
        """Stuck-hang seconds charged by the last transfer, then cleared.

        The transport decides *whether* a leg hangs (a grey-RNG draw at
        delivery time); the effect driver calls this after each transfer
        to learn how much virtual time the hang costs and sleeps it.
        """
        hang = self._pending_hang
        self._pending_hang = 0.0
        return hang

    # -- fault machinery ---------------------------------------------------

    def _in_outage(self) -> bool:
        now = self.transfers
        return any(start <= now < end for start, end in self.plan.outages)

    def _corrupt(self, blob: bytes) -> bytes:
        if not blob:
            return blob
        damaged = bytearray(blob)
        for _ in range(self.plan.corrupt_bits):
            position = self._rng.randrange(len(damaged) * 8)
            damaged[position // 8] ^= 1 << (position % 8)
        return bytes(damaged)

    def _deliver_copies(self, blob: bytes) -> List[bytes]:
        """The copies of one message that actually arrive (0, 1 or more)."""
        plan = self.plan
        rng = self._rng
        meter = self.meter
        if self._in_outage() or (plan.loss and rng.random() < plan.loss):
            if meter is not None:
                meter.record_drop()
            return []
        copies = 1
        if plan.duplicate and rng.random() < plan.duplicate:
            extra = rng.randint(1, plan.max_duplicates)
            copies += extra
            if meter is not None:
                meter.record_duplicate(extra)
        out: List[bytes] = []
        for _ in range(copies):
            payload = blob
            if plan.corrupt and rng.random() < plan.corrupt:
                payload = self._corrupt(blob)
                if payload != blob and meter is not None:
                    meter.record_corrupt()
            out.append(payload)
        return out

    def transfer_batch(
        self, source: str, destination: str, blobs: Sequence[bytes]
    ) -> List[Tuple[int, bytes]]:
        """Deliver one leg's messages through the fault plan.

        Returns ``(index, payload)`` pairs in delivery order: an index
        from ``blobs`` can be absent (lost), repeated (duplicated) and
        its payload damaged (corrupted); the whole batch can arrive
        shuffled.  A partitioned or crashed endpoint loses everything --
        connectivity can change *mid-session*, which is exactly the
        window the engine's per-key rollback exists for.
        """
        self.transfers += len(blobs)
        if not self.can_communicate(source, destination):
            if self.meter is not None:
                self.meter.record_drop(len(blobs))
            return []
        if self.degradation is not None and blobs:
            hang = self.degradation.stuck_hang(source, destination)
            if hang > 0.0:
                # A stuck session: the leg hangs for `hang` virtual
                # seconds and delivers nothing this attempt.  The hang
                # time is stashed for the effect driver; the engine's
                # retry budget and later rounds heal the lost bytes.
                self._pending_hang += hang
                if self.meter is not None:
                    self.meter.record_drop(len(blobs))
                return []
        deliveries: List[Tuple[int, bytes]] = []
        for index, blob in enumerate(blobs):
            for payload in self._deliver_copies(blob):
                deliveries.append((index, payload))
        if (
            len(deliveries) > 1
            and self.plan.reorder
            and self._rng.random() < self.plan.reorder
        ):
            self._rng.shuffle(deliveries)
        return deliveries

    def transfer(self, source: str, destination: str, blob: bytes) -> List[bytes]:
        """Single-message convenience form of :meth:`transfer_batch`."""
        return [payload for _, payload in self.transfer_batch(source, destination, [blob])]
