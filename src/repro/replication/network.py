"""A simulated network for partition-prone, mobile environments.

The paper motivates version stamps with "wireless ad hoc networking setups,
where entities are autonomous and operate in local clusters on a proximity
basis" and where "partitioned operation is the common mode of operation"
(Section 1).  We cannot run on real ad-hoc hardware, so this module provides
the closest synthetic equivalent: a network model whose *connectivity* can be
partitioned arbitrarily and changed over time, plus a mobility model that
derives partitions from node positions (proximity clustering).

The rest of the replication substrate only asks two questions of a network:

* :meth:`SimulatedNetwork.can_communicate` -- can two nodes talk right now?
* :meth:`SimulatedNetwork.reachable_from` -- which nodes are in the same
  partition as a given node?

so any model answering those (static partitions, scripted partition
schedules, random churn, proximity) can be plugged in.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.errors import ReplicationError

__all__ = [
    "SimulatedNetwork",
    "FullyConnectedNetwork",
    "PartitionedNetwork",
    "PartitionSchedule",
    "ScheduledNetwork",
    "ProximityNetwork",
    "NodePosition",
    "NetworkMeter",
    "LatencyPercentiles",
]


class LatencyPercentiles(Dict[float, float]):
    """Typed result of :meth:`NetworkMeter.latency_percentiles`.

    A plain ``quantile -> seconds`` mapping (so existing ``[0.5]``
    subscripting keeps working) that additionally carries how many
    samples backed it.  ``samples == 0`` is the typed empty result: every
    requested quantile maps to ``0.0`` and :attr:`empty` is true -- a
    meter that never saw an async transfer reports "no data" instead of
    crashing or smuggling zeros that read like measurements.
    """

    __slots__ = ("samples",)

    def __init__(self, values: Dict[float, float], samples: int) -> None:
        super().__init__(values)
        self.samples = samples

    @property
    def empty(self) -> bool:
        """Whether this result was computed from zero samples."""
        return self.samples == 0


@dataclass
class NetworkMeter:
    """Message, byte and fault accounting for wire-level synchronization.

    The wire sync engine records every transfer it performs here, so
    benchmarks and tests can compare framing strategies by their real
    traffic: a batched anti-entropy round sends one stream per peer pair
    and direction, a per-envelope round sends one message per stamp.
    Per-pair totals are kept under ``(source, destination)`` keys.

    Under a fault-injecting transport (:mod:`repro.replication.faults`)
    the meter additionally tracks the fault economy of a run: how many
    messages the transport dropped, duplicated or corrupted, how many
    resends the engine's retry policy issued, and the total simulated
    latency those retries cost.  ``messages``/``bytes_sent`` count every
    *attempt* (retries included), so ``goodput()`` -- the fraction of
    sent bytes that carried metadata the receiver actually accepted --
    is what chaos benchmarks report instead of raw throughput.
    """

    messages: int = 0
    bytes_sent: int = 0
    #: Messages the transport lost (loss rate, outage windows, crashes).
    dropped: int = 0
    #: Extra deliveries the transport injected beyond the first copy.
    duplicated: int = 0
    #: Resend attempts issued by the engine's retry policy.
    retried: int = 0
    #: Messages whose payload the transport damaged in flight.
    corrupted: int = 0
    #: Total simulated backoff latency spent waiting between retries.
    retry_latency: float = 0.0
    #: Bytes of payloads the receiving engine accepted (first valid copy).
    bytes_delivered: int = 0
    per_pair: Dict[Tuple[str, str], Tuple[int, int]] = field(default_factory=dict)
    #: Virtual seconds each transfer leg spent on the wire (async service
    #: only; the synchronous engine moves bytes in zero simulated time).
    transfer_latencies: List[float] = field(default_factory=list)

    def record(self, source: str, destination: str, nbytes: int, count: int = 1) -> None:
        """Record ``count`` messages totalling ``nbytes`` from source to destination."""
        self.messages += count
        self.bytes_sent += nbytes
        pair = (source, destination)
        messages, total = self.per_pair.get(pair, (0, 0))
        self.per_pair[pair] = (messages + count, total + nbytes)

    def record_drop(self, count: int = 1) -> None:
        """Record messages lost in flight."""
        self.dropped += count

    def record_duplicate(self, count: int = 1) -> None:
        """Record extra copies delivered beyond the first."""
        self.duplicated += count

    def record_corrupt(self, count: int = 1) -> None:
        """Record messages whose payload was damaged in flight."""
        self.corrupted += count

    def record_retry(self, count: int = 1, latency: float = 0.0) -> None:
        """Record resend attempts and the backoff latency they waited."""
        self.retried += count
        self.retry_latency += latency

    def record_delivery(self, nbytes: int) -> None:
        """Record payload bytes the receiver accepted as valid."""
        self.bytes_delivered += nbytes

    def record_transfer_latency(self, seconds: float) -> None:
        """Record the virtual wire time of one transfer leg (async path)."""
        self.transfer_latencies.append(seconds)

    def latency_percentiles(
        self, quantiles: Sequence[float] = (0.5, 0.9, 0.99)
    ) -> "LatencyPercentiles":
        """Nearest-rank percentiles of the recorded transfer latencies.

        Returns a :class:`LatencyPercentiles` mapping ``quantile ->
        seconds`` carrying its sample count; with zero samples it is the
        typed empty result (every quantile ``0.0``, ``empty`` true)
        rather than a crash or indistinguishable zeros.  Nearest-rank on
        the sorted samples -- no interpolation -- so the numbers are
        deterministic and directly comparable across runs and machines:
        one sample answers every quantile, and the p99 of two samples is
        the larger one (``ceil(0.99 * 2) - 1 == 1``).
        """
        samples = sorted(self.transfer_latencies)
        if not samples:
            return LatencyPercentiles({q: 0.0 for q in quantiles}, 0)
        last = len(samples) - 1
        return LatencyPercentiles(
            {
                q: samples[min(last, max(0, math.ceil(q * len(samples)) - 1))]
                for q in quantiles
            },
            len(samples),
        )

    def goodput(self) -> float:
        """Accepted payload bytes as a fraction of all bytes sent.

        1.0 on a perfect transport (every byte sent is delivered and
        accepted); drops, retries, duplicates and corrupted frames all
        push it down.  0.0 when nothing was sent.
        """
        if self.bytes_sent <= 0:
            return 0.0
        return self.bytes_delivered / self.bytes_sent

    def snapshot(self) -> Tuple[int, int]:
        """The current ``(messages, bytes)`` totals."""
        return self.messages, self.bytes_sent

    def fault_snapshot(self) -> Tuple[int, int, int, int, float]:
        """The current ``(dropped, duplicated, retried, corrupted, retry_latency)``."""
        return (
            self.dropped,
            self.duplicated,
            self.retried,
            self.corrupted,
            self.retry_latency,
        )

    def reset(self) -> None:
        """Zero all counters (e.g. between benchmark phases)."""
        self.messages = 0
        self.bytes_sent = 0
        self.dropped = 0
        self.duplicated = 0
        self.retried = 0
        self.corrupted = 0
        self.retry_latency = 0.0
        self.bytes_delivered = 0
        self.per_pair.clear()
        self.transfer_latencies.clear()


class SimulatedNetwork:
    """Abstract connectivity oracle used by the replication substrate."""

    def can_communicate(self, first: str, second: str) -> bool:
        """Whether ``first`` and ``second`` can exchange messages right now."""
        raise NotImplementedError

    def reachable_from(self, node: str, nodes: Iterable[str]) -> Set[str]:
        """The subset of ``nodes`` currently reachable from ``node``."""
        return {other for other in nodes if self.can_communicate(node, other)}

    def partitions(self, nodes: Iterable[str]) -> List[Set[str]]:
        """Group ``nodes`` into connected components under current connectivity."""
        remaining = list(dict.fromkeys(nodes))
        components: List[Set[str]] = []
        while remaining:
            seed = remaining.pop(0)
            component = {seed}
            frontier = [seed]
            while frontier:
                current = frontier.pop()
                for other in list(remaining):
                    if self.can_communicate(current, other):
                        remaining.remove(other)
                        component.add(other)
                        frontier.append(other)
            components.append(component)
        return components

    def advance(self, steps: int = 1) -> None:
        """Advance simulated time (no-op for static models)."""


class FullyConnectedNetwork(SimulatedNetwork):
    """Every node can always talk to every other node (the classic LAN case)."""

    def can_communicate(self, first: str, second: str) -> bool:
        return True


class PartitionedNetwork(SimulatedNetwork):
    """A network with an explicit, mutable set of partitions.

    Nodes not mentioned in any partition form an implicit shared partition,
    so tests can describe only the interesting splits.
    """

    def __init__(self, partitions: Optional[Iterable[Iterable[str]]] = None) -> None:
        self._partitions: List[Set[str]] = [set(group) for group in (partitions or [])]
        self._validate()

    def _validate(self) -> None:
        seen: Set[str] = set()
        for group in self._partitions:
            overlap = seen & group
            if overlap:
                raise ReplicationError(
                    f"nodes {sorted(overlap)} appear in more than one partition"
                )
            seen |= group

    def set_partitions(self, partitions: Iterable[Iterable[str]]) -> None:
        """Replace the current partitioning."""
        self._partitions = [set(group) for group in partitions]
        self._validate()

    def heal(self) -> None:
        """Remove every partition (full connectivity)."""
        self._partitions = []

    def partition_of(self, node: str) -> Optional[FrozenSet[str]]:
        """The explicit partition containing ``node``, if any."""
        for group in self._partitions:
            if node in group:
                return frozenset(group)
        return None

    def can_communicate(self, first: str, second: str) -> bool:
        if first == second:
            return True
        group_first = self.partition_of(first)
        group_second = self.partition_of(second)
        if group_first is None and group_second is None:
            return True
        return group_first is not None and group_first == group_second


@dataclass
class PartitionSchedule:
    """A scripted sequence of partitionings indexed by simulated time.

    Attributes
    ----------
    phases:
        List of ``(duration, partitions)`` pairs applied in order; after the
        last phase the network stays in that phase's configuration.
    """

    phases: Sequence[Tuple[int, Sequence[Sequence[str]]]]

    def partitions_at(self, time: int) -> Sequence[Sequence[str]]:
        """The partitioning in force at simulated time ``time``."""
        elapsed = 0
        current: Sequence[Sequence[str]] = []
        for duration, partitions in self.phases:
            current = partitions
            elapsed += duration
            if time < elapsed:
                return partitions
        return current


class ScheduledNetwork(PartitionedNetwork):
    """A partitioned network driven by a :class:`PartitionSchedule`."""

    def __init__(self, schedule: PartitionSchedule) -> None:
        super().__init__(schedule.partitions_at(0))
        self._schedule = schedule
        self._time = 0

    @property
    def time(self) -> int:
        """The current simulated time."""
        return self._time

    def advance(self, steps: int = 1) -> None:
        self._time += steps
        self.set_partitions(self._schedule.partitions_at(self._time))


@dataclass
class NodePosition:
    """Position and velocity of a mobile node on a 2-D plane."""

    x: float
    y: float
    dx: float = 0.0
    dy: float = 0.0

    def step(self, bounds: float) -> None:
        """Move one time step, bouncing off the square ``[0, bounds]²``."""
        self.x += self.dx
        self.y += self.dy
        if self.x < 0 or self.x > bounds:
            self.dx = -self.dx
            self.x = min(max(self.x, 0.0), bounds)
        if self.y < 0 or self.y > bounds:
            self.dy = -self.dy
            self.y = min(max(self.y, 0.0), bounds)


class ProximityNetwork(SimulatedNetwork):
    """Connectivity by radio range over mobile nodes (ad-hoc clustering).

    Nodes move with a simple bounce model inside a square arena; two nodes can
    communicate when within ``radio_range`` of each other.  This produces the
    proximity-based local clusters of the paper's motivating scenario.
    """

    def __init__(
        self,
        *,
        arena: float = 100.0,
        radio_range: float = 20.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if arena <= 0 or radio_range <= 0:
            raise ReplicationError("arena size and radio range must be positive")
        self._arena = arena
        self._range = radio_range
        self._rng = rng if rng is not None else random.Random(0)
        self._positions: Dict[str, NodePosition] = {}

    def add_node(self, node: str, position: Optional[NodePosition] = None) -> None:
        """Register a mobile node, optionally at an explicit position."""
        if position is None:
            speed = self._range / 10.0
            position = NodePosition(
                x=self._rng.uniform(0, self._arena),
                y=self._rng.uniform(0, self._arena),
                dx=self._rng.uniform(-speed, speed),
                dy=self._rng.uniform(-speed, speed),
            )
        self._positions[node] = position

    def position_of(self, node: str) -> NodePosition:
        """The current position of ``node``."""
        try:
            return self._positions[node]
        except KeyError:
            raise ReplicationError(f"unknown node {node!r}") from None

    def can_communicate(self, first: str, second: str) -> bool:
        if first == second:
            return True
        if first not in self._positions or second not in self._positions:
            return False
        a = self._positions[first]
        b = self._positions[second]
        return math.hypot(a.x - b.x, a.y - b.y) <= self._range

    def advance(self, steps: int = 1) -> None:
        for _ in range(steps):
            for position in self._positions.values():
                position.step(self._arena)
