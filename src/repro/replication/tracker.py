"""Pluggable causality trackers for the replication substrate.

The replication layer (replicas, stores, synchronizers) only needs four
capabilities from whatever mechanism tracks update causality:

* record a local update,
* fork when a new replica is created from an existing one,
* join when two replicas reconcile,
* compare two versions (:class:`~repro.core.order.Ordering`).

:class:`CausalityTracker` captures that contract; the adapters wrap version
stamps (the paper's mechanism and the default), Interval Tree Clocks (the
extension) and dynamic version vectors (the identifier-dependent baseline).
Having the baselines behind the same interface is what lets the end-to-end
replication benchmarks swap the mechanism without touching the scenario.

:class:`KernelTracker` closes the loop with :mod:`repro.kernel`: it wraps
any registered clock family behind the tracker contract, speaking only the
:class:`~repro.kernel.protocol.CausalityClock` protocol -- so every
replication scenario (replicas, stores, mobile nodes, anti-entropy) runs
over any family via ``KernelTracker.factory("itc")`` etc., and the causal
metadata it ships serializes through the epoch-tagged wire envelope.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from .. import kernel
from ..core.order import Ordering
from ..core.stamp import VersionStamp
from ..itc.stamp import ITCStamp
from ..vv.dynamic_vv import DynamicVVElement
from ..vv.id_source import IdSource, CentralIdSource
from ..vv.version_vector import VersionVector

__all__ = [
    "CausalityTracker",
    "StampTracker",
    "ITCTracker",
    "DynamicVVTracker",
    "KernelTracker",
]


class CausalityTracker:
    """Abstract interface of a causality tracking mechanism.

    Implementations are immutable: every operation returns new tracker
    instances, matching the value semantics of the underlying mechanisms.
    Every operation allocating a new tracker sits on the per-key merge
    path of a store synchronization, so the concrete classes declare
    ``__slots__`` -- a tracker is one pointer-sized wrapper, never a
    dict-carrying object.
    """

    __slots__ = ()

    def updated(self) -> "CausalityTracker":
        """Return the tracker after recording one local update."""
        raise NotImplementedError

    def forked(self, *, connected: bool = True) -> Tuple["CausalityTracker", "CausalityTracker"]:
        """Return two trackers for the two sides of a replica creation."""
        raise NotImplementedError

    def joined(self, other: "CausalityTracker") -> "CausalityTracker":
        """Return the tracker holding the combined knowledge of both."""
        raise NotImplementedError

    def compare(self, other: "CausalityTracker") -> Ordering:
        """Compare update knowledge with another tracker of the same kind."""
        raise NotImplementedError

    def dominates(self, other: "CausalityTracker") -> bool:
        """True when this tracker has seen everything ``other`` has.

        ``EQUAL`` and ``AFTER`` both dominate -- this is the check a
        consumer wants for "have I observed that state?", without
        pattern-matching :class:`~repro.core.order.Ordering` by hand.
        """
        return self.compare(other).dominates

    def stale_or_concurrent(self, other: "CausalityTracker") -> Optional[str]:
        """How this tracker fails to dominate ``other``, if it does.

        Returns ``None`` when this tracker dominates ``other``,
        ``"stale"`` when it is strictly dominated (it has seen only a
        causal prefix of ``other``'s knowledge), and ``"concurrent"``
        when the two trackers have each seen updates the other missed.
        The contract checker uses the distinction to report *why* an
        ordering contract failed, not merely that it did.
        """
        relation = self.compare(other)
        if relation.dominates:
            return None
        return "stale" if relation is Ordering.BEFORE else "concurrent"

    def size_in_bits(self) -> int:
        """Approximate encoded size, for the space benchmarks."""
        raise NotImplementedError

    @property
    def requires_identifier_authority(self) -> bool:
        """Whether forking may fail without connectivity to an id authority."""
        return False

    def to_bytes(self) -> bytes:
        """The tracker's canonical wire envelope.

        Only :class:`KernelTracker` has one; the in-memory baselines
        raise a typed error so the wire sync engine and the durable store
        layer reject them up front instead of inventing a private pickle
        (which would break the canonical-bytes property both rely on).
        """
        from ..core.errors import DurabilityError

        raise DurabilityError(
            f"{type(self).__name__} has no canonical byte form; wire sync "
            f"and durable stores need KernelTracker "
            f"(KernelTracker.factory(<family>))"
        )


class StampTracker(CausalityTracker):
    """Causality tracking with version stamps (the paper's mechanism)."""

    __slots__ = ("stamp",)

    def __init__(self, stamp: Optional[VersionStamp] = None, *, reducing: bool = True) -> None:
        self.stamp = stamp if stamp is not None else VersionStamp.seed(reducing=reducing)

    def updated(self) -> "StampTracker":
        return StampTracker(self.stamp.update())

    def forked(self, *, connected: bool = True) -> Tuple["StampTracker", "StampTracker"]:
        left, right = self.stamp.fork()
        return StampTracker(left), StampTracker(right)

    def joined(self, other: "CausalityTracker") -> "StampTracker":
        if not isinstance(other, StampTracker):
            raise TypeError("cannot join trackers of different kinds")
        return StampTracker(self.stamp.join(other.stamp))

    def compare(self, other: "CausalityTracker") -> Ordering:
        if not isinstance(other, StampTracker):
            raise TypeError("cannot compare trackers of different kinds")
        return self.stamp.compare(other.stamp)

    def size_in_bits(self) -> int:
        return self.stamp.size_in_bits()

    def __repr__(self) -> str:
        return f"StampTracker({self.stamp})"


class ITCTracker(CausalityTracker):
    """Causality tracking with Interval Tree Clocks (the extension)."""

    __slots__ = ("stamp",)

    def __init__(self, stamp: Optional[ITCStamp] = None) -> None:
        self.stamp = stamp if stamp is not None else ITCStamp.seed()

    def updated(self) -> "ITCTracker":
        return ITCTracker(self.stamp.event())

    def forked(self, *, connected: bool = True) -> Tuple["ITCTracker", "ITCTracker"]:
        left, right = self.stamp.fork()
        return ITCTracker(left), ITCTracker(right)

    def joined(self, other: "CausalityTracker") -> "ITCTracker":
        if not isinstance(other, ITCTracker):
            raise TypeError("cannot join trackers of different kinds")
        return ITCTracker(self.stamp.join(other.stamp))

    def compare(self, other: "CausalityTracker") -> Ordering:
        if not isinstance(other, ITCTracker):
            raise TypeError("cannot compare trackers of different kinds")
        return self.stamp.compare(other.stamp)

    def size_in_bits(self) -> int:
        return self.stamp.size_in_bits()

    def __repr__(self) -> str:
        return f"ITCTracker({self.stamp!r})"


class DynamicVVTracker(CausalityTracker):
    """Causality tracking with dynamic version vectors (the baseline).

    Forking needs a fresh replica identifier from the shared
    :class:`IdSource`; with a central source this fails when the requesting
    node is partitioned away from the authority -- the precise limitation the
    paper's mechanism removes.
    """

    __slots__ = ("element", "id_source")

    def __init__(
        self,
        element: Optional[DynamicVVElement] = None,
        *,
        id_source: Optional[IdSource] = None,
    ) -> None:
        self.id_source = id_source if id_source is not None else CentralIdSource()
        if element is None:
            element = DynamicVVElement(self.id_source.allocate(), VersionVector())
        self.element = element

    def updated(self) -> "DynamicVVTracker":
        return DynamicVVTracker(self.element.update(), id_source=self.id_source)

    def forked(self, *, connected: bool = True) -> Tuple["DynamicVVTracker", "DynamicVVTracker"]:
        new_id = self.id_source.allocate(connected=connected)
        left = DynamicVVTracker(self.element, id_source=self.id_source)
        right = DynamicVVTracker(
            DynamicVVElement(new_id, self.element.vector), id_source=self.id_source
        )
        return left, right

    def joined(self, other: "CausalityTracker") -> "DynamicVVTracker":
        if not isinstance(other, DynamicVVTracker):
            raise TypeError("cannot join trackers of different kinds")
        return DynamicVVTracker(
            self.element.merge_from(other.element), id_source=self.id_source
        )

    def compare(self, other: "CausalityTracker") -> Ordering:
        if not isinstance(other, DynamicVVTracker):
            raise TypeError("cannot compare trackers of different kinds")
        return self.element.compare(other.element)

    def size_in_bits(self) -> int:
        return self.element.size_in_bits()

    @property
    def requires_identifier_authority(self) -> bool:
        return self.id_source.requires_connectivity

    def __repr__(self) -> str:
        return f"DynamicVVTracker({self.element!r})"


class KernelTracker(CausalityTracker):
    """Causality tracking through any registered kernel clock family.

    The tracker holds one :class:`~repro.kernel.clocks.KernelClock` and
    translates the tracker vocabulary to the protocol's
    (``updated``/``forked``/``joined`` to ``event``/``fork``/``join``);
    sizes come from ``encoded_size_bits()`` and :meth:`to_bytes` ships the
    clock in the epoch-tagged wire envelope, so replicated metadata is
    self-describing on the wire.

    Use :meth:`factory` to get a zero-argument constructor for
    :class:`~repro.replication.store.StoreReplica`-style
    ``tracker_factory`` parameters.
    """

    __slots__ = ("clock",)

    def __init__(self, clock=None, *, family: str = "version-stamp", **make_kwargs):
        self.clock = clock if clock is not None else kernel.make(family, **make_kwargs)

    @classmethod
    def factory(cls, family: str, **make_kwargs) -> Callable[[], "KernelTracker"]:
        """A no-argument tracker factory for the given clock family."""

        def build() -> "KernelTracker":
            return cls(family=family, **make_kwargs)

        build.__name__ = f"kernel_tracker_{family.replace('-', '_')}"
        return build

    @property
    def family(self) -> str:
        """The registry name of the wrapped clock's family."""
        return self.clock.family

    @property
    def epoch(self) -> int:
        """The re-rooting epoch of the wrapped clock."""
        return self.clock.epoch

    def updated(self) -> "KernelTracker":
        return KernelTracker(self.clock.event())

    def forked(self, *, connected: bool = True) -> Tuple["KernelTracker", "KernelTracker"]:
        left, right = self.clock.fork()
        return KernelTracker(left), KernelTracker(right)

    def joined(self, other: "CausalityTracker") -> "KernelTracker":
        if not isinstance(other, KernelTracker):
            raise TypeError("cannot join trackers of different kinds")
        return KernelTracker(self.clock.join(other.clock))

    def compare(self, other: "CausalityTracker") -> Ordering:
        if not isinstance(other, KernelTracker):
            raise TypeError("cannot compare trackers of different kinds")
        return self.clock.compare(other.clock)

    def size_in_bits(self) -> int:
        return self.clock.encoded_size_bits()

    def with_epoch(self, epoch: int) -> "KernelTracker":
        """The same knowledge re-tagged with another re-rooting epoch."""
        return KernelTracker(self.clock.with_epoch(epoch))

    def to_bytes(self) -> bytes:
        """The clock's epoch-tagged wire envelope."""
        return self.clock.to_bytes()

    @classmethod
    def from_bytes(cls, payload: bytes) -> "KernelTracker":
        """Rebuild a tracker from an envelope produced by :meth:`to_bytes`."""
        return cls(kernel.from_bytes(payload))

    def __repr__(self) -> str:
        return f"KernelTracker({self.clock!r})"
