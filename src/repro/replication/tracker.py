"""Pluggable causality trackers for the replication substrate.

The replication layer (replicas, stores, synchronizers) only needs four
capabilities from whatever mechanism tracks update causality:

* record a local update,
* fork when a new replica is created from an existing one,
* join when two replicas reconcile,
* compare two versions (:class:`~repro.core.order.Ordering`).

:class:`CausalityTracker` captures that contract; the adapters wrap version
stamps (the paper's mechanism and the default), Interval Tree Clocks (the
extension) and dynamic version vectors (the identifier-dependent baseline).
Having the baselines behind the same interface is what lets the end-to-end
replication benchmarks swap the mechanism without touching the scenario.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.order import Ordering
from ..core.stamp import VersionStamp
from ..itc.stamp import ITCStamp
from ..vv.dynamic_vv import DynamicVVElement
from ..vv.id_source import IdSource, CentralIdSource
from ..vv.version_vector import VersionVector

__all__ = [
    "CausalityTracker",
    "StampTracker",
    "ITCTracker",
    "DynamicVVTracker",
]


class CausalityTracker:
    """Abstract interface of a causality tracking mechanism.

    Implementations are immutable: every operation returns new tracker
    instances, matching the value semantics of the underlying mechanisms.
    """

    def updated(self) -> "CausalityTracker":
        """Return the tracker after recording one local update."""
        raise NotImplementedError

    def forked(self, *, connected: bool = True) -> Tuple["CausalityTracker", "CausalityTracker"]:
        """Return two trackers for the two sides of a replica creation."""
        raise NotImplementedError

    def joined(self, other: "CausalityTracker") -> "CausalityTracker":
        """Return the tracker holding the combined knowledge of both."""
        raise NotImplementedError

    def compare(self, other: "CausalityTracker") -> Ordering:
        """Compare update knowledge with another tracker of the same kind."""
        raise NotImplementedError

    def size_in_bits(self) -> int:
        """Approximate encoded size, for the space benchmarks."""
        raise NotImplementedError

    @property
    def requires_identifier_authority(self) -> bool:
        """Whether forking may fail without connectivity to an id authority."""
        return False


class StampTracker(CausalityTracker):
    """Causality tracking with version stamps (the paper's mechanism)."""

    def __init__(self, stamp: Optional[VersionStamp] = None, *, reducing: bool = True) -> None:
        self.stamp = stamp if stamp is not None else VersionStamp.seed(reducing=reducing)

    def updated(self) -> "StampTracker":
        return StampTracker(self.stamp.update())

    def forked(self, *, connected: bool = True) -> Tuple["StampTracker", "StampTracker"]:
        left, right = self.stamp.fork()
        return StampTracker(left), StampTracker(right)

    def joined(self, other: "CausalityTracker") -> "StampTracker":
        if not isinstance(other, StampTracker):
            raise TypeError("cannot join trackers of different kinds")
        return StampTracker(self.stamp.join(other.stamp))

    def compare(self, other: "CausalityTracker") -> Ordering:
        if not isinstance(other, StampTracker):
            raise TypeError("cannot compare trackers of different kinds")
        return self.stamp.compare(other.stamp)

    def size_in_bits(self) -> int:
        return self.stamp.size_in_bits()

    def __repr__(self) -> str:
        return f"StampTracker({self.stamp})"


class ITCTracker(CausalityTracker):
    """Causality tracking with Interval Tree Clocks (the extension)."""

    def __init__(self, stamp: Optional[ITCStamp] = None) -> None:
        self.stamp = stamp if stamp is not None else ITCStamp.seed()

    def updated(self) -> "ITCTracker":
        return ITCTracker(self.stamp.event())

    def forked(self, *, connected: bool = True) -> Tuple["ITCTracker", "ITCTracker"]:
        left, right = self.stamp.fork()
        return ITCTracker(left), ITCTracker(right)

    def joined(self, other: "CausalityTracker") -> "ITCTracker":
        if not isinstance(other, ITCTracker):
            raise TypeError("cannot join trackers of different kinds")
        return ITCTracker(self.stamp.join(other.stamp))

    def compare(self, other: "CausalityTracker") -> Ordering:
        if not isinstance(other, ITCTracker):
            raise TypeError("cannot compare trackers of different kinds")
        return self.stamp.compare(other.stamp)

    def size_in_bits(self) -> int:
        return self.stamp.size_in_bits()

    def __repr__(self) -> str:
        return f"ITCTracker({self.stamp!r})"


class DynamicVVTracker(CausalityTracker):
    """Causality tracking with dynamic version vectors (the baseline).

    Forking needs a fresh replica identifier from the shared
    :class:`IdSource`; with a central source this fails when the requesting
    node is partitioned away from the authority -- the precise limitation the
    paper's mechanism removes.
    """

    def __init__(
        self,
        element: Optional[DynamicVVElement] = None,
        *,
        id_source: Optional[IdSource] = None,
    ) -> None:
        self.id_source = id_source if id_source is not None else CentralIdSource()
        if element is None:
            element = DynamicVVElement(self.id_source.allocate(), VersionVector())
        self.element = element

    def updated(self) -> "DynamicVVTracker":
        return DynamicVVTracker(self.element.update(), id_source=self.id_source)

    def forked(self, *, connected: bool = True) -> Tuple["DynamicVVTracker", "DynamicVVTracker"]:
        new_id = self.id_source.allocate(connected=connected)
        left = DynamicVVTracker(self.element, id_source=self.id_source)
        right = DynamicVVTracker(
            DynamicVVElement(new_id, self.element.vector), id_source=self.id_source
        )
        return left, right

    def joined(self, other: "CausalityTracker") -> "DynamicVVTracker":
        if not isinstance(other, DynamicVVTracker):
            raise TypeError("cannot join trackers of different kinds")
        return DynamicVVTracker(
            self.element.merge_from(other.element), id_source=self.id_source
        )

    def compare(self, other: "CausalityTracker") -> Ordering:
        if not isinstance(other, DynamicVVTracker):
            raise TypeError("cannot compare trackers of different kinds")
        return self.element.compare(other.element)

    def size_in_bits(self) -> int:
        return self.element.size_in_bits()

    @property
    def requires_identifier_authority(self) -> bool:
        return self.id_source.requires_connectivity

    def __repr__(self) -> str:
        return f"DynamicVVTracker({self.element!r})"
