"""Text-based reference implementation of names and version stamps.

This module preserves the *seed* implementation's semantics and algorithms:
binary strings are plain Python ``str`` of ``'0'``/``'1'`` characters, names
are frozensets with O(k·m) all-pairs prefix scans, and Section 6
normalization rewrites one sibling pair at a time, rescanning after every
step.  It exists for two purposes:

* **Differential testing** -- ``tests/core/test_packed_differential.py``
  replays identical ``update``/``fork``/``join``/``sync`` sequences through
  the packed-integer core (:mod:`repro.core.bitstring`/:mod:`~repro.core.names`)
  and through this module, asserting identical normal forms, orders and
  sizes.  Any divergence is a bug in the optimized representation.
* **Perf baseline** -- ``benchmarks/perf_snapshot.py`` measures the packed
  core's throughput *against* this module, so the speedup of the packed
  representation is tracked release over release instead of silently
  regressing.

It is deliberately simple and slow; nothing outside tests and benchmarks
should import it.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Tuple

from .order import Ordering

__all__ = ["RefName", "RefStamp", "ref_maximal", "ref_normalize"]


def ref_maximal(strings: Iterable[str]) -> FrozenSet[str]:
    """Maximal elements under the prefix order (seed algorithm: all pairs)."""
    items = set(strings)
    maximal = set()
    for candidate in items:
        dominated = any(
            candidate != other and other.startswith(candidate) for other in items
        )
        if not dominated:
            maximal.add(candidate)
    return frozenset(maximal)


class RefName:
    """A name as a frozenset of text strings with all-pairs algorithms."""

    __slots__ = ("strings",)

    def __init__(self, strings: Iterable[str] = ()) -> None:
        self.strings: FrozenSet[str] = frozenset(strings)

    @classmethod
    def seed(cls) -> "RefName":
        return cls(("",))

    def dominated_by(self, other: "RefName") -> bool:
        return all(
            any(theirs.startswith(mine) for theirs in other.strings)
            for mine in self.strings
        )

    def join(self, other: "RefName") -> "RefName":
        return RefName(ref_maximal(self.strings | other.strings))

    def concat(self, bit: str) -> "RefName":
        return RefName(s + bit for s in self.strings)

    def total_bits(self) -> int:
        return sum(len(s) for s in self.strings)

    def size_in_bits(self) -> int:
        return sum(len(s) + 1 for s in self.strings) + 1

    def to_text(self) -> str:
        if not self.strings:
            return "{}"
        return "+".join(s or "ε" for s in sorted(self.strings))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RefName):
            return self.strings == other.strings
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("RefName", self.strings))

    def __repr__(self) -> str:
        return f"RefName({self.to_text()!r})"


def _find_sibling_pair(identity: RefName) -> Optional[Tuple[str, str]]:
    """First sibling pair in sorted order, exactly like the seed."""
    strings = sorted(identity.strings)
    seen = set(strings)
    for string in strings:
        if not string:
            continue
        sibling = string[:-1] + ("0" if string[-1] == "1" else "1")
        if sibling in seen:
            zero, one = sorted((string, sibling))
            return zero, one
    return None


def ref_normalize(update: RefName, identity: RefName) -> Tuple[RefName, RefName, int]:
    """Step-at-a-time Section 6 normalization (the seed's rewrite loop)."""
    steps = 0
    while True:
        pair = _find_sibling_pair(identity)
        if pair is None:
            return update, identity, steps
        zero, one = pair
        parent = zero[:-1]
        identity = RefName((identity.strings - {zero, one}) | {parent})
        if zero in update.strings or one in update.strings:
            update = RefName((update.strings - {zero, one}) | {parent})
        steps += 1


class RefStamp:
    """A version stamp over :class:`RefName` components (seed semantics)."""

    __slots__ = ("update_component", "identity", "reducing")

    def __init__(
        self, update: RefName, identity: RefName, *, reducing: bool = True
    ) -> None:
        self.update_component = update
        self.identity = identity
        self.reducing = reducing

    @classmethod
    def seed(cls, *, reducing: bool = True) -> "RefStamp":
        return cls(RefName.seed(), RefName.seed(), reducing=reducing)

    def update(self) -> "RefStamp":
        return RefStamp(self.identity, self.identity, reducing=self.reducing)

    def fork(self) -> Tuple["RefStamp", "RefStamp"]:
        left = RefStamp(
            self.update_component, self.identity.concat("0"), reducing=self.reducing
        )
        right = RefStamp(
            self.update_component, self.identity.concat("1"), reducing=self.reducing
        )
        return left, right

    def join(self, other: "RefStamp") -> "RefStamp":
        update = self.update_component.join(other.update_component)
        identity = self.identity.join(other.identity)
        reducing = self.reducing or other.reducing
        if reducing:
            update, identity, _steps = ref_normalize(update, identity)
        return RefStamp(update, identity, reducing=reducing)

    def sync(self, other: "RefStamp") -> Tuple["RefStamp", "RefStamp"]:
        return self.join(other).fork()

    def leq(self, other: "RefStamp") -> bool:
        return self.update_component.dominated_by(other.update_component)

    def compare(self, other: "RefStamp") -> Ordering:
        forward = self.leq(other)
        backward = other.leq(self)
        if forward and backward:
            return Ordering.EQUAL
        if forward:
            return Ordering.BEFORE
        if backward:
            return Ordering.AFTER
        return Ordering.CONCURRENT

    def size_in_bits(self) -> int:
        return self.update_component.size_in_bits() + self.identity.size_in_bits()

    def to_text(self) -> str:
        return f"[{self.update_component.to_text()} | {self.identity.to_text()}]"

    def __repr__(self) -> str:
        return f"RefStamp({self.to_text()!r})"
