"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch a single base class.  More specific subclasses indicate
which part of the system rejected an input:

* :class:`BitStringError` -- malformed binary strings.
* :class:`NameError_` -- violations of the antichain well-formedness of names.
* :class:`StampError` -- invalid version stamp construction or operations.
* :class:`InvariantViolation` -- a configuration breaks one of the paper's
  invariants (I1, I2 or I3); raised by the invariant checker when asked to
  raise instead of report.
* :class:`FrontierError` -- invalid frontier/configuration manipulation
  (unknown element labels, joining an element with itself, ...).
* :class:`EncodingError` -- serialization or deserialization failures.
* :class:`ReplicationError` -- errors in the replication substrate.
* :class:`SimulationError` -- malformed traces or workload parameters.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "BitStringError",
    "NameError_",
    "StampError",
    "InvariantViolation",
    "FrontierError",
    "EncodingError",
    "ReplicationError",
    "SimulationError",
]


class ReproError(Exception):
    """Base class of every exception raised by the repro library."""


class BitStringError(ReproError, ValueError):
    """A binary string literal or operation is malformed."""


class NameError_(ReproError, ValueError):
    """A name (antichain of binary strings) is not well formed."""


class StampError(ReproError, ValueError):
    """A version stamp is malformed or an operation on it is invalid."""


class InvariantViolation(ReproError, AssertionError):
    """A configuration violates one of the invariants I1, I2 or I3."""

    def __init__(self, invariant: str, message: str) -> None:
        super().__init__(f"{invariant}: {message}")
        self.invariant = invariant
        self.message = message


class FrontierError(ReproError, KeyError):
    """An operation on a frontier refers to unknown or invalid elements."""


class EncodingError(ReproError, ValueError):
    """A stamp, name or configuration could not be (de)serialized."""


class ReplicationError(ReproError, RuntimeError):
    """The replication substrate was used incorrectly."""


class SimulationError(ReproError, ValueError):
    """A trace or workload specification is invalid."""
