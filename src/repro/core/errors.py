"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch a single base class.  More specific subclasses indicate
which part of the system rejected an input:

* :class:`BitStringError` -- malformed binary strings.
* :class:`NameError_` -- violations of the antichain well-formedness of names.
* :class:`StampError` -- invalid version stamp construction or operations.
* :class:`InvariantViolation` -- a configuration breaks one of the paper's
  invariants (I1, I2 or I3); raised by the invariant checker when asked to
  raise instead of report.
* :class:`FrontierError` -- invalid frontier/configuration manipulation
  (unknown element labels, joining an element with itself, ...).
* :class:`EncodingError` -- serialization or deserialization failures.
* :class:`EnvelopeError` -- failures of the kernel wire envelope, with one
  typed subclass per rejection reason (:class:`EnvelopeMagicError`,
  :class:`EnvelopeVersionError`, :class:`EnvelopeTruncatedError`,
  :class:`UnknownClockFamily`); a malformed envelope is always reported as
  one of these, never as a raw ``struct``/``IndexError``.
* :class:`EpochMismatch` -- two clocks from different re-rooting epochs were
  compared or joined (their histories are not directly comparable until the
  straggler is upgraded).
* :class:`ReplicationError` -- errors in the replication substrate.
* :class:`SessionTimeout` -- an anti-entropy session exceeded its
  (adaptive) deadline and was aborted; the per-key transactional rollback
  guarantees the aborted session left no half-merged state behind.
* :class:`DurabilityError` -- a durable store log was misused (unsupported
  tracker kind, unserializable value, backend misconfiguration, ...).
* :class:`LogCorrupt` -- on-disk log or snapshot damage that recovery cannot
  repair by truncating to the last CRC-valid record; damage *behind* the
  valid prefix is reported, not raised (see
  :mod:`repro.durability.recovery`), so this is reserved for structurally
  unreadable artifacts (bad snapshot magic, impossible sequence numbers).
* :class:`FaultInjectionError` -- a fault-injection plan or transport is
  misconfigured (rates outside ``[0, 1]``, malformed outage windows, ...).
* :class:`SimulationError` -- malformed traces or workload parameters.
* :class:`ContractError` -- an ordering contract is malformed or misused
  (unknown kind, missing freshness bound, duplicate names, ...); its
  subclass :class:`repro.contracts.ContractViolation` is the typed
  enforcement failure carrying a machine-readable violation report.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "BitStringError",
    "NameError_",
    "StampError",
    "InvariantViolation",
    "FrontierError",
    "EncodingError",
    "EnvelopeError",
    "EnvelopeMagicError",
    "EnvelopeVersionError",
    "EnvelopeTruncatedError",
    "UnknownClockFamily",
    "EpochMismatch",
    "ReplicationError",
    "SessionTimeout",
    "DurabilityError",
    "LogCorrupt",
    "FaultInjectionError",
    "SimulationError",
    "ContractError",
]


class ReproError(Exception):
    """Base class of every exception raised by the repro library."""


class BitStringError(ReproError, ValueError):
    """A binary string literal or operation is malformed."""


class NameError_(ReproError, ValueError):
    """A name (antichain of binary strings) is not well formed."""


class StampError(ReproError, ValueError):
    """A version stamp is malformed or an operation on it is invalid."""


class InvariantViolation(ReproError, AssertionError):
    """A configuration violates one of the invariants I1, I2 or I3."""

    def __init__(self, invariant: str, message: str) -> None:
        super().__init__(f"{invariant}: {message}")
        self.invariant = invariant
        self.message = message


class FrontierError(ReproError, KeyError):
    """An operation on a frontier refers to unknown or invalid elements."""


class EncodingError(ReproError, ValueError):
    """A stamp, name or configuration could not be (de)serialized."""


class EnvelopeError(EncodingError):
    """The kernel wire envelope is malformed or cannot be honoured."""


class EnvelopeMagicError(EnvelopeError):
    """The payload does not start with the envelope magic bytes."""


class EnvelopeVersionError(EnvelopeError):
    """The envelope declares a format version this library cannot decode."""


class EnvelopeTruncatedError(EnvelopeError):
    """The envelope (or its payload) is shorter than it declares."""


class UnknownClockFamily(EnvelopeError):
    """No registered clock family matches the requested name or wire tag."""


class EpochMismatch(ReproError, ValueError):
    """Two clocks from different re-rooting epochs met in compare/join.

    Re-rooting rewrites every live stamp onto fresh identifiers; the epoch
    tag records how many frontier-wide re-roots a clock has been through.
    Clocks from different epochs speak about different identifier spaces,
    so comparing or joining them directly would be meaningless -- the
    straggler must first be upgraded to the newer epoch.  The replication
    layer performs that upgrade automatically (epoch bumps only happen at
    common knowledge, so older-epoch knowledge is causally dominated --
    see :meth:`repro.replication.store.StoreReplica._merge_key_states`);
    this exception is what the raw kernel API raises when a caller mixes
    epochs outside that protocol.
    """

    def __init__(self, mine: int, theirs: int, operation: str = "compare") -> None:
        super().__init__(
            f"cannot {operation} clocks from different re-rooting epochs "
            f"({mine} vs {theirs}); upgrade the older clock first"
        )
        self.mine = mine
        self.theirs = theirs
        self.operation = operation


class ReplicationError(ReproError, RuntimeError):
    """The replication substrate was used incorrectly."""


class SessionTimeout(ReplicationError):
    """An anti-entropy session exceeded its deadline and was aborted.

    Raised by the session driver (never by the engine's synchronous
    path, which has no clock) after it threw
    :class:`~repro.replication.synchronizer.SessionAbort` into the
    session generator.  By the time this propagates, the generator has
    already rolled both replicas back to their pre-session state via the
    per-key transactional snapshots -- a timed-out session never leaves
    a half-merged key behind, so retrying against the same or a
    different peer (hedging) is always safe.
    """

    def __init__(
        self, initiator: str, peer: str, deadline: float, elapsed: float
    ) -> None:
        super().__init__(
            f"session {initiator!r} -> {peer!r} aborted after "
            f"{elapsed:.3f}s of virtual time (deadline {deadline:.3f}s)"
        )
        self.initiator = initiator
        self.peer = peer
        self.deadline = deadline
        self.elapsed = elapsed


class DurabilityError(ReproError, RuntimeError):
    """A durable store log was misconfigured or misused."""


class LogCorrupt(DurabilityError, EncodingError):
    """An on-disk log or snapshot is structurally unreadable.

    Raised when recovery cannot even delimit a valid prefix: the snapshot
    fails its magic/version/CRC checks, or the record framing is damaged
    in a way truncation cannot resolve.  Damage *past* a CRC-valid prefix
    of the journal is handled by truncate-and-report instead (the torn
    tail is re-synced by anti-entropy, never silently accepted).
    """


class FaultInjectionError(ReproError, ValueError):
    """A fault-injection plan or faulty transport is misconfigured."""


class SimulationError(ReproError, ValueError):
    """A trace or workload specification is invalid."""


class ContractError(ReproError, ValueError):
    """An ordering contract is malformed or used incorrectly.

    Raised by :mod:`repro.contracts` for specification problems (unknown
    contract kind, a freshness contract without its event bound, duplicate
    contract names, recording an operation no contract mentions).  The
    *enforcement* failure -- a contract that was checked and found broken
    -- is the subclass :class:`repro.contracts.ContractViolation`, which
    carries the machine-readable violation report.
    """
