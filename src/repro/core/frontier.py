"""Frontier configurations of stamped elements.

The paper describes the system as a *configuration*: a mapping from the
labels of currently-coexisting elements (the frontier) to their version
stamps, transformed by ``update``, ``fork`` and ``join`` (Definition 4.3).
:class:`Frontier` implements exactly that calculus and is the basis of the
tests, the exhaustive model checker and the figure reconstructions.

Element labels are arbitrary strings supplied by the caller (e.g. ``"a"``,
``"b1"``).  Operations return the labels of the elements they create so
callers can follow the paper's naming (``update(a)`` produces ``a'``) or use
their own scheme.

The frontier itself never needs a global view: every transformation only
reads and writes the stamps of the elements it names, mirroring the locality
argument of Section 4.  Pairwise comparisons are cached per label pair
(stamps are immutable) and invalidated only for the labels a transformation
touches, so obsolescence pruning, :meth:`Frontier.ordering_matrix` and
:meth:`Frontier.dominating_elements` recompare just the pairs an operation
actually changed.

Examples
--------
>>> from repro.core.frontier import Frontier
>>> frontier = Frontier.initial("a")
>>> frontier.fork("a", "b", "c")
('b', 'c')
>>> frontier.update("c", "c'")
"c'"
>>> frontier.compare("b", "c'").name
'CONCURRENT'
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from .errors import FrontierError
from .order import Ordering
from .stamp import VersionStamp

__all__ = ["Frontier"]


class Frontier:
    """A mutable configuration mapping element labels to version stamps.

    Parameters
    ----------
    stamps:
        Initial mapping of labels to stamps.  Use :meth:`initial` to start
        from the paper's one-element seed configuration.
    reducing:
        Flavour used for stamps created by :meth:`initial`; stamps supplied
        explicitly keep their own flavour.
    """

    def __init__(
        self,
        stamps: Optional[Mapping[str, VersionStamp]] = None,
        *,
        reducing: bool = True,
    ) -> None:
        self._stamps: Dict[str, VersionStamp] = dict(stamps or {})
        self._reducing = reducing
        self._op_log: List[Tuple[str, Tuple[str, ...]]] = []
        # Pairwise-comparison cache: label -> {other label -> Ordering}.
        # Stamps are immutable, so an entry stays valid until one of its two
        # labels is removed or rebound by a transformation; obsolescence
        # pruning and repeated ordering_matrix() calls then only recompare
        # the pairs an operation actually touched.
        self._cmp_cache: Dict[str, Dict[str, Ordering]] = {}

    # -- constructors -------------------------------------------------

    @classmethod
    def initial(cls, label: str = "a", *, reducing: bool = True) -> "Frontier":
        """The paper's initial configuration ``{label ↦ (ε, ε)}``."""
        frontier = cls(reducing=reducing)
        frontier._stamps[label] = VersionStamp.seed(reducing=reducing)
        frontier._op_log.append(("seed", (label,)))
        return frontier

    # -- mapping protocol -----------------------------------------------

    def __len__(self) -> int:
        return len(self._stamps)

    def __iter__(self) -> Iterator[str]:
        return iter(self._stamps)

    def __contains__(self, label: object) -> bool:
        return label in self._stamps

    def __getitem__(self, label: str) -> VersionStamp:
        return self.stamp_of(label)

    def labels(self) -> List[str]:
        """The labels of the coexisting elements, in insertion order."""
        return list(self._stamps)

    def stamps(self) -> Dict[str, VersionStamp]:
        """A copy of the label → stamp mapping."""
        return dict(self._stamps)

    def stamp_of(self, label: str) -> VersionStamp:
        """The stamp of ``label``.

        Raises
        ------
        FrontierError
            If the label does not belong to the current frontier.
        """
        try:
            return self._stamps[label]
        except KeyError:
            raise FrontierError(
                f"element {label!r} is not part of the current frontier "
                f"(elements: {sorted(self._stamps)})"
            ) from None

    def operation_log(self) -> List[Tuple[str, Tuple[str, ...]]]:
        """The sequence of operations applied so far (for replay/debugging)."""
        return list(self._op_log)

    def __repr__(self) -> str:
        body = ", ".join(f"{label}: {stamp}" for label, stamp in self._stamps.items())
        return f"Frontier({{{body}}})"

    # -- transformations of Definition 4.3 --------------------------------

    def _fresh_label(self, base: str) -> str:
        candidate = base
        while candidate in self._stamps:
            candidate += "'"
        return candidate

    def _invalidate(self, *labels: str) -> None:
        """Drop cached comparisons involving ``labels`` (removed or rebound)."""
        cache = self._cmp_cache
        for label in labels:
            cache.pop(label, None)
        for row in cache.values():
            for label in labels:
                row.pop(label, None)

    def update(self, label: str, new_label: Optional[str] = None) -> str:
        """Apply ``update(label)``; the element is renamed to ``new_label``.

        When ``new_label`` is omitted a prime is appended to the old label
        (``a`` becomes ``a'``), following the paper's convention.  Returns
        the label of the updated element.
        """
        stamp = self.stamp_of(label)
        target = new_label if new_label is not None else self._fresh_label(label + "'")
        if target != label and target in self._stamps:
            raise FrontierError(f"element {target!r} already exists in the frontier")
        del self._stamps[label]
        self._stamps[target] = stamp.update()
        self._invalidate(label, target)
        self._op_log.append(("update", (label, target)))
        return target

    def fork(
        self,
        label: str,
        left_label: Optional[str] = None,
        right_label: Optional[str] = None,
    ) -> Tuple[str, str]:
        """Apply ``fork(label)`` producing two elements; returns their labels."""
        stamp = self.stamp_of(label)
        left = left_label if left_label is not None else self._fresh_label(label + "0")
        del self._stamps[label]
        right = (
            right_label if right_label is not None else self._fresh_label(label + "1")
        )
        if left == right:
            raise FrontierError("fork children must have distinct labels")
        for target in (left, right):
            if target in self._stamps:
                raise FrontierError(
                    f"element {target!r} already exists in the frontier"
                )
        left_stamp, right_stamp = stamp.fork()
        self._stamps[left] = left_stamp
        self._stamps[right] = right_stamp
        self._invalidate(label, left, right)
        self._op_log.append(("fork", (label, left, right)))
        return left, right

    def join(
        self, first: str, second: str, new_label: Optional[str] = None
    ) -> str:
        """Apply ``join(first, second)``; returns the label of the result."""
        if first == second:
            raise FrontierError("cannot join an element with itself")
        first_stamp = self.stamp_of(first)
        second_stamp = self.stamp_of(second)
        target = (
            new_label
            if new_label is not None
            else self._fresh_label(f"{first}{second}")
        )
        del self._stamps[first]
        del self._stamps[second]
        if target in self._stamps:
            raise FrontierError(f"element {target!r} already exists in the frontier")
        self._stamps[target] = first_stamp.join(second_stamp)
        self._invalidate(first, second, target)
        self._op_log.append(("join", (first, second, target)))
        return target

    def sync(
        self,
        first: str,
        second: str,
        left_label: Optional[str] = None,
        right_label: Optional[str] = None,
    ) -> Tuple[str, str]:
        """Synchronize two elements (join followed by fork, Section 1.1)."""
        joined = self.join(first, second)
        return self.fork(
            joined,
            left_label if left_label is not None else first,
            right_label if right_label is not None else second,
        )

    # -- queries ------------------------------------------------------------

    def compare(self, first: str, second: str) -> Ordering:
        """Compare two frontier elements by their update knowledge.

        Results are cached per label pair (stamps are immutable); the cache
        is invalidated only for the labels a transformation touches.
        """
        row = self._cmp_cache.get(first)
        if row is not None:
            cached = row.get(second)
            if cached is not None:
                return cached
        result = self.stamp_of(first).compare(self.stamp_of(second))
        if row is None:
            row = self._cmp_cache.setdefault(first, {})
        row[second] = result
        return result

    def equivalent(self, first: str, second: str) -> bool:
        """True when the two elements have seen exactly the same updates."""
        return self.compare(first, second) is Ordering.EQUAL

    def obsolete(self, first: str, second: str) -> bool:
        """True when ``first`` is obsolete relative to ``second``."""
        return self.compare(first, second) is Ordering.BEFORE

    def inconsistent(self, first: str, second: str) -> bool:
        """True when the two elements are mutually inconsistent."""
        return self.compare(first, second) is Ordering.CONCURRENT

    def ordering_matrix(self) -> Dict[Tuple[str, str], Ordering]:
        """All pairwise comparisons of the current frontier.

        The result maps ordered pairs ``(x, y)`` with ``x != y`` to the
        ordering of ``x`` relative to ``y``; used to cross-check whole
        frontiers against the causal-history oracle.
        """
        labels = self.labels()
        matrix: Dict[Tuple[str, str], Ordering] = {}
        for x in labels:
            for y in labels:
                if x != y:
                    matrix[(x, y)] = self.compare(x, y)
        return matrix

    def dominating_elements(self) -> List[str]:
        """Labels of elements not strictly dominated by any other element.

        These are the maximal versions of the frontier -- the candidates a
        reconciliation procedure has to merge.
        """
        labels = self.labels()
        maximal = []
        for x in labels:
            if not any(
                self.compare(x, y) is Ordering.BEFORE for y in labels if y != x
            ):
                maximal.append(x)
        return maximal

    def total_size_in_bits(self) -> int:
        """Sum of the encoded sizes of every stamp in the frontier."""
        return sum(stamp.size_in_bits() for stamp in self._stamps.values())

    def copy(self) -> "Frontier":
        """An independent copy of the frontier (stamps are immutable)."""
        clone = Frontier(self._stamps, reducing=self._reducing)
        clone._op_log = list(self._op_log)
        clone._cmp_cache = {label: dict(row) for label, row in self._cmp_cache.items()}
        return clone
