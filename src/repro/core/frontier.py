"""Frontier configurations of stamped elements.

The paper describes the system as a *configuration*: a mapping from the
labels of currently-coexisting elements (the frontier) to their version
stamps, transformed by ``update``, ``fork`` and ``join`` (Definition 4.3).
:class:`Frontier` implements exactly that calculus and is the basis of the
tests, the exhaustive model checker and the figure reconstructions.

Element labels are arbitrary strings supplied by the caller (e.g. ``"a"``,
``"b1"``).  Operations return the labels of the elements they create so
callers can follow the paper's naming (``update(a)`` produces ``a'``) or use
their own scheme.

The frontier itself never needs a global view: every transformation only
reads and writes the stamps of the elements it names, mirroring the locality
argument of Section 4.  Pairwise comparisons are cached per label pair
(stamps are immutable) and invalidated only for the labels a transformation
touches, so obsolescence pruning, :meth:`Frontier.ordering_matrix` and
:meth:`Frontier.dominating_elements` recompare just the pairs an operation
actually changed.

Examples
--------
>>> from repro.core.frontier import Frontier
>>> frontier = Frontier.initial("a")
>>> frontier.fork("a", "b", "c")
('b', 'c')
>>> frontier.update("c", "c'")
"c'"
>>> frontier.compare("b", "c'").name
'CONCURRENT'
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from .errors import FrontierError
from .order import Ordering
from .reroot import RerootResult, reroot_stamps
from .stamp import VersionStamp

__all__ = ["Frontier"]


class Frontier:
    """A mutable configuration mapping element labels to version stamps.

    Parameters
    ----------
    stamps:
        Initial mapping of labels to stamps.  Use :meth:`initial` to start
        from the paper's one-element seed configuration.
    reducing:
        Flavour used for stamps created by :meth:`initial`; stamps supplied
        explicitly keep their own flavour.
    reroot_threshold:
        When set, the re-rooting garbage collector (:mod:`repro.core.reroot`)
        fires automatically after any transformation that pushes the encoded
        size of any live stamp past this many bits.  (Size, not string
        depth, is the right trigger: on sibling-starved sync chains depth
        grows one bit per sync while the *number* of strings compounds
        exponentially, so a depth trigger would fire long after stamps are
        astronomically wide.)  The automatic trigger additionally waits for
        a doubling of the size the last re-root attained, so a threshold
        tuned at or below the frontier's achievable floor degrades
        gracefully instead of re-collecting on every operation.  ``None``
        (the default) keeps the paper's plain Section 4/6 behaviour.
    """

    def __init__(
        self,
        stamps: Optional[Mapping[str, VersionStamp]] = None,
        *,
        reducing: bool = True,
        reroot_threshold: Optional[int] = None,
    ) -> None:
        if reroot_threshold is not None and reroot_threshold < 1:
            raise FrontierError("reroot_threshold must be at least 1")
        self._stamps: Dict[str, VersionStamp] = dict(stamps or {})
        self._reducing = reducing
        self._reroot_threshold = reroot_threshold
        self._reroots_performed = 0
        # The re-rooting epoch of every live stamp.  A frontier owns its
        # whole replica group, so all its stamps always share one epoch;
        # each reroot() bumps it.  The kernel's wire envelope carries this
        # tag so a stamp that leaves the frontier can be recognized as a
        # straggler after later re-roots (the decentralized lazy-upgrade
        # protocol is the open roadmap item this field enables).
        self._epoch = 0
        self._last_reroot: Optional[RerootResult] = None
        # Largest stamp left by the most recent re-root (0 before any).
        # When a threshold is unattainably small for the frontier's
        # knowledge structure, this floor keeps the automatic trigger from
        # re-collecting after every operation: see :meth:`_maybe_reroot`.
        self._reroot_floor = 0
        self._op_log: List[Tuple[str, Tuple[str, ...]]] = []
        # Pairwise-comparison cache: label -> {other label -> Ordering}.
        # Stamps are immutable, so an entry stays valid until one of its two
        # labels is removed or rebound by a transformation; obsolescence
        # pruning and repeated ordering_matrix() calls then only recompare
        # the pairs an operation actually touched.
        self._cmp_cache: Dict[str, Dict[str, Ordering]] = {}
        # Caller-supplied stamps may already be oversized.  Collecting once
        # here establishes the invariant the per-operation trigger relies
        # on: between operations every live stamp fits the threshold, so
        # only the stamps an operation just produced need re-checking.
        if reroot_threshold is not None and self._stamps:
            self._maybe_reroot(*self._stamps)

    # -- constructors -------------------------------------------------

    @classmethod
    def initial(
        cls,
        label: str = "a",
        *,
        reducing: bool = True,
        reroot_threshold: Optional[int] = None,
    ) -> "Frontier":
        """The paper's initial configuration ``{label ↦ (ε, ε)}``."""
        frontier = cls(reducing=reducing, reroot_threshold=reroot_threshold)
        frontier._stamps[label] = VersionStamp.seed(reducing=reducing)
        frontier._op_log.append(("seed", (label,)))
        return frontier

    # -- mapping protocol -----------------------------------------------

    def __len__(self) -> int:
        return len(self._stamps)

    def __iter__(self) -> Iterator[str]:
        return iter(self._stamps)

    def __contains__(self, label: object) -> bool:
        return label in self._stamps

    def __getitem__(self, label: str) -> VersionStamp:
        return self.stamp_of(label)

    def labels(self) -> List[str]:
        """The labels of the coexisting elements, in insertion order."""
        return list(self._stamps)

    def stamps(self) -> Dict[str, VersionStamp]:
        """A copy of the label → stamp mapping."""
        return dict(self._stamps)

    def stamp_of(self, label: str) -> VersionStamp:
        """The stamp of ``label``.

        Raises
        ------
        FrontierError
            If the label does not belong to the current frontier.
        """
        try:
            return self._stamps[label]
        except KeyError:
            raise FrontierError(
                f"element {label!r} is not part of the current frontier "
                f"(elements: {sorted(self._stamps)})"
            ) from None

    def operation_log(self) -> List[Tuple[str, Tuple[str, ...]]]:
        """The sequence of operations applied so far (for replay/debugging)."""
        return list(self._op_log)

    def __repr__(self) -> str:
        body = ", ".join(f"{label}: {stamp}" for label, stamp in self._stamps.items())
        return f"Frontier({{{body}}})"

    # -- transformations of Definition 4.3 --------------------------------

    def _fresh_label(self, base: str) -> str:
        candidate = base
        while candidate in self._stamps:
            candidate += "'"
        return candidate

    def _invalidate(self, *labels: str) -> None:
        """Drop cached comparisons involving ``labels`` (removed or rebound)."""
        cache = self._cmp_cache
        for label in labels:
            cache.pop(label, None)
        for row in cache.values():
            for label in labels:
                row.pop(label, None)

    def update(self, label: str, new_label: Optional[str] = None) -> str:
        """Apply ``update(label)``; the element is renamed to ``new_label``.

        When ``new_label`` is omitted a prime is appended to the old label
        (``a`` becomes ``a'``), following the paper's convention.  Returns
        the label of the updated element.
        """
        stamp = self.stamp_of(label)
        target = new_label if new_label is not None else self._fresh_label(label + "'")
        if target != label and target in self._stamps:
            raise FrontierError(f"element {target!r} already exists in the frontier")
        del self._stamps[label]
        self._stamps[target] = stamp.update()
        self._invalidate(label, target)
        self._op_log.append(("update", (label, target)))
        self._maybe_reroot(target)
        return target

    def fork(
        self,
        label: str,
        left_label: Optional[str] = None,
        right_label: Optional[str] = None,
    ) -> Tuple[str, str]:
        """Apply ``fork(label)`` producing two elements; returns their labels."""
        stamp = self.stamp_of(label)
        left = left_label if left_label is not None else self._fresh_label(label + "0")
        del self._stamps[label]
        right = (
            right_label if right_label is not None else self._fresh_label(label + "1")
        )
        if left == right:
            raise FrontierError("fork children must have distinct labels")
        for target in (left, right):
            if target in self._stamps:
                raise FrontierError(
                    f"element {target!r} already exists in the frontier"
                )
        left_stamp, right_stamp = stamp.fork()
        self._stamps[left] = left_stamp
        self._stamps[right] = right_stamp
        self._invalidate(label, left, right)
        self._op_log.append(("fork", (label, left, right)))
        self._maybe_reroot(left, right)
        return left, right

    def join(
        self, first: str, second: str, new_label: Optional[str] = None
    ) -> str:
        """Apply ``join(first, second)``; returns the label of the result."""
        if first == second:
            raise FrontierError("cannot join an element with itself")
        first_stamp = self.stamp_of(first)
        second_stamp = self.stamp_of(second)
        target = (
            new_label
            if new_label is not None
            else self._fresh_label(f"{first}{second}")
        )
        del self._stamps[first]
        del self._stamps[second]
        if target in self._stamps:
            raise FrontierError(f"element {target!r} already exists in the frontier")
        self._stamps[target] = first_stamp.join(second_stamp)
        self._invalidate(first, second, target)
        self._op_log.append(("join", (first, second, target)))
        self._maybe_reroot(target)
        return target

    def sync(
        self,
        first: str,
        second: str,
        left_label: Optional[str] = None,
        right_label: Optional[str] = None,
    ) -> Tuple[str, str]:
        """Synchronize two elements (join followed by fork, Section 1.1)."""
        joined = self.join(first, second)
        return self.fork(
            joined,
            left_label if left_label is not None else first,
            right_label if right_label is not None else second,
        )

    # -- re-rooting garbage collection -------------------------------------

    @property
    def reroot_threshold(self) -> Optional[int]:
        """The automatic re-root trigger (largest stamp, in encoded bits)."""
        return self._reroot_threshold

    @property
    def reroots_performed(self) -> int:
        """How many re-roots this frontier has executed."""
        return self._reroots_performed

    @property
    def epoch(self) -> int:
        """The re-rooting epoch shared by every live stamp (bumped by reroot)."""
        return self._epoch

    @property
    def last_reroot(self) -> Optional[RerootResult]:
        """Statistics of the most recent re-root, if one has happened."""
        return self._last_reroot

    def max_stamp_bits(self) -> int:
        """Encoded size of the largest live stamp, in bits.

        This is the growth metric the automatic re-root watches: sync
        chains that starve the Section 6 sibling collapse compound the
        *number* of strings per stamp (the depth only creeps up one bit per
        sync), so encoded size is the quantity that explodes -- and the one
        the threshold bounds.
        """
        if not self._stamps:
            return 0
        return max(stamp.size_in_bits() for stamp in self._stamps.values())

    def _maybe_reroot(self, *labels: str) -> None:
        """Fire the automatic re-root if one of ``labels`` is oversized.

        Only the stamps an operation just produced can newly exceed the
        trigger size (every other stamp already fit it after the previous
        operation -- the constructor establishes the base case), so the
        trigger checks those alone instead of rescanning the frontier.

        A re-root cannot shrink stamps below what the frontier's knowledge
        structure needs, so a threshold at or below that floor would
        otherwise re-collect after nearly every operation.  The trigger is
        therefore ``max(threshold, 2 x floor)``: collections only fire
        after a doubling of the last attained floor, keeping them amortized
        in every regime (including a threshold tuned close to the floor)
        while observable stamp sizes stay bounded by the trigger -- at most
        twice the threshold, since ``floor <= threshold`` whenever the
        threshold is attainable at all.
        """
        threshold = self._reroot_threshold
        if threshold is None:
            return
        trigger = max(threshold, 2 * self._reroot_floor)
        stamps = self._stamps
        for label in labels:
            stamp = stamps.get(label)
            if stamp is not None and stamp.size_in_bits() > trigger:
                self.reroot()
                return

    def reroot(self) -> RerootResult:
        """Garbage-collect the frontier by re-rooting every live stamp.

        The causally-dominated common past is discarded and the surviving
        knowledge regions are re-encoded on fresh short bitstrings
        (:func:`repro.core.reroot.reroot_stamps`).  Labels are untouched and
        every pairwise ordering among live elements is preserved, so cached
        comparisons held by *callers* stay valid; the frontier still drops
        its own comparison cache, as the conservative choice for an
        operation that rebinds every stamp.  The operation log records the
        re-root so replays see it.
        """
        result = reroot_stamps(self._stamps)
        self._stamps.update(result.stamps)
        self._cmp_cache.clear()
        self._reroots_performed += 1
        self._epoch += 1
        self._last_reroot = result
        self._reroot_floor = max(
            stamp.size_in_bits() for stamp in result.stamps.values()
        )
        self._op_log.append(("reroot", tuple(self._stamps)))
        return result

    # -- queries ------------------------------------------------------------

    def compare(self, first: str, second: str) -> Ordering:
        """Compare two frontier elements by their update knowledge.

        Results are cached per label pair (stamps are immutable); the cache
        is invalidated only for the labels a transformation touches.
        """
        row = self._cmp_cache.get(first)
        if row is not None:
            cached = row.get(second)
            if cached is not None:
                return cached
        result = self.stamp_of(first).compare(self.stamp_of(second))
        if row is None:
            row = self._cmp_cache.setdefault(first, {})
        row[second] = result
        return result

    def equivalent(self, first: str, second: str) -> bool:
        """True when the two elements have seen exactly the same updates."""
        return self.compare(first, second) is Ordering.EQUAL

    def obsolete(self, first: str, second: str) -> bool:
        """True when ``first`` is obsolete relative to ``second``."""
        return self.compare(first, second) is Ordering.BEFORE

    def inconsistent(self, first: str, second: str) -> bool:
        """True when the two elements are mutually inconsistent."""
        return self.compare(first, second) is Ordering.CONCURRENT

    def ordering_matrix(self) -> Dict[Tuple[str, str], Ordering]:
        """All pairwise comparisons of the current frontier.

        The result maps ordered pairs ``(x, y)`` with ``x != y`` to the
        ordering of ``x`` relative to ``y``; used to cross-check whole
        frontiers against the causal-history oracle.
        """
        labels = self.labels()
        matrix: Dict[Tuple[str, str], Ordering] = {}
        for x in labels:
            for y in labels:
                if x != y:
                    matrix[(x, y)] = self.compare(x, y)
        return matrix

    def dominating_elements(self) -> List[str]:
        """Labels of elements not strictly dominated by any other element.

        These are the maximal versions of the frontier -- the candidates a
        reconciliation procedure has to merge.
        """
        labels = self.labels()
        maximal = []
        for x in labels:
            if not any(
                self.compare(x, y) is Ordering.BEFORE for y in labels if y != x
            ):
                maximal.append(x)
        return maximal

    def total_size_in_bits(self) -> int:
        """Sum of the encoded sizes of every stamp in the frontier."""
        return sum(stamp.size_in_bits() for stamp in self._stamps.values())

    def copy(self) -> "Frontier":
        """An independent copy of the frontier (stamps are immutable)."""
        # The threshold is installed after construction: the constructor's
        # oversized-input collection must not run on a faithful copy.
        clone = Frontier(self._stamps, reducing=self._reducing)
        clone._reroot_threshold = self._reroot_threshold
        clone._op_log = list(self._op_log)
        clone._cmp_cache = {label: dict(row) for label, row in self._cmp_cache.items()}
        clone._reroots_performed = self._reroots_performed
        clone._epoch = self._epoch
        clone._last_reroot = self._last_reroot
        clone._reroot_floor = self._reroot_floor
        return clone
