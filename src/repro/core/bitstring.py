"""Finite binary strings with the prefix order, packed into machine integers.

This module implements the poset *S* of Section 4 of the paper: the set of
all finite binary strings (sequences over ``{0, 1}``) ordered by

    ``r ⊑ s  iff  r is a prefix of s``.

The empty string ``ε`` is the bottom element of the order.  Two strings that
are not related by the prefix order are *incomparable* (written ``r ∥ s`` in
the paper).

Representation
--------------
A string ``b_0 b_1 ... b_{k-1}`` is stored as the single integer

    ``code = 1 b_0 b_1 ... b_{k-1}``  (binary, sentinel bit first)

i.e. the payload bits with a leading 1 *sentinel* bit.  The sentinel makes
the encoding injective (it preserves leading zeros and the length is
recoverable as ``code.bit_length() - 1``), so one ``int`` carries the whole
value.  This turns every hot operation into one or two integer instructions:

===================  ===========================  ======================
operation            packed implementation         complexity
===================  ===========================  ======================
``append(b)``        ``code << 1 | b``             O(1)
``parent()``         ``code >> 1``                 O(1)
``sibling()``        ``code ^ 1``                  O(1)
``last_bit()``       ``code & 1``                  O(1)
``is_prefix_of``     shift-and-compare             O(1) word ops
``common_prefix``    align, xor, ``bit_length``    O(1) word ops
``==`` / ``hash``    integer compare / lazy hash   O(1)
===================  ===========================  ======================

(The seed implementation stored ``'0'``/``'1'`` character strings; every one
of the operations above was O(k) there, and prefix tests allocated.)

Instances of length ≤ ``_INTERN_MAX_LEN`` are interned in a per-process
cache, so the short strings that dominate real frontiers are shared and
compare by identity.  The hash is computed lazily on first use and cached.

:class:`BitString` values are immutable, hashable and totally ordered
*lexicographically* (so they can live in sorted containers and have a
canonical display order); the *prefix* partial order of the paper is exposed
through :meth:`BitString.is_prefix_of`, :meth:`BitString.comparable` and
friends, not through ``<``/``>``.

Examples
--------
>>> from repro.core.bitstring import BitString
>>> BitString("01").is_prefix_of(BitString("011"))
True
>>> BitString("01").comparable(BitString("00"))
False
>>> BitString.empty().is_prefix_of(BitString("10"))
True
>>> BitString("0") + BitString("1")
BitString('01')
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple, Union

from .errors import BitStringError

__all__ = ["BitString", "Bit", "EMPTY"]

#: A single bit, represented as the integer 0 or 1.
Bit = int

_VALID_CHARS = frozenset("01")

#: Strings up to this length are interned (2^(n+1) - 1 cache entries).
_INTERN_MAX_LEN = 8
_INTERN_LIMIT = 1 << (_INTERN_MAX_LEN + 1)


class BitString:
    """An immutable finite binary string packed into one integer.

    Parameters
    ----------
    bits:
        Either a string of ``'0'``/``'1'`` characters, an iterable of
        integers 0/1, or another :class:`BitString` (shared, as values are
        immutable).

    Notes
    -----
    Equality and hashing are by value; the hash is computed lazily and
    cached.  Short strings are interned, so identity comparison is a valid
    fast path for them.
    """

    __slots__ = ("_code", "_hash", "_text")

    def __new__(
        cls, bits: Union[str, Iterable[Bit], "BitString"] = ""
    ) -> "BitString":
        if isinstance(bits, BitString):
            return bits
        if isinstance(bits, str):
            if not set(bits) <= _VALID_CHARS:
                raise BitStringError(
                    f"binary string may only contain '0' and '1': {bits!r}"
                )
            code = int("1" + bits, 2) if bits else 1
        else:
            code = 1
            for bit in bits:
                if bit not in (0, 1):
                    raise BitStringError(f"bits must be 0 or 1, got {bit!r}")
                code = (code << 1) | bit
        return cls._from_code(code)

    @classmethod
    def _from_code(cls, code: int) -> "BitString":
        """Internal factory from a sentinel-prefixed packed code."""
        if code < _INTERN_LIMIT:
            cached = _INTERNED.get(code)
            if cached is not None:
                return cached
        self = object.__new__(cls)
        object.__setattr__(self, "_code", code)
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_text", None)
        if code < _INTERN_LIMIT:
            _INTERNED[code] = self
        return self

    # -- constructors -------------------------------------------------

    @classmethod
    def empty(cls) -> "BitString":
        """Return the empty string ``ε`` (bottom of the prefix order)."""
        return _EMPTY

    @classmethod
    def from_bits(cls, bits: Iterable[Bit]) -> "BitString":
        """Build a bit string from an iterable of 0/1 integers."""
        return cls(bits)

    @classmethod
    def parse(cls, text: str) -> "BitString":
        """Parse a textual binary string such as ``"0110"``.

        The paper's ``ε`` (or an empty string) denotes the empty bit string.
        """
        if text in ("ε", "e", ""):
            return _EMPTY
        return cls(text)

    # -- immutability -------------------------------------------------

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("BitString instances are immutable")

    def __delattr__(self, name: str) -> None:
        raise AttributeError("BitString instances are immutable")

    # -- basic protocol -----------------------------------------------

    def __len__(self) -> int:
        return self._code.bit_length() - 1

    def __iter__(self) -> Iterator[Bit]:
        code = self._code
        return (
            (code >> shift) & 1 for shift in range(code.bit_length() - 2, -1, -1)
        )

    def __getitem__(self, index) -> Union[Bit, "BitString"]:
        length = self._code.bit_length() - 1
        if isinstance(index, slice):
            start, stop, step = index.indices(length)
            if step == 1 and start <= stop:
                # Contiguous slice: mask the payload bits out directly.
                segment = (self._code >> (length - stop)) & ((1 << (stop - start)) - 1)
                return BitString._from_code(segment | (1 << (stop - start)))
            bits = [self[position] for position in range(start, stop, step)]
            return BitString(bits)
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError("BitString index out of range")
        return (self._code >> (length - 1 - index)) & 1

    def __bool__(self) -> bool:
        """A bit string is falsy only when it is the empty string."""
        return self._code != 1

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(("BitString", self._code))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BitString):
            return self._code == other._code
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        if isinstance(other, BitString):
            return self._code != other._code
        return NotImplemented

    def __lt__(self, other: "BitString") -> bool:
        """Lexicographic order used only for canonical sorting and display.

        This matches the paper's presentation order (``00+01+1``); it is not
        the prefix order, which is partial and exposed through
        :meth:`is_prefix_of` and friends.  A proper prefix sorts before its
        extensions (trie pre-order), which is what makes single-scan
        normalization in :mod:`repro.core.names` possible.
        """
        if not isinstance(other, BitString):
            return NotImplemented
        a, b = self._code, other._code
        la, lb = a.bit_length(), b.bit_length()
        if la == lb:
            return a < b
        if la < lb:
            prefix = b >> (lb - la)
            # Equal prefixes mean self is a proper prefix of other: smaller.
            return a <= prefix
        prefix = a >> (la - lb)
        return prefix < b

    def __le__(self, other: "BitString") -> bool:
        if not isinstance(other, BitString):
            return NotImplemented
        return self._code == other._code or self.__lt__(other)

    def __gt__(self, other: "BitString") -> bool:
        if not isinstance(other, BitString):
            return NotImplemented
        return other.__lt__(self)

    def __ge__(self, other: "BitString") -> bool:
        if not isinstance(other, BitString):
            return NotImplemented
        return self._code == other._code or other.__lt__(self)

    def __repr__(self) -> str:
        return f"BitString({self.text!r})"

    def __str__(self) -> str:
        return self.text or "ε"

    # -- concatenation ------------------------------------------------

    def __add__(self, other: Union["BitString", str, int]) -> "BitString":
        """Concatenate with another bit string, text literal or single bit."""
        if isinstance(other, BitString):
            length = other._code.bit_length() - 1
            payload = other._code ^ (1 << length)
            return BitString._from_code((self._code << length) | payload)
        if isinstance(other, str):
            return self + BitString(other)
        if other in (0, 1):
            return BitString._from_code((self._code << 1) | other)
        return NotImplemented

    def append(self, bit: Bit) -> "BitString":
        """Return a new string with ``bit`` appended to the right.

        This is the O(1) concatenation used by the ``fork`` operation of
        Definition 4.3: forking appends 0 to one child id and 1 to the other.
        """
        if bit not in (0, 1):
            raise BitStringError(f"bit must be 0 or 1, got {bit!r}")
        return BitString._from_code((self._code << 1) | bit)

    def zero(self) -> "BitString":
        """Shorthand for :meth:`append` with bit 0."""
        return BitString._from_code(self._code << 1)

    def one(self) -> "BitString":
        """Shorthand for :meth:`append` with bit 1."""
        return BitString._from_code((self._code << 1) | 1)

    # -- the prefix order ----------------------------------------------

    def is_prefix_of(self, other: "BitString") -> bool:
        """Return ``True`` iff ``self ⊑ other`` (self is a prefix of other).

        The relation is reflexive: every string is a prefix of itself.
        Implemented as a single shift-and-compare on the packed codes.
        """
        shift = other._code.bit_length() - self._code.bit_length()
        return shift >= 0 and (other._code >> shift) == self._code

    def is_proper_prefix_of(self, other: "BitString") -> bool:
        """Return ``True`` iff ``self ⊑ other`` and ``self != other``."""
        shift = other._code.bit_length() - self._code.bit_length()
        return shift > 0 and (other._code >> shift) == self._code

    def is_extension_of(self, other: "BitString") -> bool:
        """Return ``True`` iff ``other ⊑ self``."""
        shift = self._code.bit_length() - other._code.bit_length()
        return shift >= 0 and (self._code >> shift) == other._code

    def comparable(self, other: "BitString") -> bool:
        """Return ``True`` iff the two strings are related by the prefix order.

        The paper writes ``r ∥ s`` for *incomparable* strings; this method is
        the negation of that relation.
        """
        a, b = self._code, other._code
        shift = b.bit_length() - a.bit_length()
        if shift >= 0:
            return (b >> shift) == a
        return (a >> -shift) == b

    def incomparable(self, other: "BitString") -> bool:
        """Return ``True`` iff ``self ∥ other`` (neither is a prefix)."""
        return not self.comparable(other)

    # -- structural helpers --------------------------------------------

    @property
    def bits(self) -> Tuple[Bit, ...]:
        """The bits as a tuple of integers."""
        return tuple(self)

    @property
    def text(self) -> str:
        """The raw ``'0'``/``'1'`` text (empty string for ``ε``).

        Materialized lazily from the packed code and cached; the hot paths
        never touch it.
        """
        cached = self._text
        if cached is None:
            cached = bin(self._code)[3:]
            object.__setattr__(self, "_text", cached)
        return cached

    def parent(self) -> "BitString":
        """Return the string with the last bit removed (O(1)).

        Raises
        ------
        BitStringError
            If the string is empty.
        """
        if self._code == 1:
            raise BitStringError("the empty string has no parent")
        return BitString._from_code(self._code >> 1)

    def last_bit(self) -> Bit:
        """Return the last bit of a non-empty string."""
        if self._code == 1:
            raise BitStringError("the empty string has no last bit")
        return self._code & 1

    def sibling(self) -> "BitString":
        """Return the string differing only in the last bit (``s0`` <-> ``s1``).

        Siblings are exactly the pairs collapsed by the Section 6 rewriting
        rule ``{i, s0, s1} -> {i, s}``; packed, the sibling is one xor away.
        """
        if self._code == 1:
            raise BitStringError("the empty string has no sibling")
        return BitString._from_code(self._code ^ 1)

    def is_sibling_of(self, other: "BitString") -> bool:
        """Return ``True`` iff the two strings differ only in their last bit."""
        if self._code == 1 or other._code == 1:
            return False
        return (self._code ^ other._code) == 1

    def common_prefix(self, other: "BitString") -> "BitString":
        """Return the longest common prefix (the meet in the prefix order).

        Aligns the two codes, xors them and reads off the first differing
        position from ``bit_length`` -- O(1) word operations instead of the
        seed's character-by-character scan.
        """
        a, b = self._code, other._code
        la, lb = a.bit_length(), b.bit_length()
        if la > lb:
            a >>= la - lb
        elif lb > la:
            b >>= lb - la
        diff = a ^ b
        common = a >> diff.bit_length()
        return BitString._from_code(common)

    def size_in_bits(self) -> int:
        """Size of a length-prefixed encoding of this string, in bits.

        A practical encoding needs the payload bits plus a terminator or
        length; we charge ``len + 1`` bits, matching the codec in
        :mod:`repro.core.encoding`.
        """
        return self._code.bit_length()

    # -- packed internals (used by the other core modules) ---------------

    @property
    def code(self) -> int:
        """The packed sentinel-prefixed integer code (read-only)."""
        return self._code


_INTERNED: Dict[int, "BitString"] = {}

_EMPTY = BitString._from_code(1)

#: The empty binary string ``ε``.
EMPTY = _EMPTY
