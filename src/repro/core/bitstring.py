"""Finite binary strings with the prefix order.

This module implements the poset *S* of Section 4 of the paper: the set of
all finite binary strings (sequences over ``{0, 1}``) ordered by

    ``r ⊑ s  iff  r is a prefix of s``.

The empty string ``ε`` is the bottom element of the order.  Two strings that
are not related by the prefix order are *incomparable* (written ``r ∥ s`` in
the paper).

:class:`BitString` values are immutable, hashable and totally ordered
*lexicographically* (so they can live in sorted containers and have a
canonical display order); the *prefix* partial order of the paper is exposed
through :meth:`BitString.is_prefix_of`, :meth:`BitString.comparable` and
friends, not through ``<``/``>``.

Examples
--------
>>> from repro.core.bitstring import BitString
>>> BitString("01").is_prefix_of(BitString("011"))
True
>>> BitString("01").comparable(BitString("00"))
False
>>> BitString.empty().is_prefix_of(BitString("10"))
True
>>> BitString("0") + BitString("1")
BitString('01')
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterable, Iterator, Tuple, Union

from .errors import BitStringError

__all__ = ["BitString", "Bit", "EMPTY"]

#: A single bit, represented as the integer 0 or 1.
Bit = int

_VALID_CHARS = frozenset("01")


@total_ordering
class BitString:
    """An immutable finite binary string.

    Parameters
    ----------
    bits:
        Either a string of ``'0'``/``'1'`` characters, an iterable of
        integers 0/1, or another :class:`BitString` (copied).

    Notes
    -----
    Instances are interned per-value cheaply through ``__slots__`` and a
    cached hash; equality and hashing are by value.
    """

    __slots__ = ("_bits", "_hash")

    def __init__(self, bits: Union[str, Iterable[Bit], "BitString"] = "") -> None:
        if isinstance(bits, BitString):
            text = bits._bits
        elif isinstance(bits, str):
            if not set(bits) <= _VALID_CHARS:
                raise BitStringError(
                    f"binary string may only contain '0' and '1': {bits!r}"
                )
            text = bits
        else:
            chars = []
            for bit in bits:
                if bit not in (0, 1):
                    raise BitStringError(f"bits must be 0 or 1, got {bit!r}")
                chars.append("1" if bit else "0")
            text = "".join(chars)
        object.__setattr__(self, "_bits", text)
        object.__setattr__(self, "_hash", hash(("BitString", text)))

    # -- constructors -------------------------------------------------

    @classmethod
    def empty(cls) -> "BitString":
        """Return the empty string ``ε`` (bottom of the prefix order)."""
        return _EMPTY

    @classmethod
    def from_bits(cls, bits: Iterable[Bit]) -> "BitString":
        """Build a bit string from an iterable of 0/1 integers."""
        return cls(bits)

    @classmethod
    def parse(cls, text: str) -> "BitString":
        """Parse a textual binary string such as ``"0110"``.

        The paper's ``ε`` (or an empty string) denotes the empty bit string.
        """
        if text in ("ε", "e", ""):
            return cls.empty()
        return cls(text)

    # -- immutability -------------------------------------------------

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("BitString instances are immutable")

    def __delattr__(self, name: str) -> None:
        raise AttributeError("BitString instances are immutable")

    # -- basic protocol -----------------------------------------------

    def __len__(self) -> int:
        return len(self._bits)

    def __iter__(self) -> Iterator[Bit]:
        return (1 if char == "1" else 0 for char in self._bits)

    def __getitem__(self, index) -> Union[Bit, "BitString"]:
        if isinstance(index, slice):
            return BitString(self._bits[index])
        return 1 if self._bits[index] == "1" else 0

    def __bool__(self) -> bool:
        """A bit string is falsy only when it is the empty string."""
        return bool(self._bits)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BitString):
            return self._bits == other._bits
        return NotImplemented

    def __lt__(self, other: "BitString") -> bool:
        """Lexicographic order used only for canonical sorting and display.

        This matches the paper's presentation order (``00+01+1``); it is not
        the prefix order, which is partial and exposed through
        :meth:`is_prefix_of` and friends.
        """
        if not isinstance(other, BitString):
            return NotImplemented
        return self._bits < other._bits

    def __repr__(self) -> str:
        return f"BitString({self._bits!r})"

    def __str__(self) -> str:
        return self._bits or "ε"

    # -- concatenation ------------------------------------------------

    def __add__(self, other: Union["BitString", str, int]) -> "BitString":
        """Concatenate with another bit string, text literal or single bit."""
        if isinstance(other, BitString):
            return BitString(self._bits + other._bits)
        if isinstance(other, str):
            return BitString(self._bits + BitString(other)._bits)
        if other in (0, 1):
            return BitString(self._bits + ("1" if other else "0"))
        return NotImplemented

    def append(self, bit: Bit) -> "BitString":
        """Return a new string with ``bit`` appended to the right.

        This is the concatenation used by the ``fork`` operation of
        Definition 4.3: forking appends 0 to one child id and 1 to the other.
        """
        if bit not in (0, 1):
            raise BitStringError(f"bit must be 0 or 1, got {bit!r}")
        return BitString(self._bits + ("1" if bit else "0"))

    def zero(self) -> "BitString":
        """Shorthand for :meth:`append` with bit 0."""
        return self.append(0)

    def one(self) -> "BitString":
        """Shorthand for :meth:`append` with bit 1."""
        return self.append(1)

    # -- the prefix order ----------------------------------------------

    def is_prefix_of(self, other: "BitString") -> bool:
        """Return ``True`` iff ``self ⊑ other`` (self is a prefix of other).

        The relation is reflexive: every string is a prefix of itself.
        """
        return other._bits.startswith(self._bits)

    def is_proper_prefix_of(self, other: "BitString") -> bool:
        """Return ``True`` iff ``self ⊑ other`` and ``self != other``."""
        return self != other and other._bits.startswith(self._bits)

    def is_extension_of(self, other: "BitString") -> bool:
        """Return ``True`` iff ``other ⊑ self``."""
        return self._bits.startswith(other._bits)

    def comparable(self, other: "BitString") -> bool:
        """Return ``True`` iff the two strings are related by the prefix order.

        The paper writes ``r ∥ s`` for *incomparable* strings; this method is
        the negation of that relation.
        """
        return self.is_prefix_of(other) or other.is_prefix_of(self)

    def incomparable(self, other: "BitString") -> bool:
        """Return ``True`` iff ``self ∥ other`` (neither is a prefix)."""
        return not self.comparable(other)

    # -- structural helpers --------------------------------------------

    @property
    def bits(self) -> Tuple[Bit, ...]:
        """The bits as a tuple of integers."""
        return tuple(1 if char == "1" else 0 for char in self._bits)

    @property
    def text(self) -> str:
        """The raw ``'0'``/``'1'`` text (empty string for ``ε``)."""
        return self._bits

    def parent(self) -> "BitString":
        """Return the string with the last bit removed.

        Raises
        ------
        BitStringError
            If the string is empty.
        """
        if not self._bits:
            raise BitStringError("the empty string has no parent")
        return BitString(self._bits[:-1])

    def last_bit(self) -> Bit:
        """Return the last bit of a non-empty string."""
        if not self._bits:
            raise BitStringError("the empty string has no last bit")
        return 1 if self._bits[-1] == "1" else 0

    def sibling(self) -> "BitString":
        """Return the string differing only in the last bit (``s0`` <-> ``s1``).

        Siblings are exactly the pairs collapsed by the Section 6 rewriting
        rule ``{i, s0, s1} -> {i, s}``.
        """
        if not self._bits:
            raise BitStringError("the empty string has no sibling")
        flipped = "0" if self._bits[-1] == "1" else "1"
        return BitString(self._bits[:-1] + flipped)

    def is_sibling_of(self, other: "BitString") -> bool:
        """Return ``True`` iff the two strings differ only in their last bit."""
        if not self._bits or not other._bits:
            return False
        return self != other and self._bits[:-1] == other._bits[:-1]

    def common_prefix(self, other: "BitString") -> "BitString":
        """Return the longest common prefix (the meet in the prefix order)."""
        limit = min(len(self._bits), len(other._bits))
        index = 0
        while index < limit and self._bits[index] == other._bits[index]:
            index += 1
        return BitString(self._bits[:index])

    def size_in_bits(self) -> int:
        """Size of a length-prefixed encoding of this string, in bits.

        A practical encoding needs the payload bits plus a terminator or
        length; we charge ``len + 1`` bits, matching the codec in
        :mod:`repro.core.encoding`.
        """
        return len(self._bits) + 1


_EMPTY = BitString("")

#: The empty binary string ``ε``.
EMPTY = _EMPTY
