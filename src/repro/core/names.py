"""Names: finite antichains of binary strings (Definition 4.1 of the paper).

A *name* is a finite antichain in the prefix-ordered set of binary strings.
Names form a partial order under

    ``n1 ⊑ n2  iff  ∀ r ∈ n1 . ∃ s ∈ n2 . r ⊑ s``

which, because names are antichains, is a genuine partial order (not merely a
pre-order) and a join semilattice (Proposition 4.2).  The join of two names
is the set of maximal strings of their union:

    ``n1 ⊔ n2 = { s ∈ n1 ∪ n2 | (s ⊑ r ∈ n1 ∪ n2) ⇒ s = r }``

Intuitively a name denotes the down-set of its strings; the order is down-set
inclusion and the join is down-set union.

Both components of a version stamp (``update`` and ``id``) are names.

Examples
--------
>>> from repro.core.names import Name
>>> Name.parse("00+011") <= Name.parse("000+011+1")
True
>>> (Name.parse("00+011") | Name.parse("000+01+1")).to_text()
'000+011+1'
>>> Name.seed()          # the singleton {ε}, the initial identity
Name('ε')
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from .bitstring import BitString
from .errors import NameError_

__all__ = ["Name", "is_antichain", "maximal_strings"]


def is_antichain(strings: Iterable[BitString]) -> bool:
    """Return ``True`` iff no string in ``strings`` is a prefix of another.

    The empty collection and singletons are trivially antichains.
    """
    items = list(strings)
    for index, first in enumerate(items):
        for second in items[index + 1:]:
            if first.comparable(second):
                return False
    return True


def maximal_strings(strings: Iterable[BitString]) -> FrozenSet[BitString]:
    """Return the maximal elements of ``strings`` under the prefix order.

    This is the normalization used by the name join: the result is always an
    antichain representing the same down-set as the input.
    """
    items = set(strings)
    maximal = set()
    for candidate in items:
        dominated = any(
            candidate != other and candidate.is_prefix_of(other) for other in items
        )
        if not dominated:
            maximal.add(candidate)
    return frozenset(maximal)


class Name:
    """A finite antichain of binary strings, ordered as a down-set.

    Instances are immutable and hashable.  Construction validates the
    antichain property unless the input is already known to be normalized
    (internal fast path used by :meth:`join`).

    Parameters
    ----------
    strings:
        The member binary strings.  They must form an antichain; pass the
        output of :func:`maximal_strings` (or use :meth:`from_down_set`) if
        the input may contain comparable strings.
    """

    __slots__ = ("_strings", "_hash")

    def __init__(self, strings: Iterable[BitString] = (), *, _trusted: bool = False):
        items = frozenset(
            s if isinstance(s, BitString) else BitString(s) for s in strings
        )
        if not _trusted and not is_antichain(items):
            raise NameError_(
                f"strings do not form an antichain: "
                f"{sorted(str(s) for s in items)}"
            )
        object.__setattr__(self, "_strings", items)
        object.__setattr__(self, "_hash", hash(("Name", items)))

    # -- constructors -------------------------------------------------

    @classmethod
    def seed(cls) -> "Name":
        """The initial name ``{ε}`` given to the first element of a system."""
        return _SEED

    @classmethod
    def empty(cls) -> "Name":
        """The empty name ``{}`` (bottom of the name order).

        The paper's initial stamp is ``({ε}, {ε})``; the empty name appears
        only as a neutral element for joins and in degenerate encodings.
        """
        return _BOTTOM

    @classmethod
    def of(cls, *strings: str) -> "Name":
        """Build a name from textual binary strings, e.g. ``Name.of("0", "11")``."""
        return cls(BitString.parse(text) for text in strings)

    @classmethod
    def from_down_set(cls, strings: Iterable[BitString]) -> "Name":
        """Build a name from arbitrary strings by keeping the maximal ones."""
        return cls(maximal_strings(strings), _trusted=True)

    @classmethod
    def parse(cls, text: str) -> "Name":
        """Parse the paper's ``+``-separated notation, e.g. ``"00+01+1"``.

        ``"ε"`` (or an empty string) parses to the seed name ``{ε}`` and the
        literal ``"{}"`` parses to the empty name.
        """
        text = text.strip()
        if text == "{}":
            return cls.empty()
        if text in ("", "ε", "e"):
            return cls.seed()
        parts = [part.strip() for part in text.split("+")]
        return cls(BitString.parse(part) for part in parts)

    # -- immutability -------------------------------------------------

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Name instances are immutable")

    def __delattr__(self, name: str) -> None:
        raise AttributeError("Name instances are immutable")

    # -- basic protocol -----------------------------------------------

    @property
    def strings(self) -> FrozenSet[BitString]:
        """The member binary strings as a frozen set."""
        return self._strings

    def __len__(self) -> int:
        return len(self._strings)

    def __iter__(self) -> Iterator[BitString]:
        return iter(sorted(self._strings))

    def __contains__(self, item: object) -> bool:
        if isinstance(item, str):
            item = BitString.parse(item)
        return item in self._strings

    def __bool__(self) -> bool:
        return bool(self._strings)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Name):
            return self._strings == other._strings
        return NotImplemented

    def __repr__(self) -> str:
        return f"Name({self.to_text()!r})"

    def __str__(self) -> str:
        return self.to_text()

    def to_text(self) -> str:
        """Render in the paper's ``+``-separated notation (``'{}'`` if empty)."""
        if not self._strings:
            return "{}"
        return "+".join(str(s) for s in sorted(self._strings))

    def sorted_strings(self) -> List[BitString]:
        """The member strings in canonical (length, lexicographic) order."""
        return sorted(self._strings)

    # -- the partial order ---------------------------------------------

    def dominated_by(self, other: "Name") -> bool:
        """Return ``True`` iff ``self ⊑ other`` in the name order.

        Every string of ``self`` must be a prefix of some string of ``other``.
        The empty name is below every name.
        """
        return all(
            any(mine.is_prefix_of(theirs) for theirs in other._strings)
            for mine in self._strings
        )

    def dominates(self, other: "Name") -> bool:
        """Return ``True`` iff ``other ⊑ self``."""
        return other.dominated_by(self)

    def __le__(self, other: "Name") -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return self.dominated_by(other)

    def __ge__(self, other: "Name") -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return other.dominated_by(self)

    def __lt__(self, other: "Name") -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return self != other and self.dominated_by(other)

    def __gt__(self, other: "Name") -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return self != other and other.dominated_by(self)

    def comparable(self, other: "Name") -> bool:
        """Return ``True`` iff the names are related in either direction."""
        return self.dominated_by(other) or other.dominated_by(self)

    def incomparable(self, other: "Name") -> bool:
        """Return ``True`` iff neither name dominates the other."""
        return not self.comparable(other)

    def string_dominated_by(self, string: BitString, other: "Name") -> bool:
        """Return ``True`` iff ``{string} ⊑ other`` (helper for invariant I3)."""
        return any(string.is_prefix_of(theirs) for theirs in other._strings)

    def covers_string(self, string: BitString) -> bool:
        """Return ``True`` iff ``{string} ⊑ self``."""
        return any(string.is_prefix_of(mine) for mine in self._strings)

    def disjoint_ids(self, other: "Name") -> bool:
        """Return ``True`` iff every string of ``self`` is incomparable to
        every string of ``other``.

        This is the pairwise relation required of distinct ids in a frontier
        by invariant I2.
        """
        return all(
            mine.incomparable(theirs)
            for mine in self._strings
            for theirs in other._strings
        )

    # -- the join semilattice -------------------------------------------

    def join(self, other: "Name") -> "Name":
        """The least upper bound ``self ⊔ other`` (Proposition 4.2).

        The result is the antichain of maximal strings in the union of the
        two names; it represents the union of the corresponding down-sets.
        """
        return Name.from_down_set(self._strings | other._strings)

    def __or__(self, other: "Name") -> "Name":
        if not isinstance(other, Name):
            return NotImplemented
        return self.join(other)

    @classmethod
    def join_all(cls, names: Iterable["Name"]) -> "Name":
        """Join an arbitrary collection of names (``⊔`` over a set).

        The join of the empty collection is the empty name.
        """
        strings: set = set()
        for name in names:
            strings |= name._strings
        return cls.from_down_set(strings)

    # -- fork support ----------------------------------------------------

    def concat(self, bit: int) -> "Name":
        """Append ``bit`` to every member string (``n·x`` in Definition 4.3).

        Forking an element with id ``i`` produces children with ids ``i0``
        and ``i1``; this is the lifting of single-bit concatenation to names.
        Concatenation preserves the antichain property.
        """
        return Name((s.append(bit) for s in self._strings), _trusted=True)

    def fork(self) -> Tuple["Name", "Name"]:
        """Return the pair ``(self·0, self·1)`` of child identities."""
        return self.concat(0), self.concat(1)

    # -- down-set semantics ----------------------------------------------

    def down_set(self) -> FrozenSet[BitString]:
        """Materialize the down-set denoted by this name.

        The down-set of ``{s1, ..., sk}`` is the set of all prefixes of the
        member strings (including ``ε`` whenever the name is non-empty).
        This is exponential-free (linear in total string length) and is used
        by tests to check that the order on names is down-set inclusion and
        the join is down-set union.
        """
        prefixes = set()
        for string in self._strings:
            text = string.text
            for length in range(len(text) + 1):
                prefixes.add(BitString(text[:length]))
        return frozenset(prefixes)

    # -- size accounting --------------------------------------------------

    def total_bits(self) -> int:
        """Total number of payload bits across member strings."""
        return sum(len(s) for s in self._strings)

    def size_in_bits(self) -> int:
        """Size of a length-prefixed encoding of this name, in bits.

        Matches the accounting of :mod:`repro.core.encoding`: each string
        costs ``len + 1`` bits and the name itself costs one terminator.
        """
        return sum(s.size_in_bits() for s in self._strings) + 1

    def max_depth(self) -> int:
        """Length of the longest member string (0 for the seed/empty name)."""
        if not self._strings:
            return 0
        return max(len(s) for s in self._strings)


_SEED = Name((BitString.empty(),), _trusted=True)
_BOTTOM = Name((), _trusted=True)
