"""Names: finite antichains of binary strings (Definition 4.1 of the paper).

A *name* is a finite antichain in the prefix-ordered set of binary strings.
Names form a partial order under

    ``n1 ⊑ n2  iff  ∀ r ∈ n1 . ∃ s ∈ n2 . r ⊑ s``

which, because names are antichains, is a genuine partial order (not merely a
pre-order) and a join semilattice (Proposition 4.2).  The join of two names
is the set of maximal strings of their union:

    ``n1 ⊔ n2 = { s ∈ n1 ∪ n2 | (s ⊑ r ∈ n1 ∪ n2) ⇒ s = r }``

Intuitively a name denotes the down-set of its strings; the order is down-set
inclusion and the join is down-set union.

Both components of a version stamp (``update`` and ``id``) are names.

Representation and complexity
-----------------------------
The authoritative representation of a name is a **canonically sorted tuple of
packed integer codes** (the sentinel-prefixed codes of
:class:`~repro.core.bitstring.BitString`, in lexicographic string order --
which for binary strings is exactly trie pre-order: a prefix sorts
immediately before its extensions, and the extensions of a string form one
contiguous run).  :class:`BitString` objects, the member frozenset and the
hash are all materialized lazily on first API access; the hot algebra below
never allocates them.  That single ordering fact turns every all-pairs scan
of the seed implementation into a sort-plus-single-scan or a merge-style walk
over machine integers:

====================  =======================  =======================
operation             seed implementation       this implementation
====================  =======================  =======================
``maximal_strings``   O(k²) pairwise scans      O(k log k) sort + scan
``is_antichain``      O(k²) pairwise scans      O(k log k) sort + scan
``join``              O(k²)                     O(k) fused merge+collapse
``dominated_by``      O(k·m) all pairs          O(k + m) merge walk
``covers_string``     O(k) scan                 O(log k) bisect
``disjoint_ids``      O(k·m) all pairs          O(k log m) bisect walk
``concat`` (fork)     O(total bits)             O(k) integer shifts
====================  =======================  =======================

with every elementary prefix test a single shift-and-compare.

Examples
--------
>>> from repro.core.names import Name
>>> Name.parse("00+011") <= Name.parse("000+011+1")
True
>>> (Name.parse("00+011") | Name.parse("000+01+1")).to_text()
'000+011+1'
>>> Name.seed()          # the singleton {ε}, the initial identity
Name('ε')
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, List, Sequence, Tuple

from .bitstring import BitString
from .errors import NameError_

__all__ = ["Name", "is_antichain", "maximal_strings"]


def _bisect_left_lex(codes: Sequence[int], code: int) -> int:
    """``bisect_left`` over lex-sorted packed codes (numeric bisect would
    use the wrong order, so the comparison is inlined)."""
    bits = code.bit_length()
    lo, hi = 0, len(codes)
    while lo < hi:
        mid = (lo + hi) >> 1
        other = codes[mid]
        other_bits = other.bit_length()
        if other_bits == bits:
            less = other < code
        elif other_bits < bits:
            less = other <= (code >> (bits - other_bits))
        else:
            less = (other >> (other_bits - bits)) < code
        if less:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _sorted_unique_codes(strings: Iterable[BitString]) -> List[int]:
    """Lex-sort and deduplicate, returning packed codes."""
    items = sorted(strings)
    out: List[int] = []
    last = 0
    for string in items:
        code = string._code
        if code != last:
            out.append(code)
            last = code
    return out


def _maximal_codes(codes: List[int]) -> List[int]:
    """Single left-to-right scan keeping the maximal strings.

    ``codes`` must be lex-sorted and duplicate-free.  Because lexicographic
    order is trie pre-order, a dominated (prefix) string sits immediately
    before the run of its extensions, so one backward check per element
    suffices and the scan is a handful of integer operations per string.
    """
    out: List[int] = []
    for code in codes:
        length = code.bit_length()
        while out:
            top = out[-1]
            shift = length - top.bit_length()
            if shift >= 0 and (code >> shift) == top:
                out.pop()
            else:
                break
        out.append(code)
    return out


def is_antichain(strings: Iterable[BitString]) -> bool:
    """Return ``True`` iff no string in ``strings`` is a prefix of another.

    The empty collection and singletons are trivially antichains.  Sorted
    lexicographically, any prefix pair becomes adjacent, so one linear scan
    decides the property (the seed implementation compared all pairs).
    """
    items = sorted(strings)
    for index in range(len(items) - 1):
        if items[index].is_prefix_of(items[index + 1]):
            return False
    return True


def maximal_strings(strings: Iterable[BitString]) -> FrozenSet[BitString]:
    """Return the maximal elements of ``strings`` under the prefix order.

    This is the normalization used by the name join: the result is always an
    antichain representing the same down-set as the input.
    """
    codes = _maximal_codes(_sorted_unique_codes(strings))
    return frozenset(BitString._from_code(code) for code in codes)


class Name:
    """A finite antichain of binary strings, ordered as a down-set.

    Instances are immutable and hashable.  Construction validates the
    antichain property unless the input is already known to be normalized
    (internal fast path used by :meth:`join`).

    Parameters
    ----------
    strings:
        The member binary strings.  They must form an antichain; pass the
        output of :func:`maximal_strings` (or use :meth:`from_down_set`) if
        the input may contain comparable strings.
    """

    __slots__ = ("_codes", "_strings", "_set", "_hash")

    def __new__(cls, strings: Iterable[BitString] = (), *, _trusted: bool = False):
        codes = _sorted_unique_codes(
            s if isinstance(s, BitString) else BitString(s) for s in strings
        )
        if not _trusted:
            for index in range(len(codes) - 1):
                first, second = codes[index], codes[index + 1]
                shift = second.bit_length() - first.bit_length()
                if shift >= 0 and (second >> shift) == first:
                    raise NameError_(
                        f"strings do not form an antichain: "
                        f"{sorted(str(BitString._from_code(c)) for c in codes)}"
                    )
        return cls._from_codes(tuple(codes))

    @classmethod
    def _from_codes(cls, codes: Tuple[int, ...]) -> "Name":
        """Internal factory from lex-sorted, duplicate-free antichain codes."""
        self = object.__new__(cls)
        object.__setattr__(self, "_codes", codes)
        object.__setattr__(self, "_strings", None)
        object.__setattr__(self, "_set", None)
        object.__setattr__(self, "_hash", None)
        return self

    # -- constructors -------------------------------------------------

    @classmethod
    def seed(cls) -> "Name":
        """The initial name ``{ε}`` given to the first element of a system."""
        return _SEED

    @classmethod
    def empty(cls) -> "Name":
        """The empty name ``{}`` (bottom of the name order).

        The paper's initial stamp is ``({ε}, {ε})``; the empty name appears
        only as a neutral element for joins and in degenerate encodings.
        """
        return _BOTTOM

    @classmethod
    def of(cls, *strings: str) -> "Name":
        """Build a name from textual binary strings, e.g. ``Name.of("0", "11")``."""
        return cls(BitString.parse(text) for text in strings)

    @classmethod
    def from_down_set(cls, strings: Iterable[BitString]) -> "Name":
        """Build a name from arbitrary strings by keeping the maximal ones."""
        return cls._from_codes(tuple(_maximal_codes(_sorted_unique_codes(strings))))

    @classmethod
    def parse(cls, text: str) -> "Name":
        """Parse the paper's ``+``-separated notation, e.g. ``"00+01+1"``.

        ``"ε"`` (or an empty string) parses to the seed name ``{ε}`` and the
        literal ``"{}"`` parses to the empty name.
        """
        text = text.strip()
        if text == "{}":
            return cls.empty()
        if text in ("", "ε", "e"):
            return cls.seed()
        parts = [part.strip() for part in text.split("+")]
        return cls(BitString.parse(part) for part in parts)

    # -- immutability -------------------------------------------------

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Name instances are immutable")

    def __delattr__(self, name: str) -> None:
        raise AttributeError("Name instances are immutable")

    # -- basic protocol -----------------------------------------------

    @property
    def _sorted(self) -> Tuple[BitString, ...]:
        """The member strings as a lex-sorted tuple (materialized lazily)."""
        cached = self._strings
        if cached is None:
            cached = tuple(BitString._from_code(code) for code in self._codes)
            object.__setattr__(self, "_strings", cached)
        return cached

    @property
    def strings(self) -> FrozenSet[BitString]:
        """The member binary strings as a frozen set (built lazily)."""
        cached = self._set
        if cached is None:
            cached = frozenset(self._sorted)
            object.__setattr__(self, "_set", cached)
        return cached

    def __len__(self) -> int:
        return len(self._codes)

    def __iter__(self) -> Iterator[BitString]:
        return iter(self._sorted)

    def __contains__(self, item: object) -> bool:
        if isinstance(item, str):
            item = BitString.parse(item)
        if not isinstance(item, BitString):
            return False
        codes = self._codes
        index = _bisect_left_lex(codes, item._code)
        return index < len(codes) and codes[index] == item._code

    def __bool__(self) -> bool:
        return bool(self._codes)

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(("Name",) + self._codes)
            object.__setattr__(self, "_hash", cached)
        return cached

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Name):
            return self._codes == other._codes
        return NotImplemented

    def __repr__(self) -> str:
        return f"Name({self.to_text()!r})"

    def __str__(self) -> str:
        return self.to_text()

    def to_text(self) -> str:
        """Render in the paper's ``+``-separated notation (``'{}'`` if empty)."""
        if not self._codes:
            return "{}"
        return "+".join(str(s) for s in self._sorted)

    def sorted_strings(self) -> List[BitString]:
        """The member strings in canonical (lexicographic) order."""
        return list(self._sorted)

    # -- the partial order ---------------------------------------------

    def dominated_by(self, other: "Name") -> bool:
        """Return ``True`` iff ``self ⊑ other`` in the name order.

        Every string of ``self`` must be a prefix of some string of
        ``other``.  The empty name is below every name.  Implemented as a
        merge-style walk over the two sorted code tuples: for each of our
        strings the only possible witness is the first of ``other``'s
        strings not lexicographically below it (extensions form a contiguous
        run), so the walk is O(k + m) integer operations instead of the
        seed's O(k·m) all-pairs scan.
        """
        mine = self._codes
        theirs = other._codes
        if not mine:
            return True
        if mine == theirs:
            return True
        limit = len(theirs)
        j = 0
        for code_r in mine:
            bits_r = code_r.bit_length()
            while j < limit:
                code_t = theirs[j]
                bits_t = code_t.bit_length()
                if bits_t == bits_r:
                    behind = code_t < code_r
                elif bits_t < bits_r:
                    behind = code_t <= (code_r >> (bits_r - bits_t))
                else:
                    behind = (code_t >> (bits_t - bits_r)) < code_r
                if not behind:
                    break
                j += 1
            if j >= limit:
                return False
            code_t = theirs[j]
            shift = code_t.bit_length() - bits_r
            if shift < 0 or (code_t >> shift) != code_r:
                return False
        return True

    def dominates(self, other: "Name") -> bool:
        """Return ``True`` iff ``other ⊑ self``."""
        return other.dominated_by(self)

    def __le__(self, other: "Name") -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return self.dominated_by(other)

    def __ge__(self, other: "Name") -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return other.dominated_by(self)

    def __lt__(self, other: "Name") -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return self != other and self.dominated_by(other)

    def __gt__(self, other: "Name") -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return self != other and other.dominated_by(self)

    def comparable(self, other: "Name") -> bool:
        """Return ``True`` iff the names are related in either direction."""
        return self.dominated_by(other) or other.dominated_by(self)

    def incomparable(self, other: "Name") -> bool:
        """Return ``True`` iff neither name dominates the other."""
        return not self.comparable(other)

    def string_dominated_by(self, string: BitString, other: "Name") -> bool:
        """Return ``True`` iff ``{string} ⊑ other`` (helper for invariant I3)."""
        return other.covers_string(string)

    def covers_string(self, string: BitString) -> bool:
        """Return ``True`` iff ``{string} ⊑ self`` (O(log k) bisect).

        Any member extending ``string`` sorts at or immediately after it, so
        checking the first member not lexicographically below it decides the
        question.
        """
        codes = self._codes
        code = string._code
        index = _bisect_left_lex(codes, code)
        if index >= len(codes):
            return False
        candidate = codes[index]
        shift = candidate.bit_length() - code.bit_length()
        return shift >= 0 and (candidate >> shift) == code

    def disjoint_ids(self, other: "Name") -> bool:
        """Return ``True`` iff every string of ``self`` is incomparable to
        every string of ``other``.

        This is the pairwise relation required of distinct ids in a frontier
        by invariant I2.  For antichains, the only candidates comparable to a
        string ``a`` in a sorted tuple are its immediate lexicographic
        neighbours (an extension starts the run at ``a``; a strict prefix of
        ``a`` must be the predecessor, since anything between would extend it
        and violate the antichain property), so two bisect probes per string
        replace the seed's O(k·m) all-pairs scan.
        """
        small, large = self._codes, other._codes
        if len(small) > len(large):
            small, large = large, small
        if not large:
            return True
        limit = len(large)
        for code in small:
            bits = code.bit_length()
            index = _bisect_left_lex(large, code)
            if index < limit:
                candidate = large[index]
                shift = candidate.bit_length() - bits
                if shift >= 0 and (candidate >> shift) == code:
                    return False
            if index > 0:
                candidate = large[index - 1]
                shift = bits - candidate.bit_length()
                if shift >= 0 and (code >> shift) == candidate:
                    return False
        return True

    # -- the join semilattice -------------------------------------------

    def join(self, other: "Name") -> "Name":
        """The least upper bound ``self ⊔ other`` (Proposition 4.2).

        The result is the antichain of maximal strings in the union of the
        two names; it represents the union of the corresponding down-sets.
        Both inputs are already sorted antichains, so the union is one fused
        pass -- a linear merge of the code tuples that collapses dominated
        prefixes as elements are emitted.  Inside one antichain no element
        prefixes another, so a dominated string can only be the most
        recently emitted element of the *other* input: one scalar look-back
        per emission keeps the output maximal.  O(k + m) integer operations,
        no object allocation.
        """
        mine = self._codes
        theirs = other._codes
        if not mine:
            return other
        if not theirs:
            return self
        if mine == theirs:
            return self
        merged: List[int] = []
        top = 0  # merged[-1]; 0 = nothing emitted yet
        i = j = 0
        len_mine, len_theirs = len(mine), len(theirs)
        while i < len_mine and j < len_theirs:
            code_a, code_b = mine[i], theirs[j]
            if code_a == code_b:
                # Shared string: neither side can also hold a prefix of it.
                merged.append(code_a)
                top = code_a
                i += 1
                j += 1
                continue
            bits_a, bits_b = code_a.bit_length(), code_b.bit_length()
            if bits_a == bits_b:
                a_first = code_a < code_b
            elif bits_a < bits_b:
                a_first = code_a <= (code_b >> (bits_b - bits_a))
            else:
                a_first = (code_a >> (bits_a - bits_b)) < code_b
            if a_first:
                code, bits = code_a, bits_a
                i += 1
            else:
                code, bits = code_b, bits_b
                j += 1
            if top:
                # At most one previously emitted string can prefix this one
                # (two would be comparable within one input antichain), and
                # it can only be the last one, so a scalar look-back works.
                shift = bits - top.bit_length()
                if shift >= 0 and (code >> shift) == top:
                    merged.pop()
            merged.append(code)
            top = code
        tail = mine[i:] if i < len_mine else theirs[j:]
        if tail:
            if top:
                code = tail[0]
                shift = code.bit_length() - top.bit_length()
                if shift >= 0 and (code >> shift) == top:
                    merged.pop()
            merged.extend(tail)
        return Name._from_codes(tuple(merged))

    def __or__(self, other: "Name") -> "Name":
        if not isinstance(other, Name):
            return NotImplemented
        return self.join(other)

    @classmethod
    def join_all(cls, names: Iterable["Name"]) -> "Name":
        """Join an arbitrary collection of names (``⊔`` over a set).

        The join of the empty collection is the empty name.
        """
        result = _BOTTOM
        for name in names:
            result = result.join(name)
        return result

    # -- fork support ----------------------------------------------------

    def concat(self, bit: int) -> "Name":
        """Append ``bit`` to every member string (``n·x`` in Definition 4.3).

        Forking an element with id ``i`` produces children with ids ``i0``
        and ``i1``; this is the lifting of single-bit concatenation to names.
        Concatenation preserves the antichain property, and -- because
        antichain members differ before either string ends -- it also
        preserves the lexicographic order, so the whole operation is one
        shift per packed code.
        """
        if bit:
            return Name._from_codes(tuple((code << 1) | 1 for code in self._codes))
        return Name._from_codes(tuple(code << 1 for code in self._codes))

    def fork(self) -> Tuple["Name", "Name"]:
        """Return the pair ``(self·0, self·1)`` of child identities."""
        return self.concat(0), self.concat(1)

    # -- down-set semantics ----------------------------------------------

    def down_set(self) -> FrozenSet[BitString]:
        """Materialize the down-set denoted by this name.

        The down-set of ``{s1, ..., sk}`` is the set of all prefixes of the
        member strings (including ``ε`` whenever the name is non-empty).
        This is exponential-free (linear in total string length) and is used
        by tests to check that the order on names is down-set inclusion and
        the join is down-set union.
        """
        codes = set()
        for code in self._codes:
            while code and code not in codes:
                codes.add(code)
                code >>= 1
        return frozenset(BitString._from_code(code) for code in codes)

    # -- size accounting --------------------------------------------------

    def total_bits(self) -> int:
        """Total number of payload bits across member strings."""
        return sum(code.bit_length() - 1 for code in self._codes)

    def size_in_bits(self) -> int:
        """Size of a length-prefixed encoding of this name, in bits.

        Matches the accounting of :mod:`repro.core.encoding`: each string
        costs ``len + 1`` bits and the name itself costs one terminator.
        """
        return sum(code.bit_length() for code in self._codes) + 1

    def max_depth(self) -> int:
        """Length of the longest member string (0 for the seed/empty name)."""
        if not self._codes:
            return 0
        return max(code.bit_length() for code in self._codes) - 1


_SEED = Name._from_codes((1,))
_BOTTOM = Name._from_codes(())
